//! # Ursa — lightweight resource management for cloud-native microservices
//!
//! A from-scratch Rust reproduction of *"Ursa: Lightweight Resource
//! Management for Cloud-Native Microservices"* (HPCA 2024): the analytical
//! SLA-decomposition autoscaler, every substrate it depends on, the ML
//! baselines it is compared against, and a benchmark harness regenerating
//! every table and figure of the paper's evaluation.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`stats`] | `ursa-stats` | deterministic RNG, distributions, Welch's t-test, quantiles |
//! | [`metrics`] | `ursa-metrics` | time-series registry, SLO burn-rate monitor, Prometheus/CSV/HTML exporters |
//! | [`sim`] | `ursa-sim` | discrete-event microservice simulator + control-plane traits |
//! | [`apps`] | `ursa-apps` | the §VI benchmark applications and §III study chains |
//! | [`mip`] | `ursa-mip` | the exact multiple-choice MIP solver (Gurobi stand-in) |
//! | [`ml`] | `ursa-ml` | MLP / boosted trees / DQN for the baselines |
//! | [`core`] | `ursa-core` | Ursa itself: profiling, exploration, optimizer, controller |
//! | [`baselines`] | `ursa-baselines` | Sinan-style, Firm-style, Auto-a/b managers |
//! | [`trace`] | `ursa-trace` | critical-path analysis, blame, Chrome/JSONL trace exporters |
//!
//! # Quickstart
//!
//! ```no_run
//! use ursa::apps::social_network;
//! use ursa::core::manager::{Ursa, UrsaConfig};
//! use ursa::sim::prelude::*;
//!
//! // 1. Pick an application and its SLAs (paper Table II).
//! let app = social_network(true);
//! let sum: f64 = app.mix.iter().sum();
//! let rates: Vec<f64> = app.mix.iter().map(|w| app.default_rps * w / sum).collect();
//!
//! // 2. Offline: profile backpressure thresholds, explore LPRs, solve the MIP.
//! let mut manager = Ursa::explore_and_prepare(
//!     &app.topology, &app.slas, &rates, UrsaConfig::default(), 42,
//! )?;
//!
//! // 3. Online: deploy under load; scaling decisions are threshold checks.
//! let mut sim = app.build_sim(7);
//! app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
//! manager.apply_initial_allocation(&rates, &mut sim);
//! let report = run_deployment(&mut sim, &app.slas, &mut manager, &DeployConfig::default());
//! println!("SLA violation rate: {:.2}%", 100.0 * report.overall_violation_rate());
//! # Ok::<(), ursa::mip::ModelError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` for the full
//! system inventory and paper-to-code substitution map.

pub use ursa_apps as apps;
pub use ursa_baselines as baselines;
pub use ursa_core as core;
pub use ursa_metrics as metrics;
pub use ursa_mip as mip;
pub use ursa_ml as ml;
pub use ursa_sim as sim;
pub use ursa_stats as stats;
pub use ursa_trace as trace;
