//! Differential tests of the event-core v3 data structures.
//!
//! The v3 engine swapped two load-bearing structures whose observable
//! behavior must be *exactly* the old one's — the bit-identical-output
//! contract of the whole grid rides on them:
//!
//! * [`CalQueue`] replaced `BinaryHeap<Reverse<(at, seq)>>` as the event
//!   queue. It is a hybrid: small queues live in a sorted vec ("heap
//!   mode"), large ones in a calendar of time bands with a far-future
//!   overflow list, flipping between layouts with hysteresis. Whatever
//!   layout it is in, pops must come out in strict `(at, seq)` order and
//!   `retain` must drop exactly the condemned entries — so the proptests
//!   drive it against the old `BinaryHeap` through randomized
//!   push/pop/retain schedules (with deliberate timestamp ties) at sizes
//!   straddling both hybrid thresholds.
//!
//! * [`ReqArena`] replaced per-class pooled `Vec<Vec<NodeRt>>` request
//!   state. Slot IDs feed traces and the flight recorder, so the arena
//!   must recycle slots in the *same LIFO order* the old free list did,
//!   and generations must invalidate exactly the released slot — checked
//!   against a naive boxed-per-request reference model over random
//!   alloc/touch/release schedules with random call-tree widths.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use ursa::sim::arena::{Phase, ReqArena};
use ursa::sim::calq::CalQueue;
use ursa::sim::time::SimTime;

// ---------------------------------------------------------------------
// Calendar queue vs BinaryHeap
// ---------------------------------------------------------------------

/// The pre-v3 event queue: a min-heap over `(at, seq)` with `retain`
/// implemented as drain-filter-rebuild (exactly what `compact_events`
/// used to do).
#[derive(Default)]
struct RefHeap {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl RefHeap {
    fn push(&mut self, at: u64, seq: u64, kind: u32) {
        self.heap.push(Reverse((at, seq, kind)));
    }

    fn pop(&mut self) -> Option<(u64, u64, u32)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn peek(&self) -> Option<(u64, u64, u32)> {
        self.heap.peek().map(|&Reverse(e)| e)
    }

    fn retain(&mut self, f: impl Fn(u32) -> bool) {
        let kept: Vec<_> = self.heap.drain().filter(|Reverse(e)| f(e.2)).collect();
        self.heap = kept.into_iter().collect();
    }
}

/// One step of the randomized schedule. `pick` selects the operation,
/// `off` the push offset ahead of the current virtual now. Offsets are
/// drawn from a *small* set of buckets so timestamp collisions (ties
/// broken only by `seq`) are common rather than astronomically rare.
fn ops_strategy(len: usize) -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..8, 0u64..48), 1..len)
}

/// Drives both queues through the same schedule and requires identical
/// peek/pop streams. `tie_scale` quantizes offsets into few distinct
/// timestamps; `len` controls how deep the queue grows (past both
/// hybrid thresholds when large).
fn run_differential(ops: &[(u8, u64)], tie_scale: u64, push_bias: bool) {
    let mut q: CalQueue<u32> = CalQueue::new();
    let mut r = RefHeap::default();
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut kind = 0u32;
    for &(pick, off) in ops {
        // With `push_bias`, 6 of 8 picks push, so the queue climbs past
        // HYBRID_HIGH and exercises the calendar layout; without it the
        // mix hovers in heap mode around the low watermark.
        let is_push = if push_bias { pick < 6 } else { pick < 3 };
        if is_push {
            // Quantized offsets make (at, seq) ties routine; a huge
            // offset every 16th kind lands in the overflow band.
            let far = if kind % 16 == 15 { 1 << 40 } else { 0 };
            let at = now + off * tie_scale + far;
            q.push(SimTime::from_nanos(at), seq, kind);
            r.push(at, seq, kind);
            seq += 1;
            kind += 1;
        } else if pick == 6 && kind.is_multiple_of(3) {
            // Stale-entry sweep: condemn a kind class, like the engine's
            // lazy compaction of invalidated PS checks.
            q.retain(|&k| k % 3 != 0 || k % 2 == 0);
            r.retain(|k| k % 3 != 0 || k % 2 == 0);
        } else {
            assert_eq!(
                q.peek().map(|e| (e.at.as_nanos(), e.seq, e.kind)),
                r.peek(),
                "peek diverged at seq {seq}"
            );
            let got = q.pop().map(|e| (e.at.as_nanos(), e.seq, e.kind));
            let want = r.pop();
            assert_eq!(got, want, "pop diverged at seq {seq}");
            if let Some((at, _, _)) = want {
                now = at;
            }
        }
        assert_eq!(q.len(), r.heap.len(), "len diverged");
    }
    // Drain both completely: every remaining entry must come out in the
    // same total order regardless of which bands it was parked in.
    loop {
        let got = q.pop().map(|e| (e.at.as_nanos(), e.seq, e.kind));
        let want = r.pop();
        assert_eq!(got, want, "drain diverged");
        if want.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Small schedules: the queue stays in heap mode (sorted vec).
    #[test]
    fn calq_matches_heap_small(ops in ops_strategy(120)) {
        run_differential(&ops, 1_000, false);
    }

    /// Push-biased schedules thousands of entries deep: crosses
    /// HYBRID_HIGH into the calendar, spreads entries over many bands
    /// and the overflow list, then drains back through HYBRID_LOW.
    #[test]
    fn calq_matches_heap_across_hybrid_flips(ops in ops_strategy(2600)) {
        run_differential(&ops, 50_000, true);
    }

    /// Dense ties: offsets quantized to 4 distinct timestamps, so almost
    /// every pop is decided by the seq tie-break alone.
    #[test]
    fn calq_matches_heap_under_dense_ties(ops in ops_strategy(400)) {
        let tied: Vec<_> = ops.iter().map(|&(p, o)| (p, o % 4)).collect();
        run_differential(&tied, 1 << 20, true);
    }
}

// ---------------------------------------------------------------------
// Request arena vs pooled-vec reference
// ---------------------------------------------------------------------

/// The pre-v3 request state: one boxed record per request, slots handed
/// out through an explicit LIFO free list (this is the discipline whose
/// slot-ID sequence the arena must reproduce bit-for-bit).
#[derive(Default)]
struct RefPool {
    reqs: Vec<Option<RefReq>>,
    free: Vec<u32>,
}

struct RefReq {
    class: u32,
    num_nodes: u16,
    responded: u16,
    phases: Vec<Phase>,
    replicas: Vec<u32>,
}

impl RefPool {
    fn alloc(&mut self, class: u32, num_nodes: u16) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.reqs.push(None);
                (self.reqs.len() - 1) as u32
            }
        };
        self.reqs[slot as usize] = Some(RefReq {
            class,
            num_nodes,
            responded: 0,
            phases: vec![Phase::Queued; num_nodes as usize],
            replicas: vec![0; num_nodes as usize],
        });
        slot
    }

    fn release(&mut self, slot: u32) {
        self.reqs[slot as usize] = None;
        self.free.push(slot);
    }

    fn live(&self) -> Vec<u32> {
        (0..self.reqs.len() as u32)
            .filter(|&s| self.reqs[s as usize].is_some())
            .collect()
    }
}

/// A schedule of arena operations: `(pick, width, detail)` where `width`
/// sizes a fresh request's call tree (the "random topology" — hop counts
/// vary per request, so node regions of different widths get recycled
/// into each other's slots).
fn arena_ops() -> impl Strategy<Value = Vec<(u8, u16, u32)>> {
    proptest::collection::vec((0u8..8, 1u16..9, 0u32..1_000_000), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lockstep lifecycle: identical slot-ID streams, per-hop state
    /// isolation, completion counting, and generation invalidation.
    #[test]
    fn arena_matches_pooled_vec_lifecycle(ops in arena_ops()) {
        let mut a = ReqArena::new();
        let mut r = RefPool::default();
        // Live tokens: (slot, gen) pairs the arena handed out.
        let mut gens: Vec<(u32, u32)> = Vec::new();
        for (i, &(pick, width, detail)) in ops.iter().enumerate() {
            let live = r.live();
            if pick < 4 || live.is_empty() {
                // Alloc: the arena must pick the same slot the LIFO
                // reference picks.
                let slot = a.alloc(detail, SimTime::from_nanos(i as u64), width, false);
                let want = r.alloc(detail, width);
                prop_assert_eq!(slot, want, "slot allocation order diverged");
                gens.push((slot, a.gen(slot)));
                // A fresh slot starts with every hop Queued — even when
                // the slot previously held a wider or narrower request.
                for n in 0..width {
                    let ni = a.node_index(slot, a.gen(slot), n);
                    prop_assert_eq!(a.phase[ni], Phase::Queued);
                    prop_assert_eq!(a.replica[ni], 0);
                }
            } else if pick < 6 {
                // Touch: write hop state through one model, mirror in
                // the other, then verify *every* live request still
                // reads back its own state (no cross-slot aliasing).
                let slot = live[detail as usize % live.len()];
                let req = r.reqs[slot as usize].as_mut().unwrap();
                let hop = (detail % req.num_nodes as u32) as u16;
                let ni = a.node_index(slot, a.gen(slot), hop);
                a.phase[ni] = Phase::Pre;
                a.replica[ni] = detail;
                req.phases[hop as usize] = Phase::Pre;
                req.replicas[hop as usize] = detail;
                for &s in &live {
                    let req = r.reqs[s as usize].as_ref().unwrap();
                    prop_assert_eq!(a.class(s), req.class as usize);
                    prop_assert_eq!(a.num_nodes(s), req.num_nodes);
                    for n in 0..req.num_nodes {
                        let ni = a.node_index(s, a.gen(s), n);
                        prop_assert_eq!(a.phase[ni], req.phases[n as usize]);
                        prop_assert_eq!(a.replica[ni], req.replicas[n as usize]);
                    }
                }
            } else if pick == 6 {
                // Respond one hop; completion must agree with the
                // reference's counter.
                let slot = live[detail as usize % live.len()];
                let req = r.reqs[slot as usize].as_mut().unwrap();
                if req.responded < req.num_nodes {
                    req.responded += 1;
                    let done = a.respond_one(slot);
                    prop_assert_eq!(done, req.responded == req.num_nodes);
                }
            } else {
                // Release: the freed slot's old generation dies; every
                // other live token survives.
                let slot = live[detail as usize % live.len()];
                let old_gen = a.gen(slot);
                a.release(slot);
                r.release(slot);
                prop_assert!(!a.alive(slot, old_gen), "released token stayed alive");
                gens.retain(|&(s, _)| s != slot);
                for &(s, g) in &gens {
                    prop_assert!(a.alive(s, g), "release killed an unrelated token");
                }
            }
            prop_assert_eq!(
                a.slots_high_water(),
                r.reqs.len(),
                "slot high-water diverged"
            );
        }
    }
}
