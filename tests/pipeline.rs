//! Cross-crate pipeline integration tests: the full Ursa workflow on real
//! applications, plus cross-system sanity checks that the evaluation
//! depends on.

use ursa::apps::{app_by_name, media_service, video_pipeline};
use ursa::core::exploration::ExplorationConfig;
use ursa::core::manager::{Ursa, UrsaConfig};
use ursa::core::profiling::ProfilingConfig;
use ursa::sim::prelude::*;

fn quick_cfg() -> UrsaConfig {
    UrsaConfig {
        exploration: ExplorationConfig {
            samples_per_option: 3,
            window: SimDur::from_secs(15),
            max_options: 5,
            ..Default::default()
        },
        profiling: ProfilingConfig {
            windows_per_level: 4,
            window: SimDur::from_secs(8),
            levels: 6,
            ..Default::default()
        },
    }
}

fn rates(app: &ursa::apps::App) -> Vec<f64> {
    let sum: f64 = app.mix.iter().sum();
    app.mix.iter().map(|w| app.default_rps * w / sum).collect()
}

fn deploy_once(app: &ursa::apps::App, manager: &mut Ursa, seed: u64) -> DeploymentReport {
    let mut sim = app.build_sim(seed);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    manager.apply_initial_allocation(&rates(app), &mut sim);
    run_deployment(
        &mut sim,
        &app.slas,
        manager,
        &DeployConfig {
            duration: SimDur::from_mins(10),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(2),
            collect_samples: false,
        },
    )
}

/// The full pipeline holds SLAs on the media service.
#[test]
fn media_service_end_to_end() {
    let app = media_service();
    let mut ursa =
        Ursa::explore_and_prepare(&app.topology, &app.slas, &rates(&app), quick_cfg(), 11)
            .expect("media exploration feasible");
    let report = deploy_once(&app, &mut ursa, 12);
    let viol = report.overall_violation_rate();
    assert!(viol < 0.20, "media violation rate {viol}");
}

/// The full pipeline holds both priority SLAs on the video pipeline,
/// including the p50 low-priority SLA (the paper's only non-p99 SLA).
///
/// The pipeline's 4-hop p99 SLA forces every hop to the p99.9 grid point
/// (residual budget), so its exploration needs more samples per option
/// than the other quick tests for stable extreme percentiles.
#[test]
fn video_pipeline_end_to_end() {
    let app = video_pipeline(0.5);
    let cfg = UrsaConfig {
        exploration: ExplorationConfig {
            samples_per_option: 8,
            window: SimDur::from_secs(30),
            max_options: 5,
            ..Default::default()
        },
        ..quick_cfg()
    };
    let mut ursa = Ursa::explore_and_prepare(&app.topology, &app.slas, &rates(&app), cfg, 13)
        .expect("video exploration feasible");
    let report = deploy_once(&app, &mut ursa, 14);
    for sla in &app.slas {
        let v = report.class_violation_rate(sla.class);
        assert!(
            v < 0.30,
            "{}: violation rate {v}",
            app.topology.classes()[sla.class.0].name
        );
    }
}

/// Offline exploration is deterministic: same seed, same thresholds and
/// sample counts.
#[test]
fn exploration_deterministic() {
    let app = app_by_name("social-vanilla").expect("app exists");
    let a =
        Ursa::explore_and_prepare(&app.topology, &app.slas, &rates(&app), quick_cfg(), 99).unwrap();
    let b =
        Ursa::explore_and_prepare(&app.topology, &app.slas, &rates(&app), quick_cfg(), 99).unwrap();
    assert_eq!(
        a.offline_stats().exploration_samples,
        b.offline_stats().exploration_samples
    );
    assert_eq!(
        a.outcome().solution.objective,
        b.outcome().solution.objective
    );
    assert_eq!(
        a.outcome().solution.lpr_choice,
        b.outcome().solution.lpr_choice
    );
    let ta: Vec<Vec<f64>> = a
        .outcome()
        .thresholds
        .iter()
        .map(|t| t.lpr.clone())
        .collect();
    let tb: Vec<Vec<f64>> = b
        .outcome()
        .thresholds
        .iter()
        .map(|t| t.lpr.clone())
        .collect();
    assert_eq!(ta, tb);
}

/// Doubling the SLA tightness can only cost more cores.
#[test]
fn tighter_slas_cost_more() {
    let app = app_by_name("social-vanilla").expect("app exists");
    let loose = Ursa::explore_and_prepare(&app.topology, &app.slas, &rates(&app), quick_cfg(), 21)
        .unwrap()
        .outcome()
        .solution
        .objective;
    let tight_slas: Vec<Sla> = app
        .slas
        .iter()
        .map(|s| Sla::new(s.class, s.percentile, s.target * 0.35))
        .collect();
    // Infeasible under 0.35x targets is also an acceptable outcome.
    if let Ok(t) =
        Ursa::explore_and_prepare(&app.topology, &tight_slas, &rates(&app), quick_cfg(), 21)
    {
        let tight = t.outcome().solution.objective;
        assert!(tight >= loose, "tight {tight} < loose {loose}");
    }
}

/// Ursa's anomaly path: under a strongly skewed mix the manager
/// recalculates thresholds online.
#[test]
fn skewed_load_triggers_recalculation() {
    let app = app_by_name("social-vanilla").expect("app exists");
    let mut ursa =
        Ursa::explore_and_prepare(&app.topology, &app.slas, &rates(&app), quick_cfg(), 31).unwrap();
    let mut sim = app.build_sim(32);
    // Heavy skew: update classes at 3x their exploration share.
    let mix = app.skewed_mix(3.0);
    app.apply_load_with_mix(&mut sim, RateFn::Constant(app.default_rps), &mix);
    ursa.apply_initial_allocation(&rates(&app), &mut sim);
    let _ = run_deployment(
        &mut sim,
        &app.slas,
        &mut ursa,
        &DeployConfig {
            duration: SimDur::from_mins(10),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(1),
            collect_samples: false,
        },
    );
    assert!(
        ursa.recalcs() > 0,
        "skewed mix should trigger a recalculation"
    );
}

/// Ursa under the paper's finite 8-machine testbed: the capacity-capped
/// control plane clamps scale-outs, placements never exceed machine
/// capacity, and the run still completes with sane metrics.
#[test]
fn capped_cluster_deployment() {
    use ursa::sim::cluster::{CappedControlPlane, Cluster};
    use ursa::sim::control::ResourceManager;

    let app = app_by_name("social-vanilla").expect("app exists");
    let mut ursa =
        Ursa::explore_and_prepare(&app.topology, &app.slas, &rates(&app), quick_cfg(), 41).unwrap();
    let mut sim = app.build_sim(42);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    ursa.apply_initial_allocation(&rates(&app), &mut sim);

    let mut cluster = Cluster::paper_testbed();
    let total = cluster.total_cores();
    for _ in 0..10 {
        sim.run_for(SimDur::from_mins(1));
        let snap = sim.harvest();
        let mut capped = CappedControlPlane::new(&mut sim, &mut cluster);
        ursa.on_tick(&snap, &mut capped);
        assert!(cluster.used_cores() <= total + 1e-9);
        // Every placed replica corresponds to a live replica and vice versa.
        for s in 0..app.topology.num_services() {
            assert_eq!(
                cluster.replicas_of(ursa::sim::topology::ServiceId(s)),
                sim.replicas(ursa::sim::topology::ServiceId(s)),
                "placement drift for service {s}"
            );
        }
    }
    assert!(cluster.used_cores() > 0.0);
}

/// Span tracing during a managed run: trace spans reconstruct per-service
/// latency consistent with telemetry.
#[test]
fn spans_consistent_with_telemetry() {
    let app = app_by_name("social-vanilla").expect("app exists");
    let mut sim = app.build_sim(43);
    sim.enable_tracing(200_000, 1.0);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    sim.run_for(SimDur::from_mins(2));
    let snap = sim.harvest();
    let traces = sim.take_traces();
    assert!(!traces.is_empty());
    // Mean tier latency from trace spans vs telemetry for the busiest
    // service.
    let ps = app.service("post-store").unwrap();
    let upload = app.class("upload-post").unwrap();
    let span_mean = {
        let xs: Vec<f64> = traces
            .iter()
            .filter(|t| t.class == upload)
            .flat_map(|t| t.spans.iter())
            .filter(|s| s.service == ps)
            .map(|s| s.tier_latency().as_secs_f64())
            .collect();
        assert!(!xs.is_empty());
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let tel_mean = snap.services[ps.0].tier_latency[upload.0].mean().unwrap();
    let rel = (span_mean - tel_mean).abs() / tel_mean;
    // Telemetry windows retain the most recent samples only and traces are
    // assembled per completed request, so allow some divergence.
    assert!(rel < 0.25, "span mean {span_mean} vs telemetry {tel_mean}");
}

/// The §V anomaly loop end-to-end: a mid-run business-logic change that
/// makes a service heavier produces persistent SLA violations, the anomaly
/// detector asks for re-exploration of a service on the violating path, and
/// answering with `re_explore` restores compliance.
#[test]
fn latency_anomaly_requests_reexploration() {
    let app = app_by_name("social-vanilla").expect("app exists");
    let mut ursa =
        Ursa::explore_and_prepare(&app.topology, &app.slas, &rates(&app), quick_cfg(), 51).unwrap();
    let mut sim = app.build_sim(52);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    ursa.apply_initial_allocation(&rates(&app), &mut sim);

    // Healthy phase.
    for _ in 0..4 {
        sim.run_for(SimDur::from_mins(1));
        let snap = sim.harvest();
        ursa.on_tick(&snap, &mut sim);
    }
    assert!(ursa.pending_reexploration().is_none());

    // The timeline-update logic gets 2x heavier (a bad deploy): its old
    // allocation saturates and its p99 breaches the 500 ms SLA, while the
    // SLA stays attainable at the new cost under a fresh allocation.
    let tu = app.service("timeline-update").unwrap();
    sim.set_work_scale(tu, 2.0);
    let mut raised = None;
    for _ in 0..12 {
        sim.run_for(SimDur::from_mins(1));
        let snap = sim.harvest();
        ursa.on_tick(&snap, &mut sim);
        if let Some(svc) = ursa.pending_reexploration() {
            raised = Some(svc);
            break;
        }
    }
    let svc = raised.expect("persistent violations must raise a re-exploration request");
    // The implicated service lies on some violating class's path.
    let classes = app
        .topology
        .classes_on_service(ursa::sim::topology::ServiceId(svc));
    assert!(!classes.is_empty());

    // Answer the request: re-explore the changed service at its new cost.
    let stats = ursa
        .re_explore(tu.0, 2.0, &rates(&app))
        .expect("re-exploration feasible");
    assert!(stats.samples > 0);
    assert!(ursa.pending_reexploration().is_none());

    // Compliance restored (within the detector's tolerance band) once the
    // refreshed thresholds settle.
    let class = app.class("update-timeline").unwrap();
    let target = app.sla_of(class).unwrap().target;
    let mut violating_windows = 0;
    let mut counted = 0;
    for i in 0..8 {
        sim.run_for(SimDur::from_mins(1));
        let snap = sim.harvest();
        ursa.on_tick(&snap, &mut sim);
        if i >= 3 {
            if let Some(l) = snap.e2e_latency[class.0].percentile(99.0) {
                counted += 1;
                if l > target * 1.1 {
                    violating_windows += 1;
                }
            }
        }
    }
    assert!(counted > 0);
    assert!(
        violating_windows <= counted / 2,
        "still violating after re-exploration: {violating_windows}/{counted}"
    );
}
