//! Property-based invariants of the span tracer and critical-path
//! analyzer.
//!
//! Random small chain topologies (random edge kinds, work scales, classes)
//! are traced at 100% sampling; every finished trace must form a
//! well-formed span tree, and its critical path must tile the end-to-end
//! interval without exceeding it.

use proptest::prelude::*;
use ursa::sim::prelude::*;
use ursa::sim::trace::Trace;
use ursa::trace::critical_path;

/// Random 1–4-tier chain with random edge kinds and 1–2 classes (same
/// shape as `tests/simulator_invariants.rs`).
#[derive(Debug, Clone)]
struct RandomTopo {
    tiers: usize,
    edges: Vec<u8>,
    classes: usize,
    work_ms: Vec<f64>,
    cores: f64,
}

fn random_topo() -> impl Strategy<Value = RandomTopo> {
    (
        1usize..5,
        proptest::collection::vec(0u8..3, 4),
        1usize..3,
        proptest::collection::vec(0.5f64..8.0, 4),
        1.0f64..6.0,
    )
        .prop_map(|(tiers, edges, classes, work_ms, cores)| RandomTopo {
            tiers,
            edges,
            classes,
            work_ms,
            cores,
        })
}

fn build(rt: &RandomTopo) -> Topology {
    let services: Vec<ServiceCfg> = (0..rt.tiers)
        .map(|i| ServiceCfg::new(format!("t{i}"), rt.cores).with_workers(64))
        .collect();
    let edge_of = |i: usize| match rt.edges[i % rt.edges.len()] {
        0 => EdgeKind::NestedRpc,
        1 => EdgeKind::EventDrivenRpc,
        _ => EdgeKind::Mq,
    };
    fn chain(rt: &RandomTopo, i: usize, edge_of: &dyn Fn(usize) -> EdgeKind) -> CallNode {
        let work = WorkDist::Exponential {
            mean: rt.work_ms[i % rt.work_ms.len()] / 1000.0,
        };
        let node = CallNode::leaf(ServiceId(i), work);
        if i + 1 < rt.tiers {
            node.with_child(edge_of(i), chain(rt, i + 1, edge_of))
        } else {
            node
        }
    }
    let classes = (0..rt.classes)
        .map(|c| ClassCfg {
            name: format!("c{c}"),
            priority: Priority(c as u8),
            root: chain(rt, 0, &edge_of),
        })
        .collect();
    Topology::new(services, classes).expect("generated topology is valid")
}

/// Runs the topology under load with 100% sampling and drains it, so every
/// injected request's trace is finished (none pending).
fn collect(rt: &RandomTopo, rps: f64, seed: u64) -> Vec<Trace> {
    let mut sim = Simulation::new(build(rt), SimConfig::default(), seed);
    sim.enable_tracing(100_000, 1.0);
    for c in 0..rt.classes {
        sim.set_rate(ClassId(c), RateFn::Constant(rps));
    }
    sim.run_for(SimDur::from_secs(15));
    for c in 0..rt.classes {
        sim.set_rate(ClassId(c), RateFn::Constant(0.0));
    }
    sim.run_for(SimDur::from_secs(300));
    sim.take_traces()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every finished trace is a well-formed span tree: spans indexed by
    /// node id, exactly one root, valid parent links, ordered timestamps,
    /// wait/blocked intervals inside the on-worker window, and nested-RPC
    /// children nested within their parent's on-worker interval.
    #[test]
    fn span_trees_are_well_formed(rt in random_topo(), rps in 5.0f64..60.0, seed in any::<u64>()) {
        let traces = collect(&rt, rps, seed);
        prop_assert!(!traces.is_empty(), "15 s under load must trace something");
        for t in &traces {
            prop_assert!(!t.spans.is_empty());
            for (i, s) in t.spans.iter().enumerate() {
                prop_assert_eq!(s.node as usize, i, "spans indexed by node id");
                // Timestamps are causally ordered and inside the trace.
                prop_assert!(s.enqueue_at >= t.arrival);
                prop_assert!(s.start_at >= s.enqueue_at);
                prop_assert!(s.respond_at >= s.start_at);
                prop_assert!(s.respond_at <= t.end);
                // Parked intervals sit inside the on-worker window.
                for &(b, e) in s.waits.iter().chain(&s.blocked) {
                    prop_assert!(e >= b);
                    prop_assert!(b >= s.start_at && e <= s.respond_at);
                }
                match s.parent {
                    None => prop_assert_eq!(i, 0, "only the root lacks a parent"),
                    Some((p, kind)) => {
                        prop_assert!((p as usize) < t.spans.len(), "dangling parent {}", p);
                        prop_assert!((p as usize) != i, "self-parent");
                        let parent = &t.spans[p as usize];
                        // Children launch while the parent holds a worker.
                        prop_assert!(s.enqueue_at >= parent.start_at);
                        if kind == EdgeKind::NestedRpc {
                            // Synchronous call: the child's whole interval
                            // nests inside the parent's on-worker window.
                            prop_assert!(s.respond_at <= parent.respond_at);
                        }
                    }
                }
            }
            // The trace ends when its last span responds.
            let last = t.spans.iter().map(|s| s.respond_at).max().unwrap();
            prop_assert_eq!(last, t.end);
            // The nested-wait accumulator matches the recorded intervals.
            for s in &t.spans {
                let sum = s.downstream_wait().as_secs_f64();
                let acc = s.nested_wait.as_secs_f64();
                prop_assert!((sum - acc).abs() < 1e-9, "nested_wait {} != interval sum {}", acc, sum);
            }
        }
    }

    /// The critical path never exceeds the end-to-end latency — in fact it
    /// tiles `[arrival, end]` exactly, in causal order without overlap.
    #[test]
    fn critical_path_bounded_by_e2e(rt in random_topo(), rps in 5.0f64..60.0, seed in any::<u64>()) {
        let traces = collect(&rt, rps, seed);
        prop_assert!(!traces.is_empty());
        for t in &traces {
            let path = critical_path(t);
            let sum: f64 = path.iter().map(|s| s.secs()).sum();
            let e2e = t.e2e().as_secs_f64();
            prop_assert!(sum <= e2e + 1e-9, "path {} exceeds e2e {}", sum, e2e);
            prop_assert!((sum - e2e).abs() < 1e-9, "path {} != e2e {} (tiling gap)", sum, e2e);
            for w in path.windows(2) {
                prop_assert!(w[1].begin >= w[0].end, "overlapping segments");
            }
            for seg in &path {
                prop_assert!(seg.end >= seg.begin);
                prop_assert!(seg.begin >= t.arrival && seg.end <= t.end);
            }
        }
    }
}
