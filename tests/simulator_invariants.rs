//! Property-based invariants of the discrete-event simulator.
//!
//! Random small topologies (random edge kinds, fan-outs, priorities, work
//! scales) are driven with random loads and control actions; the simulator
//! must conserve requests, keep utilization in range, and stay
//! deterministic.

use proptest::prelude::*;
use ursa::sim::prelude::*;

/// Strategy for a random 1–4-tier chain topology with random edge kinds
/// and 1–2 classes.
#[derive(Debug, Clone)]
struct RandomTopo {
    tiers: usize,
    edges: Vec<u8>,
    classes: usize,
    work_ms: Vec<f64>,
    cores: f64,
}

fn random_topo() -> impl Strategy<Value = RandomTopo> {
    (
        1usize..5,
        proptest::collection::vec(0u8..3, 4),
        1usize..3,
        proptest::collection::vec(0.5f64..8.0, 4),
        1.0f64..6.0,
    )
        .prop_map(|(tiers, edges, classes, work_ms, cores)| RandomTopo {
            tiers,
            edges,
            classes,
            work_ms,
            cores,
        })
}

fn build(rt: &RandomTopo) -> Topology {
    let services: Vec<ServiceCfg> = (0..rt.tiers)
        .map(|i| ServiceCfg::new(format!("t{i}"), rt.cores).with_workers(64))
        .collect();
    let edge_of = |i: usize| match rt.edges[i % rt.edges.len()] {
        0 => EdgeKind::NestedRpc,
        1 => EdgeKind::EventDrivenRpc,
        _ => EdgeKind::Mq,
    };
    fn chain(rt: &RandomTopo, i: usize, edge_of: &dyn Fn(usize) -> EdgeKind) -> CallNode {
        let work = WorkDist::Exponential {
            mean: rt.work_ms[i % rt.work_ms.len()] / 1000.0,
        };
        let node = CallNode::leaf(ServiceId(i), work);
        if i + 1 < rt.tiers {
            node.with_child(edge_of(i), chain(rt, i + 1, edge_of))
        } else {
            node
        }
    }
    let classes = (0..rt.classes)
        .map(|c| ClassCfg {
            name: format!("c{c}"),
            priority: Priority(c as u8),
            root: chain(rt, 0, &edge_of),
        })
        .collect();
    Topology::new(services, classes).expect("generated topology is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: after load stops and the system drains, every injected
    /// request has completed; metrics stay in range throughout.
    #[test]
    fn requests_conserved_and_metrics_sane(rt in random_topo(), rps in 5.0f64..80.0, seed in any::<u64>()) {
        let mut sim = Simulation::new(build(&rt), SimConfig::default(), seed);
        for c in 0..rt.classes {
            sim.set_rate(ClassId(c), RateFn::Constant(rps));
        }
        sim.run_for(SimDur::from_secs(30));
        // Stop arrivals; drain generously.
        for c in 0..rt.classes {
            sim.set_rate(ClassId(c), RateFn::Constant(0.0));
        }
        sim.run_for(SimDur::from_secs(600));
        let snap = sim.harvest();
        prop_assert_eq!(sim.in_flight(), 0, "requests stuck in flight");
        let injected: u64 = snap.injections.iter().sum();
        let completed: u64 = snap.completions.iter().sum();
        prop_assert_eq!(injected, completed, "injected {} != completed {}", injected, completed);
        for svc in &snap.services {
            prop_assert!((0.0..=1.0).contains(&svc.cpu_utilization), "util {}", svc.cpu_utilization);
        }
        for series in &snap.e2e_latency {
            for &s in series.samples() {
                prop_assert!(s >= 0.0 && s.is_finite());
            }
        }
    }

    /// Determinism: identical seeds and action sequences yield identical
    /// telemetry even across scaling actions mid-run.
    #[test]
    fn deterministic_under_control_actions(rt in random_topo(), seed in any::<u64>()) {
        let run = || {
            let mut sim = Simulation::new(build(&rt), SimConfig::default(), seed);
            for c in 0..rt.classes {
                sim.set_rate(ClassId(c), RateFn::Constant(40.0));
            }
            sim.run_for(SimDur::from_secs(10));
            sim.set_replicas(ServiceId(0), 3);
            if rt.tiers > 1 {
                sim.set_cpu_limit(ServiceId(rt.tiers - 1), 1.0);
            }
            sim.run_for(SimDur::from_secs(10));
            sim.set_replicas(ServiceId(0), 1);
            sim.run_for(SimDur::from_secs(10));
            let snap = sim.harvest();
            (
                snap.injections.clone(),
                snap.completions.clone(),
                snap.e2e_latency.iter().map(|l| l.samples().to_vec()).collect::<Vec<_>>(),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }

    /// Scaling churn never loses requests: repeatedly scale out/in while
    /// loaded, then drain.
    #[test]
    fn scaling_churn_conserves(rt in random_topo(), seed in any::<u64>()) {
        let mut sim = Simulation::new(build(&rt), SimConfig::default(), seed);
        for c in 0..rt.classes {
            sim.set_rate(ClassId(c), RateFn::Constant(50.0));
        }
        for step in 0..8 {
            sim.run_for(SimDur::from_secs(5));
            for s in 0..rt.tiers {
                let n = 1 + ((step + s) % 4);
                sim.set_replicas(ServiceId(s), n);
            }
        }
        for c in 0..rt.classes {
            sim.set_rate(ClassId(c), RateFn::Constant(0.0));
        }
        sim.run_for(SimDur::from_secs(600));
        let snap = sim.harvest();
        prop_assert_eq!(sim.in_flight(), 0);
        let injected: u64 = snap.injections.iter().sum();
        let completed: u64 = snap.completions.iter().sum();
        prop_assert_eq!(injected, completed);
    }
}

/// Strict-priority discipline: under contention, high-priority e2e latency
/// must not exceed low-priority latency.
#[test]
fn priority_ordering_under_contention() {
    let services = vec![ServiceCfg::new("svc", 1.0).with_workers(2)];
    let mk = |name: &str, p: Priority| ClassCfg {
        name: name.into(),
        priority: p,
        root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.005 }),
    };
    let topo = Topology::new(
        services,
        vec![mk("high", Priority::HIGH), mk("low", Priority::LOW)],
    )
    .unwrap();
    let mut sim = Simulation::new(topo, SimConfig::default(), 5);
    sim.set_rate(ClassId(0), RateFn::Constant(90.0));
    sim.set_rate(ClassId(1), RateFn::Constant(90.0)); // rho = 0.9 total
    sim.run_for(SimDur::from_secs(120));
    let snap = sim.harvest();
    let high = snap.e2e_latency[0].percentile(90.0).unwrap();
    let low = snap.e2e_latency[1].percentile(90.0).unwrap();
    assert!(high < low, "high p90 {high} should beat low p90 {low}");
}
