//! Property-based validation of the MIP solver stack.
//!
//! The exact branch-and-bound solver must agree with brute-force
//! enumeration on every feasible/infeasible verdict and every objective
//! value; the greedy solver must be feasible and never better than exact;
//! solution percentile choices must respect the residual budgets.

use proptest::prelude::*;
use ursa::mip::{
    solve, solve_brute_force, solve_greedy, LatencyMatrix, MipModel, ModelError, ServiceModel,
    SlaConstraint,
};

const GRID: [f64; 3] = [99.0, 99.5, 99.9];
const GRID_RESIDUAL_UNITS: [usize; 3] = [10, 5, 1];

/// Strategy for a random small model: 1–4 services, 1–2 classes,
/// 2–4 LPR options with monotone resource/latency structure plus noise.
fn small_model() -> impl Strategy<Value = MipModel> {
    let service = (
        2usize..5,
        proptest::collection::vec(0.002f64..0.08, 2),
        any::<u64>(),
    );
    (
        proptest::collection::vec(service, 1..5),
        1usize..3,
        proptest::collection::vec(0.01f64..0.4, 2),
    )
        .prop_map(|(svc_params, n_classes, targets)| {
            let services = svc_params
                .into_iter()
                .enumerate()
                .map(|(si, (n_opts, base_lat, seed))| {
                    let mut rng = ursa::stats::rng::Rng::seed_from(seed);
                    let resource: Vec<f64> = (0..n_opts)
                        .map(|o| (n_opts - o) as f64 * (1.0 + rng.next_f64()))
                        .collect();
                    let latency = (0..n_classes)
                        .map(|c| {
                            if si == 0 || rng.chance(0.8) {
                                let b = base_lat[c.min(base_lat.len() - 1)];
                                let data: Vec<f64> = (0..n_opts)
                                    .flat_map(|o| {
                                        let row = b * (1.0 + o as f64 * (0.5 + rng.next_f64()));
                                        vec![
                                            row,
                                            row * (1.0 + rng.next_f64()),
                                            row * (2.0 + rng.next_f64()),
                                        ]
                                    })
                                    .collect();
                                Some(LatencyMatrix::new(n_opts, 3, data))
                            } else {
                                None
                            }
                        })
                        .collect();
                    ServiceModel {
                        name: format!("s{si}"),
                        resource,
                        latency,
                    }
                })
                .collect();
            let constraints = (0..n_classes)
                .map(|c| SlaConstraint {
                    class: c,
                    percentile: 99.0,
                    target: targets[c],
                })
                .collect();
            MipModel {
                percentiles: GRID.to_vec(),
                services,
                constraints,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact solver ≡ brute force on verdict and objective.
    #[test]
    fn exact_agrees_with_brute_force(model in small_model()) {
        match (solve(&model), solve_brute_force(&model)) {
            (Ok(e), Ok(b)) => {
                prop_assert!((e.objective - b.objective).abs() < 1e-9,
                    "exact {} vs brute {}", e.objective, b.objective);
                prop_assert!(e.proved_optimal);
            }
            (Err(ModelError::Infeasible { .. }), Err(ModelError::Infeasible { .. })) => {}
            (e, b) => prop_assert!(false, "verdict mismatch: {e:?} vs {b:?}"),
        }
    }

    /// Greedy is feasible and never beats exact.
    #[test]
    fn greedy_dominated_by_exact(model in small_model()) {
        if let (Ok(g), Ok(e)) = (solve_greedy(&model), solve(&model)) {
            prop_assert!(g.objective >= e.objective - 1e-9,
                "greedy {} < exact {}", g.objective, e.objective);
        }
    }

    /// Solutions respect the per-class residual budget and latency target.
    #[test]
    fn solutions_respect_constraints(model in small_model()) {
        if let Ok(sol) = solve(&model) {
            for (k, c) in model.constraints.iter().enumerate() {
                let betas = &sol.percentile_choice[k];
                let spent: usize = betas.iter().map(|&b| GRID_RESIDUAL_UNITS[b]).sum();
                prop_assert!(spent <= 10, "class {k}: residual spend {spent} > 10 units");
                let latency = sol.estimated_latency(&model, k);
                prop_assert!(latency <= c.target + 1e-9,
                    "class {k}: bound {latency} > target {}", c.target);
            }
        }
    }

    /// Loosening every SLA target never increases the optimal objective.
    #[test]
    fn objective_monotone_in_targets(model in small_model(), slack in 1.1f64..4.0) {
        let tight = solve(&model);
        let mut loose_model = model.clone();
        for c in &mut loose_model.constraints {
            c.target *= slack;
        }
        let loose = solve(&loose_model);
        match (tight, loose) {
            (Ok(t), Ok(l)) => prop_assert!(l.objective <= t.objective + 1e-9,
                "loose {} > tight {}", l.objective, t.objective),
            (Err(_), Ok(_)) => {} // infeasible -> feasible under looser targets: fine
            (Ok(t), Err(e)) => prop_assert!(false, "tight feasible ({t:?}) but loose infeasible ({e:?})"),
            (Err(_), Err(_)) => {}
        }
    }
}

mod lp_bound {
    use super::*;
    use ursa::mip::{lp_relaxation_bound, solve_with_options, SolveOptions};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The LP relaxation at the root never exceeds the integral optimum,
        /// and never declares a feasible model infeasible.
        #[test]
        fn lp_bound_is_a_lower_bound(model in small_model()) {
            let alpha = vec![None; model.services.len()];
            let lp = lp_relaxation_bound(&model, &alpha);
            // When the MIP is infeasible the LP may be feasible or not; no claim.
            if let Ok(sol) = solve(&model) {
                let lb = lp.expect("LP must be feasible when the MIP is");
                prop_assert!(lb <= sol.objective + 1e-6,
                    "lp bound {lb} exceeds optimum {}", sol.objective);
            }
        }

        /// Enabling the LP bound changes node counts, never results.
        #[test]
        fn lp_bound_preserves_optimum(model in small_model()) {
            let plain = solve(&model);
            let strengthened = solve_with_options(&model, SolveOptions { lp_bound: true });
            match (plain, strengthened) {
                (Ok(a), Ok(b)) => prop_assert!((a.objective - b.objective).abs() < 1e-9),
                (Err(ModelError::Infeasible { .. }), Err(ModelError::Infeasible { .. })) => {}
                (a, b) => prop_assert!(false, "verdict mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
