//! Property-based validation of Theorem 1 (paper §IV).
//!
//! The theorem claims the percentile decomposition bound holds for *any*
//! joint distribution of per-service latencies — independent, positively
//! or negatively correlated, multi-modal, heavy-tailed. We generate
//! adversarial joint samples and verify the bound never understates the
//! end-to-end percentile.

use proptest::prelude::*;
use ursa::core::decompose::{empirical_e2e_percentile, latency_bound, PercentileSplit};

/// Strategy: a joint latency table `[service][request]` built from shared
/// and private noise so services can be arbitrarily correlated, plus
/// occasional heavy-tail spikes.
fn joint_latencies(services: usize, requests: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    // Per-service: (base scale, correlation weight, spike probability).
    let params = proptest::collection::vec((0.001f64..0.1, 0.0f64..1.0, 0.0f64..0.05), services);
    (
        params,
        proptest::collection::vec(0.0f64..1.0, requests),
        any::<u64>(),
    )
        .prop_map(move |(params, shared, seed)| {
            let mut rng = ursa::stats::rng::Rng::seed_from(seed);
            params
                .iter()
                .map(|(scale, corr, spike_p)| {
                    shared
                        .iter()
                        .map(|&u| {
                            let private = rng.next_f64();
                            let mix = corr * u + (1.0 - corr) * private;
                            let spike = if rng.chance(*spike_p) { 20.0 } else { 1.0 };
                            scale * (0.1 + mix) * spike
                        })
                        .collect::<Vec<f64>>()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The equal split always satisfies the residual condition and bounds
    /// the empirical end-to-end percentile.
    #[test]
    fn equal_split_bound_holds(
        rows in (2usize..5).prop_flat_map(|s| joint_latencies(s, 4000)),
        pct in 90.0f64..99.5,
    ) {
        let split = PercentileSplit::equal(pct, rows.len());
        prop_assert!(split.is_valid_for(pct));
        let bound = latency_bound(&rows, &split, pct);
        let actual = empirical_e2e_percentile(&rows, pct);
        prop_assert!(
            actual <= bound + 1e-12,
            "actual {actual} exceeds bound {bound} at p{pct}"
        );
    }

    /// Arbitrary valid splits (not just equal) also bound the percentile.
    #[test]
    fn skewed_split_bound_holds(
        rows in joint_latencies(3, 4000),
        shares in (1u32..10, 1u32..10, 1u32..10),
    ) {
        let pct = 99.0;
        let budget = 100.0 - pct;
        let total = (shares.0 + shares.1 + shares.2) as f64;
        let split = PercentileSplit {
            percentiles: vec![
                100.0 - budget * shares.0 as f64 / total,
                100.0 - budget * shares.1 as f64 / total,
                100.0 - budget * shares.2 as f64 / total,
            ],
        };
        prop_assert!(split.is_valid_for(pct));
        let bound = latency_bound(&rows, &split, pct);
        let actual = empirical_e2e_percentile(&rows, pct);
        prop_assert!(actual <= bound + 1e-12, "actual {actual} > bound {bound}");
    }

    /// Violating the residual condition is detected.
    #[test]
    fn invalid_splits_rejected(extra in 0.01f64..10.0) {
        let split = PercentileSplit {
            percentiles: vec![100.0 - (1.0 + extra) / 2.0; 2],
        };
        // Residuals sum to 1 + extra > 1 = the p99 budget.
        prop_assert!(!split.is_valid_for(99.0));
    }
}

/// Deterministic worst-case: comonotone latencies (all services slow on the
/// same requests) with a heavy tail — the case where naively summing p99s
/// per service *without* the residual condition would understate.
#[test]
fn comonotone_heavy_tail() {
    let mut rng = ursa::stats::rng::Rng::seed_from(9);
    let n = 50_000;
    let base: Vec<f64> = (0..n)
        .map(|_| {
            let u = rng.next_f64();
            if u > 0.995 {
                1.0 + 10.0 * u
            } else {
                0.01 * u
            }
        })
        .collect();
    let rows = vec![base.clone(), base.clone(), base];
    let split = PercentileSplit::equal(99.0, 3);
    let bound = latency_bound(&rows, &split, 99.0);
    let actual = empirical_e2e_percentile(&rows, 99.0);
    assert!(actual <= bound + 1e-12, "actual {actual} > bound {bound}");
}
