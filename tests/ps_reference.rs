//! Differential tests of the virtual-time processor-sharing queue.
//!
//! The engine's `VtPs` replaces a naive per-job countdown (subtract the
//! elapsed per-job progress from every active job, sweep for
//! completions — O(n) per event). The two models are mathematically
//! equivalent for egalitarian PS; these tests enforce that equivalence:
//!
//! * a queue-level differential proptest drives both models with the
//!   same randomized admit/advance schedule — including rate changes
//!   from varying job counts and a chaos-style slowdown window — and
//!   requires identical completion order plus next-completion distances
//!   within 1e-9 relative tolerance;
//! * an engine-level proptest runs random chain topologies through a
//!   mid-run `Slowdown` fault window and checks conservation and
//!   determinism (the fault rescales the PS rate of in-flight work, so
//!   this exercises the sync → rescale → resync path);
//! * pinned regression tests freeze the completion tie-break (finish
//!   tag, then admission/token order) and the nanosecond quantization
//!   of completion checks.

use proptest::prelude::*;
use ursa::sim::chaos::{Fault, FaultKind, FaultPlan};
use ursa::sim::prelude::*;
use ursa::sim::ps::{ps_rate, VtPs};

/// Relative tolerance for comparing the two models' real-valued state.
/// They accumulate floating-point error differently (the countdown
/// subtracts per step, the virtual clock adds once), so exact equality
/// is not expected — but divergence beyond 1e-9 relative means a logic
/// bug, not rounding.
const REL_TOL: f64 = 1e-9;

/// The naive reference: one countdown of remaining work per job,
/// decremented by the common per-job progress on every advance.
#[derive(Default)]
struct NaivePs {
    /// `(remaining_work, admission_seq, item)` per active job.
    jobs: Vec<(f64, u64, u32)>,
    next_seq: u64,
}

impl NaivePs {
    fn admit(&mut self, work: f64, item: u32) {
        self.next_seq += 1;
        self.jobs.push((work, self.next_seq, item));
    }

    fn len(&self) -> usize {
        self.jobs.len()
    }

    /// O(n) sweep: everyone progresses by `dv` CPU-seconds.
    fn advance(&mut self, dv: f64) {
        for j in &mut self.jobs {
            j.0 -= dv;
        }
    }

    /// Work remaining until the next completion.
    fn next_rem(&self) -> Option<f64> {
        self.jobs
            .iter()
            .map(|j| j.0.max(0.0))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Pops everything due within `eps`, ordered by (remaining, seq) —
    /// the countdown equivalent of finish-tag order.
    fn pop_due(&mut self, eps: f64, out: &mut Vec<u32>) {
        let mut due: Vec<(f64, u64, u32)> = Vec::new();
        self.jobs.retain(|&j| {
            if j.0 <= eps {
                due.push(j);
                false
            } else {
                true
            }
        });
        due.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out.extend(due.iter().map(|j| j.2));
    }
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// One randomized step: real-time gap, then optionally admit a job.
#[derive(Debug, Clone)]
struct Step {
    dt: f64,
    admit: Option<f64>,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0.0f64..0.05, proptest::arbitrary::any::<u64>()), 1..120).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(dt, bits)| Step {
                    dt,
                    // ~2/3 of steps admit a job with work in (1e-5, 0.02].
                    admit: if bits % 3 != 0 {
                        Some(1e-5 + (bits % 1000) as f64 * 2e-5)
                    } else {
                        None
                    },
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive `VtPs` and the countdown reference with an identical
    /// schedule — job-count-dependent rates plus a slowdown window —
    /// and require identical completions and matching distances.
    #[test]
    fn vtps_matches_countdown_reference(
        steps in steps(),
        cores in 1.0f64..8.0,
        slow_factor in 1.5f64..8.0,
        slow_from in 0usize..60,
        slow_len in 1usize..40,
    ) {
        let mut vt: VtPs<u32> = VtPs::new();
        let mut naive = NaivePs::default();
        let mut next_item = 0u32;

        for (i, step) in steps.iter().enumerate() {
            // Chaos-style slowdown: within the window the common rate
            // divides by `slow_factor`, exactly as the engine rescales
            // a slowed replica (tags/remaining work never rewritten).
            let slow = if (slow_from..slow_from + slow_len).contains(&i) {
                slow_factor
            } else {
                1.0
            };
            if !vt.is_empty() {
                let dv = step.dt * ps_rate(cores, vt.len(), slow);
                // Both models must agree on when the next completion
                // lands before we advance past it.
                let (a, b) = (vt.next_rem().unwrap(), naive.next_rem().unwrap());
                prop_assert!(rel_close(a, b), "next_rem diverged: vt={a} naive={b}");
                vt.advance(dv);
                naive.advance(dv);
            }
            let mut got_vt = Vec::new();
            let mut got_naive = Vec::new();
            vt.pop_due(1e-12, &mut got_vt);
            naive.pop_due(1e-12, &mut got_naive);
            prop_assert_eq!(&got_vt, &got_naive, "completion order diverged at step {}", i);
            prop_assert_eq!(vt.len(), naive.len());

            if let Some(work) = step.admit {
                vt.admit(work, next_item);
                naive.admit(work, next_item);
                next_item += 1;
            }
        }

        // Drain: jump both models to each next completion until empty.
        let mut guard = 0;
        while !vt.is_empty() {
            let (a, b) = (vt.next_rem().unwrap(), naive.next_rem().unwrap());
            prop_assert!(rel_close(a, b), "drain next_rem diverged: vt={a} naive={b}");
            vt.advance(a);
            naive.advance(a);
            let mut got_vt = Vec::new();
            let mut got_naive = Vec::new();
            vt.pop_due(1e-12, &mut got_vt);
            naive.pop_due(1e-12, &mut got_naive);
            prop_assert_eq!(&got_vt, &got_naive, "drain order diverged");
            prop_assert!(!got_vt.is_empty(), "due job failed to pop");
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
        }
        prop_assert_eq!(naive.len(), 0);
    }
}

/// Random 1–3-tier chain with nested-RPC edges.
fn chain_topo(tiers: usize, work_ms: f64, cores: f64) -> Topology {
    let services: Vec<ServiceCfg> = (0..tiers)
        .map(|i| ServiceCfg::new(format!("t{i}"), cores).with_workers(64))
        .collect();
    fn chain(i: usize, tiers: usize, work_ms: f64) -> CallNode {
        let node = CallNode::leaf(
            ServiceId(i),
            WorkDist::Exponential {
                mean: work_ms / 1000.0,
            },
        );
        if i + 1 < tiers {
            node.with_child(EdgeKind::NestedRpc, chain(i + 1, tiers, work_ms))
        } else {
            node
        }
    }
    Topology::new(
        services,
        vec![ClassCfg {
            name: "c0".into(),
            priority: Priority::HIGH,
            root: chain(0, tiers, work_ms),
        }],
    )
    .expect("generated topology is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A mid-run slowdown window on a random chain: the engine must
    /// conserve requests through the sync → rescale → resync sequence
    /// (slowdowns stretch in-flight work, they never lose it), and two
    /// identically-seeded runs must agree sample-for-sample.
    #[test]
    fn chain_with_slowdown_window_conserves_and_is_deterministic(
        tiers in 1usize..4,
        work_ms in 1.0f64..6.0,
        rps in 10.0f64..60.0,
        factor in 1.5f64..6.0,
        target in 0usize..4,
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut sim = Simulation::new(chain_topo(tiers, work_ms, 2.0), SimConfig::default(), seed);
            let mut plan = FaultPlan::new();
            plan.push(Fault {
                at: SimTime::ZERO + SimDur::from_secs(5),
                until: SimTime::ZERO + SimDur::from_secs(12),
                kind: FaultKind::Slowdown { service: target % tiers, factor },
            });
            sim.install_faults(&plan, seed ^ 0xC0FFEE);
            sim.set_rate(ClassId(0), RateFn::Constant(rps));
            sim.run_for(SimDur::from_secs(20));
            sim.set_rate(ClassId(0), RateFn::Constant(0.0));
            sim.run_for(SimDur::from_secs(600));
            let snap = sim.harvest();
            (
                sim.in_flight(),
                snap.injections.clone(),
                snap.completions.clone(),
                snap.e2e_latency.iter().map(|l| l.samples().to_vec()).collect::<Vec<_>>(),
            )
        };
        let a = run();
        prop_assert_eq!(a.0, 0, "requests stuck in flight after drain");
        let injected: u64 = a.1.iter().sum();
        let completed: u64 = a.2.iter().sum();
        prop_assert_eq!(injected, completed, "injected {} != completed {}", injected, completed);
        let b = run();
        prop_assert_eq!(a, b, "slowdown window broke determinism");
    }
}

/// Pinned tie-break: jobs whose finish tags are bit-identical complete
/// in admission (token) order, even when admitted at different virtual
/// times. The engine schedules the completion check at
/// `((min_rem / rate) * 1e9).ceil().max(1.0)` nanoseconds, so
/// equal-tag jobs become due at the same quantized instant and the
/// `(tag, seq)` heap order is the only thing keeping the drain
/// deterministic.
#[test]
fn equal_finish_tags_drain_in_token_order() {
    let mut ps: VtPs<u32> = VtPs::new();
    ps.admit(2.0, 0); // admitted at V=0, tag 2.0
    ps.advance(1.0);
    ps.admit(1.0, 1); // admitted at V=1, tag 2.0 — collides with job 0
    ps.admit(1.0, 2); // ditto
    ps.advance(0.5);
    ps.admit(0.5, 3); // admitted at V=1.5, tag 2.0 — three-way collision
    ps.advance(0.5);
    let mut out = Vec::new();
    ps.pop_due(0.0, &mut out);
    assert_eq!(
        out,
        vec![0, 1, 2, 3],
        "equal tags must pop in admission order"
    );
}

/// Pinned quantization: completion checks land on whole nanoseconds
/// (`ceil`, never early), so a constant-work job on an uncontended
/// replica yields the same e2e latency on every request to within one
/// quantum — the virtual clock accumulates float error across
/// multi-step advances, which can bump the ceiling by a single
/// nanosecond, never more. A change to the rounding mode or the
/// `max(1.0)` floor shows up here as off-grid or early samples.
#[test]
fn constant_work_latency_is_quantization_stable() {
    let topo = Topology::new(
        vec![ServiceCfg::new("svc", 8.0).with_workers(8)],
        vec![ClassCfg {
            name: "req".into(),
            priority: Priority::HIGH,
            // 0.0003 s * 1e9 is not exactly representable, so the ceil
            // in the check scheduler is actually exercised.
            root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.0003)),
        }],
    )
    .unwrap();
    let mut sim = Simulation::new(topo, SimConfig::default(), 11);
    sim.set_rate(ClassId(0), RateFn::Constant(50.0));
    sim.run_for(SimDur::from_secs(30));
    let snap = sim.harvest();
    let samples = snap.e2e_latency[0].samples();
    assert!(samples.len() > 100, "expected a healthy sample count");
    let first = samples[0];
    for &s in samples {
        assert!(
            (s - first).abs() <= 2e-9,
            "constant-work latencies must agree to the quantum: first={first}, got {s}"
        );
        // The PS service time is quantized up to the next nanosecond.
        assert!(
            s >= 0.0003,
            "ceil quantization can only round completion times up (got {s})"
        );
        // Every completion sits on the nanosecond grid.
        let ns = s * 1e9;
        assert!(
            (ns - ns.round()).abs() < 1e-3,
            "latency {s} is off the nanosecond grid"
        );
    }
}
