//! The video processing pipeline: priorities and per-priority SLAs.
//!
//! ```text
//! cargo run --release --example video_pipeline
//! ```
//!
//! The pipeline's two request priorities share three MQ-connected stages
//! (metadata → snapshot → face recognition). Low-priority requests run only
//! when no high-priority request waits, and the SLAs differ in *percentile*
//! (p99 ≤ 20 s high vs p50 ≤ 4 s low — paper Table IV). Ursa's MIP handles
//! both in one model.

use ursa::apps::video_pipeline;
use ursa::core::exploration::ExplorationConfig;
use ursa::core::manager::{Ursa, UrsaConfig};
use ursa::core::profiling::ProfilingConfig;
use ursa::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = video_pipeline(0.5);
    let sum: f64 = app.mix.iter().sum();
    let rates: Vec<f64> = app.mix.iter().map(|w| app.default_rps * w / sum).collect();

    println!("preparing Ursa for the video pipeline...");
    let cfg = UrsaConfig {
        exploration: ExplorationConfig {
            samples_per_option: 4,
            window: SimDur::from_secs(30),
            max_options: 6,
            ..Default::default()
        },
        profiling: ProfilingConfig {
            windows_per_level: 4,
            window: SimDur::from_secs(15),
            levels: 6,
            ..Default::default()
        },
    };
    let mut ursa = Ursa::explore_and_prepare(&app.topology, &app.slas, &rates, cfg, 3)?;

    // Deploy under a priority mix the exploration never saw (60:40).
    let skewed = app.skewed_mix(1.0); // start from default…
    let mut mix = skewed;
    mix[0] = 60.0;
    mix[1] = 40.0;
    let mut sim = app.build_sim(4);
    app.apply_load_with_mix(&mut sim, RateFn::Constant(app.default_rps), &mix);
    ursa.apply_initial_allocation(&rates, &mut sim);
    let report = run_deployment(
        &mut sim,
        &app.slas,
        &mut ursa,
        &DeployConfig {
            duration: SimDur::from_mins(30),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(3),
            collect_samples: true,
        },
    );

    for sla in &app.slas {
        let name = &app.topology.classes()[sla.class.0].name;
        let mut samples = report.class_samples[sla.class.0].clone();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let measured = ursa::stats::quantile::percentile_of_sorted(&samples, sla.percentile);
        println!(
            "{:<14} p{:<4} measured {:>7.2}s  target {:>5.1}s  window violations {:>5.1}%",
            name,
            sla.percentile,
            measured,
            sla.target,
            100.0 * report.class_violation_rate(sla.class)
        );
    }
    println!(
        "\nmean allocation {:.1} cores across {} stages under a 60:40 priority mix",
        report.avg_cpu_allocation(),
        app.topology.num_services()
    );
    Ok(())
}
