//! Adapting to a business-logic update (§VII-G): the object-detection
//! service swaps DETR for MobileNet, and Ursa re-explores only that
//! service.
//!
//! ```text
//! cargo run --release --example adapt_to_change
//! ```

use ursa::apps::social_network;
use ursa::core::exploration::ExplorationConfig;
use ursa::core::manager::{Ursa, UrsaConfig};
use ursa::core::profiling::ProfilingConfig;
use ursa::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = social_network(false);
    let detect = app.service("object-detect").expect("service exists");
    let detect_class = app.class("object-detect").expect("class exists");
    let sum: f64 = app.mix.iter().sum();
    let rates: Vec<f64> = app.mix.iter().map(|w| app.default_rps * w / sum).collect();

    println!("initial offline exploration (all services)...");
    let cfg = UrsaConfig {
        exploration: ExplorationConfig {
            samples_per_option: 4,
            window: SimDur::from_secs(20),
            max_options: 6,
            ..Default::default()
        },
        profiling: ProfilingConfig {
            windows_per_level: 4,
            window: SimDur::from_secs(10),
            levels: 8,
            ..Default::default()
        },
    };
    let mut ursa = Ursa::explore_and_prepare(&app.topology, &app.slas, &rates, cfg, 21)?;
    let full = ursa.offline_stats();
    println!(
        "  full exploration: {} samples, {:.1} simulated minutes",
        full.exploration_samples,
        full.exploration_time.as_secs_f64() / 60.0
    );
    let cores_before = ursa.outcome().solution.objective;

    println!("\nswapping DETR -> MobileNet (4x lighter) and re-exploring only object-detect...");
    let stats = ursa.re_explore(detect.0, 0.25, &rates)?;
    println!(
        "  partial re-exploration: {} samples, {:.1} simulated minutes",
        stats.samples,
        stats.time.as_secs_f64() / 60.0
    );
    let cores_after = ursa.outcome().solution.objective;
    println!(
        "  projected allocation: {cores_before:.0} -> {cores_after:.0} cores (lighter model, fewer replicas)"
    );

    println!("\ndeploying the updated application for 15 minutes...");
    let mut sim = app.build_sim(5);
    sim.set_work_scale(detect, 0.25);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    ursa.apply_initial_allocation(&rates, &mut sim);
    let report = run_deployment(
        &mut sim,
        &app.slas,
        &mut ursa,
        &DeployConfig {
            duration: SimDur::from_mins(15),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(2),
            collect_samples: false,
        },
    );
    println!(
        "  object-detect violation rate: {:.2}% (SLA p99 <= 10s)",
        100.0 * report.class_violation_rate(detect_class)
    );
    println!(
        "  overall violation rate: {:.2}%, mean allocation {:.1} cores",
        100.0 * report.overall_violation_rate(),
        report.avg_cpu_allocation()
    );
    Ok(())
}
