//! Per-request tracing of the §III backpressure study.
//!
//! ```text
//! cargo run --release --example trace_backpressure [OUT_DIR]
//! ```
//!
//! Runs the 5-tier nested-RPC, event-driven-RPC, and MQ chains with the
//! leaf tier throttled mid-run, sampling 1% of requests into span traces.
//! For each chain it writes a Chrome trace-event file (open in
//! `chrome://tracing` or <https://ui.perfetto.dev>) plus the raw spans as
//! JSONL under `OUT_DIR` (default `traces/`), and prints the blame
//! decomposition of the p99 tail during the throttle window.
//!
//! The point the traces make visible: in the RPC chains the parent tier's
//! tail latency is almost entirely *downstream wait* — its workers are
//! held hostage by the throttled leaf (backpressure) — while in the MQ
//! chain the parent stays clean because nothing holds its workers.

use ursa::apps::chains::{study_chain, TIER_CORES};
use ursa::sim::prelude::*;
use ursa::trace::{service_blame, top_percentile, ChromeTrace};

const LOAD_RPS: f64 = 300.0;
const THROTTLED_CORES: f64 = 1.1;
const MINUTES: usize = 8;
const SAMPLE_RATE: f64 = 0.01;

fn main() -> std::io::Result<()> {
    let out_dir =
        std::path::PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| "traces".into()));
    std::fs::create_dir_all(&out_dir)?;
    let anomaly = 2..5; // throttle minutes 3-5
    println!(
        "5-tier chains at {LOAD_RPS} rps, leaf {TIER_CORES} -> {THROTTLED_CORES} cores in minutes {}-{}, {:.0}% span sampling\n",
        anomaly.start + 1,
        anomaly.end,
        100.0 * SAMPLE_RATE
    );

    for edge in [EdgeKind::NestedRpc, EdgeKind::EventDrivenRpc, EdgeKind::Mq] {
        let topo = study_chain(edge);
        let names: Vec<String> = topo.services().iter().map(|s| s.name.clone()).collect();
        let tiers = names.len();
        let leaf = ServiceId(tiers - 1);
        let parent = ServiceId(tiers - 2);

        let mut sim = Simulation::new(topo, SimConfig::default(), 0x7AC3);
        sim.enable_tracing(100_000, SAMPLE_RATE);
        sim.set_rate(ClassId(0), RateFn::Constant(LOAD_RPS));
        for minute in 0..MINUTES {
            if minute == anomaly.start {
                sim.set_cpu_limit(leaf, THROTTLED_CORES);
            }
            if minute == anomaly.end {
                sim.set_cpu_limit(leaf, TIER_CORES);
            }
            sim.run_for(SimDur::from_mins(1));
        }
        let traces = sim.take_traces();

        // Blame the p99 tail of requests that *arrived* while the leaf was
        // throttled: that's where backpressure (or its absence) shows.
        let throttled: Vec<_> = traces
            .iter()
            .filter(|t| {
                let m = t.arrival.as_secs_f64() / 60.0;
                m >= anomaly.start as f64 && m < anomaly.end as f64
            })
            .cloned()
            .collect();
        let tail = top_percentile(&throttled, 99.0);
        let blame = service_blame(tail.iter().copied(), tiers);
        let parent_blame = &blame.per_service[parent.0];

        println!("== {edge:?} ==");
        println!(
            "{} traces total, {} during throttle, {} in p99 tail",
            traces.len(),
            throttled.len(),
            tail.len()
        );
        print!("{}", blame.render(&names));
        // The parent's own queue also inflates under backpressure — every
        // worker is parked on the throttled leaf, so arrivals pile up.
        // The worker-held decomposition separates the two: what fraction of
        // the time the parent's workers were occupied was spent waiting on
        // downstream rather than computing.
        println!(
            "parent tier ({}): {:.1}% of p99-tail latency is downstream wait ({:.1}% queued behind held workers)",
            names[parent.0],
            100.0 * parent_blame.downstream_fraction(),
            100.0 * parent_blame.queue_wait / parent_blame.total().max(1e-12),
        );
        println!(
            "parent tier ({}): {:.1}% of held-worker time is backpressure (downstream wait + blocked submission)\n",
            names[parent.0],
            100.0 * parent_blame.backpressure_fraction(),
        );

        let stem = format!("trace_backpressure_{:?}", edge).to_lowercase();
        let mut chrome = ChromeTrace::new();
        chrome.add_traces(&traces, &names);
        let chrome_path = out_dir.join(format!("{stem}.trace.json"));
        chrome.write(&mut std::fs::File::create(&chrome_path)?)?;
        let jsonl_path = out_dir.join(format!("{stem}.spans.jsonl"));
        ursa::trace::jsonl::write_traces(
            &mut std::fs::File::create(&jsonl_path)?,
            &traces,
            &names,
        )?;
        println!("wrote {}", chrome_path.display());
        println!("wrote {}\n", jsonl_path.display());
    }
    println!("open the .trace.json files in chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
