//! The metrics pipeline end to end: deploy Ursa on the social network
//! under diurnal load with a [`SimMetrics`] collector attached, then
//! export the run as Prometheus text, CSV, and a single self-contained
//! HTML dashboard (inline SVG, no JavaScript, no external assets).
//!
//! ```text
//! cargo run --release --example dashboard
//! # then open results/dashboard/social_diurnal.html in any browser
//! ```

use ursa::apps::social_network;
use ursa::core::exploration::ExplorationConfig;
use ursa::core::manager::{Ursa, UrsaConfig};
use ursa::core::profiling::ProfilingConfig;
use ursa::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = social_network(true);
    let sum: f64 = app.mix.iter().sum();
    let rates: Vec<f64> = app.mix.iter().map(|w| app.default_rps * w / sum).collect();

    println!("offline phase (reduced exploration)...");
    let cfg = UrsaConfig {
        exploration: ExplorationConfig {
            samples_per_option: 4,
            window: SimDur::from_secs(20),
            max_options: 6,
            ..Default::default()
        },
        profiling: ProfilingConfig {
            windows_per_level: 4,
            window: SimDur::from_secs(10),
            levels: 8,
            ..Default::default()
        },
    };
    let mut manager = Ursa::explore_and_prepare(&app.topology, &app.slas, &rates, cfg, 42)?;

    let duration = SimDur::from_mins(40);
    let mut sim = app.build_sim(7);
    app.apply_load(
        &mut sim,
        RateFn::Diurnal {
            base: app.default_rps * 0.6,
            peak: app.default_rps * 1.4,
            period: duration,
        },
    );
    manager.apply_initial_allocation(&rates, &mut sim);

    // The collector scrapes once per control window; passing `None` instead
    // would reproduce the exact same simulation without it.
    let mut metrics = SimMetrics::new("ursa", &sim, &app.slas);
    let deploy = DeployConfig {
        duration,
        control_interval: SimDur::from_mins(1),
        warmup: SimDur::from_mins(2),
        collect_samples: false,
    };
    println!(
        "deploying for {:.0} simulated minutes with metrics attached...",
        duration.as_secs_f64() / 60.0
    );
    let report = run_deployment_metered(
        &mut sim,
        &app.slas,
        &mut manager,
        &deploy,
        Some(&mut metrics),
    );
    println!(
        "SLA violation rate {:.2}%, mean allocation {:.1} cores, {} scale annotations",
        100.0 * report.overall_violation_rate(),
        report.avg_cpu_allocation(),
        metrics.annotations().len()
    );

    let dir = std::path::Path::new("results/dashboard");
    let paths = metrics.write_artifacts(
        dir,
        "social_diurnal",
        "Ursa on social-network — diurnal load",
    )?;
    for p in &paths {
        println!("wrote {}", p.display());
    }
    println!(
        "\nopen {} in a browser — one self-contained file, works offline",
        paths[2].display()
    );
    Ok(())
}
