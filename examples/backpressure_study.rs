//! The §III backpressure case study in miniature.
//!
//! ```text
//! cargo run --release --example backpressure_study
//! ```
//!
//! Runs the three 5-tier chains (nested RPC, event-driven RPC, message
//! queue), throttles the leaf tier's CPU mid-run, and prints the per-tier
//! p99 heatmap — the experiment behind the paper's core insight that
//! bounded CPU utilization makes services independent.

use ursa::apps::chains::{study_chain, TIER_CORES};
use ursa::sim::prelude::*;

fn main() {
    let minutes = 8;
    let anomaly = 2..5;
    println!("5-tier chains at 300 rps; leaf CPU {TIER_CORES} -> 0.8 cores in minutes 3-5\n");
    for edge in [EdgeKind::NestedRpc, EdgeKind::EventDrivenRpc, EdgeKind::Mq] {
        let mut sim = Simulation::new(study_chain(edge), SimConfig::default(), 11);
        sim.set_rate(ClassId(0), RateFn::Constant(300.0));
        println!("== {edge:?} ==");
        println!(
            "{:<8} {}",
            "minute",
            (1..=5).map(|t| format!("tier{t:<9}")).collect::<String>()
        );
        for minute in 0..minutes {
            if minute == anomaly.start {
                sim.set_cpu_limit(ServiceId(4), 0.8);
            }
            if minute == anomaly.end {
                sim.set_cpu_limit(ServiceId(4), TIER_CORES);
            }
            sim.run_for(SimDur::from_mins(1));
            let snap = sim.harvest();
            let cells: String = (0..5)
                .map(|t| {
                    let p99 = snap.services[t].tier_latency[0]
                        .percentile(99.0)
                        .unwrap_or(0.0);
                    // Shade the cell like the paper's heatmap.
                    let shade = match p99 {
                        x if x < 0.020 => ".",
                        x if x < 0.100 => "+",
                        x if x < 1.000 => "#",
                        _ => "@",
                    };
                    format!("{:>7.3}s {shade} ", p99)
                })
                .collect();
            let marker = if anomaly.contains(&minute) {
                "  <- throttled"
            } else {
                ""
            };
            println!("{:<8} {cells}{marker}", minute + 1);
        }
        println!();
    }
    println!("legend: . < 20ms   + < 100ms   # < 1s   @ >= 1s");
    println!("note: RPC chains backpressure the culprit's parent; the MQ chain does not.");
}
