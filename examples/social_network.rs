//! The full social network (with ML microservices) under a diurnal load:
//! Ursa versus the tuned autoscaler.
//!
//! ```text
//! cargo run --release --example social_network
//! ```
//!
//! Demonstrates the paper's headline trade-off (§VII-E): a conservative
//! autoscaler can also hold SLAs, but only by burning far more CPU, while
//! heterogeneous services (millisecond text handling next to seconds-long
//! object detection) make naive utilization targets expensive.

use ursa::apps::social_network;
use ursa::baselines::Autoscaler;
use ursa::core::exploration::ExplorationConfig;
use ursa::core::manager::{Ursa, UrsaConfig};
use ursa::core::profiling::ProfilingConfig;
use ursa::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = social_network(false);
    let sum: f64 = app.mix.iter().sum();
    let rates: Vec<f64> = app.mix.iter().map(|w| app.default_rps * w / sum).collect();
    let duration = SimDur::from_mins(30);
    let diurnal = RateFn::Diurnal {
        base: app.default_rps * 0.6,
        peak: app.default_rps * 1.4,
        period: duration,
    };
    let deploy_cfg = DeployConfig {
        duration,
        control_interval: SimDur::from_mins(1),
        warmup: SimDur::from_mins(2),
        collect_samples: false,
    };

    // --- Ursa ---
    println!("preparing Ursa (offline exploration)...");
    let cfg = UrsaConfig {
        exploration: ExplorationConfig {
            samples_per_option: 4,
            window: SimDur::from_secs(20),
            max_options: 6,
            ..Default::default()
        },
        profiling: ProfilingConfig {
            windows_per_level: 4,
            window: SimDur::from_secs(10),
            levels: 8,
            ..Default::default()
        },
    };
    let mut ursa = Ursa::explore_and_prepare(&app.topology, &app.slas, &rates, cfg, 1)?;
    let mut sim = app.build_sim(2);
    app.apply_load(&mut sim, diurnal.clone());
    ursa.apply_initial_allocation(&rates, &mut sim);
    let ursa_report = run_deployment(&mut sim, &app.slas, &mut ursa, &deploy_cfg);

    // --- Tuned autoscaler (Auto-b) ---
    println!("running the tuned autoscaler...");
    let mut auto = Autoscaler::auto_b(app.topology.num_services());
    let mut sim = app.build_sim(2);
    app.apply_load(&mut sim, diurnal);
    let auto_report = run_deployment(&mut sim, &app.slas, &mut auto, &deploy_cfg);

    println!(
        "\n{:<10} {:>12} {:>12}",
        "system", "violations", "avg cores"
    );
    for (name, report) in [("ursa", &ursa_report), ("auto-b", &auto_report)] {
        println!(
            "{:<10} {:>11.2}% {:>12.1}",
            name,
            100.0 * report.overall_violation_rate(),
            report.avg_cpu_allocation()
        );
    }
    let savings = 1.0 - ursa_report.avg_cpu_allocation() / auto_report.avg_cpu_allocation();
    println!(
        "\nUrsa matches the autoscaler's SLA compliance with {:.0}% less CPU.",
        100.0 * savings
    );
    Ok(())
}
