//! Quickstart: manage the vanilla social network with Ursa, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full paper pipeline on one application: backpressure
//! profiling → Algorithm-1 exploration → MIP solve → managed deployment,
//! printing what each phase produced.

use ursa::apps::social_network;
use ursa::core::exploration::ExplorationConfig;
use ursa::core::manager::{Ursa, UrsaConfig};
use ursa::core::profiling::ProfilingConfig;
use ursa::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application: vanilla DeathStarBench-style social network with
    //    the paper's Table II SLAs (upload-post p99 <= 75 ms, ...).
    let app = social_network(true);
    println!(
        "app: {} ({} services, {} request classes)",
        app.name,
        app.topology.num_services(),
        app.topology.num_classes()
    );
    let sum: f64 = app.mix.iter().sum();
    let rates: Vec<f64> = app.mix.iter().map(|w| app.default_rps * w / sum).collect();

    // 2. Offline phase. (Reduced knobs so the example runs in ~a minute;
    //    drop the overrides for paper-protocol exploration.)
    let cfg = UrsaConfig {
        exploration: ExplorationConfig {
            samples_per_option: 4,
            window: SimDur::from_secs(20),
            max_options: 6,
            ..Default::default()
        },
        profiling: ProfilingConfig {
            windows_per_level: 4,
            window: SimDur::from_secs(10),
            levels: 8,
            ..Default::default()
        },
    };
    println!("\nrunning offline phase (profiling + exploration + MIP)...");
    let mut manager = Ursa::explore_and_prepare(&app.topology, &app.slas, &rates, cfg, 42)?;
    let stats = manager.offline_stats();
    println!(
        "  explored with {} samples; wall-time analog {:.1} simulated minutes",
        stats.exploration_samples,
        stats.exploration_time.as_secs_f64() / 60.0
    );
    println!(
        "  projected allocation: {:.0} cores (MIP objective, proved optimal: {})",
        manager.outcome().solution.objective,
        manager.outcome().solution.proved_optimal
    );
    for t in &manager.outcome().thresholds {
        let lpr: Vec<String> = t
            .lpr
            .iter()
            .enumerate()
            .filter(|(_, y)| **y > 0.0)
            .map(|(c, y)| format!("{}={:.0}rps", app.topology.classes()[c].name, y))
            .collect();
        println!("  threshold {:<16} {}", t.name, lpr.join(" "));
    }

    // 3. Online phase: 20 minutes under Poisson load.
    let mut sim = app.build_sim(7);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    manager.apply_initial_allocation(&rates, &mut sim);
    let cfg = DeployConfig {
        duration: SimDur::from_mins(20),
        control_interval: SimDur::from_mins(1),
        warmup: SimDur::from_mins(2),
        collect_samples: false,
    };
    println!(
        "\ndeploying for 20 simulated minutes at {} rps...",
        app.default_rps
    );
    let report = run_deployment(&mut sim, &app.slas, &mut manager, &cfg);
    for sla in &app.slas {
        println!(
            "  {:<18} p{} target {:>6.3}s  violations {:>5.1}%",
            app.topology.classes()[sla.class.0].name,
            sla.percentile,
            sla.target,
            100.0 * report.class_violation_rate(sla.class)
        );
    }
    println!(
        "\noverall violation rate {:.2}%  |  mean allocation {:.1} cores  |  decision latency {:.3} ms",
        100.0 * report.overall_violation_rate(),
        report.avg_cpu_allocation(),
        report.decision_wall_ms
    );
    Ok(())
}
