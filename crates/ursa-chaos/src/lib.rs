//! Composable, deterministic fault-injection scenarios for the Ursa
//! simulator — the authoring layer above the engine's chaos plane.
//!
//! The engine consumes a [`FaultPlan`]: a flat, fully-timed list of fault
//! windows (see [`ursa_sim::chaos`]). This crate provides the level above
//! it: a [`Scenario`] composes *elements* — scheduled one-shots ("slow
//! service 3 by 6× from minute 5 to minute 9") and stochastic failure
//! processes ("this service crash-loops with MTBF 10 min, MTTR 45 s") —
//! and [`Scenario::compile`] lowers them into a concrete plan for a given
//! seed and horizon.
//!
//! # Determinism
//!
//! Compilation is a pure function of `(scenario, seed, horizon)`. Each
//! element draws from its own sub-stream (`seed` mixed with the element
//! index by a 64-bit SplitMix constant), so appending an element never
//! shifts the windows an earlier element generates — scenarios stay
//! comparable as they grow. Stochastic elements sample alternating
//! exponential time-to-failure (mean MTBF) and time-to-repair (mean MTTR)
//! holds, i.e. a Poisson failure process with exponential repair.
//!
//! # Example
//!
//! ```
//! use ursa_chaos::Scenario;
//! use ursa_sim::prelude::*;
//!
//! let scenario = Scenario::new("noisy-neighbor")
//!     .one_shot(
//!         SimDur::from_mins(5),
//!         SimDur::from_mins(4),
//!         FaultKind::Slowdown { service: 3, factor: 6.0 },
//!     )
//!     .stochastic(
//!         SimDur::from_mins(10),
//!         SimDur::from_secs(45),
//!         FaultKind::ReplicaCrash { service: 1, count: 1 },
//!     );
//! let plan = scenario.compile(0xC0FFEE, SimDur::from_mins(30));
//! assert!(plan.len() >= 1);
//! // Same inputs, same plan — always.
//! assert_eq!(plan, scenario.compile(0xC0FFEE, SimDur::from_mins(30)));
//! ```

use ursa_sim::chaos::{Fault, FaultKind, FaultPlan, DEFAULT_NODES};
use ursa_sim::time::{SimDur, SimTime};
use ursa_stats::dist::{Distribution, Exponential};
use ursa_stats::rng::Rng;

/// SplitMix64 increment — mixes the element index into per-element
/// sub-seeds so elements draw from independent streams.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One composable piece of a scenario.
#[derive(Debug, Clone, PartialEq)]
enum Element {
    /// A single fault window at a fixed offset.
    OneShot {
        offset: SimDur,
        duration: SimDur,
        kind: FaultKind,
    },
    /// A renewal process: exponential up-time with mean `mtbf`, then a
    /// fault window with exponential duration of mean `mttr`, repeating
    /// until the horizon.
    Stochastic {
        mtbf: SimDur,
        mttr: SimDur,
        kind: FaultKind,
    },
}

/// A named, composable fault scenario. Build with the fluent methods, then
/// [`compile`](Scenario::compile) into a [`FaultPlan`] for the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    elements: Vec<Element>,
    nodes: usize,
}

impl Scenario {
    /// An empty scenario with the default 8-node synthetic cluster.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            elements: Vec::new(),
            nodes: DEFAULT_NODES,
        }
    }

    /// The scenario's name (used in table rows and artifact paths).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the synthetic cluster size used for node-failure placement.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        self.nodes = nodes;
        self
    }

    /// Adds a single fault window covering `[offset, offset + duration)`.
    pub fn one_shot(mut self, offset: SimDur, duration: SimDur, kind: FaultKind) -> Self {
        assert!(
            duration > SimDur::ZERO,
            "one-shot duration must be positive"
        );
        self.elements.push(Element::OneShot {
            offset,
            duration,
            kind,
        });
        self
    }

    /// Adds a stochastic failure process: exponential time between
    /// failures (mean `mtbf`) and exponential outage length (mean `mttr`),
    /// repeating until the compile horizon.
    pub fn stochastic(mut self, mtbf: SimDur, mttr: SimDur, kind: FaultKind) -> Self {
        assert!(mtbf > SimDur::ZERO, "MTBF must be positive");
        assert!(mttr > SimDur::ZERO, "MTTR must be positive");
        self.elements.push(Element::Stochastic { mtbf, mttr, kind });
        self
    }

    /// Number of elements composed so far.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when no elements have been composed.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Lowers the scenario into a concrete [`FaultPlan`] for one run.
    ///
    /// Pure in `(self, seed, horizon)`: one-shots are emitted verbatim
    /// (clipped to the horizon), stochastic elements sample their renewal
    /// process from a per-element sub-stream of `seed`. Windows are sorted
    /// by injection time so equal plans compare equal structurally.
    pub fn compile(&self, seed: u64, horizon: SimDur) -> FaultPlan {
        let mut plan = FaultPlan::new();
        plan.nodes = self.nodes;
        let end = SimTime::ZERO + horizon;
        for (i, el) in self.elements.iter().enumerate() {
            let sub_seed = seed ^ (i as u64 + 1).wrapping_mul(GOLDEN_GAMMA);
            match *el {
                Element::OneShot {
                    offset,
                    duration,
                    kind,
                } => {
                    let at = SimTime::ZERO + offset;
                    if at >= end {
                        continue;
                    }
                    let until = (at + duration).min(end);
                    plan.push(Fault { at, until, kind });
                }
                Element::Stochastic { mtbf, mttr, kind } => {
                    let mut rng = Rng::seed_from(sub_seed);
                    let up = Exponential::with_mean(mtbf.as_secs_f64());
                    let down = Exponential::with_mean(mttr.as_secs_f64());
                    let mut t = SimTime::ZERO;
                    loop {
                        t += SimDur::from_secs_f64(up.sample(&mut rng));
                        if t >= end {
                            break;
                        }
                        let outage = SimDur::from_secs_f64(down.sample(&mut rng))
                            .max(SimDur::from_millis(1));
                        let until = (t + outage).min(end);
                        if until > t {
                            plan.push(Fault { at: t, until, kind });
                        }
                        t = until;
                    }
                }
            }
        }
        plan.faults.sort_by_key(|f| (f.at, f.until));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(service: usize) -> FaultKind {
        FaultKind::ReplicaCrash { service, count: 1 }
    }

    #[test]
    fn one_shot_compiles_verbatim() {
        let s = Scenario::new("t").one_shot(SimDur::from_secs(10), SimDur::from_secs(5), crash(0));
        let plan = s.compile(1, SimDur::from_secs(60));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.faults[0].at, SimTime::from_secs_f64(10.0));
        assert_eq!(plan.faults[0].until, SimTime::from_secs_f64(15.0));
    }

    #[test]
    fn one_shot_clipped_to_horizon() {
        let s = Scenario::new("t")
            .one_shot(SimDur::from_secs(50), SimDur::from_secs(30), crash(0))
            .one_shot(SimDur::from_secs(70), SimDur::from_secs(5), crash(1));
        let plan = s.compile(1, SimDur::from_secs(60));
        assert_eq!(plan.len(), 1, "window past the horizon is dropped");
        assert_eq!(plan.faults[0].until, SimTime::from_secs_f64(60.0));
    }

    #[test]
    fn compile_is_deterministic() {
        let s = Scenario::new("t")
            .stochastic(SimDur::from_secs(30), SimDur::from_secs(5), crash(0))
            .stochastic(SimDur::from_secs(60), SimDur::from_secs(10), crash(1));
        let h = SimDur::from_mins(30);
        assert_eq!(s.compile(42, h), s.compile(42, h));
        assert_ne!(s.compile(42, h), s.compile(43, h), "seed matters");
    }

    #[test]
    fn appending_elements_preserves_earlier_windows() {
        let base =
            Scenario::new("t").stochastic(SimDur::from_secs(30), SimDur::from_secs(5), crash(0));
        let grown = base
            .clone()
            .stochastic(SimDur::from_secs(60), SimDur::from_secs(10), crash(1));
        let h = SimDur::from_mins(20);
        let from_base = base.compile(7, h);
        let from_grown = grown.compile(7, h);
        let crash0 = |p: &FaultPlan| {
            p.faults
                .iter()
                .filter(|f| f.kind == crash(0))
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(crash0(&from_base), crash0(&from_grown));
        assert!(from_grown.len() > from_base.len());
    }

    #[test]
    fn stochastic_rate_roughly_matches_mtbf() {
        let s =
            Scenario::new("t").stochastic(SimDur::from_secs(60), SimDur::from_secs(5), crash(0));
        // 4 h horizon, MTBF 60 s + MTTR 5 s => ~220 cycles expected.
        let plan = s.compile(11, SimDur::from_secs(4 * 3600));
        assert!((150..300).contains(&plan.len()), "windows {}", plan.len());
        for w in plan.faults.windows(2) {
            assert!(w[0].at <= w[1].at, "sorted by injection time");
        }
        for f in &plan.faults {
            assert!(f.until > f.at, "non-empty windows");
        }
    }

    #[test]
    fn windows_never_overlap_within_one_process() {
        let s =
            Scenario::new("t").stochastic(SimDur::from_secs(10), SimDur::from_secs(8), crash(0));
        let plan = s.compile(3, SimDur::from_mins(30));
        for w in plan.faults.windows(2) {
            assert!(
                w[0].until <= w[1].at,
                "renewal process cannot overlap itself"
            );
        }
    }

    #[test]
    fn empty_scenario_compiles_empty() {
        let plan = Scenario::new("empty").compile(5, SimDur::from_mins(10));
        assert!(plan.is_empty());
    }
}
