//! A vendored, dependency-free subset of the `criterion` crate.
//!
//! The workspace must build and bench on machines with no access to
//! crates.io (see README "Offline & reproducible builds"). This shim
//! implements the surface the repository's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId::from_parameter`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples of an adaptively-chosen iteration batch,
//! and reports min/median/mean per-iteration times. No plotting, no
//! statistical regression, no baseline storage — but stable enough to detect
//! the multi-percent regressions the CI gate cares about.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function label and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure given to `bench_function`; runs the timed loop.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations of the collected samples, in seconds.
    results: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, collecting `samples` samples of an adaptive batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: aim for batches of >= 1ms or 1 iteration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.results.push(dt.as_secs_f64() / batch as f64);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        self.report(&id.label, &mut b.results);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.label, &mut b.results);
        self
    }

    fn report(&self, label: &str, results: &mut [f64]) {
        if results.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        results.sort_by(|a, b| a.total_cmp(b));
        let min = results[0];
        let median = results[results.len() / 2];
        let mean = results.iter().sum::<f64>() / results.len() as f64;
        println!(
            "{}/{label}: min {} | median {} | mean {} ({} samples)",
            self.name,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            results.len()
        );
    }

    /// Ends the group (upstream emits summary artifacts here; we don't).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- bench group: {name} --");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.label.clone();
        self.benchmark_group(label).bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring upstream's macro. Ignores
/// harness CLI flags (e.g. `--bench` passed by `cargo bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; accept and ignore them.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran >= 5);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::from_parameter("social").label, "social");
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(3.0e-9), "3.0 ns");
    }
}
