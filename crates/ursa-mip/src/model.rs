//! The Ursa resource-optimization model (paper §IV, "MIP 1").
//!
//! Decision variables (after the paper's one-hot encoding):
//!
//! * for each service *i*, a choice `α_i` among its profiled LPR options
//!   (the paper's one-hot δ_i) — each option has a resource cost `R_i[α]`
//!   (cores needed to keep per-replica load at that LPR under current
//!   total load) and a latency distribution row `D_i^j[α][·]`;
//! * for each (service *i*, class *j*) pair on *j*'s path, a percentile
//!   choice `β_ij` over the shared grid `P` (the paper's one-hot γ_i^j).
//!
//! Constraints, per class *j* with SLA "`x_j`-th percentile ≤ `T_j`":
//!
//! 1. `Σ_i D_i^j[α_i][β_ij] ≤ T_j`  (sum of per-service latencies bounds
//!    the end-to-end latency — Theorem 1), and
//! 2. `Σ_i (100 − P[β_ij]) ≤ 100 − x_j` (the percentile-residual budget
//!    that makes Theorem 1 applicable).
//!
//! Objective: minimize `Σ_i R_i[α_i]`.

/// Latency matrix of one (service, class): `rows = LPR options`,
/// `cols = percentile grid`, entries in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl LatencyMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`, any entry is negative or
    /// non-finite, or either dimension is zero.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(
            data.iter().all(|x| *x >= 0.0 && x.is_finite()),
            "latencies must be finite and non-negative"
        );
        LatencyMatrix { rows, cols, data }
    }

    /// Number of LPR options (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of percentile grid points (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Latency at LPR option `alpha`, percentile index `beta`.
    #[inline]
    pub fn at(&self, alpha: usize, beta: usize) -> f64 {
        self.data[alpha * self.cols + beta]
    }

    /// One LPR option's latency row.
    pub fn row(&self, alpha: usize) -> &[f64] {
        &self.data[alpha * self.cols..(alpha + 1) * self.cols]
    }
}

/// Per-service inputs to the optimization.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    /// Service name (diagnostics only).
    pub name: String,
    /// Resource cost in CPU cores of each LPR option (`R_i`), computed by
    /// the caller from the current total load via the paper's Equation 3.
    pub resource: Vec<f64>,
    /// One latency matrix per request class; `None` when the class does not
    /// traverse this service. All `Some` matrices must have `resource.len()`
    /// rows and the shared percentile-grid width.
    pub latency: Vec<Option<LatencyMatrix>>,
}

/// One end-to-end SLA constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaConstraint {
    /// Class index (into each service's `latency` vector).
    pub class: usize,
    /// SLA percentile `x_j` (e.g. 99.0).
    pub percentile: f64,
    /// SLA latency target `T_j` in seconds.
    pub target: f64,
}

/// A validated optimization model.
#[derive(Debug, Clone)]
pub struct MipModel {
    /// Shared percentile grid `P`, strictly increasing, within `(0, 100)`.
    pub percentiles: Vec<f64>,
    /// Per-service options.
    pub services: Vec<ServiceModel>,
    /// SLA constraints, at most one per class.
    pub constraints: Vec<SlaConstraint>,
}

/// Error produced when a model fails validation or has no feasible solution.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The model inputs are structurally inconsistent.
    Invalid(String),
    /// No assignment satisfies every SLA constraint; carries the class index
    /// of a constraint that cannot be met even with maximum resources.
    Infeasible { class: usize },
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::Invalid(msg) => write!(f, "invalid model: {msg}"),
            ModelError::Infeasible { class } => {
                write!(
                    f,
                    "no feasible allocation satisfies the SLA of class {class}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl MipModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] if the percentile grid is not
    /// strictly increasing inside `(0, 100)`, a service has no options or
    /// mismatched matrix shapes, a constraint references a missing class or
    /// has a percentile below the grid minimum, or duplicate constraints
    /// target one class.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.percentiles.is_empty() {
            return Err(ModelError::Invalid("empty percentile grid".into()));
        }
        if !self.percentiles.windows(2).all(|w| w[0] < w[1]) {
            return Err(ModelError::Invalid(
                "percentile grid must be strictly increasing".into(),
            ));
        }
        if self.percentiles[0] <= 0.0 || *self.percentiles.last().expect("non-empty") >= 100.0 {
            return Err(ModelError::Invalid(
                "percentiles must lie in (0, 100)".into(),
            ));
        }
        let h = self.percentiles.len();
        for svc in &self.services {
            if svc.resource.is_empty() {
                return Err(ModelError::Invalid(format!(
                    "service {} has no LPR options",
                    svc.name
                )));
            }
            if svc.resource.iter().any(|r| *r < 0.0 || !r.is_finite()) {
                return Err(ModelError::Invalid(format!(
                    "service {} has invalid resource",
                    svc.name
                )));
            }
            for lat in svc.latency.iter().flatten() {
                if lat.rows() != svc.resource.len() || lat.cols() != h {
                    return Err(ModelError::Invalid(format!(
                        "service {} has a latency matrix of shape {}x{}, expected {}x{}",
                        svc.name,
                        lat.rows(),
                        lat.cols(),
                        svc.resource.len(),
                        h
                    )));
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for c in &self.constraints {
            if !seen.insert(c.class) {
                return Err(ModelError::Invalid(format!(
                    "duplicate constraint for class {}",
                    c.class
                )));
            }
            if !(0.0..100.0).contains(&c.percentile) || c.target <= 0.0 {
                return Err(ModelError::Invalid(format!(
                    "bad constraint for class {}",
                    c.class
                )));
            }
            for svc in &self.services {
                if c.class >= svc.latency.len() {
                    return Err(ModelError::Invalid(format!(
                        "constraint class {} out of range for service {}",
                        c.class, svc.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Services traversed by `class` (those with a latency matrix for it).
    pub fn services_of_class(&self, class: usize) -> Vec<usize> {
        self.services
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.latency.get(class).and_then(|m| m.as_ref()).map(|_| i))
            .collect()
    }

    /// Percentile residual `100 − P[beta]`.
    pub fn residual(&self, beta: usize) -> f64 {
        100.0 - self.percentiles[beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> MipModel {
        // Two services, one class; 2 LPR options each; grid {99, 99.9}.
        let m = |vals: Vec<f64>| Some(LatencyMatrix::new(2, 2, vals));
        MipModel {
            percentiles: vec![99.0, 99.9],
            services: vec![
                ServiceModel {
                    name: "a".into(),
                    resource: vec![4.0, 2.0],
                    latency: vec![m(vec![0.010, 0.015, 0.030, 0.045])],
                },
                ServiceModel {
                    name: "b".into(),
                    resource: vec![6.0, 3.0],
                    latency: vec![m(vec![0.020, 0.030, 0.060, 0.090])],
                },
            ],
            constraints: vec![SlaConstraint {
                class: 0,
                percentile: 99.0,
                target: 0.100,
            }],
        }
    }

    #[test]
    fn valid_model_passes() {
        tiny_model().validate().expect("valid");
    }

    #[test]
    fn matrix_accessors() {
        let m = LatencyMatrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.at(0, 0), 1.0);
        assert_eq!(m.at(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn rejects_unsorted_grid() {
        let mut m = tiny_model();
        m.percentiles = vec![99.9, 99.0];
        assert!(matches!(m.validate(), Err(ModelError::Invalid(_))));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut m = tiny_model();
        m.services[0].latency[0] = Some(LatencyMatrix::new(1, 2, vec![0.01, 0.02]));
        assert!(m.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_constraints() {
        let mut m = tiny_model();
        m.constraints.push(m.constraints[0]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn services_of_class_filters_none() {
        let mut m = tiny_model();
        m.services[1].latency = vec![None];
        assert_eq!(m.services_of_class(0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn matrix_rejects_negative() {
        LatencyMatrix::new(1, 1, vec![-1.0]);
    }
}
