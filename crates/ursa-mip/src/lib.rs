//! Exact multiple-choice MIP solver for Ursa's SLA-to-resource mapping.
//!
//! The paper (§IV) formulates resource allocation as a mixed-integer
//! program: pick one load-per-replica (LPR) threshold per service and one
//! percentile per (service, class) such that, for every request class, the
//! sum of per-service latencies bounds the end-to-end SLA (Theorem 1) while
//! total resource cost is minimized. The authors solve it with Gurobi; this
//! crate replaces Gurobi with an exact solver that exploits the model's
//! multiple-choice structure (see [`solve()`]):
//!
//! * branch-and-bound over the per-service LPR choices (the δ variables),
//! * with each class's percentile assignment (the γ variables) solved
//!   exactly by dynamic programming over the percentile-residual budget,
//! * seeded by a greedy descent incumbent.
//!
//! Solutions are proved optimal for evaluation-scale instances (tens of
//! services × ~10 LPR options × several classes) and are cross-validated
//! against brute-force enumeration in the test suite.
//!
//! # Example
//!
//! ```
//! use ursa_mip::{LatencyMatrix, MipModel, ServiceModel, SlaConstraint, solve};
//!
//! // One service, two LPR options: 4 cores (fast) or 2 cores (slower).
//! let model = MipModel {
//!     percentiles: vec![99.0, 99.9],
//!     services: vec![ServiceModel {
//!         name: "api".into(),
//!         resource: vec![4.0, 2.0],
//!         latency: vec![Some(LatencyMatrix::new(
//!             2,
//!             2,
//!             vec![0.010, 0.020, 0.030, 0.060],
//!         ))],
//!     }],
//!     constraints: vec![SlaConstraint { class: 0, percentile: 99.0, target: 0.050 }],
//! };
//! let solution = solve(&model)?;
//! assert_eq!(solution.lpr_choice, vec![1]); // 2 cores meet the 50 ms SLA
//! assert_eq!(solution.objective, 2.0);
//! # Ok::<(), ursa_mip::ModelError>(())
//! ```

pub mod alloc2d;
pub mod dp;
pub mod lp;
pub mod model;
pub mod solve;

pub use alloc2d::{
    pack_first_fit, solve_2d, Model2d, NodeCapacity, ResourceCost, ServiceModel2d, Solution2d,
    Weights,
};
pub use lp::{solve_lp, Cmp, LpOutcome, LpProblem};
pub use model::{LatencyMatrix, MipModel, ModelError, ServiceModel, SlaConstraint};
pub use solve::{
    lp_relaxation_bound, solve, solve_brute_force, solve_greedy, solve_with_options, Solution,
    SolveOptions,
};
