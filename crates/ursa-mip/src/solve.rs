//! Solvers for the Ursa optimization model.
//!
//! Three solvers, in increasing cost:
//!
//! * [`solve_greedy`] — start fully provisioned, repeatedly take the single
//!   LPR downgrade with the best resource saving that keeps every class
//!   feasible. Fast, good incumbent, not always optimal.
//! * [`solve`] — exact branch-and-bound over per-service LPR choices, with
//!   the per-class DP of [`crate::dp`] as the feasibility oracle and a
//!   greedy incumbent for pruning. This is the production entry point
//!   (standing in for the paper's Gurobi).
//! * [`solve_brute_force`] — exhaustive enumeration; cross-validation in
//!   tests only.

use crate::dp::{budget_units, min_latency_allocation, residual_units};
use crate::lp::{solve_lp, Cmp, LpOutcome, LpProblem};
use crate::model::{MipModel, ModelError, SlaConstraint};

/// A solved allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Total resource cost in cores (the objective).
    pub objective: f64,
    /// Chosen LPR option per service (the paper's δ).
    pub lpr_choice: Vec<usize>,
    /// For each constraint (in model order): the chosen percentile index per
    /// participating service (the paper's γ), aligned with
    /// [`MipModel::services_of_class`] order.
    pub percentile_choice: Vec<Vec<usize>>,
    /// Whether the solver proved optimality (false only if the node budget
    /// was exhausted).
    pub proved_optimal: bool,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: u64,
}

impl Solution {
    /// The model's latency estimate for the `k`-th constraint's class: the
    /// sum of chosen per-service latencies (the Theorem-1 upper bound that
    /// Ursa reports as its estimated end-to-end latency).
    pub fn estimated_latency(&self, model: &MipModel, k: usize) -> f64 {
        let c = &model.constraints[k];
        let services = model.services_of_class(c.class);
        services
            .iter()
            .zip(&self.percentile_choice[k])
            .map(|(&s, &beta)| {
                let m = model.services[s].latency[c.class]
                    .as_ref()
                    .expect("participating");
                m.at(self.lpr_choice[s], beta)
            })
            .sum()
    }
}

/// Node cap for branch-and-bound before giving up on proving optimality.
const MAX_NODES: u64 = 2_000_000;

/// Branch-and-bound tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveOptions {
    /// Strengthen pruning with an LP-relaxation lower bound at shallow
    /// search depths (solved by the [`crate::lp`] simplex). Never changes
    /// the result, only the number of nodes explored.
    pub lp_bound: bool,
}

/// LP relaxation of the multiple-choice structure under a partial
/// assignment: fractional option choices, latency constraints relaxed to
/// each option's best (minimum-column) latency with the residual budget
/// dropped. A valid lower bound on the resource objective of any completion
/// of `alpha`.
///
/// Returns `None` when the relaxation is infeasible (the node can be
/// pruned) — a strictly stronger test than per-class optimistic DP alone
/// would justify pruning on cost grounds.
pub fn lp_relaxation_bound(model: &MipModel, alpha: &[Option<usize>]) -> Option<f64> {
    // Variables: one block of z_{s,o} per *undecided* service.
    let mut var_of: Vec<Option<(usize, usize)>> = Vec::new(); // (offset, count)
    let mut n_vars = 0usize;
    for (s, svc) in model.services.iter().enumerate() {
        if alpha[s].is_none() {
            var_of.push(Some((n_vars, svc.resource.len())));
            n_vars += svc.resource.len();
        } else {
            var_of.push(None);
        }
    }
    if n_vars == 0 {
        return Some(
            alpha
                .iter()
                .enumerate()
                .map(|(s, a)| model.services[s].resource[a.expect("assigned")])
                .sum(),
        );
    }
    let mut objective = vec![0.0; n_vars];
    let mut fixed_cost = 0.0;
    for (s, svc) in model.services.iter().enumerate() {
        match (alpha[s], var_of[s]) {
            (Some(a), _) => fixed_cost += svc.resource[a],
            (None, Some((off, cnt))) => {
                objective[off..off + cnt].copy_from_slice(&svc.resource[..cnt]);
            }
            _ => unreachable!(),
        }
    }
    let mut constraints: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
    // One-hot (relaxed to a simplex) per undecided service.
    for entry in var_of.iter().flatten() {
        let (off, cnt) = *entry;
        let mut row = vec![0.0; n_vars];
        for o in 0..cnt {
            row[off + o] = 1.0;
        }
        constraints.push((row, Cmp::Eq, 1.0));
    }
    // Relaxed latency constraint per class: best-column latency per option.
    for c in &model.constraints {
        let mut row = vec![0.0; n_vars];
        let mut fixed_lat = 0.0;
        for (s, svc) in model.services.iter().enumerate() {
            let Some(m) = &svc.latency[c.class] else {
                continue;
            };
            let best = |o: usize| m.row(o).iter().cloned().fold(f64::INFINITY, f64::min);
            match (alpha[s], var_of[s]) {
                (Some(a), _) => fixed_lat += best(a),
                (None, Some((off, cnt))) => {
                    for o in 0..cnt {
                        row[off + o] = best(o);
                    }
                }
                _ => unreachable!(),
            }
        }
        constraints.push((row, Cmp::Le, c.target - fixed_lat));
    }
    match solve_lp(&LpProblem {
        objective,
        constraints,
    }) {
        LpOutcome::Optimal { objective, .. } => Some(objective + fixed_cost),
        LpOutcome::Infeasible => None,
        LpOutcome::Unbounded => Some(fixed_cost), // cannot happen: costs >= 0
    }
}

struct ClassProblem {
    constraint: SlaConstraint,
    /// Participating services (model indices).
    services: Vec<usize>,
    budget: usize,
}

fn class_problems(model: &MipModel) -> Vec<ClassProblem> {
    model
        .constraints
        .iter()
        .map(|c| ClassProblem {
            constraint: *c,
            services: model.services_of_class(c.class),
            budget: budget_units(100.0 - c.percentile),
        })
        .collect()
}

/// Residual units per percentile-grid column.
fn residual_cols(model: &MipModel) -> Vec<usize> {
    model
        .percentiles
        .iter()
        .map(|p| residual_units(100.0 - p))
        .collect()
}

/// Checks whether a full LPR assignment satisfies every class; on success
/// returns the percentile choices (one vec per constraint).
fn feasible_assignment(
    model: &MipModel,
    problems: &[ClassProblem],
    res_cols: &[usize],
    alpha: &[usize],
) -> Option<Vec<Vec<usize>>> {
    let mut out = Vec::with_capacity(problems.len());
    for p in problems {
        let options: Vec<Vec<(f64, usize)>> = p
            .services
            .iter()
            .map(|&s| {
                let m = model.services[s].latency[p.constraint.class]
                    .as_ref()
                    .expect("participating service");
                m.row(alpha[s])
                    .iter()
                    .zip(res_cols)
                    .map(|(&lat, &r)| (lat, r))
                    .collect()
            })
            .collect();
        let alloc = min_latency_allocation(&options, p.budget)?;
        if alloc.latency_sum > p.constraint.target + 1e-12 {
            return None;
        }
        out.push(alloc.beta);
    }
    Some(out)
}

/// Optimistic feasibility: can class `p` be satisfied if every *undecided*
/// service takes its best (min over remaining LPR options) latency row?
fn optimistic_feasible(
    model: &MipModel,
    p: &ClassProblem,
    res_cols: &[usize],
    alpha: &[Option<usize>],
) -> bool {
    let options: Vec<Vec<(f64, usize)>> = p
        .services
        .iter()
        .map(|&s| {
            let m = model.services[s].latency[p.constraint.class]
                .as_ref()
                .expect("participating service");
            match alpha[s] {
                Some(a) => m
                    .row(a)
                    .iter()
                    .zip(res_cols)
                    .map(|(&lat, &r)| (lat, r))
                    .collect(),
                None => (0..res_cols.len())
                    .map(|beta| {
                        let best = (0..m.rows())
                            .map(|a| m.at(a, beta))
                            .fold(f64::INFINITY, f64::min);
                        (best, res_cols[beta])
                    })
                    .collect(),
            }
        })
        .collect();
    match min_latency_allocation(&options, p.budget) {
        Some(a) => a.latency_sum <= p.constraint.target + 1e-12,
        None => false,
    }
}

/// Solves the model greedily: start from each service's minimum-latency
/// option, then repeatedly take the best-saving downgrade that stays
/// feasible.
///
/// This is a heuristic: an `Infeasible` error means the greedy *start* was
/// infeasible, which for non-monotone latency profiles does not prove the
/// model is; [`solve`] gives the exact verdict.
///
/// # Errors
///
/// Returns [`ModelError::Invalid`] for malformed models and
/// [`ModelError::Infeasible`] when the minimum-latency assignment violates
/// some class's SLA.
pub fn solve_greedy(model: &MipModel) -> Result<Solution, ModelError> {
    model.validate()?;
    let problems = class_problems(model);
    let res_cols = residual_cols(model);
    // Start at each service's minimum-latency option (summed row means over
    // the classes it serves) — with monotone exploration data this is the
    // most-resourced option.
    let mut alpha: Vec<usize> = model
        .services
        .iter()
        .map(|s| {
            let mean_latency = |o: usize| -> f64 {
                s.latency
                    .iter()
                    .flatten()
                    .map(|m| m.row(o).iter().sum::<f64>() / m.cols() as f64)
                    .sum()
            };
            (0..s.resource.len())
                .min_by(|&a, &b| {
                    mean_latency(a)
                        .partial_cmp(&mean_latency(b))
                        .expect("finite")
                })
                .expect("non-empty options")
        })
        .collect();
    if feasible_assignment(model, &problems, &res_cols, &alpha).is_none() {
        // Identify a violating class for the error.
        let class = problems
            .iter()
            .find(|p| {
                let opt: Vec<Option<usize>> = alpha.iter().map(|&a| Some(a)).collect();
                !optimistic_feasible(model, p, &res_cols, &opt)
            })
            .map(|p| p.constraint.class)
            .unwrap_or(0);
        return Err(ModelError::Infeasible { class });
    }
    // Descend: repeatedly apply the single-service option change with the
    // best resource saving that stays feasible.
    loop {
        let current_cost: f64 = alpha
            .iter()
            .enumerate()
            .map(|(s, &a)| model.services[s].resource[a])
            .sum();
        let mut best: Option<(f64, usize, usize)> = None; // (saving, service, option)
        for (s, svc) in model.services.iter().enumerate() {
            for o in 0..svc.resource.len() {
                if o == alpha[s] {
                    continue;
                }
                let saving = svc.resource[alpha[s]] - svc.resource[o];
                if saving <= 1e-12 {
                    continue;
                }
                if best.map(|(bs, _, _)| saving <= bs).unwrap_or(false) {
                    continue;
                }
                let mut cand = alpha.clone();
                cand[s] = o;
                if feasible_assignment(model, &problems, &res_cols, &cand).is_some() {
                    best = Some((saving, s, o));
                }
            }
        }
        match best {
            Some((_, s, o)) => alpha[s] = o,
            None => {
                let percentile_choice =
                    feasible_assignment(model, &problems, &res_cols, &alpha).expect("feasible");
                return Ok(Solution {
                    objective: current_cost,
                    lpr_choice: alpha,
                    percentile_choice,
                    proved_optimal: false,
                    nodes_explored: 0,
                });
            }
        }
    }
}

/// Solves the model to optimality with branch-and-bound (default options).
///
/// # Errors
///
/// Returns [`ModelError::Invalid`] for malformed models and
/// [`ModelError::Infeasible`] when no assignment meets every SLA.
pub fn solve(model: &MipModel) -> Result<Solution, ModelError> {
    solve_with_options(model, SolveOptions::default())
}

/// Like [`solve`], with explicit branch-and-bound options.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with_options(model: &MipModel, options: SolveOptions) -> Result<Solution, ModelError> {
    model.validate()?;
    let problems = class_problems(model);
    let res_cols = residual_cols(model);
    let n = model.services.len();

    // Incumbent from greedy, if its heuristic start was feasible.
    let (mut best_cost, mut best_alpha) = match solve_greedy(model) {
        Ok(greedy) => (greedy.objective, Some(greedy.lpr_choice)),
        Err(ModelError::Infeasible { .. }) => (f64::INFINITY, None),
        Err(e) => return Err(e),
    };

    // Branch order: services with the largest resource spread first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let spread = |s: usize| {
            let r = &model.services[s].resource;
            r.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - r.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        spread(b).partial_cmp(&spread(a)).expect("finite")
    });
    // Per-service minimum resource (for the lower bound).
    let min_res: Vec<f64> = model
        .services
        .iter()
        .map(|s| s.resource.iter().cloned().fold(f64::INFINITY, f64::min))
        .collect();

    let mut alpha: Vec<Option<usize>> = vec![None; n];
    let mut nodes = 0u64;
    let mut exhausted = false;

    // Depth-first search with explicit recursion.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        depth: usize,
        model: &MipModel,
        problems: &[ClassProblem],
        res_cols: &[usize],
        order: &[usize],
        min_res: &[f64],
        alpha: &mut Vec<Option<usize>>,
        partial_cost: f64,
        best_cost: &mut f64,
        best_alpha: &mut Option<Vec<usize>>,
        nodes: &mut u64,
        exhausted: &mut bool,
        options: SolveOptions,
    ) {
        *nodes += 1;
        if *nodes > MAX_NODES {
            *exhausted = true;
            return;
        }
        if depth == order.len() {
            let full: Vec<usize> = alpha.iter().map(|a| a.expect("assigned")).collect();
            if feasible_assignment(model, problems, res_cols, &full).is_some()
                && partial_cost < *best_cost - 1e-12
            {
                *best_cost = partial_cost;
                *best_alpha = Some(full);
            }
            return;
        }
        let s = order[depth];
        // Try options cheapest-first so good incumbents appear early.
        let mut opts: Vec<usize> = (0..model.services[s].resource.len()).collect();
        opts.sort_by(|&a, &b| {
            model.services[s].resource[a]
                .partial_cmp(&model.services[s].resource[b])
                .expect("finite")
        });
        for o in opts {
            if *exhausted {
                return;
            }
            let cost = partial_cost + model.services[s].resource[o];
            // Lower bound: assigned cost + min resource of the undecided.
            let lb: f64 = cost + order[depth + 1..].iter().map(|&u| min_res[u]).sum::<f64>();
            if lb >= *best_cost - 1e-12 {
                continue;
            }
            alpha[s] = Some(o);
            // Optimistic feasibility prune across all classes.
            let mut viable = problems
                .iter()
                .all(|p| optimistic_feasible(model, p, res_cols, alpha));
            // Optional LP-relaxation bound at shallow depths.
            if viable && options.lp_bound && depth < 2 {
                match lp_relaxation_bound(model, alpha) {
                    Some(lb) if lb >= *best_cost - 1e-12 => viable = false,
                    None => viable = false,
                    _ => {}
                }
            }
            if viable {
                dfs(
                    depth + 1,
                    model,
                    problems,
                    res_cols,
                    order,
                    min_res,
                    alpha,
                    cost,
                    best_cost,
                    best_alpha,
                    nodes,
                    exhausted,
                    options,
                );
            }
            alpha[s] = None;
        }
    }

    dfs(
        0,
        model,
        &problems,
        &res_cols,
        &order,
        &min_res,
        &mut alpha,
        0.0,
        &mut best_cost,
        &mut best_alpha,
        &mut nodes,
        &mut exhausted,
        options,
    );

    let Some(best_alpha) = best_alpha else {
        return Err(ModelError::Infeasible {
            class: model.constraints.first().map(|c| c.class).unwrap_or(0),
        });
    };
    let percentile_choice =
        feasible_assignment(model, &problems, &res_cols, &best_alpha).expect("incumbent feasible");
    Ok(Solution {
        objective: best_cost,
        lpr_choice: best_alpha,
        percentile_choice,
        proved_optimal: !exhausted,
        nodes_explored: nodes,
    })
}

/// Exhaustively enumerates all LPR assignments (test reference only).
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_brute_force(model: &MipModel) -> Result<Solution, ModelError> {
    model.validate()?;
    let problems = class_problems(model);
    let res_cols = residual_cols(model);
    let n = model.services.len();
    let mut idx = vec![0usize; n];
    let mut best: Option<(f64, Vec<usize>)> = None;
    loop {
        if feasible_assignment(model, &problems, &res_cols, &idx).is_some() {
            let cost: f64 = idx
                .iter()
                .enumerate()
                .map(|(s, &a)| model.services[s].resource[a])
                .sum();
            if best
                .as_ref()
                .map(|(b, _)| cost < *b - 1e-12)
                .unwrap_or(true)
            {
                best = Some((cost, idx.clone()));
            }
        }
        let mut k = 0;
        loop {
            if k == n {
                break;
            }
            idx[k] += 1;
            if idx[k] < model.services[k].resource.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
        if k == n {
            break;
        }
    }
    match best {
        Some((objective, lpr_choice)) => {
            let percentile_choice =
                feasible_assignment(model, &problems, &res_cols, &lpr_choice).expect("feasible");
            Ok(Solution {
                objective,
                lpr_choice,
                percentile_choice,
                proved_optimal: true,
                nodes_explored: 0,
            })
        }
        None => Err(ModelError::Infeasible {
            class: model.constraints.first().map(|c| c.class).unwrap_or(0),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LatencyMatrix, ServiceModel};
    use ursa_stats::rng::Rng;

    /// Grid used throughout: residuals 10, 5, 1 units.
    fn grid() -> Vec<f64> {
        vec![99.0, 99.5, 99.9]
    }

    fn svc(
        name: &str,
        resource: Vec<f64>,
        lat_rows: Vec<Vec<f64>>,
        classes: usize,
        class: usize,
    ) -> ServiceModel {
        let rows = resource.len();
        let cols = lat_rows[0].len();
        let data: Vec<f64> = lat_rows.into_iter().flatten().collect();
        let mut latency = vec![None; classes];
        latency[class] = Some(LatencyMatrix::new(rows, cols, data));
        ServiceModel {
            name: name.into(),
            resource,
            latency,
        }
    }

    fn chain_model() -> MipModel {
        // Two services, one class with p99 <= 100 ms.
        MipModel {
            percentiles: grid(),
            services: vec![
                svc(
                    "a",
                    vec![8.0, 4.0, 2.0],
                    vec![
                        vec![0.010, 0.012, 0.020],
                        vec![0.020, 0.025, 0.045],
                        vec![0.060, 0.080, 0.150],
                    ],
                    1,
                    0,
                ),
                svc(
                    "b",
                    vec![6.0, 3.0],
                    vec![vec![0.020, 0.024, 0.040], vec![0.050, 0.065, 0.110]],
                    1,
                    0,
                ),
            ],
            constraints: vec![SlaConstraint {
                class: 0,
                percentile: 99.0,
                target: 0.100,
            }],
        }
    }

    #[test]
    fn exact_matches_brute_force_on_chain() {
        let model = chain_model();
        let exact = solve(&model).unwrap();
        let brute = solve_brute_force(&model).unwrap();
        assert!((exact.objective - brute.objective).abs() < 1e-9);
        assert!(exact.proved_optimal);
        // Cheapest feasible: a@2 cores (p99=60ms at beta0) + b@3 (50ms)
        // = 110ms > 100 -> not feasible; check solver found something valid.
        let est = exact.estimated_latency(&model, 0);
        assert!(est <= 0.100 + 1e-9, "estimate {est}");
    }

    #[test]
    fn greedy_is_feasible_and_no_better_than_exact() {
        let model = chain_model();
        let greedy = solve_greedy(&model).unwrap();
        let exact = solve(&model).unwrap();
        assert!(greedy.objective >= exact.objective - 1e-9);
        assert!(greedy.estimated_latency(&model, 0) <= 0.100 + 1e-9);
    }

    #[test]
    fn residual_budget_enforced() {
        // One service, class at p99: budget = 10 units. The only latency row
        // meeting the target sits at p99.9 (1 unit) -> fine. But a p99
        // target with two services each NEEDING beta=p99 (10 units each)
        // would blow the budget -> infeasible.
        let tight = MipModel {
            percentiles: grid(),
            services: vec![
                svc("a", vec![4.0], vec![vec![0.010, 0.500, 0.900]], 1, 0),
                svc("b", vec![4.0], vec![vec![0.010, 0.500, 0.900]], 1, 0),
            ],
            constraints: vec![SlaConstraint {
                class: 0,
                percentile: 99.0,
                target: 0.100,
            }],
        };
        // Each service must pick beta=0 (p99) to meet 100ms, costing
        // 10+10 = 20 units > 10 budget.
        assert!(matches!(
            solve(&tight),
            Err(ModelError::Infeasible { class: 0 })
        ));
    }

    #[test]
    fn residual_budget_allows_split() {
        // Same as above but targets are loose enough to use p99.5+p99.9.
        let ok = MipModel {
            percentiles: grid(),
            services: vec![
                svc("a", vec![4.0], vec![vec![0.010, 0.020, 0.030]], 1, 0),
                svc("b", vec![4.0], vec![vec![0.010, 0.020, 0.030]], 1, 0),
            ],
            constraints: vec![SlaConstraint {
                class: 0,
                percentile: 99.0,
                target: 0.060,
            }],
        };
        let sol = solve(&ok).unwrap();
        // Budget 10: (p99.5, p99.9) = 5+1 or (p99, impossible second pick
        // needs 0)... The solver must find percentiles summing <= 10 units.
        let betas = &sol.percentile_choice[0];
        let spent: usize = betas.iter().map(|&b| [10, 5, 1][b]).sum();
        assert!(spent <= 10, "spent {spent}");
        assert!(sol.estimated_latency(&ok, 0) <= 0.060 + 1e-12);
    }

    #[test]
    fn multiple_classes_interact_through_lpr() {
        // Service shared by two classes: class 0 is tight (needs the
        // resourced option), class 1 is loose. The solver must keep the
        // resourced option even though class 1 alone would allow downgrade.
        let m =
            |rows: Vec<Vec<f64>>| LatencyMatrix::new(2, 3, rows.into_iter().flatten().collect());
        let model = MipModel {
            percentiles: grid(),
            services: vec![ServiceModel {
                name: "shared".into(),
                resource: vec![8.0, 2.0],
                latency: vec![
                    Some(m(vec![
                        vec![0.010, 0.012, 0.015],
                        vec![0.200, 0.250, 0.400],
                    ])),
                    Some(m(vec![
                        vec![0.010, 0.012, 0.015],
                        vec![0.200, 0.250, 0.400],
                    ])),
                ],
            }],
            constraints: vec![
                SlaConstraint {
                    class: 0,
                    percentile: 99.0,
                    target: 0.050,
                },
                SlaConstraint {
                    class: 1,
                    percentile: 99.0,
                    target: 1.0,
                },
            ],
        };
        let sol = solve(&model).unwrap();
        assert_eq!(sol.lpr_choice, vec![0], "tight class forces provisioning");
        assert_eq!(sol.objective, 8.0);
    }

    #[test]
    fn exact_matches_brute_force_randomized() {
        let mut rng = Rng::seed_from(7);
        for trial in 0..25 {
            let n_services = 2 + rng.index(3);
            let n_classes = 1 + rng.index(2);
            let grid = vec![99.0, 99.5, 99.9];
            let services: Vec<ServiceModel> = (0..n_services)
                .map(|s| {
                    let n_opts = 2 + rng.index(3);
                    // Resource decreasing, latency increasing per option.
                    let resource: Vec<f64> =
                        (0..n_opts).map(|o| (n_opts - o) as f64 * 2.0).collect();
                    let latency = (0..n_classes)
                        .map(|_| {
                            if rng.chance(0.8) {
                                let data: Vec<f64> = (0..n_opts)
                                    .flat_map(|o| {
                                        let base = 0.005 * (o + 1) as f64 * (1.0 + rng.next_f64());
                                        vec![base, base * 1.3, base * 2.0]
                                    })
                                    .collect();
                                Some(LatencyMatrix::new(n_opts, 3, data))
                            } else {
                                None
                            }
                        })
                        .collect();
                    ServiceModel {
                        name: format!("s{s}"),
                        resource,
                        latency,
                    }
                })
                .collect();
            let constraints: Vec<SlaConstraint> = (0..n_classes)
                .map(|c| SlaConstraint {
                    class: c,
                    percentile: 99.0,
                    target: 0.02 + rng.next_f64() * 0.15,
                })
                .collect();
            let model = MipModel {
                percentiles: grid,
                services,
                constraints,
            };
            let exact = solve(&model);
            let brute = solve_brute_force(&model);
            match (exact, brute) {
                (Ok(e), Ok(b)) => assert!(
                    (e.objective - b.objective).abs() < 1e-9,
                    "trial {trial}: exact {} vs brute {}",
                    e.objective,
                    b.objective
                ),
                (Err(ModelError::Infeasible { .. }), Err(ModelError::Infeasible { .. })) => {}
                (e, b) => panic!("trial {trial}: {e:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn service_without_constrained_classes_downgrades_fully() {
        let model = MipModel {
            percentiles: grid(),
            services: vec![svc(
                "idle",
                vec![8.0, 1.0],
                vec![vec![0.01, 0.01, 0.01], vec![0.9, 0.9, 0.9]],
                1,
                0,
            )],
            constraints: vec![], // no SLA constraints at all
        };
        let sol = solve(&model).unwrap();
        assert_eq!(sol.objective, 1.0);
    }

    #[test]
    fn solution_reports_nodes() {
        let sol = solve(&chain_model()).unwrap();
        assert!(sol.nodes_explored > 0);
        assert!(sol.proved_optimal);
    }
}
