//! Per-class percentile-allocation subproblem.
//!
//! Once every service's LPR option `α_i` is fixed, the remaining freedom for
//! a class *j* is the percentile choice `β_ij` per service. Constraint 2 of
//! the model gives a shared budget of percentile *residuals*
//! (`Σ (100 − P[β]) ≤ 100 − x_j`), and we want the minimum achievable sum of
//! latencies under that budget — a multiple-choice knapsack solved exactly
//! by dynamic programming over the (discretized) residual budget.
//!
//! Residuals are discretized in units of [`RESIDUAL_UNIT`] percent; the grid
//! percentiles used across this workspace (90, 95, 99, 99.5, 99.9, …) are
//! exact multiples, so the discretization is lossless.

/// Residual discretization step, in percentage points.
pub const RESIDUAL_UNIT: f64 = 0.1;

/// Converts a percentile residual (percentage points) to integer units,
/// rounding *up* so feasibility is never overstated.
pub fn residual_units(residual: f64) -> usize {
    (residual / RESIDUAL_UNIT - 1e-9).ceil().max(0.0) as usize
}

/// Converts a residual *budget* to integer units, rounding *down* so the
/// budget is never overstated.
pub fn budget_units(budget: f64) -> usize {
    (budget / RESIDUAL_UNIT + 1e-9).floor().max(0.0) as usize
}

/// Outcome of the per-class DP.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAllocation {
    /// Minimum achievable sum of per-service latencies (seconds).
    pub latency_sum: f64,
    /// Chosen percentile index per participating service (same order as the
    /// `options` argument to [`min_latency_allocation`]).
    pub beta: Vec<usize>,
}

/// Computes the minimum total latency achievable for one class.
///
/// `options[k]` lists, for the *k*-th participating service, its available
/// `(latency_seconds, residual_units)` pairs — one per percentile-grid
/// column at the service's fixed LPR row. `budget` is the class residual
/// budget in units.
///
/// Returns `None` if even spending the whole budget cannot make every
/// service pick an option (i.e. the budget is smaller than the sum of
/// minimum residuals).
pub fn min_latency_allocation(
    options: &[Vec<(f64, usize)>],
    budget: usize,
) -> Option<ClassAllocation> {
    if options.is_empty() {
        return Some(ClassAllocation {
            latency_sum: 0.0,
            beta: Vec::new(),
        });
    }
    const INF: f64 = f64::INFINITY;
    let b = budget + 1;
    // dp[r] = min latency sum using services processed so far with exactly
    // <= r residual units spent; choice[k][r] = option picked at service k.
    let mut dp = vec![INF; b];
    dp[0] = 0.0;
    let mut choice: Vec<Vec<u32>> = Vec::with_capacity(options.len());
    for opts in options {
        debug_assert!(!opts.is_empty(), "each service needs at least one option");
        let mut next = vec![INF; b];
        let mut pick = vec![u32::MAX; b];
        for (oi, &(lat, res)) in opts.iter().enumerate() {
            for (spent, &prev) in dp.iter().enumerate().take(b.saturating_sub(res)) {
                if prev.is_finite() {
                    let total = spent + res;
                    let cand = prev + lat;
                    if cand < next[total] {
                        next[total] = cand;
                        pick[total] = oi as u32;
                    }
                }
            }
        }
        dp = next;
        choice.push(pick);
    }
    // Best over all spends within budget.
    let (best_spent, best) = dp
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))?;
    // Backtrack the choices.
    let mut beta = vec![0usize; options.len()];
    let mut spent = best_spent;
    let mut lat_left = *best;
    for k in (0..options.len()).rev() {
        // Find the recorded pick consistent with the running spend; the
        // stored table already identifies it directly.
        let oi = choice[k][spent] as usize;
        debug_assert!(oi != u32::MAX as usize, "backtrack hit an unreachable cell");
        beta[k] = oi;
        let (lat, res) = options[k][oi];
        spent -= res;
        lat_left -= lat;
    }
    debug_assert!(lat_left.abs() < 1e-6, "backtrack mismatch: {lat_left}");
    Some(ClassAllocation {
        latency_sum: *best,
        beta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_are_safe() {
        assert_eq!(residual_units(1.0), 10); // p99 -> 1.0% -> 10 units
        assert_eq!(residual_units(0.1), 1); // p99.9
        assert_eq!(residual_units(0.5), 5); // p99.5
        assert_eq!(budget_units(1.0), 10);
        assert_eq!(budget_units(50.0), 500); // p50 SLA
                                             // Rounding directions: residuals up, budgets down.
        assert_eq!(residual_units(0.14), 2);
        assert_eq!(budget_units(0.14), 1);
    }

    #[test]
    fn empty_is_trivially_feasible() {
        let a = min_latency_allocation(&[], 0).unwrap();
        assert_eq!(a.latency_sum, 0.0);
        assert!(a.beta.is_empty());
    }

    #[test]
    fn single_service_picks_cheapest_within_budget() {
        // Options: (latency, residual): p99 costs 10 units but is fast;
        // p99.9 costs 1 unit but slower.
        let opts = vec![vec![(0.010, 10), (0.030, 1)]];
        // Budget 10 -> can afford p99.
        let a = min_latency_allocation(&opts, 10).unwrap();
        assert_eq!(a.beta, vec![0]);
        assert!((a.latency_sum - 0.010).abs() < 1e-12);
        // Budget 5 -> must take p99.9.
        let a = min_latency_allocation(&opts, 5).unwrap();
        assert_eq!(a.beta, vec![1]);
        // Budget 0 -> infeasible.
        assert!(min_latency_allocation(&opts, 0).is_none());
    }

    #[test]
    fn splits_budget_across_services() {
        // Two services; budget 11 units. Giving the slow service the loose
        // percentile (10 units) and the fast one the tight percentile
        // (1 unit) minimizes the sum.
        let slow = vec![(0.100, 10), (0.300, 1)];
        let fast = vec![(0.010, 10), (0.012, 1)];
        let a = min_latency_allocation(&[slow, fast], 11).unwrap();
        assert_eq!(a.beta, vec![0, 1]);
        assert!((a.latency_sum - 0.112).abs() < 1e-12);
    }

    #[test]
    fn exact_vs_exhaustive_on_random_instances() {
        use ursa_stats::rng::Rng;
        let mut rng = Rng::seed_from(99);
        for trial in 0..50 {
            let n = 1 + rng.index(4);
            let opts: Vec<Vec<(f64, usize)>> = (0..n)
                .map(|_| (0..3).map(|_| (rng.next_f64(), rng.index(6))).collect())
                .collect();
            let budget = rng.index(12);
            let dp = min_latency_allocation(&opts, budget);
            // Exhaustive reference.
            let mut best: Option<f64> = None;
            let mut idx = vec![0usize; n];
            loop {
                let spend: usize = idx.iter().enumerate().map(|(k, &i)| opts[k][i].1).sum();
                if spend <= budget {
                    let lat: f64 = idx.iter().enumerate().map(|(k, &i)| opts[k][i].0).sum();
                    best = Some(best.map_or(lat, |b: f64| b.min(lat)));
                }
                // Increment mixed-radix counter.
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < opts[k].len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
            match (dp, best) {
                (Some(a), Some(b)) => {
                    assert!(
                        (a.latency_sum - b).abs() < 1e-9,
                        "trial {trial}: {} vs {b}",
                        a.latency_sum
                    )
                }
                (None, None) => {}
                (a, b) => panic!("trial {trial}: dp {a:?} vs brute {b:?}"),
            }
        }
    }

    #[test]
    fn backtracked_choices_are_consistent() {
        let opts = vec![
            vec![(0.5, 3), (0.9, 1)],
            vec![(0.2, 2), (0.4, 0)],
            vec![(0.1, 4), (0.7, 2)],
        ];
        let a = min_latency_allocation(&opts, 7).unwrap();
        let lat: f64 = a.beta.iter().enumerate().map(|(k, &i)| opts[k][i].0).sum();
        let res: usize = a.beta.iter().enumerate().map(|(k, &i)| opts[k][i].1).sum();
        assert!((lat - a.latency_sum).abs() < 1e-12);
        assert!(res <= 7);
    }
}
