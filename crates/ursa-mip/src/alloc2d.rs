//! Two-dimensional (CPU, memory) allocation on top of the 1-D exact
//! solver.
//!
//! The paper's MIP prices options in cores only; real clusters allocate
//! pods by a *(cores, bytes)* request vector against 2-D node capacity.
//! This module extends the model the standard way:
//!
//! * each LPR option carries a [`ResourceCost`] `(cores, mem_bytes)`;
//! * the objective scalarizes the two dimensions with a weighted sum
//!   ([`Weights`]) — dominated-point pruning and the exact solver's
//!   optimality proof carry over unchanged because the scalarized cost is
//!   still one number per option;
//! * after solving, the chosen per-service demands are packed onto the
//!   cluster's nodes ([`pack_first_fit`]) as a feasibility check: a
//!   solution that minimizes the weighted objective but does not fit any
//!   node assignment is reported with `placement: None` so the caller can
//!   fall back (scale the node pool, or re-solve with a tighter budget).
//!
//! Packing is deterministic: first-fit-decreasing by scalarized demand
//! with index tie-breaks, best-fit node scoring on the mean of the two
//! free fractions — the same score the simulator's
//! `Cluster::place_2d` uses, so the MIP's feasibility answer and the
//! testbed's placement agree.

use crate::model::{LatencyMatrix, MipModel, ModelError, ServiceModel, SlaConstraint};
use crate::solve::{solve, Solution};

/// One option's resource demand: CPU cores and memory bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceCost {
    /// CPU cores.
    pub cores: f64,
    /// Memory in bytes.
    pub mem_bytes: f64,
}

impl ResourceCost {
    /// A demand of `cores` CPUs and `mem_bytes` bytes.
    pub fn new(cores: f64, mem_bytes: f64) -> Self {
        ResourceCost { cores, mem_bytes }
    }

    /// Component-wise sum.
    pub fn plus(self, other: ResourceCost) -> ResourceCost {
        ResourceCost {
            cores: self.cores + other.cores,
            mem_bytes: self.mem_bytes + other.mem_bytes,
        }
    }
}

/// Allocatable capacity of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCapacity {
    /// Allocatable CPU cores.
    pub cores: f64,
    /// Allocatable memory in bytes.
    pub mem_bytes: f64,
}

impl NodeCapacity {
    /// A node with the given allocatable capacity.
    pub fn new(cores: f64, mem_bytes: f64) -> Self {
        NodeCapacity { cores, mem_bytes }
    }
}

/// Weighted-sum scalarization of a 2-D cost. The defaults follow typical
/// cloud pricing, where one GiB of memory costs about a quarter of one
/// core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Cost per CPU core.
    pub per_core: f64,
    /// Cost per GiB of memory.
    pub per_gib: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            per_core: 1.0,
            per_gib: 0.25,
        }
    }
}

impl Weights {
    /// Scalarized cost of a demand vector.
    pub fn scalar(&self, cost: ResourceCost) -> f64 {
        self.per_core * cost.cores + self.per_gib * cost.mem_bytes / (1u64 << 30) as f64
    }
}

/// Per-service inputs to the 2-D optimization: like
/// [`ServiceModel`] but with a `(cores, bytes)` cost per LPR option.
#[derive(Debug, Clone)]
pub struct ServiceModel2d {
    /// Service name (diagnostics only).
    pub name: String,
    /// 2-D resource cost of each LPR option.
    pub cost: Vec<ResourceCost>,
    /// One latency matrix per request class; see [`ServiceModel::latency`].
    pub latency: Vec<Option<LatencyMatrix>>,
}

/// A 2-D allocation model: the 1-D model's structure plus per-option
/// memory demands, node capacities, and objective weights.
#[derive(Debug, Clone)]
pub struct Model2d {
    /// Shared percentile grid `P` (see [`MipModel::percentiles`]).
    pub percentiles: Vec<f64>,
    /// Per-service options.
    pub services: Vec<ServiceModel2d>,
    /// SLA constraints, at most one per class.
    pub constraints: Vec<SlaConstraint>,
    /// Node capacities for the placement feasibility check.
    pub nodes: Vec<NodeCapacity>,
    /// Objective scalarization.
    pub weights: Weights,
}

/// A solved 2-D allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution2d {
    /// The underlying 1-D solution over the scalarized objective (LPR and
    /// percentile choices, optimality proof, node count).
    pub base: Solution,
    /// Chosen demand per service.
    pub per_service: Vec<ResourceCost>,
    /// Total demand across services.
    pub total: ResourceCost,
    /// Node index per service from the deterministic packing, or `None`
    /// when the chosen demands fit no node assignment.
    pub placement: Option<Vec<usize>>,
}

impl Model2d {
    /// Scalarizes into a 1-D [`MipModel`] (weighted-sum objective).
    fn scalarized(&self) -> MipModel {
        MipModel {
            percentiles: self.percentiles.clone(),
            services: self
                .services
                .iter()
                .map(|s| ServiceModel {
                    name: s.name.clone(),
                    resource: s.cost.iter().map(|&c| self.weights.scalar(c)).collect(),
                    latency: s.latency.clone(),
                })
                .collect(),
            constraints: self.constraints.clone(),
        }
    }

    /// Validates the 2-D extensions, then the underlying 1-D structure.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] on non-finite/negative costs or
    /// weights, an empty node list, non-positive node capacity, or any
    /// 1-D structural error.
    pub fn validate(&self) -> Result<(), ModelError> {
        for s in &self.services {
            if s.cost
                .iter()
                .any(|c| !c.cores.is_finite() || !c.mem_bytes.is_finite())
                || s.cost.iter().any(|c| c.cores < 0.0 || c.mem_bytes < 0.0)
            {
                return Err(ModelError::Invalid(format!(
                    "service {} has an invalid 2-D cost",
                    s.name
                )));
            }
        }
        if self.nodes.is_empty() {
            return Err(ModelError::Invalid("no nodes".into()));
        }
        if self
            .nodes
            .iter()
            .any(|n| n.cores <= 0.0 || n.mem_bytes <= 0.0 || !n.cores.is_finite())
        {
            return Err(ModelError::Invalid("non-positive node capacity".into()));
        }
        if self.weights.per_core < 0.0 || self.weights.per_gib < 0.0 {
            return Err(ModelError::Invalid("negative objective weights".into()));
        }
        self.scalarized().validate()
    }
}

/// Packs one demand per item onto nodes: first-fit-decreasing by
/// scalarized demand (ties by item index), best-fit node chosen by lowest
/// mean post-placement free fraction (ties by node index — the same
/// deterministic score as the simulator's 2-D cluster placement).
/// Returns the node index per item, or `None` when some item fits
/// nowhere.
pub fn pack_first_fit(
    items: &[ResourceCost],
    nodes: &[NodeCapacity],
    weights: Weights,
) -> Option<Vec<usize>> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        weights
            .scalar(items[b])
            .partial_cmp(&weights.scalar(items[a]))
            .expect("finite demand")
            .then(a.cmp(&b))
    });
    let mut cpu_used = vec![0.0f64; nodes.len()];
    let mut mem_used = vec![0.0f64; nodes.len()];
    let mut assign = vec![usize::MAX; items.len()];
    for &i in &order {
        let item = items[i];
        let mut best: Option<(f64, usize)> = None;
        for (n, node) in nodes.iter().enumerate() {
            let cpu_free = node.cores - cpu_used[n];
            let mem_free = node.mem_bytes - mem_used[n];
            if cpu_free < item.cores - 1e-9 || mem_free < item.mem_bytes - 1e-9 {
                continue;
            }
            let score = 0.5
                * ((cpu_free - item.cores) / node.cores
                    + (mem_free - item.mem_bytes) / node.mem_bytes);
            // Strict `<` keeps the lowest-index node on ties.
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, n));
            }
        }
        let (_, n) = best?;
        cpu_used[n] += item.cores;
        mem_used[n] += item.mem_bytes;
        assign[i] = n;
    }
    Some(assign)
}

/// Solves the 2-D model: exact branch-and-bound over the weighted-sum
/// objective, then the deterministic node-packing feasibility check.
///
/// # Errors
///
/// Returns [`ModelError::Invalid`] on a malformed model and
/// [`ModelError::Infeasible`] when no option assignment meets the SLAs.
/// An SLA-feasible solution that fits no node assignment is *not* an
/// error — it is returned with `placement: None`.
pub fn solve_2d(model: &Model2d) -> Result<Solution2d, ModelError> {
    model.validate()?;
    let base = solve(&model.scalarized())?;
    let per_service: Vec<ResourceCost> = model
        .services
        .iter()
        .zip(&base.lpr_choice)
        .map(|(s, &a)| s.cost[a])
        .collect();
    let total = per_service
        .iter()
        .fold(ResourceCost::default(), |acc, &c| acc.plus(c));
    let placement = pack_first_fit(&per_service, &model.nodes, model.weights);
    Ok(Solution2d {
        base,
        per_service,
        total,
        placement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: f64 = (1u64 << 30) as f64;

    /// One service, one class, two options with opposite (CPU, mem)
    /// trade-offs that both meet the SLA.
    fn tradeoff_model(weights: Weights) -> Model2d {
        Model2d {
            percentiles: vec![99.0],
            services: vec![ServiceModel2d {
                name: "api".into(),
                // Option 0: CPU-heavy, memory-light. Option 1: the reverse.
                cost: vec![
                    ResourceCost::new(8.0, GIB),
                    ResourceCost::new(2.0, 16.0 * GIB),
                ],
                latency: vec![Some(LatencyMatrix::new(2, 1, vec![0.010, 0.012]))],
            }],
            constraints: vec![SlaConstraint {
                class: 0,
                percentile: 99.0,
                target: 0.050,
            }],
            nodes: vec![NodeCapacity::new(16.0, 32.0 * GIB)],
            weights,
        }
    }

    #[test]
    fn weights_flip_the_chosen_option() {
        // Expensive memory: the CPU-heavy option wins (8.25 vs 6.0 — wait,
        // with per_gib = 1.0: option 0 costs 8 + 1 = 9, option 1 costs
        // 2 + 16 = 18 → option 0).
        let cpu_pref = solve_2d(&tradeoff_model(Weights {
            per_core: 1.0,
            per_gib: 1.0,
        }))
        .unwrap();
        assert_eq!(cpu_pref.base.lpr_choice, vec![0]);
        // Nearly-free memory: the memory-heavy option wins
        // (option 0: 8.01, option 1: 2.16).
        let mem_pref = solve_2d(&tradeoff_model(Weights {
            per_core: 1.0,
            per_gib: 0.01,
        }))
        .unwrap();
        assert_eq!(mem_pref.base.lpr_choice, vec![1]);
        assert_eq!(mem_pref.total, ResourceCost::new(2.0, 16.0 * GIB));
    }

    #[test]
    fn solution_reports_2d_totals_and_placement() {
        let sol = solve_2d(&tradeoff_model(Weights::default())).unwrap();
        assert!(sol.base.proved_optimal);
        assert_eq!(sol.per_service.len(), 1);
        let placement = sol.placement.expect("fits the single node");
        assert_eq!(placement, vec![0]);
    }

    #[test]
    fn infeasible_packing_is_reported_not_fatal() {
        let mut m = tradeoff_model(Weights {
            per_core: 1.0,
            per_gib: 0.01,
        });
        // The memory-optimal choice (16 GiB) no longer fits any node.
        m.nodes = vec![NodeCapacity::new(16.0, 8.0 * GIB)];
        let sol = solve_2d(&m).unwrap();
        assert_eq!(sol.base.lpr_choice, vec![1]);
        assert!(sol.placement.is_none());
    }

    #[test]
    fn packing_respects_both_dimensions() {
        let items = vec![
            ResourceCost::new(3.0, 8.0 * GIB),
            ResourceCost::new(3.0, 8.0 * GIB),
            ResourceCost::new(3.0, 8.0 * GIB),
        ];
        // Each node has CPU for all three items but memory for only two.
        let nodes = vec![
            NodeCapacity::new(16.0, 16.0 * GIB),
            NodeCapacity::new(16.0, 16.0 * GIB),
        ];
        let assign = pack_first_fit(&items, &nodes, Weights::default()).expect("fits");
        let mem_on = |n: usize| {
            assign
                .iter()
                .zip(&items)
                .filter(|(&a, _)| a == n)
                .map(|(_, i)| i.mem_bytes)
                .sum::<f64>()
        };
        assert!(mem_on(0) <= 16.0 * GIB + 1e-6);
        assert!(mem_on(1) <= 16.0 * GIB + 1e-6);
        // CPU-only reasoning would stack all three on node 0.
        assert!(assign.contains(&1));
    }

    #[test]
    fn packing_is_deterministic_and_fails_cleanly() {
        let items = vec![ResourceCost::new(4.0, 4.0 * GIB); 4];
        let nodes = vec![NodeCapacity::new(8.0, 32.0 * GIB); 4];
        let a = pack_first_fit(&items, &nodes, Weights::default()).unwrap();
        let b = pack_first_fit(&items, &nodes, Weights::default()).unwrap();
        assert_eq!(a, b);
        // Equal-demand items fill equally-scored nodes in index order.
        assert_eq!(a, vec![0, 0, 1, 1]);
        let tiny = vec![NodeCapacity::new(2.0, GIB)];
        assert!(pack_first_fit(&items, &tiny, Weights::default()).is_none());
    }

    #[test]
    fn validation_rejects_bad_2d_inputs() {
        let mut m = tradeoff_model(Weights::default());
        m.nodes.clear();
        assert!(matches!(m.validate(), Err(ModelError::Invalid(_))));
        let mut m = tradeoff_model(Weights::default());
        m.services[0].cost[0].mem_bytes = -1.0;
        assert!(matches!(m.validate(), Err(ModelError::Invalid(_))));
        let mut m = tradeoff_model(Weights::default());
        m.weights.per_gib = -0.5;
        assert!(matches!(m.validate(), Err(ModelError::Invalid(_))));
    }
}
