//! A dense two-phase primal simplex solver for linear programs.
//!
//! The Ursa MIP itself is solved by the specialized branch-and-bound in
//! [`mod@crate::solve`]; this module provides the general-purpose LP substrate
//! that a Gurobi-class solver would bring along. It is used to compute an
//! LP-relaxation lower bound that strengthens branch-and-bound pruning
//! (see [`crate::solve::solve_with_options`]) and is exercised directly in
//! benches and tests.
//!
//! Problems are stated over variables `x ≥ 0` with a minimization
//! objective and `≤ / ≥ / =` row constraints; the solver uses Bland's rule,
//! so it terminates on degenerate problems.

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `row · x ≤ rhs`
    Le,
    /// `row · x ≥ rhs`
    Ge,
    /// `row · x = rhs`
    Eq,
}

/// A linear program: minimize `c · x` subject to row constraints, `x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients (minimized).
    pub objective: Vec<f64>,
    /// Constraints as `(coefficients, sense, rhs)`.
    pub constraints: Vec<(Vec<f64>, Cmp, f64)>,
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Objective value.
        objective: f64,
        /// Variable assignment.
        x: Vec<f64>,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves the LP with two-phase primal simplex (Bland's rule).
///
/// # Panics
///
/// Panics if constraint rows and the objective disagree on the variable
/// count, or the problem has no variables.
pub fn solve_lp(problem: &LpProblem) -> LpOutcome {
    let n = problem.objective.len();
    assert!(n > 0, "no variables");
    for (row, _, _) in &problem.constraints {
        assert_eq!(row.len(), n, "row width mismatch");
    }
    let m = problem.constraints.len();

    // Standard form: Ax = b with slack/surplus, b >= 0, plus artificials.
    // Columns: [x (n)] [slack/surplus (one per Le/Ge)] [artificials].
    let mut slack_cols = 0usize;
    for (_, cmp, _) in &problem.constraints {
        if matches!(cmp, Cmp::Le | Cmp::Ge) {
            slack_cols += 1;
        }
    }
    let total = n + slack_cols + m; // upper bound on columns incl. artificials
    let mut a = vec![vec![0.0; total]; m];
    let mut b = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut artificial_cols: Vec<usize> = Vec::new();

    for (i, (row, cmp, rhs)) in problem.constraints.iter().enumerate() {
        let flip = *rhs < 0.0;
        let sgn = if flip { -1.0 } else { 1.0 };
        for (j, &c) in row.iter().enumerate() {
            a[i][j] = sgn * c;
        }
        b[i] = sgn * rhs;
        let eff = match (cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match eff {
            Cmp::Le => {
                a[i][next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                a[i][next_slack] = -1.0;
                next_slack += 1;
                // Needs an artificial below.
            }
            Cmp::Eq => {}
        }
        if basis[i] == usize::MAX {
            let art = n + slack_cols + artificial_cols.len();
            a[i][art] = 1.0;
            basis[i] = art;
            artificial_cols.push(art);
        }
    }
    let ncols = n + slack_cols + artificial_cols.len();
    for row in &mut a {
        row.truncate(ncols);
    }

    // Phase 1: minimize the sum of artificials.
    if !artificial_cols.is_empty() {
        let mut c1 = vec![0.0; ncols];
        for &j in &artificial_cols {
            c1[j] = 1.0;
        }
        match simplex(&mut a, &mut b, &mut basis, &c1) {
            SimplexEnd::Optimal(obj) if obj > EPS => return LpOutcome::Infeasible,
            SimplexEnd::Optimal(_) => {}
            SimplexEnd::Unbounded => unreachable!("phase-1 objective is bounded below by 0"),
        }
        // Drive any artificial still in the basis out (degenerate rows).
        for i in 0..m {
            if artificial_cols.contains(&basis[i]) {
                if let Some(j) = (0..n + slack_cols).find(|&j| a[i][j].abs() > EPS) {
                    pivot(&mut a, &mut b, &mut basis, i, j);
                }
                // If no pivot column exists the row is 0 = 0; leave it.
            }
        }
    }

    // Phase 2: original objective (artificials pinned to zero by exclusion).
    let mut c2 = vec![0.0; ncols];
    c2[..n].copy_from_slice(&problem.objective);
    // Forbid artificials from re-entering by giving them huge cost.
    for &j in &artificial_cols {
        c2[j] = 1e30;
    }
    match simplex(&mut a, &mut b, &mut basis, &c2) {
        SimplexEnd::Unbounded => LpOutcome::Unbounded,
        SimplexEnd::Optimal(_) => {
            let mut x = vec![0.0; n];
            for (i, &bj) in basis.iter().enumerate() {
                if bj < n {
                    x[bj] = b[i];
                }
            }
            let objective = problem.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
            LpOutcome::Optimal { objective, x }
        }
    }
}

enum SimplexEnd {
    Optimal(f64),
    Unbounded,
}

/// Runs primal simplex on the tableau in place; returns the objective.
fn simplex(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], c: &[f64]) -> SimplexEnd {
    let m = a.len();
    let ncols = c.len();
    loop {
        // Reduced costs: r_j = c_j - c_B · B^{-1} A_j. The tableau is kept
        // in canonical form, so r_j = c_j - sum_i c[basis[i]] * a[i][j].
        let mut entering = None;
        for j in 0..ncols {
            if basis.contains(&j) {
                continue;
            }
            let mut r = c[j];
            for i in 0..m {
                r -= c[basis[i]] * a[i][j];
            }
            if r < -EPS {
                entering = Some(j); // Bland: smallest index
                break;
            }
        }
        let Some(j) = entering else {
            let obj = (0..m).map(|i| c[basis[i]] * b[i]).sum();
            return SimplexEnd::Optimal(obj);
        };
        // Ratio test (Bland: smallest basis index on ties).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if a[i][j] > EPS {
                let ratio = b[i] / a[i][j];
                let better = match leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
        }
        let Some((i, _)) = leave else {
            return SimplexEnd::Unbounded;
        };
        pivot(a, b, basis, i, j);
    }
}

/// Pivots the tableau: column `j` enters the basis at row `i`.
fn pivot(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], i: usize, j: usize) {
    let m = a.len();
    let p = a[i][j];
    debug_assert!(p.abs() > EPS, "zero pivot");
    for v in &mut a[i] {
        *v /= p;
    }
    b[i] /= p;
    for r in 0..m {
        if r != i && a[r][j].abs() > EPS {
            let f = a[r][j];
            for col in 0..a[r].len() {
                a[r][col] -= f * a[i][col];
            }
            b[r] -= f * b[i];
        }
    }
    basis[i] = j;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(outcome: LpOutcome) -> (f64, Vec<f64>) {
        match outcome {
            LpOutcome::Optimal { objective, x } => (objective, x),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of the
        // negation; classic answer x=2, y=6, obj=36).
        let p = LpProblem {
            objective: vec![-3.0, -5.0],
            constraints: vec![
                (vec![1.0, 0.0], Cmp::Le, 4.0),
                (vec![0.0, 2.0], Cmp::Le, 12.0),
                (vec![3.0, 2.0], Cmp::Le, 18.0),
            ],
        };
        let (obj, x) = optimal(solve_lp(&p));
        assert!((obj + 36.0).abs() < 1e-7, "obj {obj}");
        assert!(
            (x[0] - 2.0).abs() < 1e-7 && (x[1] - 6.0).abs() < 1e-7,
            "{x:?}"
        );
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y s.t. x + y >= 2, x = 0.5 -> y = 1.5, obj 2.
        let p = LpProblem {
            objective: vec![1.0, 1.0],
            constraints: vec![
                (vec![1.0, 1.0], Cmp::Ge, 2.0),
                (vec![1.0, 0.0], Cmp::Eq, 0.5),
            ],
        };
        let (obj, x) = optimal(solve_lp(&p));
        assert!((obj - 2.0).abs() < 1e-7);
        assert!((x[0] - 0.5).abs() < 1e-7 && (x[1] - 1.5).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let p = LpProblem {
            objective: vec![1.0],
            constraints: vec![(vec![1.0], Cmp::Ge, 3.0), (vec![1.0], Cmp::Le, 2.0)],
        };
        assert_eq!(solve_lp(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x s.t. x >= 1 (x can grow forever).
        let p = LpProblem {
            objective: vec![-1.0],
            constraints: vec![(vec![1.0], Cmp::Ge, 1.0)],
        };
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -2  (i.e. x >= 2).
        let p = LpProblem {
            objective: vec![1.0],
            constraints: vec![(vec![-1.0], Cmp::Le, -2.0)],
        };
        let (obj, _) = optimal(solve_lp(&p));
        assert!((obj - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple constraints intersecting at the same vertex.
        let p = LpProblem {
            objective: vec![-1.0, -1.0],
            constraints: vec![
                (vec![1.0, 0.0], Cmp::Le, 1.0),
                (vec![0.0, 1.0], Cmp::Le, 1.0),
                (vec![1.0, 1.0], Cmp::Le, 2.0),
                (vec![2.0, 2.0], Cmp::Le, 4.0),
            ],
        };
        let (obj, _) = optimal(solve_lp(&p));
        assert!((obj + 2.0).abs() < 1e-7);
    }

    #[test]
    fn relaxation_of_multiple_choice_structure() {
        // One service, two options with resource 4 and 2: z0 + z1 = 1,
        // latency constraint 0.01 z0 + 0.05 z1 <= 0.02 -> z1 <= 0.25,
        // min 4 z0 + 2 z1 -> z0 = 0.75, obj = 3.5 (a fractional bound
        // below the integral optimum of 4).
        let p = LpProblem {
            objective: vec![4.0, 2.0],
            constraints: vec![
                (vec![1.0, 1.0], Cmp::Eq, 1.0),
                (vec![0.01, 0.05], Cmp::Le, 0.02),
            ],
        };
        let (obj, x) = optimal(solve_lp(&p));
        assert!((obj - 3.5).abs() < 1e-7, "obj {obj}");
        assert!((x[0] - 0.75).abs() < 1e-7);
    }

    #[test]
    fn random_lps_satisfy_kkt_feasibility() {
        use ursa_stats::rng::Rng;
        let mut rng = Rng::seed_from(17);
        for trial in 0..40 {
            let n = 2 + rng.index(3);
            let m = 1 + rng.index(4);
            let objective: Vec<f64> = (0..n).map(|_| rng.range_f64(0.1, 5.0)).collect();
            let constraints: Vec<(Vec<f64>, Cmp, f64)> = (0..m)
                .map(|_| {
                    let row: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 3.0)).collect();
                    (row, Cmp::Ge, rng.range_f64(0.5, 4.0))
                })
                .collect();
            // min positive objective with >= constraints: feasible, bounded.
            let p = LpProblem {
                objective,
                constraints,
            };
            match solve_lp(&p) {
                LpOutcome::Optimal { x, .. } => {
                    for (row, _, rhs) in &p.constraints {
                        let lhs: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
                        assert!(lhs >= rhs - 1e-6, "trial {trial}: {lhs} < {rhs}");
                    }
                    assert!(x.iter().all(|&v| v >= -1e-9));
                }
                LpOutcome::Infeasible => {
                    // Possible if some row has all-zero coefficients with
                    // positive rhs.
                    let degenerate = p
                        .constraints
                        .iter()
                        .any(|(row, _, rhs)| row.iter().all(|&c| c.abs() < 1e-12) && *rhs > 0.0);
                    assert!(degenerate, "trial {trial}: spurious infeasibility");
                }
                LpOutcome::Unbounded => panic!("trial {trial}: spurious unboundedness"),
            }
        }
    }
}
