//! Property test: the memory plane is zero-cost when disabled.
//!
//! For random chain topologies and loads, a simulation with no memory
//! plane and one with a plan that has *no profiles* (nodes only) must be
//! bit-identical in everything the engine simulates: same event count,
//! byte-identical service metrics, latencies, and counters. The
//! profile-less plan schedules no scan events and multiplies PS rates by
//! an exact 1.0, so nothing downstream can diverge.

use proptest::prelude::*;
use ursa_sim::prelude::*;

#[derive(Debug, Clone)]
struct ChainSpec {
    services: usize,
    replicas: usize,
    cores: f64,
    work_ms: f64,
    rps: f64,
    seed: u64,
}

fn chain_spec() -> impl Strategy<Value = ChainSpec> {
    (
        1usize..5,
        1usize..5,
        (0usize..3).prop_map(|i| [1.0, 2.0, 4.0][i]),
        0.5f64..5.0,
        5.0f64..80.0,
        any::<u64>(),
    )
        .prop_map(
            |(services, replicas, cores, work_ms, rps, seed)| ChainSpec {
                services,
                replicas,
                cores,
                work_ms,
                rps,
                seed,
            },
        )
}

fn build(spec: &ChainSpec) -> Simulation {
    let svcs: Vec<ServiceCfg> = (0..spec.services)
        .map(|i| ServiceCfg::new(format!("s{i}"), spec.cores).with_replicas(spec.replicas))
        .collect();
    let mut root = CallNode::leaf(
        ServiceId(spec.services - 1),
        WorkDist::Exponential {
            mean: spec.work_ms / 1000.0,
        },
    );
    for i in (0..spec.services - 1).rev() {
        root = CallNode::leaf(
            ServiceId(i),
            WorkDist::Exponential {
                mean: spec.work_ms / 1000.0,
            },
        )
        .with_child(EdgeKind::NestedRpc, root);
    }
    let topo = Topology::new(
        svcs,
        vec![ClassCfg {
            name: "chain".into(),
            priority: Priority::HIGH,
            root,
        }],
    )
    .unwrap();
    let mut sim = Simulation::new(topo, SimConfig::default(), spec.seed);
    sim.set_rate(ClassId(0), RateFn::Constant(spec.rps));
    sim
}

/// Byte-exact digest of everything the engine *simulates*. The `mem`
/// observability field is rendered separately from the rest of the
/// snapshot so the two runs can be compared field-by-field: an installed
/// (but inert) plane legitimately attaches an all-zero `MemSnapshot`
/// where the plain run attaches `None`, and that difference must be the
/// *only* one.
fn digest(mut sim: Simulation) -> (String, Vec<Option<MemSnapshot>>) {
    let mut out = String::new();
    let mut mems = Vec::new();
    for _ in 0..3 {
        sim.run_for(SimDur::from_secs(40));
        let mut snap = sim.harvest();
        mems.push(snap.mem.take());
        out.push_str(&format!("{snap:?}\n"));
    }
    out.push_str(&format!("events={}", sim.events_processed()));
    (out, mems)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn memory_plane_disabled_is_bit_identical(spec in chain_spec()) {
        let (base, base_mems) = digest(build(&spec));
        prop_assert!(base_mems.iter().all(Option::is_none));

        // A plan with nodes but no profiles schedules no scan events.
        let mut inert = build(&spec);
        inert.install_memory_plane(&MemPlan::new(vec![NodeMemCfg::new(16 << 30); 4]));
        let (inert_digest, inert_mems) = digest(inert);
        prop_assert_eq!(&inert_digest, &base, "profile-less plan diverged");
        // The attached snapshots exist but witnessed nothing.
        for mem in inert_mems {
            let mem = mem.expect("plane installed");
            prop_assert_eq!(mem.oom_kills, 0);
            prop_assert_eq!(mem.evictions, [0, 0, 0]);
            prop_assert!(mem.events.is_empty());
            prop_assert!(mem.throttle_secs.iter().all(|&t| t == 0.0));
        }
    }
}
