//! Differential property tests for the sharded engine.
//!
//! Sharding changes *where* work executes but not *what* work exists: for
//! any topology, a sharded run must inject exactly the same requests as
//! the single-engine run (per-class source streams are shard-layout
//! invariant) and, once drained, complete every one of them. Latencies
//! may differ across shard counts (work-sampling RNGs are decorrelated
//! per shard; cross-shard responses pay an extra network hop), so the
//! conservation law is over exact event *counts*: injections, completions,
//! and per-(service, class) hop arrivals.
//!
//! Run under debug assertions: any generational-index misuse in fragment
//! bookkeeping (a `ChildDone` for a released slot, an awaiting-count
//! underflow) panics instead of corrupting counts.

use proptest::prelude::*;
use ursa_sim::prelude::*;

#[derive(Debug, Clone)]
struct TopoSpec {
    services: usize,
    /// Per class: hop service ids (preorder), edge kind id, sequential?
    classes: Vec<(Vec<usize>, u8, bool)>,
    work_ms: f64,
    rps: f64,
    seed: u64,
}

fn topo_spec() -> impl Strategy<Value = TopoSpec> {
    (2usize..6, 0.3f64..2.0, 10.0f64..60.0, any::<u64>()).prop_flat_map(
        |(services, work_ms, rps, seed)| {
            let class = (
                proptest::collection::vec(0..services, 1..6),
                0u8..3,
                any::<bool>(),
            );
            proptest::collection::vec(class, 1..3).prop_map(move |classes| TopoSpec {
                services,
                classes,
                work_ms,
                rps,
                seed,
            })
        },
    )
}

/// Builds a topology whose class trees are chains over randomly chosen
/// services — chains exercise every edge kind and arbitrary shard-crossing
/// patterns (a→b→a re-entry included) without needing a tree generator.
fn build_topology(spec: &TopoSpec) -> Topology {
    let services: Vec<ServiceCfg> = (0..spec.services)
        .map(|i| ServiceCfg::new(format!("s{i}"), 2.0))
        .collect();
    let work = WorkDist::Exponential {
        mean: spec.work_ms / 1000.0,
    };
    let classes: Vec<ClassCfg> = spec
        .classes
        .iter()
        .enumerate()
        .map(|(i, (hops, edge, sequential))| {
            let edge = match edge {
                0 => EdgeKind::NestedRpc,
                1 => EdgeKind::EventDrivenRpc,
                _ => EdgeKind::Mq,
            };
            let mode = if *sequential {
                CallMode::Sequential
            } else {
                CallMode::Parallel
            };
            let mut node = CallNode::leaf(ServiceId(hops[hops.len() - 1]), work.clone());
            for &svc in hops[..hops.len() - 1].iter().rev() {
                node = CallNode::leaf(ServiceId(svc), work.clone())
                    .with_mode(mode)
                    .with_child(edge, node);
            }
            ClassCfg {
                name: format!("c{i}"),
                priority: Priority::HIGH,
                root: node,
            }
        })
        .collect();
    Topology::new(services, classes).expect("generated topology is valid")
}

/// Runs `spec` for two simulated seconds, then drains to empty; returns
/// (per-class injections, per-class completions, per-(service, class)
/// arrivals).
fn run_counts(spec: &TopoSpec, shards: usize) -> (Vec<u64>, Vec<u64>, Vec<Vec<u64>>) {
    let topo = build_topology(spec);
    let mut sim = ShardedSimulation::new(topo, SimConfig::default(), spec.seed, shards);
    for c in 0..spec.classes.len() {
        sim.set_rate(ClassId(c), RateFn::Constant(spec.rps));
    }
    sim.run_for(SimDur::from_secs(2));
    for c in 0..spec.classes.len() {
        sim.set_rate(ClassId(c), RateFn::Constant(0.0));
    }
    let mut windows = 0;
    while sim.in_flight() > 0 {
        sim.run_for(SimDur::from_secs(1));
        windows += 1;
        assert!(
            windows < 300,
            "failed to drain: {} in flight",
            sim.in_flight()
        );
    }
    let snap = sim.harvest();
    let arrivals = snap.services.iter().map(|s| s.arrivals.clone()).collect();
    (snap.injections, snap.completions, arrivals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 2-shard vs 1-shard: exact conservation of injections, completions,
    /// and per-hop arrival counts over random topologies.
    #[test]
    fn two_shards_conserve_counts(spec in topo_spec()) {
        let (inj1, comp1, arr1) = run_counts(&spec, 1);
        let (inj2, comp2, arr2) = run_counts(&spec, 2);
        prop_assert_eq!(&inj1, &inj2, "injection schedules must be shard-invariant");
        prop_assert_eq!(&comp1, &inj1, "1-shard run must drain completely");
        prop_assert_eq!(&comp2, &inj2, "2-shard run must drain completely");
        prop_assert_eq!(arr1, arr2, "every hop must arrive exactly once per request");
    }

    /// Fixed shard count, same seed, run twice: byte-identical metrics
    /// (the per-N determinism contract, below the bench/TSV layer).
    #[test]
    fn sharded_rerun_is_deterministic(spec in topo_spec()) {
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let topo = build_topology(&spec);
                let mut sim =
                    ShardedSimulation::new(topo, SimConfig::default(), spec.seed, 3);
                for c in 0..spec.classes.len() {
                    sim.set_rate(ClassId(c), RateFn::Constant(spec.rps));
                }
                sim.run_for(SimDur::from_secs(2));
                let snap = sim.harvest();
                let p99: Vec<u64> = snap
                    .e2e_latency
                    .iter()
                    .map(|l| l.percentile(99.0).unwrap_or(-1.0).to_bits())
                    .collect();
                (snap.injections, snap.completions, p99, sim.events_processed())
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
    }
}

/// The 1-shard facade is the plain engine: bit-identical snapshots and
/// event counts, not merely equal-count ones.
#[test]
fn one_shard_facade_is_bit_identical_to_plain_engine() {
    let spec = TopoSpec {
        services: 4,
        classes: vec![(vec![0, 1, 2, 3], 0, true), (vec![2, 0], 2, false)],
        work_ms: 1.0,
        rps: 80.0,
        seed: 7,
    };
    let topo = build_topology(&spec);

    let mut plain = Simulation::new(topo.clone(), SimConfig::default(), spec.seed);
    let mut facade = ShardedSimulation::new(topo, SimConfig::default(), spec.seed, 1);
    for c in 0..spec.classes.len() {
        plain.set_rate(ClassId(c), RateFn::Constant(spec.rps));
        facade.set_rate(ClassId(c), RateFn::Constant(spec.rps));
    }
    plain.run_for(SimDur::from_secs(5));
    facade.run_for(SimDur::from_secs(5));
    assert_eq!(plain.events_processed(), facade.events_processed());

    let (a, b) = (plain.harvest(), facade.harvest());
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.completions, b.completions);
    for (la, lb) in a.e2e_latency.iter().zip(&b.e2e_latency) {
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(
                la.percentile(p).map(f64::to_bits),
                lb.percentile(p).map(f64::to_bits),
                "p{p} must be bit-identical"
            );
        }
    }
    for (sa, sb) in a.services.iter().zip(&b.services) {
        assert_eq!(sa.arrivals, sb.arrivals);
        assert_eq!(sa.cpu_utilization.to_bits(), sb.cpu_utilization.to_bits());
    }
}
