//! Integration tests of the memory plane: OOM-kill, QoS-ordered pressure
//! eviction, noisy-neighbor interference, and restart — all deterministic
//! functions of the seed and the installed plan.

use ursa_sim::prelude::*;

/// Two-service nested-RPC chain: `front` (Guaranteed) calls `back`
/// (BestEffort), both with two replicas.
fn two_tier_topology() -> Topology {
    let services = vec![
        ServiceCfg::new("front", 2.0)
            .with_replicas(2)
            .with_resources(ResourceSpec::guaranteed(2.0, 256 << 20)),
        ServiceCfg::new("back", 2.0).with_replicas(2),
    ];
    let root = CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)).with_child(
        EdgeKind::NestedRpc,
        CallNode::leaf(ServiceId(1), WorkDist::Constant(0.001)),
    );
    let classes = vec![ClassCfg {
        name: "req".into(),
        priority: Priority::HIGH,
        root,
    }];
    Topology::new(services, classes).unwrap()
}

#[test]
fn heap_growth_triggers_oom_kill_and_restart() {
    // One service, two replicas, 128 MiB limit, 16 MiB/s leak from a
    // 32 MiB baseline: both replicas cross the limit ~6 s after their
    // first scan. The first is drain-killed (capacity drops), the second
    // is the last live replica and restarts in place.
    let topo = Topology::new(
        vec![ServiceCfg::new("leaky", 2.0)
            .with_replicas(2)
            .with_resources(ResourceSpec::burstable(1.0, 2.0, 64 << 20, 128 << 20))],
        vec![ClassCfg {
            name: "req".into(),
            priority: Priority::HIGH,
            root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)),
        }],
    )
    .unwrap();
    let mut sim = Simulation::new(topo, SimConfig::default(), 7);
    let plan = MemPlan::new(vec![NodeMemCfg::new(4 << 30); 2]).with_profile(
        0,
        MemProfile::new(32 << 20, 1 << 20).with_growth((16 << 20) as f64),
    );
    sim.install_memory_plane(&plan);
    assert!(sim.memory_plane_installed());

    sim.run_for(SimDur::from_secs(20));
    let snap = sim.harvest();
    let mem = snap.mem.expect("plane installed");
    assert!(mem.oom_kills >= 2, "expected repeated OOM kills");
    assert!(mem
        .events
        .iter()
        .any(|e| e.kind == MemEventKind::OomKill && e.usage_bytes > 128 << 20));
    assert!(
        mem.events.iter().any(|e| e.kind == MemEventKind::Restart),
        "drain-killed replica should restart after the delay"
    );
    // The engine never lets a service black out.
    assert!(snap.services[0].replicas >= 1);
}

#[test]
fn pressure_eviction_spares_guaranteed_tier() {
    // Four 80 MiB replicas on one 256 MiB node: 320 MiB of demand forces
    // eviction. The BestEffort service must be the victim; the Guaranteed
    // service must never be evicted (one BestEffort eviction relieves the
    // pressure: 240 MiB <= 256 MiB).
    let mut sim = Simulation::new(two_tier_topology(), SimConfig::default(), 7);
    sim.set_rate(ClassId(0), RateFn::Constant(50.0));
    let plan = MemPlan::new(vec![NodeMemCfg::new(256 << 20)])
        .with_profile(0, MemProfile::new(80 << 20, 0))
        .with_profile(1, MemProfile::new(80 << 20, 0));
    sim.install_memory_plane(&plan);

    sim.run_for(SimDur::from_secs(30));
    let snap = sim.harvest();
    let mem = snap.mem.expect("plane installed");
    assert!(mem.evictions[0] >= 1, "BestEffort should be evicted");
    assert_eq!(mem.evictions[2], 0, "Guaranteed must never be evicted");
    assert!(mem
        .events
        .iter()
        .any(|e| e.kind == MemEventKind::Evict && e.service == 1));
    assert!(!mem
        .events
        .iter()
        .any(|e| e.kind == MemEventKind::Evict && e.service == 0));
}

#[test]
fn overcommit_applies_noisy_neighbor_interference() {
    // 230 MiB of steady demand on a 256 MiB node: under the pressure
    // threshold (no evictions) but over the 85% interference threshold,
    // so co-located services accrue throttle time and the node reports
    // high utilization.
    let mut sim = Simulation::new(two_tier_topology(), SimConfig::default(), 7);
    sim.set_rate(ClassId(0), RateFn::Constant(50.0));
    let plan = MemPlan::new(vec![NodeMemCfg::new(256 << 20)])
        .with_profile(0, MemProfile::new(58 << 20, 0))
        .with_profile(1, MemProfile::new(57 << 20, 0));
    sim.install_memory_plane(&plan);

    sim.run_for(SimDur::from_secs(30));
    let snap = sim.harvest();
    let mem = snap.mem.expect("plane installed");
    assert_eq!(mem.evictions, [0, 0, 0]);
    assert_eq!(mem.oom_kills, 0);
    assert!(mem.node_util[0] > 0.85 && mem.node_util[0] <= 1.0);
    assert!(
        mem.throttle_secs.iter().all(|&t| t > 0.0),
        "both co-located services should be throttled: {:?}",
        mem.throttle_secs
    );
    // Requests still complete under interference (slower, not stopped).
    assert!(snap.completions[0] > 0);
}

#[test]
fn interference_slows_service_times() {
    // The same workload with and without memory interference: the
    // interfered run must show strictly higher p99 end-to-end latency.
    let run = |interfere: bool| {
        let mut sim = Simulation::new(two_tier_topology(), SimConfig::default(), 7);
        sim.set_rate(ClassId(0), RateFn::Constant(100.0));
        if interfere {
            let plan = MemPlan::new(vec![NodeMemCfg::new(256 << 20)])
                .with_profile(0, MemProfile::new(58 << 20, 0))
                .with_profile(1, MemProfile::new(57 << 20, 0))
                .with_thresholds(1.0, 0.85, 4.0);
            sim.install_memory_plane(&plan);
        }
        sim.run_for(SimDur::from_secs(60));
        sim.harvest().e2e_latency[0].percentile(99.0).unwrap()
    };
    let base = run(false);
    let interfered = run(true);
    assert!(
        interfered > base * 1.5,
        "x4 interference should inflate p99: base {base}, interfered {interfered}"
    );
}

#[test]
fn snapshot_counters_reset_between_windows() {
    let mut sim = Simulation::new(two_tier_topology(), SimConfig::default(), 7);
    let plan = MemPlan::new(vec![NodeMemCfg::new(256 << 20)])
        .with_profile(0, MemProfile::new(80 << 20, 0))
        .with_profile(1, MemProfile::new(80 << 20, 0))
        // Long restart delay: the single eviction in window 1 is not
        // repeated in window 2.
        .with_restart_delay(SimDur::from_secs(3_600));
    sim.install_memory_plane(&plan);
    sim.run_for(SimDur::from_secs(10));
    let w1 = sim.harvest().mem.unwrap();
    assert!(w1.evictions[0] >= 1);
    sim.run_for(SimDur::from_secs(10));
    let w2 = sim.harvest().mem.unwrap();
    assert_eq!(w2.evictions, [0, 0, 0], "window counters must drain");
}
