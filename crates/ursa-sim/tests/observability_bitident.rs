//! Property test: the observability planes are zero-cost when armed.
//!
//! The phase profiler and the flight recorder observe the engine; they
//! must never perturb it. For random chain topologies, replica counts,
//! and loads, a simulation with the profiler enabled, one with the
//! flight recorder armed, and one with every observability plane on
//! (profiler + recorder + span tracer) must all be bit-identical to the
//! plain simulator — same event count and byte-identical telemetry.
//! This is the contract that lets `--postmortem-dir` arm the recorder on
//! production experiment cells without changing a single published row.

use proptest::prelude::*;
use ursa_sim::prelude::*;

#[derive(Debug, Clone)]
struct ChainSpec {
    services: usize,
    replicas: usize,
    cores: f64,
    work_ms: f64,
    rps: f64,
    seed: u64,
}

fn chain_spec() -> impl Strategy<Value = ChainSpec> {
    (
        1usize..5,
        1usize..5,
        (0usize..3).prop_map(|i| [1.0, 2.0, 4.0][i]),
        0.5f64..5.0,
        5.0f64..80.0,
        any::<u64>(),
    )
        .prop_map(
            |(services, replicas, cores, work_ms, rps, seed)| ChainSpec {
                services,
                replicas,
                cores,
                work_ms,
                rps,
                seed,
            },
        )
}

/// Builds an N-deep RPC chain and drives it with Poisson arrivals.
fn build(spec: &ChainSpec) -> Simulation {
    let svcs: Vec<ServiceCfg> = (0..spec.services)
        .map(|i| ServiceCfg::new(format!("s{i}"), spec.cores).with_replicas(spec.replicas))
        .collect();
    let mut root = CallNode::leaf(
        ServiceId(spec.services - 1),
        WorkDist::Exponential {
            mean: spec.work_ms / 1000.0,
        },
    );
    for i in (0..spec.services - 1).rev() {
        root = CallNode::leaf(
            ServiceId(i),
            WorkDist::Exponential {
                mean: spec.work_ms / 1000.0,
            },
        )
        .with_child(EdgeKind::NestedRpc, root);
    }
    let topo = Topology::new(
        svcs,
        vec![ClassCfg {
            name: "chain".into(),
            priority: Priority::HIGH,
            root,
        }],
    )
    .unwrap();
    let mut sim = Simulation::new(topo, SimConfig::default(), spec.seed);
    sim.set_rate(ClassId(0), RateFn::Constant(spec.rps));
    sim
}

/// Runs for a few windows and returns a byte-exact digest of everything
/// observable: event count plus the debug rendering of every snapshot.
fn digest(mut sim: Simulation) -> String {
    let mut out = String::new();
    for _ in 0..3 {
        sim.run_for(SimDur::from_secs(40));
        let snap = sim.harvest();
        out.push_str(&format!("{snap:?}\n"));
    }
    out.push_str(&format!(
        "events={} stale={}",
        sim.events_processed(),
        sim.events_stale()
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn observability_planes_are_bit_identical(spec in chain_spec()) {
        let base = digest(build(&spec));

        // Phase profiler: wall-clock sampling only, no sim-RNG draws.
        let mut profiled = build(&spec);
        profiled.enable_profiler(PhaseProfiler::DEFAULT_SAMPLE_EVERY);
        prop_assert_eq!(&digest(profiled), &base, "profiler perturbed the run");

        // A pathological sampling stride must not change anything either.
        let mut dense = build(&spec);
        dense.enable_profiler(1);
        prop_assert_eq!(&digest(dense), &base, "sample_every=1 perturbed the run");

        // Flight recorder: a bounded ring fed from existing branches.
        let mut recorded = build(&spec);
        recorded.arm_flight_recorder(64);
        prop_assert_eq!(&digest(recorded), &base, "flight recorder perturbed the run");

        // Everything on at once, as `--postmortem-dir` arms it.
        let mut all = build(&spec);
        all.enable_profiler(PhaseProfiler::DEFAULT_SAMPLE_EVERY);
        all.arm_flight_recorder(FlightRecorder::DEFAULT_CAPACITY);
        all.enable_tracing(256, 0.05);
        prop_assert_eq!(&digest(all), &base, "combined planes perturbed the run");
    }

    #[test]
    fn flight_recorder_ring_is_bounded_and_ordered(spec in chain_spec()) {
        let mut sim = build(&spec);
        sim.arm_flight_recorder(32);
        sim.run_for(SimDur::from_secs(60));
        let rec = sim.flight_recorder().expect("recorder armed");
        prop_assert!(rec.len() <= rec.capacity());
        prop_assert_eq!(rec.recorded(), rec.dropped() + rec.len() as u64);
        // Pops are time-ordered, so the held window must be too (`seq` is
        // the heap-push ticket, a tiebreaker, not a pop ordinal).
        let entries: Vec<_> = rec.entries().collect();
        for pair in entries.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at, "ring must stay in time order");
        }
    }
}
