//! Property test: the chaos plane is zero-cost when disabled.
//!
//! For random chain topologies, replica counts, and loads, a simulation
//! with no fault plan, one with an *empty* plan, and one whose plan lies
//! entirely past the simulated horizon must all be bit-identical to the
//! plain simulator — same event count and byte-identical telemetry.

use proptest::prelude::*;
use ursa_sim::chaos::{FaultKind, FaultPlan};
use ursa_sim::prelude::*;

#[derive(Debug, Clone)]
struct ChainSpec {
    services: usize,
    replicas: usize,
    cores: f64,
    work_ms: f64,
    rps: f64,
    seed: u64,
}

fn chain_spec() -> impl Strategy<Value = ChainSpec> {
    (
        1usize..5,
        1usize..5,
        (0usize..3).prop_map(|i| [1.0, 2.0, 4.0][i]),
        0.5f64..5.0,
        5.0f64..80.0,
        any::<u64>(),
    )
        .prop_map(
            |(services, replicas, cores, work_ms, rps, seed)| ChainSpec {
                services,
                replicas,
                cores,
                work_ms,
                rps,
                seed,
            },
        )
}

/// Builds an N-deep RPC chain and drives it with Poisson arrivals.
fn build(spec: &ChainSpec) -> Simulation {
    let svcs: Vec<ServiceCfg> = (0..spec.services)
        .map(|i| ServiceCfg::new(format!("s{i}"), spec.cores).with_replicas(spec.replicas))
        .collect();
    let mut root = CallNode::leaf(
        ServiceId(spec.services - 1),
        WorkDist::Exponential {
            mean: spec.work_ms / 1000.0,
        },
    );
    for i in (0..spec.services - 1).rev() {
        root = CallNode::leaf(
            ServiceId(i),
            WorkDist::Exponential {
                mean: spec.work_ms / 1000.0,
            },
        )
        .with_child(EdgeKind::NestedRpc, root);
    }
    let topo = Topology::new(
        svcs,
        vec![ClassCfg {
            name: "chain".into(),
            priority: Priority::HIGH,
            root,
        }],
    )
    .unwrap();
    let mut sim = Simulation::new(topo, SimConfig::default(), spec.seed);
    sim.set_rate(ClassId(0), RateFn::Constant(spec.rps));
    sim
}

/// Runs for a few windows and returns a byte-exact digest of everything
/// observable: event count plus the debug rendering of every snapshot.
fn digest(mut sim: Simulation) -> String {
    let mut out = String::new();
    for _ in 0..3 {
        sim.run_for(SimDur::from_secs(40));
        let snap = sim.harvest();
        out.push_str(&format!("{snap:?}\n"));
    }
    out.push_str(&format!("events={}", sim.events_processed()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn chaos_disabled_is_bit_identical(spec in chain_spec()) {
        let base = digest(build(&spec));

        // Empty plan: installation is a no-op.
        let mut empty = build(&spec);
        empty.install_faults(&FaultPlan::new(), spec.seed);
        prop_assert_eq!(&digest(empty), &base, "empty plan diverged");

        // Plan entirely past the horizon: events are scheduled but never
        // actuate before the digest window ends.
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at: SimTime::ZERO + SimDur::from_secs(3_600),
            until: SimTime::ZERO + SimDur::from_secs(3_700),
            kind: FaultKind::Slowdown {
                service: 0,
                factor: 8.0,
            },
        });
        let mut late = build(&spec);
        late.install_faults(&plan, spec.seed);
        prop_assert_eq!(&digest(late), &base, "post-horizon plan diverged");
    }
}
