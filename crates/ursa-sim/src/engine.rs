//! The discrete-event simulation engine.
//!
//! [`Simulation`] executes a [`Topology`] under injected load. The model is
//! deliberately mechanistic rather than formula-based, so that the paper's
//! phenomena *emerge* instead of being asserted:
//!
//! * **Replicas** have a fractional CPU allocation (`cores`) and a bounded
//!   worker pool. Compute phases of in-flight requests share the CPU via
//!   processor sharing: with `n` active phases each progresses at rate
//!   `min(1, cores/n)` CPU-seconds per second.
//! * **Nested RPC** holds the caller's worker (but no CPU) until the callee
//!   responds, so a slow downstream tier exhausts upstream worker pools and
//!   inflates upstream queueing delay — the backpressure of paper §III.
//! * **Event-driven RPC** responds upstream immediately but parks a
//!   continuation on a bounded daemon pool; when the daemon pool and its
//!   submission queue fill, handlers block on submission — the residual
//!   backpressure the paper observes for event-driven chains.
//! * **Message queues** are unbounded and pull-based; producers never block,
//!   so no backpressure propagates (paper Fig. 2c).
//!
//! Queues serve strictly by [`crate::topology::Priority`], then FIFO. Scaling is by replica
//! count (Kubernetes-style) with graceful draining on scale-in.
//!
//! Processor sharing is implemented in *virtual time* (see [`crate::ps`]):
//! each replica advances one scalar clock instead of sweeping per-job
//! countdowns, so arrivals and completions cost O(log n) instead of O(n)
//! — the difference between a quadratic and a log-linear busy period in
//! the overloaded regime. The event loop is stale-aware: superseded
//! `PsCheck` timers are counted, skipped cheaply via a generation tag,
//! and lazily compacted out of the event queue when they dominate it.
//!
//! The event core (v3) is built for raw single-core throughput while
//! preserving the seed → bit-identical-output contract:
//!
//! * events live in a calendar queue ([`crate::calq`]) — O(1) bucket
//!   append for in-window pushes, heap order only over the current band;
//! * in-flight request/hop state lives in a generational SoA arena
//!   ([`crate::arena`]) instead of pooled per-request `Vec`s;
//! * per-hop routing fields come from the topology's SoA hot table
//!   ([`crate::topology::HotTable`]) instead of the wide flat nodes;
//! * Poisson sources draw their RNG in refillable blocks
//!   ([`ursa_stats::rng::BlockRng`]), preserving the exact draw stream.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use ursa_stats::dist::Distribution;
use ursa_stats::rng::{BlockRng, Rng};

use crate::arena::{Phase, ReqArena, NO_DAEMON};
use crate::calq::{CalQueue, QEntry};
use crate::chaos::{ChaosState, Fault, FaultEvent, FaultKind, FaultPhase, FaultPlan};
use crate::memory::{select_victim, MemEvent, MemEventKind, MemPlan, MemState, VictimCandidate};
use crate::profiler::{PhaseProfiler, SimPhase};
use crate::ps::{ps_rate, VtPs};
use crate::recorder::{FlightEntry, FlightEventKind, FlightRecorder};
use crate::shard::{Envelope, Msg, ShardCtx, ShardStats, SlotRef};
use crate::telemetry::{MetricsSnapshot, Telemetry};
use crate::time::{SimDur, SimTime};
use crate::topology::{
    CallMode, ClassId, EdgeKind, FlatClass, HotTable, ServiceId, Topology, NO_NESTED_PARENT,
};
use crate::trace::{Trace, Tracer};
use crate::workload::RateFn;

/// Work remainders below this many CPU-seconds count as complete.
const WORK_EPS: f64 = 1e-12;
/// Minimum compute per phase, so every start traverses the event loop
/// (bounds recursion depth by call-tree depth).
const MIN_WORK: f64 = 1e-9;
/// Smallest allowed CPU limit.
const MIN_CORES: f64 = 0.01;
/// Stale `PsCheck` entries tolerated in the event queue before a lazy
/// compaction pass filters them out. Compaction runs when the stale count
/// exceeds this floor *and* at least half the queue is stale, so small
/// queues (the common case) never pay for it and large overloaded runs
/// keep pop cost bounded by the *live* event count.
const COMPACT_MIN_STALE: usize = 4096;

/// Identifies one hop of one in-flight request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Token {
    slot: u32,
    gen: u32,
    node: u16,
}

/// Event payloads are deliberately compact (every field fits in 32 bits)
/// so a [`QEntry<EventKind>`] stays at 32 bytes: the event queue is the
/// hottest data structure in the engine and bucket promotions move whole
/// entries.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// Next candidate arrival of a class's Poisson source (thinning).
    SourceNext { class: u32, gen: u32 },
    /// A request hop arrives at its service (after network delay).
    NodeArrive { token: Token },
    /// Possible processor-sharing completion on a replica. `gen` is a
    /// perf filter, not a correctness gate: a check firing with a stale
    /// generation is skipped, but even a spuriously "live" one would only
    /// advance the virtual clock and pop jobs that are actually due.
    PsCheck {
        service: u16,
        replica: u16,
        gen: u32,
    },
    /// A trace-replay arrival scheduled via `schedule_arrivals`.
    TraceArrival { class: u32 },
    /// An installed fault window begins (index into the fault plan).
    ChaosStart { fault: u32 },
    /// An installed fault window ends.
    ChaosEnd { fault: u32 },
    /// Periodic memory-plane usage scan (see [`crate::memory`]).
    MemCheck,
    /// An OOM-killed or evicted replica of `service` restarts.
    MemRestart { service: u32 },
    /// A cross-shard message (sharded runs only): `msg` indexes the
    /// envelope parked in the shard context's slab. Scheduled with the
    /// *sender's* sequence number so the merged event order is a pure
    /// function of (time, seq), independent of delivery interleaving.
    Remote { msg: u32 },
}

/// Strict-priority FIFO queue of tokens.
#[derive(Debug, Clone)]
struct PrioQueue {
    qs: Vec<VecDeque<Token>>,
    len: usize,
}

impl PrioQueue {
    fn new(levels: usize) -> Self {
        PrioQueue {
            qs: (0..levels.max(1)).map(|_| VecDeque::new()).collect(),
            len: 0,
        }
    }
    fn push(&mut self, prio: usize, token: Token) {
        self.qs[prio].push_back(token);
        self.len += 1;
    }
    fn pop(&mut self) -> Option<Token> {
        for q in &mut self.qs {
            if let Some(t) = q.pop_front() {
                self.len -= 1;
                return Some(t);
            }
        }
        None
    }
    fn len(&self) -> usize {
        self.len
    }
    fn drain_all(&mut self) -> Vec<(usize, Token)> {
        let mut out = Vec::with_capacity(self.len);
        for (p, q) in self.qs.iter_mut().enumerate() {
            out.extend(q.drain(..).map(|t| (p, t)));
        }
        self.len = 0;
        out
    }
}

#[derive(Debug)]
struct Replica {
    cores: f64,
    workers: usize,
    busy_workers: usize,
    daemons: usize,
    busy_daemons: usize,
    daemon_cap: usize,
    /// Continuation tokens (child hops) waiting for a free daemon.
    daemon_queue: VecDeque<Token>,
    /// Handler hops blocked submitting a continuation: `(parent, child_idx)`.
    blocked_submitters: VecDeque<(Token, u16)>,
    queue: PrioQueue,
    /// Active compute phases under virtual-time processor sharing.
    ps: VtPs<Token>,
    last_advance: SimTime,
    /// Generation of the newest scheduled `PsCheck`; older pending checks
    /// are stale and skipped on pop.
    ps_gen: u32,
    /// Fire time of the current-generation pending check (valid while
    /// `has_check`). A resync only schedules a *new* check when the true
    /// next completion moved earlier; if it moved later, the pending
    /// check fires early, finds nothing due, and re-arms exactly — so
    /// most arrivals (any whose finish tag lands behind the head's)
    /// push no event.
    check_at: SimTime,
    has_check: bool,
    /// CPU telemetry accumulators, flushed to [`Telemetry`] on harvest
    /// and replica removal instead of per advance.
    busy_acc: f64,
    cap_acc: f64,
    draining: bool,
}

impl Replica {
    fn new(
        cores: f64,
        workers: usize,
        daemons: usize,
        daemon_cap: usize,
        levels: usize,
        now: SimTime,
    ) -> Self {
        Replica {
            cores,
            workers,
            busy_workers: 0,
            daemons,
            busy_daemons: 0,
            daemon_cap,
            daemon_queue: VecDeque::new(),
            blocked_submitters: VecDeque::new(),
            queue: PrioQueue::new(levels),
            ps: VtPs::new(),
            last_advance: now,
            ps_gen: 0,
            check_at: SimTime::ZERO,
            has_check: false,
            busy_acc: 0.0,
            cap_acc: 0.0,
            draining: false,
        }
    }

    fn is_idle(&self) -> bool {
        self.busy_workers == 0
            && self.busy_daemons == 0
            && self.queue.len() == 0
            && self.ps.is_empty()
            && self.daemon_queue.is_empty()
            && self.blocked_submitters.is_empty()
    }

    /// Integrates the virtual clock and the CPU accumulators up to `now`
    /// at the PS rate implied by the current membership and the service
    /// slowdown multiplier. O(1).
    #[inline]
    fn advance_to(&mut self, now: SimTime, slow: f64) {
        let elapsed = (now - self.last_advance).as_secs_f64();
        self.last_advance = now;
        if elapsed <= 0.0 {
            return;
        }
        let n = self.ps.len();
        if n > 0 {
            self.ps.advance(elapsed * ps_rate(self.cores, n, slow));
            self.busy_acc += (n as f64).min(self.cores) * elapsed;
        }
        self.cap_acc += self.cores * elapsed;
    }

    /// Real fire time of the next PS completion under the pinned
    /// nanosecond quantization, or `None` when idle. Assumes the clock
    /// is already advanced to `now`.
    #[inline]
    fn next_check_at(&self, now: SimTime, slow: f64) -> Option<SimTime> {
        let min_rem = self.ps.next_rem()?;
        let rate = ps_rate(self.cores, self.ps.len(), slow);
        // `x / 1.0 == x` bitwise: the gate skips the division, common on
        // uncontended replicas, without changing the quantized result.
        let dt_s = if rate == 1.0 { min_rem } else { min_rem / rate };
        let dt_ns = (dt_s * 1e9).ceil().max(1.0) as u64;
        Some(now + SimDur::from_nanos(dt_ns))
    }
}

#[derive(Debug)]
struct ServiceRt {
    cores: f64,
    workers: usize,
    daemons: usize,
    daemon_cap: usize,
    replicas: Vec<Option<Replica>>,
    /// Indices of live (non-draining) replicas, ascending — maintained on
    /// every liveness change so the per-arrival routing never re-scans (or
    /// re-allocates) the replica array.
    live: Vec<u32>,
    rr: usize,
    mq: PrioQueue,
}

impl ServiceRt {
    /// Recomputes the cached live list (cold path: scaling operations).
    fn rebuild_live(&mut self) {
        self.live.clear();
        for (i, r) in self.replicas.iter().enumerate() {
            if matches!(r, Some(rep) if !rep.draining) {
                self.live.push(i as u32);
            }
        }
    }
    fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[derive(Debug)]
struct Source {
    rate: RateFn,
    gen: u32,
    /// Block-buffered so interarrival + thinning draws amortize the
    /// xoshiro dependency chain; the observed stream is identical to a
    /// plain [`Rng`].
    rng: BlockRng,
}

/// Simulator configuration knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Mean one-way network delay applied to every inter-service hop (and
    /// to request injection). Default: 100 µs.
    pub net_delay: SimDur,
    /// Coefficient of variation of the network delay. 0 (default) keeps
    /// hops deterministic; > 0 samples each hop from a log-normal with the
    /// configured mean.
    pub net_delay_cv: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            net_delay: SimDur::from_nanos(100_000),
            net_delay_cv: 0.0,
        }
    }
}

/// A discrete-event simulation of a microservice application.
///
/// # Example
///
/// ```
/// use ursa_sim::engine::{SimConfig, Simulation};
/// use ursa_sim::time::SimDur;
/// use ursa_sim::topology::*;
/// use ursa_sim::workload::RateFn;
///
/// let topo = Topology::new(
///     vec![ServiceCfg::new("api", 4.0)],
///     vec![ClassCfg {
///         name: "get".into(),
///         priority: Priority::HIGH,
///         root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.002 }),
///     }],
/// ).expect("valid topology");
/// let mut sim = Simulation::new(topo, SimConfig::default(), 42);
/// sim.set_rate(ClassId(0), RateFn::Constant(200.0));
/// sim.run_for(SimDur::from_secs(60));
/// let snap = sim.harvest();
/// assert!(snap.completions[0] > 10_000);
/// ```
#[derive(Debug)]
pub struct Simulation {
    topology: Topology,
    /// Flattened call trees, shared with the topology (and every other
    /// simulation of it) — never cloned per request or per simulation.
    templates: Arc<Vec<FlatClass>>,
    /// SoA hot table over the flattened call trees: the per-hop fields
    /// touched on every arrival/response, without the wide-node stride.
    hot: Arc<HotTable>,
    services: Vec<ServiceRt>,
    names: Vec<String>,
    /// Generational SoA arena of in-flight request and hop state.
    arena: ReqArena,
    /// Scratch buffer for processor-sharing completions (reused across
    /// `ps_check` calls).
    ps_scratch: Vec<Token>,
    telemetry: Telemetry,
    events: CalQueue<EventKind>,
    seq: u64,
    /// Sequence-number stride: 1 standalone; the shard count in sharded
    /// runs, where shard `i` draws the residue class `i mod N` so sequence
    /// numbers stay globally unique across shards.
    seq_step: u64,
    /// Dispatched events that did real work (see [`events_processed`]).
    events_live: u64,
    /// Dispatched events that were stale on arrival: superseded `PsCheck`
    /// generations and re-armed Poisson sources.
    events_stale: u64,
    /// Stale `PsCheck` entries currently sitting in the event queue,
    /// maintained incrementally; drives lazy compaction.
    heap_stale: usize,
    /// Lazy compaction passes performed.
    heap_compactions: u64,
    now: SimTime,
    rng: Rng,
    sources: Vec<Source>,
    work_scale: Vec<f64>,
    cfg: SimConfig,
    prio_levels: usize,
    in_flight: usize,
    tracer: Option<Tracer>,
    /// Fault plane, installed via [`install_faults`](Self::install_faults).
    /// `None` (the default) costs one predictable branch per hook and
    /// leaves output bit-identical to a chaos-free engine.
    chaos: Option<Box<ChaosState>>,
    /// Phase profiler, installed via
    /// [`enable_profiler`](Self::enable_profiler). Honors the same
    /// bit-identical-when-disabled contract as the tracer and chaos
    /// planes.
    prof: Option<Box<PhaseProfiler>>,
    /// True only while the currently dispatched event is being sampled in
    /// detail *and* no profiler span is open — the one-word gate the inner
    /// phase hooks check. Kept outside `prof` so the not-sampling path is
    /// a plain bool load.
    prof_sampling: bool,
    /// Flight recorder, armed via
    /// [`arm_flight_recorder`](Self::arm_flight_recorder). Purely
    /// observational; same bit-identical contract.
    recorder: Option<Box<FlightRecorder>>,
    /// Memory plane, installed via
    /// [`install_memory_plane`](Self::install_memory_plane). `None` (the
    /// default) costs one predictable branch per PS rate lookup and
    /// leaves output bit-identical to a memory-free engine.
    mem: Option<Box<MemState>>,
    /// Shard context when this engine is one worker of a
    /// [`ShardedSimulation`](crate::shard::ShardedSimulation). `None` (the
    /// default) costs one predictable branch on the child-launch path and
    /// leaves standalone output bit-identical.
    shard: Option<Box<ShardCtx>>,
}

impl Simulation {
    /// Builds a simulation of `topology` with the given configuration and
    /// deterministic seed.
    pub fn new(topology: Topology, cfg: SimConfig, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let prio_levels = topology
            .classes()
            .iter()
            .map(|c| c.priority.0 as usize + 1)
            .max()
            .unwrap_or(1);
        let templates = topology.flat_classes();
        let services: Vec<ServiceRt> = topology
            .services()
            .iter()
            .map(|s| {
                let replicas = (0..s.initial_replicas)
                    .map(|_| {
                        Some(Replica::new(
                            s.cores,
                            s.workers,
                            s.daemon_workers,
                            s.daemon_queue_cap,
                            prio_levels,
                            SimTime::ZERO,
                        ))
                    })
                    .collect();
                ServiceRt {
                    cores: s.cores,
                    workers: s.workers,
                    daemons: s.daemon_workers,
                    daemon_cap: s.daemon_queue_cap,
                    replicas,
                    live: (0..s.initial_replicas as u32).collect(),
                    rr: 0,
                    mq: PrioQueue::new(prio_levels),
                }
            })
            .collect();
        let names = topology.services().iter().map(|s| s.name.clone()).collect();
        let telemetry = Telemetry::new(&topology);
        let sources = (0..topology.num_classes())
            .map(|_| Source {
                rate: RateFn::Constant(0.0),
                gen: 0,
                rng: BlockRng::new(rng.split()),
            })
            .collect();
        let work_scale = vec![1.0; topology.num_services()];
        let hot = topology.hot_table();
        Simulation {
            topology,
            templates,
            hot,
            services,
            names,
            arena: ReqArena::new(),
            ps_scratch: Vec::new(),
            telemetry,
            events: CalQueue::new(),
            seq: 0,
            seq_step: 1,
            events_live: 0,
            events_stale: 0,
            heap_stale: 0,
            heap_compactions: 0,
            now: SimTime::ZERO,
            rng,
            sources,
            work_scale,
            cfg,
            prio_levels,
            in_flight: 0,
            tracer: None,
            chaos: None,
            prof: None,
            prof_sampling: false,
            recorder: None,
            mem: None,
            shard: None,
        }
    }

    /// Enables per-request span tracing: each injected request is
    /// head-sampled with probability `sample_rate`; sampled requests record
    /// one [`TraceSpan`](crate::trace::TraceSpan) per hop, assembled into a
    /// [`Trace`] on completion and kept in a bounded ring of `capacity`
    /// finished traces (oldest evicted). Disabled by default; the disabled
    /// path costs one predictable branch per hook. The sampling RNG is
    /// independent of the simulation RNG, so enabling tracing does not
    /// change simulated behavior.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `sample_rate` is outside `[0, 1]`.
    pub fn enable_tracing(&mut self, capacity: usize, sample_rate: f64) {
        // The sampler seed must NOT be drawn from `self.rng`: consuming the
        // sim stream here would make traced and untraced runs diverge.
        let seed =
            0x712A_CE5E_ED00_0001 ^ (capacity as u64) ^ sample_rate.to_bits().rotate_left(17);
        self.tracer = Some(Tracer::new(capacity, sample_rate, seed));
    }

    /// Drains the finished traces (empty if tracing is disabled; sampled
    /// requests still in flight remain pending).
    pub fn take_traces(&mut self) -> Vec<Trace> {
        match &mut self.tracer {
            Some(t) => t.take(),
            None => Vec::new(),
        }
    }

    /// The tracer, if tracing is enabled — exposes sampling statistics.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Enables the engine phase profiler (see [`crate::profiler`]): every
    /// `sample_every`-th dispatched event is wall-clock timed in detail
    /// and attributed to phases. The profiler only *reads* the wall clock
    /// — it never touches simulation state or any RNG — so enabling it
    /// leaves simulated output bit-identical to a run without it.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn enable_profiler(&mut self, sample_every: u32) {
        self.prof = Some(Box::new(PhaseProfiler::new(sample_every)));
        self.prof_sampling = false;
    }

    /// The phase profiler, if enabled — call
    /// [`report`](PhaseProfiler::report) for the breakdown.
    pub fn profiler(&self) -> Option<&PhaseProfiler> {
        self.prof.as_deref()
    }

    /// Feeds exact control-callback wall time into the profiler (no-op
    /// when profiling is off). Called by the deployment driver, which
    /// already times each manager tick.
    pub fn profiler_note_control(&mut self, nanos: u64) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.accrue_control(nanos);
        }
    }

    /// Arms the flight recorder (see [`crate::recorder`]): the most
    /// recent `capacity` engine events and control-plane transitions are
    /// kept in a bounded ring for post-mortem dumps. Purely
    /// observational; simulated output stays bit-identical to an unarmed
    /// run.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn arm_flight_recorder(&mut self, capacity: usize) {
        self.recorder = Some(Box::new(FlightRecorder::new(capacity)));
    }

    /// The flight recorder, if armed.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// Fault windows active right now: `(plan index, fault)` pairs whose
    /// window contains the current simulated time. Empty when the chaos
    /// plane is off.
    pub fn active_faults(&self) -> Vec<(u32, Fault)> {
        match self.chaos.as_deref() {
            None => Vec::new(),
            Some(c) => c
                .faults
                .iter()
                .enumerate()
                .filter(|(_, f)| f.at <= self.now && self.now < f.until)
                .map(|(i, f)| (i as u32, *f))
                .collect(),
        }
    }

    /// Installs a fault plan (see [`crate::chaos`]): each window's start
    /// and end become ordinary discrete events in the loop. `seed` drives
    /// the chaos RNG (RPC drop sampling) and is independent of the
    /// simulation seed, so identical workloads stay identical across
    /// chaos-enabled runs with the same plan. An empty plan schedules no
    /// events and draws no random numbers — output stays bit-identical to
    /// a chaos-free run.
    ///
    /// # Panics
    ///
    /// Panics if a plan is already installed, or if a fault references a
    /// service outside the topology.
    pub fn install_faults(&mut self, plan: &FaultPlan, seed: u64) {
        assert!(self.chaos.is_none(), "fault plan already installed");
        for f in &plan.faults {
            if let Some(s) = f.kind.service() {
                assert!(
                    s < self.services.len(),
                    "fault targets service {s}, topology has {}",
                    self.services.len()
                );
            }
        }
        // The chaos seed must NOT be drawn from `self.rng`: consuming the
        // sim stream here would make faulted and fault-free runs diverge
        // even with an empty plan.
        let chaos_seed = 0xC4A0_5FA0_17ED_0001u64 ^ seed.rotate_left(11);
        let state = ChaosState::new(plan, self.services.len(), chaos_seed);
        for (i, f) in plan.faults.iter().enumerate() {
            let fault = i as u32;
            self.schedule(f.at, EventKind::ChaosStart { fault });
            self.schedule(f.until, EventKind::ChaosEnd { fault });
        }
        self.chaos = Some(Box::new(state));
    }

    /// Number of fault windows installed (0 when the chaos plane is off).
    pub fn faults_installed(&self) -> usize {
        self.chaos.as_ref().map_or(0, |c| c.faults.len())
    }

    /// Installs the memory plane (see [`crate::memory`]): a periodic usage
    /// scan becomes an ordinary discrete event that OOM-kills replicas
    /// over their memory limit, evicts replicas under node memory
    /// pressure in kubelet QoS order, and applies noisy-neighbor CPU
    /// interference on overcommitted nodes through the same rate-swap
    /// hook chaos slowdowns use. Demand is a deterministic function of
    /// engine state — the plane draws no random numbers — so identical
    /// workloads produce identical kill/eviction schedules. A plan with
    /// no profiles schedules no events, leaving output bit-identical to a
    /// run without the plane.
    ///
    /// # Panics
    ///
    /// Panics if a plane is already installed or the plan is invalid (no
    /// nodes, out-of-range service, non-finite thresholds).
    pub fn install_memory_plane(&mut self, plan: &MemPlan) {
        assert!(self.mem.is_none(), "memory plane already installed");
        let mut state = MemState::new(plan, &self.topology);
        state.last_check = self.now;
        let active = !plan.profiles.is_empty();
        let first = self.now + plan.check_interval;
        self.mem = Some(Box::new(state));
        if active {
            self.schedule(first, EventKind::MemCheck);
        }
    }

    /// True when a memory plane is installed.
    pub fn memory_plane_installed(&self) -> bool {
        self.mem.is_some()
    }

    /// Read-only view of the installed memory-plane state (`None` when
    /// the plane is off) — for tests and diagnostics.
    pub fn memory_plane(&self) -> Option<&MemState> {
        self.mem.as_deref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The application topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Requests currently in flight (injected but not fully completed).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Discrete events dispatched since construction that did real work —
    /// the engine's honest throughput denominator
    /// (`events_processed() / wall_seconds` = events/sec for a run).
    /// Stale dispatches (superseded `PsCheck` generations, re-armed
    /// sources) are excluded; see [`events_stale`](Self::events_stale).
    pub fn events_processed(&self) -> u64 {
        self.events_live
    }

    /// Dispatched events that were stale on arrival and did no work.
    /// Historically these inflated `events_processed`, flattering
    /// events/sec; they are now reported separately.
    pub fn events_stale(&self) -> u64 {
        self.events_stale
    }

    /// Current depth of the event queue (live + stale entries).
    pub fn event_heap_depth(&self) -> usize {
        self.events.len()
    }

    /// High-water mark of the event queue over the simulation's lifetime.
    pub fn event_heap_max_depth(&self) -> usize {
        self.events.max_depth()
    }

    /// Stale `PsCheck` entries currently in the event queue.
    pub fn event_heap_stale(&self) -> usize {
        self.heap_stale
    }

    /// Lazy queue-compaction passes performed so far.
    pub fn heap_compactions(&self) -> u64 {
        self.heap_compactions
    }

    /// Current band width of the calendar event queue, in nanoseconds.
    pub fn event_queue_band_ns(&self) -> u64 {
        self.events.band_ns()
    }

    /// Adaptive band-width rebuilds of the calendar event queue.
    pub fn event_queue_resizes(&self) -> u64 {
        self.events.resizes()
    }

    /// Bucket-to-heap promotions performed by the calendar event queue.
    pub fn event_queue_promotions(&self) -> u64 {
        self.events.promotions()
    }

    /// Largest single bucket a promotion drained.
    pub fn event_queue_max_band_drain(&self) -> usize {
        self.events.max_band_drain()
    }

    /// High-water mark of the far-future overflow band.
    pub fn event_queue_overflow_max(&self) -> usize {
        self.events.overflow_max()
    }

    /// High-water mark of concurrently allocated request slots.
    pub fn arena_slots_high_water(&self) -> usize {
        self.arena.slots_high_water()
    }

    /// High-water mark of hop records carved in the request arena.
    pub fn arena_nodes_high_water(&self) -> usize {
        self.arena.nodes_high_water()
    }

    /// Sets (or replaces) the arrival process of a request class.
    ///
    /// Arrivals follow a Poisson process whose instantaneous rate is
    /// `rate_fn.rate(t)` (non-homogeneous via thinning).
    pub fn set_rate(&mut self, class: ClassId, rate_fn: RateFn) {
        let src = &mut self.sources[class.0];
        src.gen += 1;
        src.rate = rate_fn;
        let gen = src.gen;
        self.arm_source(class.0, gen);
    }

    fn arm_source(&mut self, class: usize, gen: u32) {
        let lam_max = self.sources[class].rate.max_rate();
        if lam_max <= 0.0 {
            return;
        }
        let t0 = self.prof_span();
        // Inverse-CDF exponential draw, the exact expression of
        // `Exponential::sample`, inlined so the source pulls from its
        // block-buffered RNG: identical stream, identical f64 result.
        let dt = -self.sources[class].rng.next_f64_open().ln() / lam_max;
        self.prof_span_end(SimPhase::Rng, t0);
        let at = self.now + SimDur::from_secs_f64(dt);
        self.schedule(
            at,
            EventKind::SourceNext {
                class: class as u32,
                gen,
            },
        );
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let t0 = self.prof_span();
        self.seq += self.seq_step;
        self.events.push(at, self.seq, kind);
        self.prof_span_end(SimPhase::QueuePush, t0);
        if self.heap_stale >= COMPACT_MIN_STALE && self.heap_stale * 2 >= self.events.len() {
            let t0 = self.prof_span();
            self.compact_events();
            self.prof_span_end(SimPhase::QueueMaint, t0);
        }
    }

    /// Filters stale `PsCheck` entries out of the event queue. O(n); pop
    /// order is unaffected because `(at, seq)` is a total order
    /// independent of the queue's internal layout — determinism is
    /// preserved no matter when compaction runs.
    fn compact_events(&mut self) {
        let services = &self.services;
        self.events.retain(|kind| match *kind {
            EventKind::PsCheck {
                service,
                replica,
                gen,
            } => matches!(
                &services[service as usize].replicas[replica as usize],
                Some(rep) if rep.ps_gen == gen
            ),
            _ => true,
        });
        self.heap_stale = 0;
        self.heap_compactions += 1;
    }

    /// Injects one request of `class` right now (root hop arrives after the
    /// configured network delay).
    pub fn inject(&mut self, class: ClassId) {
        let num_nodes = self.templates[class.0].nodes.len();
        let traced = match &mut self.tracer {
            Some(t) => t.wants_sample(),
            None => false,
        };
        let slot = self
            .arena
            .alloc(class.0 as u32, self.now, num_nodes as u16, traced);
        if traced {
            self.tracer
                .as_mut()
                .expect("traced implies tracer")
                .start(slot, class, self.now, num_nodes);
        }
        self.in_flight += 1;
        let t0p = self.prof_span();
        self.telemetry.record_injection(class);
        self.prof_span_end(SimPhase::Telemetry, t0p);
        if self.shard.is_some() {
            self.note_home_slot(slot, class);
        }
        let token = Token {
            slot,
            gen: self.arena.gen(slot),
            node: 0,
        };
        let at = self.now + self.sample_net_delay();
        self.schedule(at, EventKind::NodeArrive { token });
    }

    /// Schedules explicit arrivals of `class` at the given absolute times —
    /// trace replay, complementing the Poisson sources.
    ///
    /// # Panics
    ///
    /// Panics if any time is in the past.
    pub fn schedule_arrivals(&mut self, class: ClassId, times: &[SimTime]) {
        for &at in times {
            assert!(
                at >= self.now,
                "arrival {at} is in the past (now {})",
                self.now
            );
            self.schedule(
                at,
                EventKind::TraceArrival {
                    class: class.0 as u32,
                },
            );
        }
    }

    /// Runs the simulation until simulated time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.run_events_bounded(t, SimTime::from_nanos(u64::MAX));
        if t > self.now {
            self.now = t;
        }
    }

    /// Processes events with `at <= t` and `at < before`, returning how
    /// many were dispatched. `before` is the conservative safe horizon in
    /// sharded runs; standalone callers pass `SimTime::from_nanos(u64::MAX)`
    /// and get exactly the historical `run_until` loop.
    fn run_events_bounded(&mut self, t: SimTime, before: SimTime) -> u64 {
        let mut dispatched = 0u64;
        while let Some(&entry) = self.events.peek() {
            if entry.at > t || entry.at >= before {
                break;
            }
            // Profiler gate: one predictably-false branch when disabled;
            // when enabled, only every N-th event reads the clock.
            let ev_t0 = match self.prof.as_deref_mut() {
                Some(p) => {
                    if p.event_tick() {
                        self.prof_sampling = true;
                        Some(Instant::now())
                    } else {
                        None
                    }
                }
                None => None,
            };
            let entry = self.events.pop().expect("peeked");
            let popped_at = ev_t0.map(|_| Instant::now());
            self.now = entry.at;
            if self.recorder.is_some() {
                self.record_event(&entry);
            }
            if self.dispatch(entry.kind) {
                self.events_live += 1;
            } else {
                self.events_stale += 1;
            }
            if let (Some(t0), Some(t1)) = (ev_t0, popped_at) {
                let total = t0.elapsed().as_nanos() as u64;
                let queue_pop = (t1 - t0).as_nanos() as u64;
                self.prof_sampling = false;
                if let Some(p) = self.prof.as_deref_mut() {
                    p.event_done(total, queue_pop);
                }
            }
            dispatched += 1;
        }
        dispatched
    }

    /// Maps a popped event to its flight-recorder entry and records it.
    /// Recording happens *before* dispatch so the ring reads causally:
    /// first the event, then the transitions it provoked.
    fn record_event(&mut self, entry: &QEntry<EventKind>) {
        let kind = match entry.kind {
            EventKind::SourceNext { class, .. } => FlightEventKind::SourceNext { class },
            EventKind::NodeArrive { token } => FlightEventKind::NodeArrive {
                slot: token.slot,
                node: token.node,
            },
            EventKind::PsCheck {
                service,
                replica,
                gen,
            } => FlightEventKind::PsCheck {
                service,
                replica,
                live: matches!(
                    &self.services[service as usize].replicas[replica as usize],
                    Some(rep) if rep.ps_gen == gen
                ),
            },
            EventKind::TraceArrival { class } => FlightEventKind::TraceArrival { class },
            EventKind::ChaosStart { fault } => FlightEventKind::ChaosStart { fault },
            EventKind::ChaosEnd { fault } => FlightEventKind::ChaosEnd { fault },
            EventKind::MemCheck => FlightEventKind::MemCheck,
            EventKind::MemRestart { service } => FlightEventKind::MemRestart {
                service: service as u16,
            },
            // Sharded runs never arm the flight recorder (the facade
            // exposes no hook), so remote events need no representation.
            EventKind::Remote { .. } => return,
        };
        self.record_flight(entry.at, entry.seq, kind);
    }

    /// Appends one flight-recorder entry (no-op branch when disarmed).
    #[inline]
    fn record_flight(&mut self, at: SimTime, seq: u64, kind: FlightEventKind) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.push(FlightEntry { at, seq, kind });
        }
    }

    /// Opens a profiler span: returns a start instant only while the
    /// current event is sampled and no span is already open (outermost
    /// span wins; nested hooks fold into it).
    #[inline]
    fn prof_span(&mut self) -> Option<Instant> {
        if self.prof_sampling {
            self.prof_sampling = false;
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a profiler span opened by [`Self::prof_span`], attributing
    /// its wall time to `phase`.
    #[inline]
    fn prof_span_end(&mut self, phase: SimPhase, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let nanos = t0.elapsed().as_nanos() as u64;
            self.prof_sampling = true;
            if let Some(p) = self.prof.as_deref_mut() {
                p.accrue(phase, nanos);
            }
        }
    }

    /// Runs the simulation for a span of simulated time.
    pub fn run_for(&mut self, dur: SimDur) {
        let t = self.now + dur;
        self.run_until(t);
    }

    /// Dispatches one event; returns `false` when the event was stale on
    /// arrival (a superseded `PsCheck` or re-armed source) and did no
    /// work.
    fn dispatch(&mut self, kind: EventKind) -> bool {
        match kind {
            EventKind::SourceNext { class, gen } => {
                let class = class as usize;
                if self.sources[class].gen != gen {
                    return false;
                }
                let lam_max = self.sources[class].rate.max_rate();
                if lam_max > 0.0 {
                    // Constant-rate fast path: thinning always accepts, so
                    // skip the accept draw (one fewer RNG advance per
                    // arrival; the interarrival stream is unchanged).
                    let accept = match self.sources[class].rate {
                        RateFn::Constant(_) => true,
                        _ => {
                            let lam = self.sources[class].rate.rate(self.now);
                            self.sources[class].rng.next_f64() < lam / lam_max
                        }
                    };
                    if accept {
                        self.inject(ClassId(class));
                    }
                    self.arm_source(class, gen);
                }
                true
            }
            EventKind::NodeArrive { token } => {
                if self.token_alive(token) {
                    self.node_arrive(token);
                }
                true
            }
            EventKind::PsCheck {
                service,
                replica,
                gen,
            } => self.ps_check(service as usize, replica as usize, gen),
            EventKind::TraceArrival { class } => {
                self.inject(ClassId(class as usize));
                true
            }
            EventKind::ChaosStart { fault } => {
                let t0 = self.prof_span();
                self.chaos_start(fault as usize);
                self.prof_span_end(SimPhase::Chaos, t0);
                true
            }
            EventKind::ChaosEnd { fault } => {
                let t0 = self.prof_span();
                self.chaos_end(fault as usize);
                self.prof_span_end(SimPhase::Chaos, t0);
                true
            }
            EventKind::MemCheck => {
                let t0 = self.prof_span();
                let live = self.mem_check();
                self.prof_span_end(SimPhase::Mem, t0);
                live
            }
            EventKind::MemRestart { service } => {
                let t0 = self.prof_span();
                self.mem_restart(service as usize);
                self.prof_span_end(SimPhase::Mem, t0);
                true
            }
            EventKind::Remote { msg } => {
                self.remote_event(msg);
                true
            }
        }
    }

    // ---- Fault plane ------------------------------------------------------

    /// Injects fault window `i`: actuate its kind and record the event.
    fn chaos_start(&mut self, i: usize) {
        let Some(chaos) = self.chaos.as_deref() else {
            return;
        };
        let fault = chaos.faults[i];
        let detail = match fault.kind {
            FaultKind::Slowdown { service, factor } => {
                // Rate rescale, not tag rewrite: integrate progress up to
                // now at the old rate, switch, recompute completions.
                self.ps_sync_all(service);
                self.chaos_mut().slow_on(service, factor);
                self.ps_resync_all(service);
                format!("svc {service}, x{factor}")
            }
            FaultKind::ReplicaCrash { service, count } => {
                let killed = self.chaos_kill(service, count);
                if killed > 0 {
                    self.chaos_mut().killed[i].push((service, killed));
                }
                format!("svc {service}, -{killed} replicas")
            }
            FaultKind::NodeFailure { node } => {
                let nodes = self.chaos_ref().nodes;
                for s in 0..self.services.len() {
                    // Synthetic deterministic placement: replica slot `r`
                    // of service `s` lives on node `(s + r) % nodes`.
                    let colocated = self.services[s]
                        .live
                        .iter()
                        .filter(|&&r| (s + r as usize) % nodes == node)
                        .count();
                    let killed = self.chaos_kill(s, colocated);
                    if killed > 0 {
                        self.chaos_mut().killed[i].push((s, killed));
                    }
                }
                let total: usize = self.chaos_ref().killed[i].iter().map(|&(_, k)| k).sum();
                format!("node {node}, -{total} replicas")
            }
            FaultKind::RpcFault {
                service, drop_prob, ..
            } => {
                self.chaos_mut().rpc_on(service, i as u32);
                format!("svc {service}, drop p={drop_prob}")
            }
            FaultKind::MqStall { service } => {
                self.chaos_mut().mq_stalled[service] += 1;
                format!("svc {service}")
            }
        };
        let event = FaultEvent {
            at: self.now,
            fault: i as u32,
            phase: FaultPhase::Injected,
            kind: fault.kind.label(),
            service: fault.kind.service(),
            detail,
        };
        self.chaos_mut().record(event);
    }

    /// Clears fault window `i`: undo its effect and record the recovery.
    fn chaos_end(&mut self, i: usize) {
        let Some(chaos) = self.chaos.as_deref() else {
            return;
        };
        let fault = chaos.faults[i];
        let detail = match fault.kind {
            FaultKind::Slowdown { service, factor } => {
                self.ps_sync_all(service);
                self.chaos_mut().slow_off(service, factor);
                self.ps_resync_all(service);
                format!("svc {service}")
            }
            FaultKind::ReplicaCrash { .. } | FaultKind::NodeFailure { .. } => {
                // Restart what this window killed, on top of whatever the
                // manager did meanwhile (restarted replicas rejoin; the
                // manager scales back in if over-provisioned).
                let restore = std::mem::take(&mut self.chaos_mut().killed[i]);
                let total: usize = restore.iter().map(|&(_, k)| k).sum();
                for (s, k) in restore {
                    let live = self.services[s].live_count();
                    self.set_replicas(ServiceId(s), live + k);
                }
                format!("+{total} replicas")
            }
            FaultKind::RpcFault { service, .. } => {
                self.chaos_mut().rpc_off(service, i as u32);
                format!("svc {service}")
            }
            FaultKind::MqStall { service } => {
                let stalled = {
                    let c = self.chaos_mut();
                    c.mq_stalled[service] -= 1;
                    c.mq_stalled[service]
                };
                if stalled == 0 {
                    // Broker back: drain the accumulated backlog through
                    // the normal consumer-group path.
                    self.dispatch_shared(service);
                }
                format!("svc {service}")
            }
        };
        let event = FaultEvent {
            at: self.now,
            fault: i as u32,
            phase: FaultPhase::Recovered,
            kind: fault.kind.label(),
            service: fault.kind.service(),
            detail,
        };
        self.chaos_mut().record(event);
    }

    /// Crashes up to `want` replicas of service `s`, always keeping one
    /// alive (`pick_replica` requires a non-empty live set — total
    /// blackout of a service is out of scope). Reuses the graceful-drain
    /// machinery: the replica leaves load balancing at once and its queue
    /// is re-dispatched, but in-PS work completes (fail-stop with
    /// connection draining; losing requests would break conservation).
    fn chaos_kill(&mut self, s: usize, want: usize) -> usize {
        let live = self.services[s].live_count();
        let kill = want.min(live.saturating_sub(1));
        if kill > 0 {
            self.set_replicas(ServiceId(s), live - kill);
        }
        kill
    }

    fn chaos_ref(&self) -> &ChaosState {
        self.chaos.as_deref().expect("chaos plane installed")
    }

    fn chaos_mut(&mut self) -> &mut ChaosState {
        self.chaos.as_deref_mut().expect("chaos plane installed")
    }

    /// Active slowdown multiplier of a service (1.0 when chaos is off).
    #[inline]
    fn chaos_slow(&self, s: usize) -> f64 {
        match &self.chaos {
            Some(c) => c.slow[s],
            None => 1.0,
        }
    }

    /// True while an MQ-stall fault is active on service `s`.
    #[inline]
    fn chaos_mq_stalled(&self, s: usize) -> bool {
        matches!(&self.chaos, Some(c) if c.mq_stalled[s] > 0)
    }

    /// Extra delivery delay for a message toward its callee under an
    /// active RPC fault (zero, with no RNG draw, otherwise).
    fn chaos_rpc_penalty(&mut self, token: Token) -> SimDur {
        let class = self.arena.class(token.slot);
        let callee = self.templates[class].nodes[token.node as usize].service;
        match self.chaos.as_deref_mut() {
            Some(c) => c.rpc_penalty(callee),
            None => SimDur::ZERO,
        }
    }

    // ---- Memory plane -----------------------------------------------------

    /// Combined service-time multiplier: the chaos plane's slowdown times
    /// the memory plane's noisy-neighbor interference. Exactly 1.0 when
    /// both planes are off, and an exact `x * 1.0` when a plane is
    /// installed but inactive — the PS hot path sees bit-identical rates.
    #[inline]
    fn slow_of(&self, s: usize) -> f64 {
        let mut slow = self.chaos_slow(s);
        if let Some(m) = &self.mem {
            slow *= m.interf[s];
        }
        slow
    }

    fn mem_ref(&self) -> &MemState {
        self.mem.as_deref().expect("memory plane installed")
    }

    fn mem_mut(&mut self) -> &mut MemState {
        self.mem.as_deref_mut().expect("memory plane installed")
    }

    /// Deterministic memory usage of live replica slot `r` of service `s`
    /// under the installed plane: profile demand driven by the replica's
    /// in-flight load (PS-active plus queued) and its age. Zero without a
    /// profile.
    fn mem_usage_of(&self, s: usize, r: usize) -> u64 {
        let m = self.mem_ref();
        let Some(profile) = m.profiles[s] else {
            return 0;
        };
        let rep = self.services[s].replicas[r].as_ref().expect("live replica");
        let in_flight = rep.ps.len() + rep.queue.len();
        let age = match m.births[s].get(r).copied().flatten() {
            Some(b) => (self.now - b).as_secs_f64(),
            None => 0.0,
        };
        profile.usage(in_flight, age)
    }

    /// One periodic memory-plane scan — the kubelet housekeeping tick.
    /// Recomputes per-replica usage, OOM-kills limit violators, relieves
    /// node pressure by QoS-ordered eviction, updates noisy-neighbor
    /// interference, and re-arms the next scan.
    fn mem_check(&mut self) -> bool {
        let Some(m) = self.mem.as_deref() else {
            return false;
        };
        let now = self.now;
        let interval = m.check_interval;
        let restart_delay = m.restart_delay;
        let nodes = m.nodes.len();
        let pressure = m.pressure_threshold;
        let interference_threshold = m.interference_threshold;
        let factor = m.interference_factor;
        let ns = self.services.len();

        // Integrate interference time since the previous scan at the
        // multipliers that actually held over the span.
        {
            let last = self.mem_ref().last_check;
            let span = (now - last).as_secs_f64();
            let m = self.mem_mut();
            for s in 0..ns {
                if m.interf[s] > 1.0 {
                    m.throttle_secs[s] += span;
                }
            }
            m.last_check = now;
        }

        // Refresh per-slot birth times: live slots keep (or get) their
        // first-seen time; drained/absent slots forget theirs, so a
        // future replica reusing the slot starts with a fresh heap.
        for s in 0..ns {
            let slots = self.services[s].replicas.len();
            let alive: Vec<bool> = (0..slots)
                .map(|r| matches!(&self.services[s].replicas[r], Some(rep) if !rep.draining))
                .collect();
            let m = self.mem_mut();
            m.births[s].resize(slots, None);
            for (r, live) in alive.iter().enumerate() {
                if *live {
                    m.births[s][r].get_or_insert(now);
                } else {
                    m.births[s][r] = None;
                }
            }
        }

        // OOM-kill: memory is incompressible, so a replica over its
        // service's limit is killed outright (the violating slot itself —
        // graceful drain keeps in-PS work, matching fail-stop with
        // connection draining) and restarts after the restart delay. The
        // last live replica of a service restarts in place instead
        // (capacity never drops to zero): the heap resets but the slot
        // keeps serving.
        for s in 0..ns {
            let limit = self.mem_ref().limits[s];
            if limit == 0 || self.mem_ref().profiles[s].is_none() {
                continue;
            }
            let live: Vec<usize> = self.services[s].live.iter().map(|&r| r as usize).collect();
            for r in live {
                let usage = self.mem_usage_of(s, r);
                if usage <= limit {
                    continue;
                }
                let qos = self.mem_ref().qos[s];
                let node = self.mem_ref().node_of(s, r);
                let (at, seq) = (self.now, self.seq);
                self.record_flight(
                    at,
                    seq,
                    FlightEventKind::OomKill {
                        service: s as u16,
                        replica: r as u16,
                    },
                );
                {
                    let m = self.mem_mut();
                    m.oom_kills += 1;
                    m.record(MemEvent {
                        at: now,
                        kind: MemEventKind::OomKill,
                        service: s,
                        node,
                        qos,
                        usage_bytes: usage,
                    });
                }
                if self.services[s].live_count() > 1 {
                    self.mem_mut().births[s][r] = None;
                    self.drain_replica(s, r);
                    self.schedule(
                        now + restart_delay,
                        EventKind::MemRestart { service: s as u32 },
                    );
                } else {
                    self.mem_mut().births[s][r] = Some(now);
                }
            }
        }

        // Node pressure: while a node's usage exceeds the pressure
        // threshold, evict in the kubelet's order — lowest QoS tier
        // first, then highest usage-over-request. Each eviction strictly
        // shrinks the live set, so the loop terminates.
        for node in 0..nodes {
            let cap = self.mem_ref().nodes[node].mem_bytes as f64;
            loop {
                let mut usage_total = 0u64;
                let mut cands: Vec<VictimCandidate> = Vec::new();
                for s in 0..ns {
                    if self.mem_ref().profiles[s].is_none() {
                        continue;
                    }
                    let live: Vec<usize> =
                        self.services[s].live.iter().map(|&r| r as usize).collect();
                    let evictable = live.len() > 1;
                    for r in live {
                        if self.mem_ref().node_of(s, r) != node {
                            continue;
                        }
                        let usage = self.mem_usage_of(s, r);
                        usage_total += usage;
                        cands.push(VictimCandidate {
                            service: s,
                            replica: r,
                            qos: self.mem_ref().qos[s],
                            usage_bytes: usage,
                            request_bytes: self.mem_ref().requests[s],
                            evictable,
                        });
                    }
                }
                self.mem_mut().node_util[node] = usage_total as f64 / cap;
                if usage_total as f64 <= pressure * cap {
                    break;
                }
                let Some(v) = select_victim(&cands) else {
                    break;
                };
                let victim = cands[v];
                let tier = MemState::tier_index(victim.qos);
                let (at, seq) = (self.now, self.seq);
                self.record_flight(
                    at,
                    seq,
                    FlightEventKind::Evict {
                        service: victim.service as u16,
                        tier: tier as u8,
                    },
                );
                {
                    let m = self.mem_mut();
                    m.evictions[tier] += 1;
                    m.births[victim.service][victim.replica] = None;
                    m.record(MemEvent {
                        at: now,
                        kind: MemEventKind::Evict,
                        service: victim.service,
                        node,
                        qos: victim.qos,
                        usage_bytes: victim.usage_bytes,
                    });
                }
                self.drain_replica(victim.service, victim.replica);
                self.schedule(
                    now + restart_delay,
                    EventKind::MemRestart {
                        service: victim.service as u32,
                    },
                );
            }
        }

        // Noisy-neighbor interference: services with a replica on a node
        // above the interference threshold run slower (reclaim/paging
        // stealing cycles), through the same sync → rate change → resync
        // hook chaos slowdowns use. Applies to every co-located service,
        // profiled or not.
        if factor > 1.0 {
            let node_hot: Vec<bool> = (0..nodes)
                .map(|n| self.mem_ref().node_util[n] > interference_threshold)
                .collect();
            for s in 0..ns {
                let hot = self.services[s]
                    .live
                    .iter()
                    .any(|&r| node_hot[self.mem_ref().node_of(s, r as usize)]);
                let want = if hot { factor } else { 1.0 };
                if self.mem_ref().interf[s] != want {
                    self.ps_sync_all(s);
                    self.mem_mut().interf[s] = want;
                    self.ps_resync_all(s);
                }
            }
        }

        self.schedule(now + interval, EventKind::MemCheck);
        true
    }

    /// Restores one replica of `service` after its OOM/eviction restart
    /// delay — on top of whatever the manager did meanwhile, exactly like
    /// chaos recovery (the manager scales back in if over-provisioned).
    fn mem_restart(&mut self, s: usize) {
        if self.mem.is_none() {
            return;
        }
        let live = self.services[s].live_count();
        self.set_replicas(ServiceId(s), live + 1);
        let now = self.now;
        let node = self.mem_ref().node_of(s, live);
        let qos = self.mem_ref().qos[s];
        self.mem_mut().record(MemEvent {
            at: now,
            kind: MemEventKind::Restart,
            service: s,
            node,
            qos,
            usage_bytes: 0,
        });
    }

    /// True iff `token`'s request is still in flight: the arena bumps a
    /// slot's generation exactly when the request completes, so the
    /// generation match alone decides liveness.
    #[inline]
    fn token_alive(&self, token: Token) -> bool {
        self.arena.alive(token.slot, token.gen)
    }

    /// Index of `token`'s hop state in the arena node arrays (generation-
    /// checked under debug assertions).
    #[inline]
    fn nidx(&self, token: Token) -> usize {
        self.arena.node_index(token.slot, token.gen, token.node)
    }

    /// A hop arrives at its service: route to a replica queue (RPC) or the
    /// shared MQ queue, then try to start work.
    fn node_arrive(&mut self, token: Token) {
        let class = self.arena.class(token.slot);
        let h = self.hot.node(class, token.node);
        let s = self.hot.service[h] as usize;
        let prio = self.hot.class_prio[class] as usize;
        let t0p = self.prof_span();
        self.telemetry.record_arrival(ServiceId(s), ClassId(class));
        self.prof_span_end(SimPhase::Telemetry, t0p);
        let ni = self.nidx(token);
        self.arena.enqueue_at[ni] = self.now;
        self.arena.phase[ni] = Phase::Queued;
        if self.arena.traced(token.slot) {
            let parent = self.templates[class].nodes[token.node as usize].parent;
            let now = self.now;
            if let Some(t) = self.tracer.as_mut() {
                t.on_arrive(token.slot, token.node, ServiceId(s), parent, now);
            }
        }
        if self.hot.via_mq[h] {
            self.services[s].mq.push(prio, token);
            self.note_mq_depth(s);
            self.dispatch_shared(s);
        } else {
            let r = self.pick_replica(s);
            let rep = self.services[s].replicas[r].as_mut().expect("live replica");
            if rep.busy_workers < rep.workers && rep.queue.len() == 0 {
                // Fast path: a free worker and an empty own queue mean
                // `try_start` would pop this token right back out — the
                // push/pop round-trip is a semantic no-op. (The shared MQ
                // can hold no eligible work here: messages only stay
                // queued when every live replica is saturated or the
                // broker is stalled, and `try_start` skips a stalled
                // broker anyway.)
                rep.busy_workers += 1;
                self.start_pre(token, s, r);
            } else {
                rep.queue.push(prio, token);
                self.try_start(s, r);
            }
        }
    }

    fn pick_replica(&mut self, s: usize) -> usize {
        let svc = &mut self.services[s];
        assert!(
            !svc.live.is_empty(),
            "service {} has no live replicas",
            self.names[s]
        );
        svc.rr = svc.rr.wrapping_add(1);
        svc.live[svc.rr % svc.live.len()] as usize
    }

    /// Assigns shared-queue (MQ) messages to consumers, least-busy replica
    /// first — the balance a consumer group provides. Without this,
    /// in-order offering concentrates messages on low-index replicas and
    /// inflates their processor-sharing contention.
    fn dispatch_shared(&mut self, s: usize) {
        if self.chaos_mq_stalled(s) {
            // Broker stalled: messages pile up, consumers get nothing.
            return;
        }
        let mut popped = false;
        while self.services[s].mq.len() > 0 {
            let svc = &self.services[s];
            let target = svc
                .live
                .iter()
                .filter_map(|&i| match &svc.replicas[i as usize] {
                    Some(rep) if rep.busy_workers < rep.workers => {
                        Some((i as usize, rep.busy_workers))
                    }
                    _ => None,
                })
                .min_by_key(|&(_, busy)| busy);
            let Some((r, _)) = target else { break };
            let token = self.services[s].mq.pop().expect("checked non-empty");
            popped = true;
            self.services[s].replicas[r]
                .as_mut()
                .expect("live replica")
                .busy_workers += 1;
            self.start_pre(token, s, r);
        }
        if popped {
            self.note_mq_depth(s);
        }
    }

    /// Starts queued work on a replica while it has free workers.
    fn try_start(&mut self, s: usize, r: usize) {
        let mq_stalled = self.chaos_mq_stalled(s);
        loop {
            let (token, from_mq) = {
                let Some(rep) = self.services[s].replicas[r].as_mut() else {
                    return;
                };
                if rep.busy_workers >= rep.workers {
                    return;
                }
                let from_own = rep.queue.pop();
                let (token, from_mq) = match from_own {
                    Some(t) => (Some(t), false),
                    None => {
                        if rep.draining || mq_stalled {
                            (None, false)
                        } else {
                            (self.services[s].mq.pop(), true)
                        }
                    }
                };
                let Some(token) = token else { return };
                self.services[s].replicas[r]
                    .as_mut()
                    .expect("live replica")
                    .busy_workers += 1;
                (token, from_mq)
            };
            if from_mq {
                self.note_mq_depth(s);
            }
            self.start_pre(token, s, r);
        }
    }

    fn start_pre(&mut self, token: Token, s: usize, r: usize) {
        let class = self.arena.class(token.slot);
        // Chaos slowdown is NOT applied here: it rescales the replica's PS
        // rate (affecting in-flight work too), not the sampled demand.
        let scale = self.work_scale[s];
        let t0p = self.prof_span();
        let work = {
            let tmpl = &self.templates[class].nodes[token.node as usize];
            (tmpl.pre.sample(&mut self.rng) * scale).max(MIN_WORK)
        };
        self.prof_span_end(SimPhase::Rng, t0p);
        let ni = self.nidx(token);
        self.arena.phase[ni] = Phase::Pre;
        self.arena.replica[ni] = r as u32;
        if self.arena.traced(token.slot) {
            let now = self.now;
            if let Some(t) = self.tracer.as_mut() {
                t.on_start(token.slot, token.node, now);
            }
        }
        self.ps_add(s, r, token, work);
    }

    // ---- Processor-sharing machinery -------------------------------------

    /// Advances a replica's virtual clock to `now`. O(1): one clock add
    /// plus two telemetry accumulator adds, regardless of how many jobs
    /// are active.
    fn ps_advance(&mut self, s: usize, r: usize) {
        let t0 = self.prof_span();
        let now = self.now;
        let slow = self.slow_of(s);
        if let Some(rep) = self.services[s].replicas[r].as_mut() {
            rep.advance_to(now, slow);
        }
        self.prof_span_end(SimPhase::PsAdvance, t0);
    }

    /// Recomputes the replica's next real-time completion from the head
    /// finish tag — O(1) — and schedules a fresh `PsCheck` only when that
    /// completion moved *earlier* than the pending check. If it moved
    /// later (the common case on arrivals with typical work sizes), the
    /// pending check fires early, finds nothing due, and re-arms here —
    /// so most membership changes push no event at all.
    ///
    /// Call after any membership or rate change, with the clock already
    /// advanced to `now` ([`Self::ps_advance`]).
    fn ps_resync(&mut self, s: usize, r: usize) {
        let t0 = self.prof_span();
        let now = self.now;
        let slow = self.slow_of(s);
        let (schedule, invalidated) = {
            let Some(rep) = self.services[s].replicas[r].as_mut() else {
                self.prof_span_end(SimPhase::PsAdvance, t0);
                return;
            };
            match rep.next_check_at(now, slow) {
                None => {
                    // Idle: drop any pending check.
                    let invalidated = rep.has_check;
                    if invalidated {
                        rep.ps_gen = rep.ps_gen.wrapping_add(1);
                        rep.has_check = false;
                    }
                    (None, invalidated)
                }
                Some(at) => {
                    if rep.has_check && at >= rep.check_at {
                        // Pending check fires at or before the true next
                        // completion and will re-arm itself: no new event.
                        (None, false)
                    } else {
                        let invalidated = rep.has_check;
                        rep.ps_gen = rep.ps_gen.wrapping_add(1);
                        rep.check_at = at;
                        rep.has_check = true;
                        (Some((at, rep.ps_gen)), invalidated)
                    }
                }
            }
        };
        if invalidated {
            // The superseded check stays in the heap until popped (and
            // skipped) or compacted away.
            self.heap_stale += 1;
        }
        if let Some((at, gen)) = schedule {
            self.schedule(
                at,
                EventKind::PsCheck {
                    service: s as u16,
                    replica: r as u16,
                    gen,
                },
            );
        }
        self.prof_span_end(SimPhase::PsAdvance, t0);
    }

    /// Admits one compute phase into a replica's PS queue — the fused
    /// hot path: advance, admit, and re-arm under a single replica
    /// borrow.
    fn ps_add(&mut self, s: usize, r: usize, token: Token, work: f64) {
        let t0 = self.prof_span();
        let now = self.now;
        let slow = self.slow_of(s);
        let (schedule, invalidated) = {
            let rep = self.services[s].replicas[r].as_mut().expect("live replica");
            rep.advance_to(now, slow);
            rep.ps.admit(work, token);
            let at = rep.next_check_at(now, slow).expect("just admitted");
            if rep.has_check && at >= rep.check_at {
                (None, false)
            } else {
                let invalidated = rep.has_check;
                rep.ps_gen = rep.ps_gen.wrapping_add(1);
                rep.check_at = at;
                rep.has_check = true;
                (Some((at, rep.ps_gen)), invalidated)
            }
        };
        if invalidated {
            self.heap_stale += 1;
        }
        if let Some((at, gen)) = schedule {
            self.schedule(
                at,
                EventKind::PsCheck {
                    service: s as u16,
                    replica: r as u16,
                    gen,
                },
            );
        }
        self.prof_span_end(SimPhase::PsAdmit, t0);
    }

    /// Advances every replica of `s` to `now` at the *current* rate.
    /// Call immediately before a service-wide rate change (chaos
    /// slowdown on/off), so the elapsed span is integrated at the rate
    /// that actually held over it.
    fn ps_sync_all(&mut self, s: usize) {
        for r in 0..self.services[s].replicas.len() {
            self.ps_advance(s, r);
        }
    }

    /// Recomputes next completions for every replica of `s`. Call
    /// immediately after a service-wide rate change.
    fn ps_resync_all(&mut self, s: usize) {
        for r in 0..self.services[s].replicas.len() {
            self.ps_resync(s, r);
        }
    }

    /// Handles a popped `PsCheck`; returns `false` when the check was
    /// stale (superseded generation or removed replica) and did no work.
    fn ps_check(&mut self, s: usize, r: usize, gen: u32) -> bool {
        // Span covers advance + pop + re-arm; the completion fan-out below
        // runs outside it so downstream phases attribute themselves.
        let t0 = self.prof_span();
        let now = self.now;
        let slow = self.slow_of(s);
        // Collect completions into the reusable scratch buffer (taken out of
        // `self` for the duration — nothing below re-enters `ps_check`).
        let mut finished = std::mem::take(&mut self.ps_scratch);
        finished.clear();
        // Advance, pop, and re-arm under a single replica borrow. The
        // firing check is the current generation by construction, so the
        // re-arm never invalidates a pending event.
        let schedule = {
            let rep = match self.services[s].replicas[r].as_mut() {
                Some(rep) if rep.ps_gen == gen => rep,
                _ => {
                    self.heap_stale = self.heap_stale.saturating_sub(1);
                    self.ps_scratch = finished;
                    self.prof_span_end(SimPhase::PsComplete, t0);
                    return false;
                }
            };
            rep.has_check = false;
            rep.advance_to(now, slow);
            rep.ps.pop_due(WORK_EPS, &mut finished);
            rep.next_check_at(now, slow).map(|at| {
                rep.ps_gen = rep.ps_gen.wrapping_add(1);
                rep.check_at = at;
                rep.has_check = true;
                (at, rep.ps_gen)
            })
        };
        if let Some((at, gen)) = schedule {
            self.schedule(
                at,
                EventKind::PsCheck {
                    service: s as u16,
                    replica: r as u16,
                    gen,
                },
            );
        }
        self.prof_span_end(SimPhase::PsComplete, t0);
        for &token in &finished {
            let phase = self.arena.phase[self.nidx(token)];
            match phase {
                Phase::Pre => self.on_pre_done(token),
                Phase::Post => self.respond(token),
                other => unreachable!("PS completion in phase {other:?}"),
            }
        }
        finished.clear();
        self.ps_scratch = finished;
        true
    }

    // ---- Request state machine -------------------------------------------

    fn on_pre_done(&mut self, token: Token) {
        let ni = self.nidx(token);
        self.arena.phase[ni] = Phase::Issuing;
        self.arena.next_child[ni] = 0;
        self.arena.awaiting[ni] = 0;
        self.issue_children(token);
    }

    /// Issues child calls from `next_child` onward, honoring the node's
    /// [`CallMode`]. May leave the node blocked on daemon submission or
    /// waiting for nested responses; otherwise proceeds to post-compute.
    fn issue_children(&mut self, token: Token) {
        let class = self.arena.class(token.slot);
        let h = self.hot.node(class, token.node);
        let n_children = self.hot.n_children[h];
        let ni = self.nidx(token);
        if n_children > 0 {
            // Leaf nodes (the common case) skip the wide-template deref
            // entirely; `mode` and the child list are only needed here.
            let mode = self.templates[class].nodes[token.node as usize].mode;
            let s = self.hot.service[h] as usize;
            loop {
                let i = self.arena.next_child[ni];
                if i >= n_children {
                    break;
                }
                let (child_idx, edge) =
                    self.templates[class].nodes[token.node as usize].children[i as usize];
                let replica = self.arena.replica[ni] as usize;
                let child_token = Token {
                    node: child_idx,
                    ..token
                };
                match edge {
                    EdgeKind::Mq => {
                        self.arena.next_child[ni] = i + 1;
                        self.launch_child(child_token);
                    }
                    EdgeKind::EventDrivenRpc => {
                        let submitted = self.submit_continuation(s, replica, child_token);
                        if submitted {
                            self.arena.next_child[ni] = i + 1;
                        } else {
                            // Daemon pool and queue full: block on submission.
                            self.arena.phase[ni] = Phase::BlockedDaemon;
                            self.arena.next_child[ni] = i;
                            self.services[s].replicas[replica]
                                .as_mut()
                                .expect("live replica")
                                .blocked_submitters
                                .push_back((token, child_idx));
                            if self.arena.traced(token.slot) {
                                let now = self.now;
                                if let Some(t) = self.tracer.as_mut() {
                                    t.open_block(token.slot, token.node, now);
                                }
                            }
                            return;
                        }
                    }
                    EdgeKind::NestedRpc => {
                        self.arena.next_child[ni] = i + 1;
                        self.arena.awaiting[ni] += 1;
                        self.launch_child(child_token);
                        if mode == CallMode::Sequential {
                            let now = self.now;
                            self.arena.phase[ni] = Phase::Waiting;
                            self.arena.wait_start[ni] = now;
                            if self.arena.traced(token.slot) {
                                if let Some(t) = self.tracer.as_mut() {
                                    t.open_wait(token.slot, token.node, now);
                                }
                            }
                            return;
                        }
                    }
                }
            }
        }
        // All children issued; wait for outstanding nested responses.
        let awaiting = self.arena.awaiting[ni];
        if awaiting > 0 {
            let now = self.now;
            self.arena.phase[ni] = Phase::Waiting;
            self.arena.wait_start[ni] = now;
            if self.arena.traced(token.slot) {
                if let Some(t) = self.tracer.as_mut() {
                    t.open_wait(token.slot, token.node, now);
                }
            }
        } else {
            self.start_post(token);
        }
    }

    /// Sends a child hop toward its service (network delay applies; an
    /// active RPC fault on the callee adds its timeout/retry penalty).
    /// In sharded runs, a child whose service lives on another shard
    /// leaves through the mesh instead — this is the single funnel every
    /// child launch (nested, event-driven, MQ, daemon-promoted) flows
    /// through, so no cross-shard call can bypass the routing.
    fn launch_child(&mut self, child_token: Token) {
        if let Some(ctx) = self.shard.as_deref() {
            let class = self.arena.class(child_token.slot);
            let h = self.hot.node(class, child_token.node);
            let dest = ctx.plan.owner[self.hot.service[h] as usize];
            if dest != ctx.me {
                self.send_arrive(dest, child_token);
                return;
            }
        }
        let mut at = self.now + self.sample_net_delay();
        if self.chaos.is_some() {
            at += self.chaos_rpc_penalty(child_token);
        }
        self.schedule(at, EventKind::NodeArrive { token: child_token });
    }

    /// One network-hop delay (deterministic, or log-normal when
    /// `net_delay_cv > 0`).
    fn sample_net_delay(&mut self) -> SimDur {
        if self.cfg.net_delay_cv <= 0.0 || self.cfg.net_delay == SimDur::ZERO {
            return self.cfg.net_delay;
        }
        let mean = self.cfg.net_delay.as_secs_f64();
        let d = ursa_stats::dist::LogNormal::from_mean_cv(mean, self.cfg.net_delay_cv);
        let t0 = self.prof_span();
        let delay = d.sample(&mut self.rng);
        self.prof_span_end(SimPhase::Rng, t0);
        SimDur::from_secs_f64(delay)
    }

    /// Tries to place an event-driven continuation on the replica's daemon
    /// pool (run now) or its bounded queue. Returns false if both are full.
    fn submit_continuation(&mut self, s: usize, r: usize, child_token: Token) -> bool {
        let verdict = {
            let rep = self.services[s].replicas[r].as_mut().expect("live replica");
            if rep.busy_daemons < rep.daemons {
                rep.busy_daemons += 1;
                0u8
            } else if rep.daemon_queue.len() < rep.daemon_cap {
                rep.daemon_queue.push_back(child_token);
                1
            } else {
                2
            }
        };
        match verdict {
            0 => {
                let ci = self.nidx(child_token);
                self.arena.daemon_of[ci] = ((s as u64) << 32) | r as u64;
                self.launch_child(child_token);
                true
            }
            1 => true,
            _ => false,
        }
    }

    /// A daemon worker freed on `(s, r)`: run the next queued continuation,
    /// then unblock one blocked submitter if queue space opened up.
    fn daemon_freed(&mut self, s: usize, r: usize) {
        {
            let Some(rep) = self.services[s].replicas[r].as_mut() else {
                return;
            };
            rep.busy_daemons -= 1;
        }
        // Promote a queued continuation into the freed daemon slot.
        let next = {
            let rep = self.services[s].replicas[r].as_mut().expect("live replica");
            if rep.busy_daemons < rep.daemons {
                rep.daemon_queue.pop_front().inspect(|_| {
                    rep.busy_daemons += 1;
                })
            } else {
                None
            }
        };
        if let Some(cont) = next {
            let ci = self.nidx(cont);
            self.arena.daemon_of[ci] = ((s as u64) << 32) | r as u64;
            self.launch_child(cont);
        }
        // Queue space may have opened: resume one blocked submitter.
        let unblocked = {
            let rep = self.services[s].replicas[r].as_mut().expect("live replica");
            if rep.daemon_queue.len() < rep.daemon_cap {
                rep.blocked_submitters.pop_front()
            } else {
                None
            }
        };
        if let Some((parent, child_idx)) = unblocked {
            let child_token = Token {
                node: child_idx,
                ..parent
            };
            let ok = self.submit_continuation(s, r, child_token);
            debug_assert!(ok, "submission must succeed after space opened");
            // `next_child` still holds the blocked child's position;
            // step past it and continue issuing the remaining children.
            let pi = self.nidx(parent);
            self.arena.phase[pi] = Phase::Issuing;
            self.arena.next_child[pi] += 1;
            if self.arena.traced(parent.slot) {
                let now = self.now;
                if let Some(t) = self.tracer.as_mut() {
                    t.close_block(parent.slot, parent.node, now);
                }
            }
            self.issue_children(parent);
        }
        self.maybe_remove_drained(s, r);
    }

    fn start_post(&mut self, token: Token) {
        let class = self.arena.class(token.slot);
        let t0p = self.prof_span();
        let (s, work) = {
            let svc = self.templates[class].nodes[token.node as usize].service;
            let scale = self.work_scale[svc];
            let t = &self.templates[class].nodes[token.node as usize];
            let w = t.post.sample(&mut self.rng) * scale;
            (t.service, w)
        };
        self.prof_span_end(SimPhase::Rng, t0p);
        let ni = self.nidx(token);
        let r = self.arena.replica[ni] as usize;
        if work <= WORK_EPS {
            self.respond(token);
        } else {
            self.arena.phase[ni] = Phase::Post;
            self.ps_add(s, r, token, work);
        }
    }

    /// The hop responds: record latency, release its worker, notify the
    /// parent, and complete the request if every hop has responded.
    fn respond(&mut self, token: Token) {
        let class = self.arena.class(token.slot);
        let h = self.hot.node(class, token.node);
        let s = self.hot.service[h] as usize;
        let ni = self.nidx(token);
        let now = self.now;
        self.arena.phase[ni] = Phase::Responded;
        let nested_wait = self.arena.nested_wait[ni];
        let full = (now - self.arena.enqueue_at[ni]).as_secs_f64();
        let tier = (full - nested_wait.as_secs_f64()).max(0.0);
        let r = self.arena.replica[ni] as usize;
        let daemon_of = self.arena.daemon_of[ni];
        let t0p = self.prof_span();
        self.telemetry
            .record_response(ServiceId(s), ClassId(class), tier, full);
        self.prof_span_end(SimPhase::Telemetry, t0p);
        if self.arena.traced(token.slot) {
            if let Some(t) = self.tracer.as_mut() {
                t.on_respond(token.slot, token.node, now, nested_wait);
            }
        }

        // Release the worker and pull more work.
        {
            let rep = self.services[s].replicas[r].as_mut().expect("live replica");
            rep.busy_workers -= 1;
        }
        self.try_start(s, r);
        self.maybe_remove_drained(s, r);

        // Free the daemon that was awaiting this response (event-driven).
        if daemon_of != NO_DAEMON {
            self.daemon_freed(
                (daemon_of >> 32) as usize,
                (daemon_of & u32::MAX as u64) as usize,
            );
        }

        // A fragment root's parent lives on another shard: the response
        // notification travels through the mesh instead of the local
        // parent bookkeeping below (whose slot state belongs to an
        // unrelated hop of this fragment's template).
        let remote_root = match self.shard.as_deref() {
            Some(ctx) => {
                ctx.reply[token.slot as usize].is_some()
                    && token.node == ctx.frag_root[token.slot as usize]
            }
            None => false,
        };

        // Notify a nested-waiting parent. The parent resumes only if it is
        // actually parked in `Waiting`; if it is blocked on daemon
        // submission (parallel mode mixing edge kinds), the daemon-unblock
        // path resumes it instead and re-checks `awaiting` at loop end.
        let pidx = self.hot.nested_parent[h];
        if remote_root {
            self.send_child_done(token);
        } else if pidx != NO_NESTED_PARENT {
            let parent_token = Token {
                node: pidx,
                ..token
            };
            let pi = self.nidx(parent_token);
            self.arena.awaiting[pi] -= 1;
            if self.arena.awaiting[pi] == 0 && self.arena.phase[pi] == Phase::Waiting {
                self.arena.nested_wait[pi] += now - self.arena.wait_start[pi];
                self.arena.phase[pi] = Phase::Issuing;
                if self.arena.traced(parent_token.slot) {
                    if let Some(t) = self.tracer.as_mut() {
                        t.close_wait(parent_token.slot, pidx, now);
                    }
                }
                self.issue_children(parent_token);
            }
        }

        // Request-level completion (fragment-level in sharded runs).
        if self.arena.respond_one(token.slot) {
            if self.shard.is_some() {
                self.sharded_slot_complete(token.slot);
                return;
            }
            let latency = (self.now - self.arena.arrival(token.slot)).as_secs_f64();
            let req_class = self.arena.class(token.slot);
            let traced = self.arena.traced(token.slot);
            self.arena.release(token.slot);
            self.in_flight -= 1;
            let t0p = self.prof_span();
            self.telemetry.record_e2e(ClassId(req_class), latency);
            self.prof_span_end(SimPhase::Telemetry, t0p);
            if traced {
                let now = self.now;
                if let Some(t) = self.tracer.as_mut() {
                    t.finish(token.slot, now);
                }
            }
        }
    }

    // ---- Sharded execution ------------------------------------------------
    //
    // One `Simulation` per shard, driven by `ShardedSimulation`
    // (see `crate::shard` for the protocol overview). Everything below is
    // reached only when a shard context is installed; standalone engines
    // pay one predictable branch in `launch_child`, `inject`, and
    // `respond` and are otherwise untouched.

    /// Turns this engine into one worker shard. Observability planes that
    /// assume a whole-request view (tracer, chaos, flight recorder,
    /// memory) are not supported per shard; the facade never installs
    /// them.
    pub(crate) fn install_shard_ctx(&mut self, ctx: ShardCtx, rng_seed: u64) {
        assert!(self.shard.is_none(), "shard context installed twice");
        assert!(
            self.tracer.is_none()
                && self.chaos.is_none()
                && self.recorder.is_none()
                && self.mem.is_none(),
            "observability planes must be installed after sharding, not before"
        );
        // Stripe sequence numbers: shard i draws i+N, i+2N, … so numbers
        // are globally unique and the merged (at, seq) order is total.
        self.seq = ctx.me as u64;
        self.seq_step = ctx.plan.n as u64;
        // The per-class source streams were split off the master RNG in
        // `new()` (identically on every shard, keeping injection schedules
        // shard-layout-invariant). After construction the master RNG only
        // feeds work sampling, so re-seed it per shard to decorrelate
        // service-time draws between shards.
        self.rng = Rng::seed_from(rng_seed);
        self.shard = Some(Box::new(ctx));
    }

    /// Per-shard synchronization counters (sharded engines only).
    pub(crate) fn shard_stats(&self) -> Option<&ShardStats> {
        self.shard.as_deref().map(|c| &c.stats)
    }

    /// Runs one conservative-time window: process all events up to `t`,
    /// exchanging cross-shard messages, and return once every shard has
    /// drained the window. Called from the facade's scoped worker threads.
    pub(crate) fn run_window(&mut self, t: SimTime) {
        debug_assert!(self.shard.is_some(), "run_window requires a shard context");
        let profiled = self.prof.is_some();
        let mut done = false;
        loop {
            // Read peer bounds BEFORE draining: a sender pushes to the
            // ring before republishing its bound, so any envelope still
            // invisible after this read is timestamped at or above `safe`.
            let t0 = profiled.then(Instant::now);
            let safe = self.mesh_safe_in();
            let t1 = profiled.then(Instant::now);
            let drained = self.drain_inbound();
            let t2 = profiled.then(Instant::now);
            let dispatched = self.run_events_bounded(t, safe);
            let t3 = profiled.then(Instant::now);
            self.publish_bound(safe);
            if let (Some(a), Some(b), Some(c), Some(d)) = (t0, t1, t2, t3) {
                let sync = (b - a).as_nanos() as u64 + d.elapsed().as_nanos() as u64;
                let channel = (c - b).as_nanos() as u64;
                if let Some(p) = self.prof.as_deref_mut() {
                    p.accrue_exact(SimPhase::Sync, sync);
                    p.accrue_exact(SimPhase::Channel, channel);
                }
            }
            {
                let st = &mut self.shard.as_deref_mut().expect("sharded").stats;
                st.rounds += 1;
                if dispatched == 0 && drained == 0 {
                    st.null_rounds += 1;
                }
            }
            let idle = safe > t && self.events.peek().is_none_or(|e| e.at > t);
            if idle {
                // Window locally drained. Re-drain once to catch envelopes
                // that raced the drain above; anything arriving from here
                // on is timestamped above `t` (senders are also past `t`),
                // so the done mark never needs retraction.
                if self.drain_inbound() == 0 {
                    let ctx = self.shard.as_deref().expect("sharded");
                    if !done {
                        done = true;
                        ctx.mesh.mark_done(ctx.me);
                    }
                    if ctx.plan.preds[ctx.me as usize].is_empty() {
                        // Nothing can ever reach this shard, so from here
                        // to the horizon it stays silent: promise that and
                        // exit instead of spin-yielding until stragglers
                        // finish (the facade re-floors bounds between
                        // windows).
                        ctx.mesh.publish(ctx.me, u64::MAX);
                        break;
                    }
                    if ctx.mesh.all_done() {
                        break;
                    }
                }
                std::thread::yield_now();
            } else if dispatched == 0 && drained == 0 {
                // Blocked on a peer's bound: stay polite on oversubscribed
                // hosts instead of hot-spinning.
                std::thread::yield_now();
            }
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// The conservative horizon: minimum published bound over shards that
    /// can send to us (`u64::MAX` when nothing can — fully independent
    /// shards never synchronize).
    fn mesh_safe_in(&self) -> SimTime {
        let ctx = self.shard.as_deref().expect("sharded");
        let mut safe = u64::MAX;
        for &p in &ctx.plan.preds[ctx.me as usize] {
            safe = safe.min(ctx.mesh.bound(p));
        }
        SimTime::from_nanos(safe)
    }

    /// Publishes this shard's lower-bound promise: no future send below
    /// `min(next local event, safe) + lookahead`. Republishing with no
    /// payload is the null message that lets blocked peers advance.
    fn publish_bound(&mut self, safe: SimTime) {
        let next = self.events.peek().map_or(u64::MAX, |e| e.at.as_nanos());
        let ctx = self.shard.as_deref().expect("sharded");
        let bound = next
            .min(safe.as_nanos())
            .saturating_add(ctx.mesh.lookahead());
        ctx.mesh.publish(ctx.me, bound);
    }

    /// Drains every inbound ring, scheduling each envelope as a `Remote`
    /// event under the sender's sequence number. Returns the number of
    /// envelopes drained.
    fn drain_inbound(&mut self) -> u64 {
        let mut drained = 0u64;
        let npreds = {
            let ctx = self.shard.as_deref().expect("sharded");
            ctx.plan.preds[ctx.me as usize].len()
        };
        for k in 0..npreds {
            loop {
                let env = {
                    let ctx = self.shard.as_deref().expect("sharded");
                    let p = ctx.plan.preds[ctx.me as usize][k];
                    ctx.mesh.ring(p as u16, ctx.me).pop()
                };
                let Some(env) = env else { break };
                drained += 1;
                let idx = {
                    let ctx = self.shard.as_deref_mut().expect("sharded");
                    ctx.stats.msgs_recv += 1;
                    ctx.park(env)
                };
                // Direct push (not `schedule`): the envelope carries the
                // sender's sequence number, so the merged pop order is the
                // deterministic (at, seq) order regardless of when the
                // envelope was drained.
                self.events
                    .push(env.at, env.seq, EventKind::Remote { msg: idx });
            }
        }
        drained
    }

    /// Pushes an envelope to `dest`, draining our own inbound while the
    /// destination ring is full (the peer may itself be blocked pushing to
    /// us, so draining is what guarantees progress).
    fn shard_send(&mut self, dest: u16, env: Envelope) {
        loop {
            let pushed = {
                let ctx = self.shard.as_deref().expect("sharded");
                ctx.mesh.ring(ctx.me, dest).push(env)
            };
            if pushed {
                self.shard.as_deref_mut().expect("sharded").stats.msgs_sent += 1;
                return;
            }
            self.drain_inbound();
            std::thread::yield_now();
        }
    }

    /// Routes a child hop whose service lives on shard `dest`: the remote
    /// shard allocates a fragment slot and runs the subtree. Timestamped
    /// `now + net_delay` — the same hop delay a local child pays, and the
    /// lookahead that makes the conservative bound sound.
    fn send_arrive(&mut self, dest: u16, child_token: Token) {
        let class = self.arena.class(child_token.slot) as u32;
        let at = self.now + self.cfg.net_delay;
        self.seq += self.seq_step;
        let seq = self.seq;
        let ctx = self.shard.as_deref().expect("sharded");
        let reply = SlotRef {
            shard: ctx.me,
            slot: child_token.slot,
            gen: child_token.gen,
        };
        let home = ctx.home[child_token.slot as usize];
        let env = Envelope {
            at,
            seq,
            msg: Msg::Arrive {
                class,
                node: child_token.node,
                reply,
                home,
            },
        };
        self.shard_send(dest, env);
    }

    /// Marks a freshly injected slot as this request's home: it waits for
    /// its local fragment plus one response per cross-shard child edge,
    /// and completes once every fragment reports done.
    fn note_home_slot(&mut self, slot: u32, class: ClassId) {
        let (expected, frags, me) = {
            let ctx = self.shard.as_deref().expect("sharded");
            debug_assert_eq!(
                ctx.plan.home[class.0], ctx.me,
                "injection off the home shard"
            );
            (
                ctx.plan.expected[class.0][0],
                ctx.plan.frags_total[class.0],
                ctx.me,
            )
        };
        self.arena.set_expected_responses(slot, expected);
        let gen = self.arena.gen(slot);
        let ctx = self.shard.as_deref_mut().expect("sharded");
        ctx.ensure_slot(slot);
        ctx.frag_root[slot as usize] = 0;
        ctx.reply[slot as usize] = None;
        ctx.home[slot as usize] = SlotRef {
            shard: me,
            slot,
            gen,
        };
        ctx.remaining_frags[slot as usize] = frags;
    }

    /// Unparks and executes one received envelope (dispatch arm of
    /// [`EventKind::Remote`]).
    fn remote_event(&mut self, idx: u32) {
        let env = self.shard.as_deref_mut().expect("sharded").unpark(idx);
        debug_assert_eq!(env.at, self.now);
        match env.msg {
            Msg::Arrive {
                class,
                node,
                reply,
                home,
            } => self.remote_arrive(class as usize, node, reply, home),
            Msg::ChildDone { slot, gen, node } => self.remote_child_done(Token { slot, gen, node }),
            Msg::FragDone { slot, gen } => self.remote_frag_done(slot, gen),
        }
    }

    /// A call subtree crosses onto this shard: allocate a fragment slot
    /// pre-biased to wait for exactly this fragment's responses and run
    /// its root hop. The envelope timestamp already includes the hop
    /// delay, so the hop arrives now.
    fn remote_arrive(&mut self, class: usize, node: u16, reply: SlotRef, home: SlotRef) {
        let num_nodes = self.templates[class].nodes.len() as u16;
        let slot = self.arena.alloc(class as u32, self.now, num_nodes, false);
        let expected = {
            let ctx = self.shard.as_deref().expect("sharded");
            ctx.plan.expected[class][node as usize]
        };
        debug_assert!(expected >= 1, "arrive at a non-fragment-root hop");
        self.arena.set_expected_responses(slot, expected);
        let gen = self.arena.gen(slot);
        {
            let ctx = self.shard.as_deref_mut().expect("sharded");
            ctx.ensure_slot(slot);
            ctx.frag_root[slot as usize] = node;
            ctx.reply[slot as usize] = Some(reply);
            ctx.home[slot as usize] = home;
            ctx.remaining_frags[slot as usize] = 0;
        }
        // Fragments count toward their executing shard's in-flight gauge
        // (not injections: only the home shard records those).
        self.in_flight += 1;
        self.node_arrive(Token { slot, gen, node });
    }

    /// A remotely executed child responded — the mirror of the local
    /// `respond()` parent bookkeeping: free the daemon that was awaiting
    /// it, resume a nested-waiting parent, count the response.
    fn remote_child_done(&mut self, token: Token) {
        debug_assert!(self.token_alive(token), "ChildDone for a dead parent slot");
        let class = self.arena.class(token.slot);
        let h = self.hot.node(class, token.node);
        let now = self.now;
        let ni = self.nidx(token);
        self.arena.phase[ni] = Phase::Responded;
        let daemon_of = self.arena.daemon_of[ni];
        if daemon_of != NO_DAEMON {
            self.daemon_freed(
                (daemon_of >> 32) as usize,
                (daemon_of & u32::MAX as u64) as usize,
            );
        }
        let pidx = self.hot.nested_parent[h];
        if pidx != NO_NESTED_PARENT {
            let parent_token = Token {
                node: pidx,
                ..token
            };
            let pi = self.nidx(parent_token);
            self.arena.awaiting[pi] -= 1;
            if self.arena.awaiting[pi] == 0 && self.arena.phase[pi] == Phase::Waiting {
                self.arena.nested_wait[pi] += now - self.arena.wait_start[pi];
                self.arena.phase[pi] = Phase::Issuing;
                self.issue_children(parent_token);
            }
        }
        if self.arena.respond_one(token.slot) {
            self.sharded_slot_complete(token.slot);
        }
    }

    /// A fragment of home slot `slot` fully completed on another shard.
    fn remote_frag_done(&mut self, slot: u32, gen: u32) {
        debug_assert!(self.arena.alive(slot, gen), "FragDone for a dead home slot");
        self.home_frag_done(slot);
    }

    /// A slot collected all its expected responses (sharded runs). Home
    /// slots complete when their *fragment* is done; the request itself
    /// completes once every remote fragment has also reported in.
    fn sharded_slot_complete(&mut self, slot: u32) {
        let is_home = {
            let ctx = self.shard.as_deref().expect("sharded");
            ctx.reply[slot as usize].is_none()
        };
        if is_home {
            self.home_frag_done(slot);
            return;
        }
        // Fragment slot: notify the parent fragment happened at the root's
        // respond(); here the whole subtree is done — tell the home shard
        // and release.
        let (home, me) = {
            let ctx = self.shard.as_deref().expect("sharded");
            (ctx.home[slot as usize], ctx.me)
        };
        self.arena.release(slot);
        self.in_flight -= 1;
        if home.shard == me {
            // Re-entrant topology (a→b→a): the home slot is local.
            self.home_frag_done(home.slot);
        } else {
            let at = self.now + self.cfg.net_delay;
            self.seq += self.seq_step;
            let env = Envelope {
                at,
                seq: self.seq,
                msg: Msg::FragDone {
                    slot: home.slot,
                    gen: home.gen,
                },
            };
            self.shard_send(home.shard, env);
        }
    }

    /// One fragment of home slot `slot` is done; on the last one the
    /// request completes end-to-end.
    fn home_frag_done(&mut self, slot: u32) {
        let remaining = {
            let ctx = self.shard.as_deref_mut().expect("sharded");
            debug_assert!(ctx.remaining_frags[slot as usize] > 0);
            ctx.remaining_frags[slot as usize] -= 1;
            ctx.remaining_frags[slot as usize]
        };
        if remaining == 0 {
            let latency = (self.now - self.arena.arrival(slot)).as_secs_f64();
            let class = self.arena.class(slot);
            self.arena.release(slot);
            self.in_flight -= 1;
            let t0p = self.prof_span();
            self.telemetry.record_e2e(ClassId(class), latency);
            self.prof_span_end(SimPhase::Telemetry, t0p);
        }
    }

    /// A fragment root responded: notify the parent fragment on its shard
    /// (which mirrors the local parent bookkeeping).
    fn send_child_done(&mut self, token: Token) {
        let at = self.now + self.cfg.net_delay;
        self.seq += self.seq_step;
        let seq = self.seq;
        let reply = {
            let ctx = self.shard.as_deref().expect("sharded");
            ctx.reply[token.slot as usize].expect("remote root has a reply")
        };
        let env = Envelope {
            at,
            seq,
            msg: Msg::ChildDone {
                slot: reply.slot,
                gen: reply.gen,
                node: token.node,
            },
        };
        self.shard_send(reply.shard, env);
    }

    /// Feeds the telemetry MQ-depth accumulators after a shared-queue push
    /// or pop. Several pops at one timestamp may each call this; zero-width
    /// intervals contribute nothing to the time-weighted mean, and the max
    /// only ever sees depths the queue actually held.
    fn note_mq_depth(&mut self, s: usize) {
        let depth = self.services[s].mq.len();
        let t0 = self.prof_span();
        self.telemetry
            .record_mq_depth(ServiceId(s), self.now, depth);
        self.prof_span_end(SimPhase::Telemetry, t0);
    }

    fn maybe_remove_drained(&mut self, s: usize, r: usize) {
        let remove = matches!(
            &self.services[s].replicas[r],
            Some(rep) if rep.draining && rep.is_idle()
        );
        if remove {
            self.ps_advance(s, r); // final capacity accounting
            let (busy, cap) = {
                let rep = self.services[s].replicas[r].as_mut().expect("draining");
                (
                    std::mem::take(&mut rep.busy_acc),
                    std::mem::take(&mut rep.cap_acc),
                )
            };
            if busy != 0.0 || cap != 0.0 {
                self.telemetry.record_cpu(ServiceId(s), busy, cap);
            }
            self.services[s].replicas[r] = None;
        }
    }

    // ---- Control-plane operations -----------------------------------------

    /// Live (non-draining) replica count of a service.
    pub fn replicas(&self, service: ServiceId) -> usize {
        self.services[service.0].live_count()
    }

    /// Sets the live replica count of a service (graceful drain on scale-in).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_replicas(&mut self, service: ServiceId, n: usize) {
        assert!(n > 0, "replica count must be at least 1");
        let s = service.0;
        let mut live = self.services[s].live_count();
        if live != n {
            let (at, seq) = (self.now, self.seq);
            self.record_flight(
                at,
                seq,
                FlightEventKind::Scale {
                    service: s as u16,
                    from: live as u16,
                    to: n as u16,
                },
            );
        }
        // Scale out: first un-drain, then create.
        while live < n {
            let undrained = {
                let svc = &mut self.services[s];
                svc.replicas.iter_mut().find_map(|slot| match slot {
                    Some(rep) if rep.draining => {
                        rep.draining = false;
                        Some(())
                    }
                    _ => None,
                })
            };
            if undrained.is_none() {
                let rep = Replica::new(
                    self.services[s].cores,
                    self.services[s].workers,
                    self.services[s].daemons,
                    self.services[s].daemon_cap,
                    self.prio_levels,
                    self.now,
                );
                let svc = &mut self.services[s];
                if let Some(idx) = svc.replicas.iter().position(|x| x.is_none()) {
                    svc.replicas[idx] = Some(rep);
                } else {
                    svc.replicas.push(Some(rep));
                }
            }
            self.services[s].rebuild_live();
            live += 1;
        }
        // Scale in: drain highest-index live replicas.
        while live > n {
            let idx = self.services[s]
                .replicas
                .iter()
                .rposition(|x| matches!(x, Some(rep) if !rep.draining))
                .expect("live replica exists");
            self.drain_replica(s, idx);
            live -= 1;
        }
        // New capacity may be able to pull shared-queue work.
        let live_idx: Vec<usize> = self.services[s].live.iter().map(|&i| i as usize).collect();
        for r in live_idx {
            self.try_start(s, r);
        }
    }

    /// Gracefully drains one specific replica slot: it leaves load
    /// balancing at once, its queued work is re-dispatched, and in-PS
    /// work completes before the slot is removed. The caller must leave
    /// at least one live replica behind (`pick_replica` requires a
    /// non-empty live set).
    fn drain_replica(&mut self, s: usize, idx: usize) {
        let moved = {
            let rep = self.services[s].replicas[idx].as_mut().expect("live");
            rep.draining = true;
            rep.queue.drain_all()
        };
        self.services[s].rebuild_live();
        for (prio, token) in moved {
            let dst = self.pick_replica(s);
            self.services[s].replicas[dst]
                .as_mut()
                .expect("live replica")
                .queue
                .push(prio, token);
            self.try_start(s, dst);
        }
        self.maybe_remove_drained(s, idx);
    }

    /// CPU cores per replica of a service.
    pub fn cpu_limit(&self, service: ServiceId) -> f64 {
        self.services[service.0].cores
    }

    /// Sets the per-replica CPU limit of a service (applies to existing and
    /// future replicas). Values below 0.01 cores are clamped up.
    pub fn set_cpu_limit(&mut self, service: ServiceId, cores: f64) {
        let cores = cores.max(MIN_CORES);
        let s = service.0;
        if (self.services[s].cores - cores).abs() > f64::EPSILON {
            let (at, seq) = (self.now, self.seq);
            self.record_flight(
                at,
                seq,
                FlightEventKind::CpuLimit {
                    service: s as u16,
                    millicores: (cores * 1000.0).round() as u32,
                },
            );
        }
        self.services[s].cores = cores;
        for r in 0..self.services[s].replicas.len() {
            if self.services[s].replicas[r].is_some() {
                self.ps_advance(s, r);
                self.services[s].replicas[r].as_mut().expect("live").cores = cores;
                self.ps_resync(s, r);
            }
        }
    }

    /// Scales all service times of a service by `scale` — the hook used to
    /// model business-logic updates (§VII-G's DETR → MobileNet swap).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn set_work_scale(&mut self, service: ServiceId, scale: f64) {
        assert!(scale > 0.0 && scale.is_finite());
        self.work_scale[service.0] = scale;
    }

    /// Current work scale of a service.
    pub fn work_scale(&self, service: ServiceId) -> f64 {
        self.work_scale[service.0]
    }

    /// Total CPU cores currently allocated (live and draining replicas).
    pub fn total_allocated_cores(&self) -> f64 {
        self.services
            .iter()
            .map(|svc| svc.replicas.iter().flatten().map(|r| r.cores).sum::<f64>())
            .sum()
    }

    /// Instantaneous worker occupancy of a service: busy worker slots over
    /// total worker slots, summed across live (non-draining) replicas, in
    /// `[0, 1]`. Returns `0.0` when the service has no live workers. This is
    /// the saturation signal the metrics pipeline exports alongside CPU
    /// utilization: occupancy near 1 with low CPU points at blocking on
    /// downstream calls rather than compute.
    pub fn worker_occupancy(&self, service: ServiceId) -> f64 {
        let svc = &self.services[service.0];
        let (busy, total) = svc
            .replicas
            .iter()
            .flatten()
            .filter(|rep| !rep.draining)
            .fold((0usize, 0usize), |(b, t), rep| {
                (b + rep.busy_workers, t + rep.workers)
            });
        if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64
        }
    }

    /// Takes a metrics snapshot covering the window since the previous
    /// harvest, and resets the telemetry accumulators.
    pub fn harvest(&mut self) -> MetricsSnapshot {
        for s in 0..self.services.len() {
            for r in 0..self.services[s].replicas.len() {
                if self.services[s].replicas[r].is_some() {
                    self.ps_advance(s, r);
                    let (busy, cap) = {
                        let rep = self.services[s].replicas[r].as_mut().expect("live");
                        (
                            std::mem::take(&mut rep.busy_acc),
                            std::mem::take(&mut rep.cap_acc),
                        )
                    };
                    if busy != 0.0 || cap != 0.0 {
                        self.telemetry.record_cpu(ServiceId(s), busy, cap);
                    }
                }
            }
        }
        let replicas: Vec<usize> = (0..self.services.len())
            .map(|s| self.services[s].live_count())
            .collect();
        let cores: Vec<f64> = self.services.iter().map(|s| s.cores).collect();
        let mq_depths: Vec<usize> = self.services.iter().map(|s| s.mq.len()).collect();
        let mut snapshot =
            self.telemetry
                .harvest(self.now, &self.names, &replicas, &cores, &mq_depths);
        if let Some(c) = self.chaos.as_deref_mut() {
            snapshot.faults = std::mem::take(&mut c.events);
        }
        if let Some(m) = self.mem.as_deref_mut() {
            snapshot.mem = Some(m.take_snapshot());
        }
        let (at, seq, in_flight) = (self.now, self.seq, self.in_flight as u32);
        self.record_flight(at, seq, FlightEventKind::Harvest { in_flight });
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CallNode, ClassCfg, Priority, ServiceCfg, WorkDist};

    fn single_service(cores: f64, mean_work: f64) -> Simulation {
        let topo = Topology::new(
            vec![ServiceCfg::new("svc", cores)],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: mean_work }),
            }],
        )
        .unwrap();
        Simulation::new(topo, SimConfig::default(), 7)
    }

    #[test]
    fn single_service_completes_requests() {
        let mut sim = single_service(4.0, 0.002);
        sim.set_rate(ClassId(0), RateFn::Constant(100.0));
        sim.run_for(SimDur::from_secs(30));
        let snap = sim.harvest();
        let injected = snap.injections[0];
        let completed = snap.completions[0];
        assert!(injected > 2500, "injected {injected}");
        assert!(
            completed as f64 > injected as f64 * 0.98,
            "completed {completed}/{injected}"
        );
        // M/M-ish latency at low load ~ service time.
        let p50 = snap.e2e_latency[0].percentile(50.0).unwrap();
        assert!(p50 < 0.02, "p50 {p50}");
    }

    #[test]
    fn poisson_arrival_rate_matches() {
        let mut sim = single_service(8.0, 0.001);
        sim.set_rate(ClassId(0), RateFn::Constant(500.0));
        sim.run_for(SimDur::from_secs(60));
        let snap = sim.harvest();
        let rps = snap.class_rps(ClassId(0));
        assert!((rps - 500.0).abs() < 25.0, "rps {rps}");
    }

    #[test]
    fn utilization_tracks_load() {
        // rho = lambda * E[S] / cores = 100 * 0.002 / 1 = 0.2
        let mut sim = single_service(1.0, 0.002);
        sim.set_rate(ClassId(0), RateFn::Constant(100.0));
        sim.run_for(SimDur::from_secs(60));
        let snap = sim.harvest();
        let util = snap.services[0].cpu_utilization;
        assert!((util - 0.2).abs() < 0.03, "util {util}");
    }

    #[test]
    fn latency_rises_with_utilization() {
        let mut lats = Vec::new();
        for rps in [100.0, 400.0, 470.0] {
            let mut sim = single_service(1.0, 0.002);
            sim.set_rate(ClassId(0), RateFn::Constant(rps));
            sim.run_for(SimDur::from_secs(60));
            let snap = sim.harvest();
            lats.push(snap.e2e_latency[0].percentile(99.0).unwrap());
        }
        assert!(lats[0] < lats[1] && lats[1] < lats[2], "latencies {lats:?}");
        // Near saturation (rho = 0.94) p99 should blow up well past service time.
        assert!(
            lats[2] > 5.0 * lats[0],
            "saturated {} vs idle {}",
            lats[2],
            lats[0]
        );
    }

    #[test]
    fn more_replicas_reduce_latency() {
        let topo = Topology::new(
            vec![ServiceCfg::new("svc", 1.0)],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.002 }),
            }],
        )
        .unwrap();
        let mut sim = Simulation::new(topo, SimConfig::default(), 9);
        sim.set_rate(ClassId(0), RateFn::Constant(450.0));
        sim.run_for(SimDur::from_secs(40));
        let p99_one = sim.harvest().e2e_latency[0].percentile(99.0).unwrap();
        sim.set_replicas(ServiceId(0), 4);
        sim.run_for(SimDur::from_secs(40));
        let p99_four = sim.harvest().e2e_latency[0].percentile(99.0).unwrap();
        assert!(
            p99_four < p99_one * 0.5,
            "p99 1 replica {p99_one}, 4 replicas {p99_four}"
        );
        assert_eq!(sim.replicas(ServiceId(0)), 4);
    }

    #[test]
    fn scale_in_drains_gracefully() {
        let topo = Topology::new(
            vec![ServiceCfg::new("svc", 2.0).with_replicas(4)],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.002 }),
            }],
        )
        .unwrap();
        let mut sim = Simulation::new(topo, SimConfig::default(), 10);
        sim.set_rate(ClassId(0), RateFn::Constant(200.0));
        sim.run_for(SimDur::from_secs(20));
        sim.set_replicas(ServiceId(0), 1);
        assert_eq!(sim.replicas(ServiceId(0)), 1);
        sim.run_for(SimDur::from_secs(20));
        let snap = sim.harvest();
        // No requests lost across the scale-in.
        let injected: u64 = snap.injections.iter().sum();
        let completed: u64 = snap.completions.iter().sum();
        assert!(
            completed as f64 > injected as f64 * 0.97,
            "{completed}/{injected}"
        );
    }

    /// A linear chain. Worker pools shrink downstream (client-facing tiers
    /// admit far more concurrency than deep backend tiers), which is what
    /// makes backpressure surface near the culprit rather than at the
    /// outermost queue — see DESIGN.md §3.
    fn chain(edge: EdgeKind, tiers: usize, work: f64, cores: f64) -> Topology {
        let services: Vec<ServiceCfg> = (0..tiers)
            .map(|i| {
                let workers = (4096usize >> (2 * i).min(12)).max(32);
                ServiceCfg::new(format!("tier{}", i + 1), cores).with_workers(workers)
            })
            .collect();
        fn build(i: usize, tiers: usize, work: f64, edge: EdgeKind) -> CallNode {
            let node = CallNode::leaf(ServiceId(i), WorkDist::Exponential { mean: work });
            if i + 1 < tiers {
                node.with_child(edge, build(i + 1, tiers, work, edge))
            } else {
                node
            }
        }
        Topology::new(
            services,
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: build(0, tiers, work, edge),
            }],
        )
        .unwrap()
    }

    #[test]
    fn nested_chain_end_to_end_latency_sums_tiers() {
        let mut sim = Simulation::new(
            chain(EdgeKind::NestedRpc, 3, 0.002, 4.0),
            SimConfig::default(),
            11,
        );
        sim.set_rate(ClassId(0), RateFn::Constant(100.0));
        sim.run_for(SimDur::from_secs(30));
        let snap = sim.harvest();
        let e2e_mean = snap.e2e_latency[0].mean().unwrap();
        let tier_sum: f64 = (0..3)
            .map(|s| snap.services[s].tier_latency[0].mean().unwrap())
            .sum();
        // e2e = sum of tier means + network hops; allow tolerance.
        assert!(
            (e2e_mean - tier_sum).abs() < 0.35 * e2e_mean,
            "e2e {e2e_mean} vs tier sum {tier_sum}"
        );
        assert!(e2e_mean > tier_sum, "e2e includes network delay");
    }

    #[test]
    fn nested_chain_backpressure_on_throttle() {
        // Throttle the leaf far below the offered load; the parent's
        // tier latency (excluding downstream wait) must inflate
        // (worker exhaustion -> queueing), while without throttling it
        // stays small.
        let mut sim = Simulation::new(
            chain(EdgeKind::NestedRpc, 3, 0.004, 4.0),
            SimConfig::default(),
            12,
        );
        sim.set_rate(ClassId(0), RateFn::Constant(300.0));
        sim.run_for(SimDur::from_secs(30));
        let baseline = sim.harvest();
        let parent_before = baseline.services[1].tier_latency[0]
            .percentile(99.0)
            .unwrap();

        sim.set_cpu_limit(ServiceId(2), 0.5); // leaf capacity 125 rps << 300 rps
        sim.run_for(SimDur::from_secs(60));
        let throttled = sim.harvest();
        let parent_after = throttled.services[1].tier_latency[0]
            .percentile(99.0)
            .unwrap();
        let root_after = throttled.services[0].tier_latency[0]
            .percentile(99.0)
            .unwrap();
        assert!(
            parent_after > parent_before * 5.0,
            "backpressure: parent p99 {parent_before} -> {parent_after}"
        );
        // The gradient diminishes up the chain during the anomaly window.
        assert!(
            root_after < parent_after,
            "root {root_after} vs parent {parent_after}"
        );
    }

    #[test]
    fn mq_chain_no_backpressure_on_throttle() {
        let mut sim = Simulation::new(chain(EdgeKind::Mq, 3, 0.004, 4.0), SimConfig::default(), 13);
        sim.set_rate(ClassId(0), RateFn::Constant(300.0));
        sim.run_for(SimDur::from_secs(30));
        let baseline = sim.harvest();
        let parent_before = baseline.services[1].tier_latency[0]
            .percentile(99.0)
            .unwrap();

        sim.set_cpu_limit(ServiceId(2), 0.5);
        sim.run_for(SimDur::from_secs(30));
        let throttled = sim.harvest();
        let parent_after = throttled.services[1].tier_latency[0]
            .percentile(99.0)
            .unwrap();
        // The MQ producer tier is unaffected by the slow consumer.
        assert!(
            parent_after < parent_before * 2.0,
            "no backpressure expected: {parent_before} -> {parent_after}"
        );
        // But the throttled tier itself suffers and its queue grows.
        assert!(
            throttled.services[2].mq_depth > 1000,
            "depth {}",
            throttled.services[2].mq_depth
        );
    }

    #[test]
    fn priorities_protect_high_class() {
        // Two classes share one overloaded service; the high-priority class
        // must see far lower latency.
        let mk_class = |name: &str, prio: Priority| ClassCfg {
            name: name.into(),
            priority: prio,
            root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.004 }),
        };
        let topo = Topology::new(
            vec![ServiceCfg::new("svc", 1.0).with_workers(1)],
            vec![
                mk_class("high", Priority::HIGH),
                mk_class("low", Priority::LOW),
            ],
        )
        .unwrap();
        let mut sim = Simulation::new(topo, SimConfig::default(), 14);
        sim.set_rate(ClassId(0), RateFn::Constant(100.0));
        sim.set_rate(ClassId(1), RateFn::Constant(200.0)); // total rho = 1.2: overload
        sim.run_for(SimDur::from_secs(30));
        let snap = sim.harvest();
        let p50_high = snap.e2e_latency[0].percentile(50.0).unwrap();
        let p50_low = snap.e2e_latency[1].percentile(50.0).unwrap();
        assert!(
            p50_low > 10.0 * p50_high,
            "high {p50_high} vs low {p50_low}"
        );
    }

    #[test]
    fn event_driven_parent_responds_before_child() {
        let topo = Topology::new(
            vec![ServiceCfg::new("front", 4.0), ServiceCfg::new("back", 4.0)],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)).with_child(
                    EdgeKind::EventDrivenRpc,
                    CallNode::leaf(ServiceId(1), WorkDist::Constant(0.050)),
                ),
            }],
        )
        .unwrap();
        let mut sim = Simulation::new(topo, SimConfig::default(), 15);
        sim.set_rate(ClassId(0), RateFn::Constant(50.0));
        sim.run_for(SimDur::from_secs(20));
        let snap = sim.harvest();
        // Parent's own response doesn't include the 50 ms child work.
        let parent_p50 = snap.services[0].response_latency[0]
            .percentile(50.0)
            .unwrap();
        assert!(parent_p50 < 0.010, "parent responds fast: {parent_p50}");
        // But e2e completion includes the child.
        let e2e_p50 = snap.e2e_latency[0].percentile(50.0).unwrap();
        assert!(e2e_p50 > 0.050, "e2e includes child: {e2e_p50}");
    }

    #[test]
    fn work_scale_shrinks_latency() {
        let mut sim = single_service(2.0, 0.010);
        sim.set_rate(ClassId(0), RateFn::Constant(50.0));
        sim.run_for(SimDur::from_secs(20));
        let before = sim.harvest().e2e_latency[0].percentile(50.0).unwrap();
        sim.set_work_scale(ServiceId(0), 0.2);
        sim.run_for(SimDur::from_secs(20));
        let after = sim.harvest().e2e_latency[0].percentile(50.0).unwrap();
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    fn total_allocated_cores_tracks_scaling() {
        let mut sim = single_service(2.0, 0.001);
        assert!((sim.total_allocated_cores() - 2.0).abs() < 1e-12);
        sim.set_replicas(ServiceId(0), 3);
        assert!((sim.total_allocated_cores() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = single_service(2.0, 0.002);
            sim.set_rate(ClassId(0), RateFn::Constant(200.0));
            sim.run_for(SimDur::from_secs(20));
            let snap = sim.harvest();
            (
                snap.injections[0],
                snap.completions[0],
                snap.e2e_latency[0].percentile(99.0).unwrap(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut sim = single_service(2.0, 0.002);
        sim.set_rate(ClassId(0), RateFn::Constant(0.0));
        sim.run_for(SimDur::from_secs(10));
        let snap = sim.harvest();
        assert_eq!(snap.injections[0], 0);
    }

    #[test]
    fn manual_injection() {
        let mut sim = single_service(2.0, 0.002);
        for _ in 0..10 {
            sim.inject(ClassId(0));
        }
        sim.run_for(SimDur::from_secs(5));
        let snap = sim.harvest();
        assert_eq!(snap.injections[0], 10);
        assert_eq!(snap.completions[0], 10);
        assert_eq!(sim.in_flight(), 0);
    }
}

#[cfg(test)]
mod span_tests {
    use super::*;
    use crate::topology::{CallNode, ClassCfg, Priority, ServiceCfg, WorkDist};

    fn two_tier() -> Topology {
        Topology::new(
            vec![ServiceCfg::new("a", 2.0), ServiceCfg::new("b", 2.0)],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)).with_child(
                    EdgeKind::NestedRpc,
                    CallNode::leaf(ServiceId(1), WorkDist::Constant(0.002)),
                ),
            }],
        )
        .unwrap()
    }

    #[test]
    fn traces_record_hops() {
        let mut sim = Simulation::new(two_tier(), SimConfig::default(), 1);
        sim.enable_tracing(1000, 1.0);
        for _ in 0..20 {
            sim.inject(ClassId(0));
        }
        sim.run_for(SimDur::from_secs(5));
        let traces = sim.take_traces();
        assert_eq!(traces.len(), 20, "every request sampled at rate 1.0");
        for t in &traces {
            assert_eq!(t.spans.len(), 2, "two hops per request");
            let root = t.root();
            let child = &t.spans[1];
            assert_eq!(root.parent, None);
            assert_eq!(child.parent, Some((0, EdgeKind::NestedRpc)));
            assert_eq!(root.service, ServiceId(0));
            assert_eq!(child.service, ServiceId(1));
            // Timestamp ordering within each span.
            for s in &t.spans {
                assert!(s.enqueue_at >= t.arrival);
                assert!(s.start_at >= s.enqueue_at);
                assert!(s.respond_at >= s.start_at);
                assert!(s.tier_latency() <= s.latency());
            }
            // The root's recorded downstream wait covers the child's span.
            assert!(root.nested_wait > SimDur::ZERO, "root waits on the child");
            assert_eq!(root.waits.len(), 1);
            let (wb, we) = root.waits[0];
            assert!(wb <= child.enqueue_at, "wait opened before child arrived");
            assert!(we >= child.respond_at, "wait closed after child responded");
            let eps = 1e-12;
            assert!(
                (root.downstream_wait().as_secs_f64() - root.nested_wait.as_secs_f64()).abs() < eps,
                "wait intervals sum to the engine's nested_wait"
            );
            assert!(t.end >= root.respond_at);
        }
        // Drained: second take is empty.
        assert!(sim.take_traces().is_empty());
    }

    #[test]
    fn trace_ring_bounded() {
        let topo = Topology::new(
            vec![ServiceCfg::new("a", 4.0)],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.0005)),
            }],
        )
        .unwrap();
        let mut sim = Simulation::new(topo, SimConfig::default(), 2);
        sim.enable_tracing(16, 1.0);
        for _ in 0..100 {
            sim.inject(ClassId(0));
        }
        sim.run_for(SimDur::from_secs(5));
        let traces = sim.take_traces();
        assert_eq!(traces.len(), 16, "ring keeps the newest 16");
        assert_eq!(sim.tracer().expect("enabled").evicted(), 84);
    }

    #[test]
    fn sampling_thins_traces() {
        let mut sim = Simulation::new(two_tier(), SimConfig::default(), 5);
        sim.enable_tracing(100_000, 0.1);
        sim.set_rate(ClassId(0), RateFn::Constant(200.0));
        sim.run_for(SimDur::from_secs(60));
        let snap = sim.harvest();
        let traces = sim.take_traces();
        let rate = traces.len() as f64 / snap.completions[0] as f64;
        assert!(
            (0.05..0.2).contains(&rate),
            "sampled {} of {} completions",
            traces.len(),
            snap.completions[0]
        );
    }

    #[test]
    fn tracing_does_not_perturb_simulation() {
        let run = |trace: bool| {
            let mut sim = Simulation::new(two_tier(), SimConfig::default(), 9);
            if trace {
                sim.enable_tracing(4096, 0.5);
            }
            sim.set_rate(ClassId(0), RateFn::Constant(150.0));
            sim.run_for(SimDur::from_secs(30));
            let snap = sim.harvest();
            (
                snap.completions[0],
                snap.e2e_latency[0].percentile(99.0).unwrap(),
            )
        };
        assert_eq!(run(false), run(true), "sampler must not touch the sim RNG");
    }

    #[test]
    fn tracing_disabled_by_default() {
        let topo = Topology::new(
            vec![ServiceCfg::new("a", 2.0)],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)),
            }],
        )
        .unwrap();
        let mut sim = Simulation::new(topo, SimConfig::default(), 3);
        sim.inject(ClassId(0));
        sim.run_for(SimDur::from_secs(1));
        assert!(sim.take_traces().is_empty());
        assert!(sim.tracer().is_none());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::topology::{CallNode, ClassCfg, Priority, ServiceCfg, WorkDist};

    fn one_service() -> Topology {
        Topology::new(
            vec![ServiceCfg::new("svc", 4.0)],
            vec![ClassCfg {
                name: "c".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)),
            }],
        )
        .unwrap()
    }

    #[test]
    fn trace_replay_injects_exactly() {
        let mut sim = Simulation::new(one_service(), SimConfig::default(), 1);
        let times: Vec<SimTime> = (0..50)
            .map(|i| SimTime::from_secs_f64(0.1 * i as f64))
            .collect();
        sim.schedule_arrivals(ClassId(0), &times);
        sim.run_for(SimDur::from_secs(10));
        let snap = sim.harvest();
        assert_eq!(snap.injections[0], 50);
        assert_eq!(snap.completions[0], 50);
    }

    #[test]
    fn trace_and_poisson_compose() {
        let mut sim = Simulation::new(one_service(), SimConfig::default(), 2);
        sim.set_rate(ClassId(0), RateFn::Constant(10.0));
        sim.schedule_arrivals(ClassId(0), &[SimTime::from_secs_f64(1.0)]);
        sim.run_for(SimDur::from_secs(30));
        let snap = sim.harvest();
        assert!(snap.injections[0] > 200, "poisson + trace arrivals");
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn trace_rejects_past_arrivals() {
        let mut sim = Simulation::new(one_service(), SimConfig::default(), 3);
        sim.run_for(SimDur::from_secs(5));
        sim.schedule_arrivals(ClassId(0), &[SimTime::from_secs_f64(1.0)]);
    }
}

#[cfg(test)]
mod net_jitter_tests {
    use super::*;
    use crate::topology::{CallNode, ClassCfg, Priority, ServiceCfg, WorkDist};

    fn two_tier(cv: f64) -> Simulation {
        let topo = Topology::new(
            vec![ServiceCfg::new("a", 4.0), ServiceCfg::new("b", 4.0)],
            vec![ClassCfg {
                name: "c".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)).with_child(
                    EdgeKind::NestedRpc,
                    CallNode::leaf(ServiceId(1), WorkDist::Constant(0.001)),
                ),
            }],
        )
        .unwrap();
        let cfg = SimConfig {
            net_delay: SimDur::from_millis(2),
            net_delay_cv: cv,
        };
        Simulation::new(topo, cfg, 9)
    }

    #[test]
    fn jitter_preserves_mean_but_spreads_tail() {
        let run = |cv: f64| {
            let mut sim = two_tier(cv);
            sim.set_rate(ClassId(0), RateFn::Constant(50.0));
            sim.run_for(SimDur::from_secs(60));
            let snap = sim.harvest();
            let e2e = &snap.e2e_latency[0];
            (e2e.mean().unwrap(), e2e.percentile(99.0).unwrap())
        };
        let (mean_det, p99_det) = run(0.0);
        let (mean_jit, p99_jit) = run(1.0);
        // Three network hops of 2 ms mean in either case.
        assert!(
            (mean_jit - mean_det).abs() < 0.0015,
            "{mean_det} vs {mean_jit}"
        );
        assert!(
            p99_jit > p99_det,
            "jitter must widen the tail: {p99_det} vs {p99_jit}"
        );
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::chaos::{Fault, FaultKind, FaultPhase, FaultPlan};
    use crate::topology::{CallNode, ClassCfg, Priority, ServiceCfg, WorkDist};

    fn two_tier(edge: EdgeKind, replicas: usize) -> Simulation {
        let topo = Topology::new(
            vec![
                ServiceCfg::new("front", 2.0).with_replicas(replicas),
                ServiceCfg::new("back", 2.0).with_replicas(replicas),
            ],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.002 })
                    .with_child(
                        edge,
                        CallNode::leaf(ServiceId(1), WorkDist::Exponential { mean: 0.002 }),
                    ),
            }],
        )
        .unwrap();
        Simulation::new(topo, SimConfig::default(), 21)
    }

    fn window(from_s: f64, to_s: f64, kind: FaultKind) -> Fault {
        Fault {
            at: SimTime::from_secs_f64(from_s),
            until: SimTime::from_secs_f64(to_s),
            kind,
        }
    }

    /// Everything downstream artifacts are built from, for bit-identity.
    fn digest(sim: &mut Simulation) -> String {
        let snap = sim.harvest();
        format!(
            "events {} inj {:?} comp {:?} p99 {:?} util {:?}",
            sim.events_processed(),
            snap.injections,
            snap.completions,
            snap.e2e_latency[0].percentile(99.0),
            snap.services
                .iter()
                .map(|s| s.cpu_utilization)
                .collect::<Vec<_>>(),
        )
    }

    /// The zero-cost guarantee: no plan, an empty plan, and a plan whose
    /// windows all lie past the horizon produce bit-identical output.
    #[test]
    fn chaos_disabled_is_bit_identical() {
        let run = |plan: Option<FaultPlan>| {
            let mut sim = two_tier(EdgeKind::Mq, 2);
            if let Some(p) = plan {
                sim.install_faults(&p, 99);
            }
            sim.set_rate(ClassId(0), RateFn::Constant(200.0));
            sim.run_for(SimDur::from_secs(20));
            digest(&mut sim)
        };
        let baseline = run(None);
        assert_eq!(baseline, run(Some(FaultPlan::new())), "empty plan");
        let mut late = FaultPlan::new();
        late.push(window(
            1000.0,
            1001.0,
            FaultKind::Slowdown {
                service: 1,
                factor: 8.0,
            },
        ));
        assert_eq!(baseline, run(Some(late)), "plan past the horizon");
    }

    #[test]
    fn slowdown_inflates_latency_then_recovers() {
        let mut sim = two_tier(EdgeKind::NestedRpc, 2);
        let mut plan = FaultPlan::new();
        plan.push(window(
            20.0,
            40.0,
            FaultKind::Slowdown {
                service: 1,
                factor: 6.0,
            },
        ));
        sim.install_faults(&plan, 1);
        sim.set_rate(ClassId(0), RateFn::Constant(150.0));
        sim.run_for(SimDur::from_secs(20));
        let before = sim.harvest().e2e_latency[0].percentile(50.0).unwrap();
        sim.run_for(SimDur::from_secs(20));
        let during = sim.harvest().e2e_latency[0].percentile(50.0).unwrap();
        sim.run_for(SimDur::from_secs(20));
        let after = sim.harvest().e2e_latency[0].percentile(50.0).unwrap();
        assert!(during > before * 2.0, "before {before}, during {during}");
        assert!(after < during * 0.5, "during {during}, after {after}");
    }

    #[test]
    fn replica_crash_restores_replicas() {
        let mut sim = two_tier(EdgeKind::NestedRpc, 4);
        let mut plan = FaultPlan::new();
        plan.push(window(
            5.0,
            10.0,
            FaultKind::ReplicaCrash {
                service: 1,
                count: 2,
            },
        ));
        sim.install_faults(&plan, 2);
        sim.set_rate(ClassId(0), RateFn::Constant(100.0));
        sim.run_for(SimDur::from_secs(7));
        assert_eq!(sim.replicas(ServiceId(1)), 2, "2 of 4 crashed");
        sim.run_for(SimDur::from_secs(7));
        assert_eq!(sim.replicas(ServiceId(1)), 4, "restarted at window end");
        let snap = sim.harvest();
        assert!(
            snap.completions[0] as f64 > snap.injections[0] as f64 * 0.95,
            "drain preserves requests: {}/{}",
            snap.completions[0],
            snap.injections[0]
        );
    }

    #[test]
    fn crash_always_keeps_one_replica() {
        let mut sim = two_tier(EdgeKind::NestedRpc, 2);
        let mut plan = FaultPlan::new();
        plan.push(window(
            5.0,
            10.0,
            FaultKind::ReplicaCrash {
                service: 0,
                count: 99,
            },
        ));
        sim.install_faults(&plan, 3);
        sim.set_rate(ClassId(0), RateFn::Constant(50.0));
        sim.run_for(SimDur::from_secs(7));
        assert_eq!(sim.replicas(ServiceId(0)), 1, "all but one crash");
        sim.run_for(SimDur::from_secs(7));
        assert_eq!(sim.replicas(ServiceId(0)), 2);
    }

    #[test]
    fn node_failure_kills_colocated_replicas() {
        // Slot r of service s is on node (s + r) % 8: with 9 replicas,
        // service 0 has slots {0, 8} on node 0 and service 1 has slot 7.
        let mut sim = two_tier(EdgeKind::NestedRpc, 9);
        let mut plan = FaultPlan::new();
        plan.push(window(5.0, 10.0, FaultKind::NodeFailure { node: 0 }));
        sim.install_faults(&plan, 4);
        sim.set_rate(ClassId(0), RateFn::Constant(100.0));
        sim.run_for(SimDur::from_secs(7));
        assert_eq!(sim.replicas(ServiceId(0)), 7, "slots 0 and 8 lost");
        assert_eq!(sim.replicas(ServiceId(1)), 8, "slot 7 lost");
        sim.run_for(SimDur::from_secs(7));
        assert_eq!(sim.replicas(ServiceId(0)), 9);
        assert_eq!(sim.replicas(ServiceId(1)), 9);
    }

    #[test]
    fn mq_stall_builds_backlog_then_drains() {
        let mut sim = two_tier(EdgeKind::Mq, 2);
        let mut plan = FaultPlan::new();
        plan.push(window(10.0, 20.0, FaultKind::MqStall { service: 1 }));
        sim.install_faults(&plan, 5);
        sim.set_rate(ClassId(0), RateFn::Constant(200.0));
        sim.run_for(SimDur::from_secs(20));
        let stalled = sim.harvest();
        // ~10 s of 200 rps piled up behind the stalled broker.
        assert!(
            stalled.services[1].mq_depth_max > 1500,
            "backlog {}",
            stalled.services[1].mq_depth_max
        );
        sim.run_for(SimDur::from_secs(20));
        let drained = sim.harvest();
        assert!(
            drained.services[1].mq_depth < 10,
            "backlog drains on recovery"
        );
        let inj: u64 = stalled.injections[0] + drained.injections[0];
        let comp: u64 = stalled.completions[0] + drained.completions[0];
        assert!(
            comp as f64 > inj as f64 * 0.97,
            "no message lost: {comp}/{inj}"
        );
    }

    #[test]
    fn rpc_fault_delays_but_conserves() {
        let run = |faulty: bool| {
            let mut sim = two_tier(EdgeKind::NestedRpc, 2);
            if faulty {
                let mut plan = FaultPlan::new();
                plan.push(window(
                    5.0,
                    25.0,
                    FaultKind::RpcFault {
                        service: 1,
                        extra_delay: SimDur::from_millis(20),
                        drop_prob: 0.5,
                        timeout: SimDur::from_millis(50),
                        max_retries: 3,
                    },
                ));
                sim.install_faults(&plan, 6);
            }
            sim.set_rate(ClassId(0), RateFn::Constant(100.0));
            sim.run_for(SimDur::from_secs(25));
            sim.run_for(SimDur::from_secs(10)); // drain past the window
            let snap = sim.harvest();
            assert_eq!(sim.in_flight(), 0, "final attempt always delivers");
            (
                snap.completions[0],
                snap.injections[0],
                snap.e2e_latency[0].percentile(50.0).unwrap(),
            )
        };
        let (_, _, p50_clean) = run(false);
        let (comp, inj, _) = run(true);
        assert!(comp as f64 > inj as f64 * 0.97, "{comp}/{inj}");
        // During-window latency: re-run and look at the fault window only.
        let mut sim = two_tier(EdgeKind::NestedRpc, 2);
        let mut plan = FaultPlan::new();
        plan.push(window(
            0.0,
            20.0,
            FaultKind::RpcFault {
                service: 1,
                extra_delay: SimDur::from_millis(20),
                drop_prob: 0.5,
                timeout: SimDur::from_millis(50),
                max_retries: 3,
            },
        ));
        sim.install_faults(&plan, 6);
        sim.set_rate(ClassId(0), RateFn::Constant(100.0));
        sim.run_for(SimDur::from_secs(20));
        let p50_faulty = sim.harvest().e2e_latency[0].percentile(50.0).unwrap();
        assert!(
            p50_faulty > p50_clean + 0.015,
            "timeouts visible: {p50_clean} -> {p50_faulty}"
        );
    }

    #[test]
    fn fault_events_surface_in_harvest() {
        let mut sim = two_tier(EdgeKind::NestedRpc, 2);
        let mut plan = FaultPlan::new();
        plan.push(window(
            2.0,
            4.0,
            FaultKind::Slowdown {
                service: 1,
                factor: 3.0,
            },
        ));
        sim.install_faults(&plan, 7);
        sim.set_rate(ClassId(0), RateFn::Constant(50.0));
        sim.run_for(SimDur::from_secs(10));
        let snap = sim.harvest();
        assert_eq!(snap.faults.len(), 2);
        assert_eq!(snap.faults[0].phase, FaultPhase::Injected);
        assert_eq!(snap.faults[0].kind, "slowdown");
        assert_eq!(snap.faults[0].service, Some(1));
        assert_eq!(snap.faults[1].phase, FaultPhase::Recovered);
        assert_eq!(snap.faults[0].label(), "slowdown injected (svc 1, x3)");
        // Drained: the next harvest reports nothing.
        sim.run_for(SimDur::from_secs(1));
        assert!(sim.harvest().faults.is_empty());
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_rejected() {
        let mut sim = two_tier(EdgeKind::NestedRpc, 2);
        sim.install_faults(&FaultPlan::new(), 1);
        sim.install_faults(&FaultPlan::new(), 2);
    }

    #[test]
    #[should_panic(expected = "targets service")]
    fn out_of_range_service_rejected() {
        let mut sim = two_tier(EdgeKind::NestedRpc, 2);
        let mut plan = FaultPlan::new();
        plan.push(window(1.0, 2.0, FaultKind::MqStall { service: 9 }));
        sim.install_faults(&plan, 1);
    }
}
