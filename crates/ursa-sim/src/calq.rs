//! Calendar queue for the event core.
//!
//! Discrete-event arrivals are near-FIFO per short time band, which a
//! comparison heap cannot exploit: every push/pop pays `O(log n)` sift work
//! even when the popped entry was the one pushed a moment ago. This queue
//! keeps the engine's `(time, seq)` total order while making the common case
//! an O(1) append:
//!
//! * **`cur`** — a small array sorted descending by `(time, seq)`, holding
//!   every entry whose time band is at or before the current band. Pops come
//!   exclusively from here (`Vec::pop` from the tail — O(1)), and inserts
//!   binary-search their position and shift the tail. At the working-set
//!   sizes the engine sustains (a few dozen entries) the shift is one or two
//!   cache lines of `memmove` — consistently cheaper than binary-heap sift
//!   paths, which bounce across levels.
//! * **ring** — `NB` unsorted buckets, one per upcoming band (band = time
//!   nanos `>> shift`). A push inside the window is a plain `Vec::push`.
//! * **overflow** — entries beyond the ring horizon, kept unsorted with a
//!   tracked minimum band so unbounded horizons still work.
//!
//! When `cur` drains, the window advances one band at a time, *promoting*
//! the next non-empty bucket into the heap. Before each advance the overflow
//! minimum is checked so far-future entries are migrated into the ring the
//! moment they become window-eligible — otherwise an old overflow entry
//! could be popped after a later ring entry. If the ring is empty and only
//! overflow remains, the window re-anchors at the overflow minimum instead
//! of scanning the gap band by band.
//!
//! The band width adapts: a promotion that drains a bucket far larger than
//! [`SPLIT_MAX`] halves the width (only when the drained entries actually
//! span more than one narrower band — a burst of identical timestamps can
//! never be split and must not trigger a shrink loop), and a window of
//! promotions dominated by empty-bucket scans doubles it. Resizes are a
//! deterministic function of the push/pop sequence, so two runs with the
//! same seed see the same queue counters.
//!
//! Small queues bypass the calendar entirely: below [`HYBRID_HIGH`]
//! entries the whole queue lives in `cur` as an ordinary binary heap,
//! where `O(log n)` sift work on a dozen entries beats any bucket
//! bookkeeping. The layouts swap with hysteresis ([`HYBRID_LOW`]) so a
//! workload hovering at the boundary does not thrash rebuilds. Both
//! transitions are pure functions of the push/pop sequence — determinism
//! again — and pop order is invariant across them.
//!
//! Pop order — `(at, seq)` ascending — is invariant under band width,
//! promotion timing, and resizes; `tests/event_core_reference.rs` checks
//! this differentially against a `BinaryHeap` oracle.

use crate::time::SimTime;

/// Number of ring buckets (power of two).
const NB: usize = 1024;
const MASK: u64 = NB as u64 - 1;

/// Default band width exponent: 2^17 ns ≈ 131 µs per bucket.
pub const DEFAULT_SHIFT: u32 = 17;
/// Narrowest band width: 2^10 ns ≈ 1 µs.
const MIN_SHIFT: u32 = 10;
/// Widest band width: 2^30 ns ≈ 1.07 s.
const MAX_SHIFT: u32 = 30;

/// A promotion draining more than this many entries asks for narrower bands.
const SPLIT_MAX: usize = 256;
/// Grow check window: every this many promotions, compare scan effort.
const GROW_WINDOW: u64 = 512;
/// Grow when empty-bucket scans exceed this multiple of promotions.
const GROW_SCAN_FACTOR: u64 = 8;

/// Entry count at which a heap-layout queue rebuilds into the calendar.
const HYBRID_HIGH: usize = 1024;
/// Entry count at which a calendar-layout queue falls back to one heap.
const HYBRID_LOW: usize = 256;

/// One scheduled entry. Ordered by `(at, seq)` only — `kind` is payload.
#[derive(Clone, Copy, Debug)]
pub struct QEntry<K> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: K,
}

impl<K> PartialEq for QEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<K> Eq for QEntry<K> {}

impl<K> PartialOrd for QEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K> Ord for QEntry<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Calendar/bucket priority queue with a heap-ordered current band.
#[derive(Debug)]
pub struct CalQueue<K> {
    /// Small-queue layout: every entry sits in `cur`, the ring is unused.
    heap_mode: bool,
    /// Entries with band ≤ `cur_band`, sorted descending by `(at, seq)` so
    /// the next entry to pop is last; the only container pops read from.
    cur: Vec<QEntry<K>>,
    /// Highest band already merged into `cur`.
    cur_band: u64,
    /// Band width exponent: band = nanos >> shift.
    shift: u32,
    /// Ring of unsorted buckets for bands in `(cur_band, cur_band + NB)`.
    bands: Vec<Vec<QEntry<K>>>,
    /// Total entries across all ring buckets.
    in_ring: usize,
    /// Entries with band ≥ `cur_band + NB`.
    overflow: Vec<QEntry<K>>,
    /// Minimum band present in `overflow` (`u64::MAX` when empty).
    overflow_min_band: u64,
    len: usize,

    // Diagnostics (deterministic; surfaced through ursa-bench perf v5).
    max_depth: usize,
    resizes: u64,
    promotions: u64,
    max_band_drain: usize,
    overflow_max: usize,
    window_promotions: u64,
    window_scans: u64,
}

impl<K> Default for CalQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> CalQueue<K> {
    pub fn new() -> Self {
        Self::with_shift(DEFAULT_SHIFT)
    }

    pub fn with_shift(shift: u32) -> Self {
        let shift = shift.clamp(MIN_SHIFT, MAX_SHIFT);
        Self {
            heap_mode: true,
            cur: Vec::new(),
            cur_band: 0,
            shift,
            bands: (0..NB).map(|_| Vec::new()).collect(),
            in_ring: 0,
            overflow: Vec::new(),
            overflow_min_band: u64::MAX,
            len: 0,
            max_depth: 0,
            resizes: 0,
            promotions: 0,
            max_band_drain: 0,
            overflow_max: 0,
            window_promotions: 0,
            window_scans: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of `len()` over the queue's lifetime.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of adaptive band-width rebuilds.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Number of bucket-to-heap promotions.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Largest single bucket drained by a promotion.
    pub fn max_band_drain(&self) -> usize {
        self.max_band_drain
    }

    /// High-water mark of the overflow (far-future) band.
    pub fn overflow_max(&self) -> usize {
        self.overflow_max
    }

    /// Current band width in nanoseconds.
    pub fn band_ns(&self) -> u64 {
        1u64 << self.shift
    }

    /// Route an entry to `cur`, the ring, or overflow. Does not touch `len`.
    #[inline]
    fn place(&mut self, e: QEntry<K>) {
        let b = e.at.as_nanos() >> self.shift;
        if b <= self.cur_band {
            self.cur_insert(e);
        } else if b - self.cur_band < NB as u64 {
            self.bands[(b & MASK) as usize].push(e);
            self.in_ring += 1;
        } else {
            if b < self.overflow_min_band {
                self.overflow_min_band = b;
            }
            self.overflow.push(e);
            if self.overflow.len() > self.overflow_max {
                self.overflow_max = self.overflow.len();
            }
        }
    }

    /// Insert into `cur`, keeping it sorted descending by `(at, seq)`.
    /// The common case — a new entry popping soon — lands near the tail.
    #[inline]
    fn cur_insert(&mut self, e: QEntry<K>) {
        let key = (e.at, e.seq);
        if let Some(last) = self.cur.last() {
            if (last.at, last.seq) > key {
                self.cur.push(e);
                return;
            }
        } else {
            self.cur.push(e);
            return;
        }
        let pos = self.cur.partition_point(|x| (x.at, x.seq) > key);
        self.cur.insert(pos, e);
    }

    #[inline]
    pub fn push(&mut self, at: SimTime, seq: u64, kind: K) {
        let e = QEntry { at, seq, kind };
        if self.heap_mode {
            self.cur_insert(e);
        } else {
            self.place(e);
        }
        self.len += 1;
        if self.len > self.max_depth {
            self.max_depth = self.len;
        }
        if self.heap_mode && self.len >= HYBRID_HIGH {
            self.switch_to_calendar();
        }
    }

    #[inline]
    pub fn peek(&mut self) -> Option<&QEntry<K>> {
        if !self.heap_mode {
            self.ensure_cur();
        }
        self.cur.last()
    }

    #[inline]
    pub fn pop(&mut self) -> Option<QEntry<K>> {
        if self.heap_mode {
            return match self.cur.pop() {
                Some(e) => {
                    self.len -= 1;
                    Some(e)
                }
                None => None,
            };
        }
        self.ensure_cur();
        match self.cur.pop() {
            Some(e) => {
                self.len -= 1;
                if self.len <= HYBRID_LOW {
                    self.switch_to_heap();
                }
                Some(e)
            }
            None => None,
        }
    }

    /// Keep only entries whose payload satisfies `f`. Used by the engine's
    /// stale-event compaction; pop order of survivors is unchanged.
    pub fn retain<F: FnMut(&K) -> bool>(&mut self, mut f: F) {
        self.cur.retain(|e| f(&e.kind));
        self.in_ring = 0;
        for slot in self.bands.iter_mut() {
            slot.retain(|e| f(&e.kind));
            self.in_ring += slot.len();
        }
        self.overflow.retain(|e| f(&e.kind));
        self.overflow_min_band = self
            .overflow
            .iter()
            .map(|e| e.at.as_nanos() >> self.shift)
            .min()
            .unwrap_or(u64::MAX);
        self.len = self.cur.len() + self.in_ring + self.overflow.len();
        if !self.heap_mode && self.len <= HYBRID_LOW {
            self.switch_to_heap();
        }
    }

    /// Heap → calendar: re-bucket everything under the current band width.
    fn switch_to_calendar(&mut self) {
        self.heap_mode = false;
        self.rebuild(self.shift);
    }

    /// Calendar → heap: merge the ring and overflow into `cur`.
    fn switch_to_heap(&mut self) {
        self.heap_mode = true;
        self.resizes += 1;
        let cur = &mut self.cur;
        for slot in self.bands.iter_mut() {
            cur.append(slot);
        }
        self.in_ring = 0;
        cur.append(&mut self.overflow);
        cur.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        self.overflow_min_band = u64::MAX;
    }

    /// Refill `cur` from the ring/overflow until it can serve a pop (or the
    /// queue is empty).
    fn ensure_cur(&mut self) {
        while self.cur.is_empty() && self.len > 0 {
            if self.in_ring == 0 {
                // Only far-future entries remain: re-anchor the window at
                // the overflow minimum instead of sliding band by band.
                self.reseed_from_overflow();
                continue;
            }
            self.cur_band += 1;
            self.window_scans += 1;
            if self.overflow_min_band < self.cur_band + NB as u64 {
                // Far-future entries just became window-eligible; fold them
                // into the ring *before* draining, or they could be popped
                // out of order later.
                self.migrate_overflow();
            }
            let slot = (self.cur_band & MASK) as usize;
            if self.bands[slot].is_empty() {
                continue;
            }
            let drained = self.bands[slot].len();
            self.in_ring -= drained;
            let mut min_at = u64::MAX;
            let mut max_at = 0u64;
            let mut bucket = std::mem::take(&mut self.bands[slot]);
            for e in bucket.drain(..) {
                let ns = e.at.as_nanos();
                min_at = min_at.min(ns);
                max_at = max_at.max(ns);
                self.cur.push(e);
            }
            // One descending sort re-establishes the pop order; `(at, seq)`
            // keys are unique, so unstable sorting is still deterministic.
            self.cur
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
            // Hand the allocation back so the bucket keeps its capacity.
            self.bands[slot] = bucket;
            self.promotions += 1;
            self.window_promotions += 1;
            if drained > self.max_band_drain {
                self.max_band_drain = drained;
            }
            self.maybe_resize(drained, min_at, max_at);
        }
    }

    fn reseed_from_overflow(&mut self) {
        debug_assert!(!self.overflow.is_empty());
        self.cur_band = self.overflow_min_band;
        self.overflow_min_band = u64::MAX;
        let entries = std::mem::take(&mut self.overflow);
        for e in entries {
            self.place(e);
        }
    }

    /// Move every overflow entry that now fits the ring window into it.
    fn migrate_overflow(&mut self) {
        let horizon = self.cur_band + NB as u64;
        let mut kept = Vec::with_capacity(self.overflow.len());
        let mut min_band = u64::MAX;
        for e in std::mem::take(&mut self.overflow) {
            let b = e.at.as_nanos() >> self.shift;
            if b < horizon {
                debug_assert!(b > self.cur_band);
                self.bands[(b & MASK) as usize].push(e);
                self.in_ring += 1;
            } else {
                if b < min_band {
                    min_band = b;
                }
                kept.push(e);
            }
        }
        self.overflow = kept;
        self.overflow_min_band = min_band;
    }

    fn maybe_resize(&mut self, drained: usize, min_at: u64, max_at: u64) {
        // Shrink: an oversized bucket that genuinely spans more than one
        // narrower band. (A burst of identical timestamps can never be
        // split — without the span guard it would shrink forever.)
        if drained > SPLIT_MAX
            && self.shift > MIN_SHIFT
            && (max_at >> (self.shift - 1)) > (min_at >> (self.shift - 1))
        {
            let new_shift = self.shift - 1;
            self.rebuild(new_shift);
            return;
        }
        // Grow: promotions dominated by empty-bucket scanning mean the
        // bands are too narrow for the event spacing.
        if self.window_promotions >= GROW_WINDOW {
            if self.window_scans > GROW_SCAN_FACTOR * self.window_promotions
                && self.shift < MAX_SHIFT
            {
                let new_shift = self.shift + 1;
                self.rebuild(new_shift);
            }
            self.window_promotions = 0;
            self.window_scans = 0;
        }
    }

    /// Re-bucket every entry under a new band width. Order is preserved
    /// because routing only depends on each entry's own time.
    fn rebuild(&mut self, new_shift: u32) {
        self.resizes += 1;
        let mut all: Vec<QEntry<K>> = std::mem::take(&mut self.cur);
        all.reserve(self.len.saturating_sub(all.len()));
        for slot in self.bands.iter_mut() {
            all.append(slot);
        }
        all.append(&mut self.overflow);
        self.in_ring = 0;
        self.overflow_min_band = u64::MAX;
        self.shift = new_shift;
        self.cur_band = all
            .iter()
            .map(|e| e.at.as_nanos() >> new_shift)
            .min()
            .unwrap_or(0);
        for e in all {
            self.place(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDur::from_nanos(ns)
    }

    /// Pops must come out in (at, seq) order regardless of push pattern.
    #[test]
    fn pops_in_time_seq_order() {
        let mut q = CalQueue::new();
        // Deliberately adversarial spread: same band, adjacent bands, far
        // future, and exact ties broken by seq.
        let times = [
            5u64,
            5,
            131_072,
            131_073,
            1,
            70_000_000_000,
            42,
            131_071,
            262_144,
            5,
        ];
        for (seq, &ns) in times.iter().enumerate() {
            q.push(t(ns), seq as u64, seq);
        }
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &ns)| (ns, s as u64))
            .collect();
        expect.sort();
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.at.as_nanos(), e.seq));
        }
        assert_eq!(got, expect);
        assert!(q.is_empty());
    }

    /// Interleaved push/pop with a pseudo-random schedule matches a heap.
    #[test]
    fn interleaved_matches_reference_heap() {
        let mut q = CalQueue::new();
        let mut reference: BinaryHeap<Reverse<QEntry<u32>>> = BinaryHeap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for seq in 0..5000u64 {
            let r = next();
            if r % 3 == 0 && !reference.is_empty() {
                let a = q.pop().unwrap();
                let b = reference.pop().unwrap().0;
                assert_eq!((a.at, a.seq), (b.at, b.seq));
                now = a.at.as_nanos();
            } else {
                // Mix of near (same few bands) and far (overflow) times.
                let dt = if r % 17 == 0 {
                    (r % 1_000_000_000) + 200_000_000
                } else {
                    r % 400_000
                };
                let at = t(now + dt);
                q.push(at, seq, seq as u32);
                reference.push(Reverse(QEntry {
                    at,
                    seq,
                    kind: seq as u32,
                }));
            }
            assert_eq!(q.len(), reference.len());
        }
        while let Some(a) = q.pop() {
            let b = reference.pop().unwrap().0;
            assert_eq!((a.at, a.seq), (b.at, b.seq));
        }
        assert!(reference.is_empty());
    }

    /// Far-future entries must re-anchor the window, not scan to it.
    #[test]
    fn overflow_reseed_and_migration() {
        let mut q = CalQueue::new();
        // Enough near entries to leave heap mode and engage the calendar.
        for i in 0..HYBRID_HIGH as u64 {
            q.push(t(10 + i), i, 0u8);
        }
        // Far beyond the ring horizon (1024 bands * 131µs ≈ 134ms).
        let far = HYBRID_HIGH as u64;
        q.push(t(3_600_000_000_000), far, 1);
        q.push(t(3_600_000_000_500), far + 1, 2);
        for _ in 0..HYBRID_HIGH {
            assert_eq!(q.pop().unwrap().kind, 0);
        }
        assert_eq!(q.pop().unwrap().kind, 1);
        assert_eq!(q.pop().unwrap().kind, 2);
        assert!(q.pop().is_none());
        assert!(q.overflow_max() >= 2);
    }

    /// An overflow entry that becomes window-eligible as the window slides
    /// must still pop in global order (the migration path).
    #[test]
    fn overflow_migrates_into_sliding_window() {
        let mut q = CalQueue::with_shift(DEFAULT_SHIFT);
        let band = 1u64 << DEFAULT_SHIFT;
        // One entry per band for 3000 bands: crosses into calendar mode
        // mid-push, and the later entries start in overflow (beyond
        // NB=1024 bands) and must migrate as we pop forward.
        for i in 0..3000u64 {
            q.push(t(i * band + 7), i, i);
        }
        for i in 0..3000u64 {
            assert_eq!(q.pop().unwrap().seq, i, "out of order at {i}");
        }
    }

    #[test]
    fn retain_drops_matching_entries_only() {
        // Large enough to exercise retain over the calendar layout.
        let mut q = CalQueue::new();
        for i in 0..2000u64 {
            q.push(t(i * 50_000), i, i);
        }
        q.retain(|k| k % 3 != 0);
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e.kind);
        }
        let expect: Vec<u64> = (0..2000).filter(|k| k % 3 != 0).collect();
        assert_eq!(got, expect);

        // Small queues retain in heap mode.
        let mut q = CalQueue::new();
        for i in 0..100u64 {
            q.push(t(i * 50_000), i, i);
        }
        q.retain(|k| k % 3 == 0);
        assert_eq!(q.len(), 34);
    }

    /// Dense same-band bursts with distinct times trigger a shrink; a tie
    /// burst (identical timestamps) must not shrink forever.
    #[test]
    fn adaptive_resize_is_bounded_and_order_preserving() {
        let mut q = CalQueue::new();
        let mut seq = 0u64;
        // 4000 entries spread over a couple of bands → oversized buckets.
        for i in 0..4000u64 {
            q.push(t(200_000 + i * 60), seq, i);
            seq += 1;
        }
        // Tie burst: same timestamp 1000 times.
        for i in 0..1000u64 {
            q.push(t(500_000), seq, 10_000 + i);
            seq += 1;
        }
        let mut prev = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!((e.at, e.seq) >= prev);
            prev = (e.at, e.seq);
            n += 1;
        }
        assert_eq!(n, 5000);
        assert!(q.band_ns() >= 1 << MIN_SHIFT);
    }

    #[test]
    fn counters_track_depth_and_promotions() {
        let mut q = CalQueue::new();
        for i in 0..2000u64 {
            q.push(t(i * 1_000_000), i, i);
        }
        assert_eq!(q.max_depth(), 2000);
        while q.pop().is_some() {}
        assert!(q.promotions() > 0, "deep queue must use the calendar");
        // Two layout switches (heap→calendar→heap) count as resizes.
        assert!(q.resizes() >= 2);
        assert_eq!(q.len(), 0);
    }

    /// Below [`HYBRID_HIGH`] the queue is a plain heap: no promotions, no
    /// ring bookkeeping, overflow never populated.
    #[test]
    fn small_queues_stay_in_heap_mode() {
        let mut q = CalQueue::new();
        for i in 0..(HYBRID_HIGH as u64 - 1) {
            // Spread across far more than NB bands — would hit the
            // overflow path if the calendar were engaged.
            q.push(t(i * 1_000_000_000), i, i);
        }
        for i in 0..(HYBRID_HIGH as u64 - 1) {
            assert_eq!(q.pop().unwrap().seq, i);
        }
        assert_eq!(q.promotions(), 0);
        assert_eq!(q.resizes(), 0);
        assert_eq!(q.overflow_max(), 0);
    }
}
