//! Sharded conservative-time parallel execution of one simulation.
//!
//! A [`ShardedSimulation`] partitions the services of a [`Topology`] across
//! N worker shards and runs one full event core (calendar queue + request
//! arena + virtual-time PS replicas) per shard on its own thread. Request
//! call trees are executed as *fragments*: the maximal connected subtree of
//! a class tree whose hops live on one shard runs locally; every call edge
//! that crosses a shard boundary becomes a message through a bounded SPSC
//! ring, carried with the same network delay a local hop would pay.
//!
//! # Conservative synchronization (Chandy–Misra / null-message style)
//!
//! There is no global barrier and no coordinator. Each shard `i` publishes
//! a single monotone *bound* `B_i`: a promise that it will never again send
//! a cross-shard message with timestamp `< B_i`. The bound is derived from
//! the shard's own event horizon plus the cross-shard **lookahead** `L`
//! (the minimum network latency on any cross-shard edge — every message is
//! sent at `now + net_delay ≥ now + L`):
//!
//! ```text
//! B_i = min(next local event time, safe_i) + L
//! safe_i = min over sender shards p of B_p
//! ```
//!
//! A shard may freely process local events with timestamp `< safe_i`. Each
//! worker loop iteration reads peer bounds, drains inbound rings, processes
//! the safe prefix of its event queue, and republishes its bound
//! (republishing with no accompanying payload is the null message). The
//! read-bounds-*then*-drain order is what makes the protocol barrier-free:
//! a ring push happens-before the sender's next bound publish, so any
//! message not yet drained when a bound is observed is timestamped at or
//! above that bound.
//!
//! # Determinism contract
//!
//! * `shards = 1` is **bit-identical** to the plain [`Simulation`]: the
//!   facade wraps one unmodified engine, no threads, no shard context.
//! * `shards = N > 1` is bit-identical across reruns **for fixed N**: every
//!   shard seeds per-class Poisson sources exactly as the single-engine
//!   build does (so injection schedules are shard-layout-invariant), event
//!   ordering ties are broken by shard-striped sequence numbers
//!   (shard `i` draws `i, i+N, i+2N, …`), and the conservative protocol
//!   makes the processed-event order independent of thread interleaving.
//!   Different N interleave work-sampling RNG draws differently, so
//!   results are pinned per shard count (see `DESIGN.md` §6).
//!
//! Wall-clock-dependent counters (sync rounds, null-message ratio, ring
//! traffic) are reported via [`ShardReport`] for perf telemetry only and
//! never feed deterministic artifacts.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::engine::{SimConfig, Simulation};
use crate::profiler::ProfilerReport;
use crate::telemetry::MetricsSnapshot;
use crate::time::{SimDur, SimTime};
use crate::topology::{ClassId, ServiceId, Topology};
use crate::workload::RateFn;

/// Capacity of each cross-shard SPSC ring (power of two). A full ring
/// makes the sender drain its own inbound and retry, so capacity bounds
/// memory, not correctness.
const RING_CAP: usize = 8192;

/// Pads hot atomics to a cache line so bound publishes and ring cursors
/// don't false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CachePadded<T>(T);

/// Remote reference to a request slot on another shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotRef {
    pub(crate) shard: u16,
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

/// Cross-shard message payloads. All variants are `Copy` and fit in a few
/// words; rings move them by value.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Msg {
    /// A call-tree hop crosses onto this shard: allocate a fragment slot
    /// rooted at `node` and run it. `reply` names the parent fragment
    /// (for the response notification), `home` the injecting shard's slot
    /// (for end-to-end completion accounting).
    Arrive {
        class: u32,
        node: u16,
        reply: SlotRef,
        home: SlotRef,
    },
    /// A fragment rooted at child hop `node` of slot `slot` has responded:
    /// run the parent-side response bookkeeping (free the awaiting daemon,
    /// resume a nested-waiting parent, count the response).
    ChildDone { slot: u32, gen: u32, node: u16 },
    /// A whole fragment of home slot `slot` has fully completed.
    FragDone { slot: u32, gen: u32 },
}

/// A message plus its simulated delivery time and the sender-assigned
/// event sequence number (the receiver schedules it verbatim, which is
/// what keeps the merged event order deterministic).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Envelope {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) msg: Msg,
}

/// Bounded single-producer single-consumer ring of [`Envelope`]s.
///
/// One fixed producer (the sending shard's thread) and one fixed consumer
/// (the receiving shard's thread) per ring; the mesh allocates one ring
/// per directed shard pair, which is what makes the SPSC discipline hold
/// by construction.
pub(crate) struct Ring {
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    buf: Box<[UnsafeCell<MaybeUninit<Envelope>>]>,
}

// SAFETY: `buf` cells are only written by the single producer between its
// tail load and tail store, and only read by the single consumer between
// its head load and head store; the Release/Acquire pairs on `tail`/`head`
// order those accesses.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field(
                "len",
                &(self.tail.0.load(Ordering::Relaxed) - self.head.0.load(Ordering::Relaxed)),
            )
            .finish()
    }
}

impl Ring {
    fn new() -> Self {
        let buf = (0..RING_CAP)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            head: CachePadded(AtomicU64::new(0)),
            tail: CachePadded(AtomicU64::new(0)),
            buf,
        }
    }

    /// Producer side: false when the ring is full (sender must drain its
    /// own inbound and retry — never drop).
    pub(crate) fn push(&self, env: Envelope) -> bool {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= RING_CAP as u64 {
            return false;
        }
        let i = (tail as usize) & (RING_CAP - 1);
        // SAFETY: slot `i` is unoccupied (tail - head < cap) and only this
        // producer writes it until the tail store below publishes it.
        unsafe { (*self.buf[i].get()).write(env) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side.
    pub(crate) fn pop(&self) -> Option<Envelope> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let i = (head as usize) & (RING_CAP - 1);
        // SAFETY: head < tail means slot `i` holds a fully published
        // envelope; only this consumer reads it before the head store
        // releases the slot back to the producer.
        let env = unsafe { (*self.buf[i].get()).assume_init() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(env)
    }
}

/// The shared synchronization fabric: one bound and one done flag per
/// shard, one SPSC ring per directed shard pair.
#[derive(Debug)]
pub(crate) struct Mesh {
    n: usize,
    /// Cross-shard lookahead in nanoseconds (`SimConfig::net_delay`).
    lookahead: u64,
    /// `bounds[i]`: shard `i`'s promise — no future send below this time.
    bounds: Vec<CachePadded<AtomicU64>>,
    /// `rings[src * n + dst]`.
    rings: Vec<Ring>,
    /// Per-shard window-done flags, reset by the facade between windows.
    done: Vec<CachePadded<AtomicBool>>,
}

impl Mesh {
    fn new(n: usize, lookahead: SimDur) -> Self {
        Mesh {
            n,
            lookahead: lookahead.as_nanos(),
            bounds: (0..n).map(|_| CachePadded(AtomicU64::new(0))).collect(),
            rings: (0..n * n).map(|_| Ring::new()).collect(),
            done: (0..n)
                .map(|_| CachePadded(AtomicBool::new(false)))
                .collect(),
        }
    }

    pub(crate) fn lookahead(&self) -> u64 {
        self.lookahead
    }

    pub(crate) fn ring(&self, src: u16, dst: u16) -> &Ring {
        &self.rings[src as usize * self.n + dst as usize]
    }

    pub(crate) fn bound(&self, shard: usize) -> u64 {
        self.bounds[shard].0.load(Ordering::Acquire)
    }

    /// Publishes shard `i`'s bound. `fetch_max` keeps the promise monotone
    /// even if a stale value is recomputed after an inbound drain.
    pub(crate) fn publish(&self, shard: u16, bound: u64) {
        self.bounds[shard as usize]
            .0
            .fetch_max(bound, Ordering::AcqRel);
    }

    pub(crate) fn mark_done(&self, shard: u16) {
        self.done[shard as usize].0.store(true, Ordering::Release);
    }

    pub(crate) fn all_done(&self) -> bool {
        self.done.iter().all(|d| d.0.load(Ordering::Acquire))
    }

    fn reset_done(&self) {
        for d in &self.done {
            d.0.store(false, Ordering::Relaxed);
        }
    }

    /// Re-floors every bound at the start of a window. A shard that went
    /// idle last window published a promise far past the old horizon (up
    /// to `u64::MAX` for pred-less shards), but the facade may schedule
    /// new load between windows (`set_rate`) whose cross-shard sends
    /// start as early as `window start + lookahead` — stale high promises
    /// must be lowered before workers restart or peers would run ahead of
    /// the new traffic. Only called between windows, when no worker
    /// threads are live.
    fn reset_bounds(&self, floor: u64) {
        for b in &self.bounds {
            b.0.store(floor, Ordering::Relaxed);
        }
    }
}

/// The static shard layout for one topology: who owns which service, where
/// each class is injected, per-fragment response counts, and which shard
/// pairs can ever exchange messages.
#[derive(Debug)]
pub struct ShardPlan {
    /// Number of shards.
    pub n: usize,
    /// `owner[s]`: shard owning service `s` (all its replicas and queues).
    pub owner: Vec<u16>,
    /// `home[c]`: shard injecting class `c` — the owner of its root
    /// service, so the root hop never crosses a shard on injection.
    pub home: Vec<u16>,
    /// `frags_total[c]`: fragments per request of class `c`
    /// (`1 + cross-shard edges in its tree`).
    pub frags_total: Vec<u16>,
    /// `expected[c][r]`: responses a fragment slot rooted at hop `r`
    /// waits for — its local hops plus one per cross-shard child edge.
    /// Only meaningful when `r` is a fragment root.
    pub expected: Vec<Vec<u16>>,
    /// `preds[j]`: shards that can ever send a message to shard `j`.
    pub preds: Vec<Vec<usize>>,
    /// Cross-shard lookahead (the uniform network delay).
    pub lookahead: SimDur,
}

impl ShardPlan {
    /// Builds the deterministic shard layout: partition services, derive
    /// class homes, fragment response counts, and the reachability lists
    /// that drive the conservative bounds.
    pub fn build(topology: &Topology, n: usize, lookahead: SimDur) -> ShardPlan {
        assert!(n >= 1, "shard count must be at least 1");
        let owner = partition_services(topology, n);
        let flat = topology.flat_classes();
        let nc = topology.num_classes();
        let home: Vec<u16> = (0..nc).map(|c| owner[flat[c].nodes[0].service]).collect();

        let mut frags_total = vec![0u16; nc];
        let mut expected: Vec<Vec<u16>> = Vec::with_capacity(nc);
        for (ci, class) in flat.iter().enumerate() {
            let node_owner = |node: usize| -> u16 { owner[class.nodes[node].service] };
            let mut exp = vec![0u16; class.nodes.len()];
            #[allow(clippy::needless_range_loop)] // `r` seeds a DFS, not just `exp[r]`
            for r in 0..class.nodes.len() {
                let is_root = match class.nodes[r].parent {
                    None => true,
                    Some((p, _)) => node_owner(p as usize) != node_owner(r),
                };
                if !is_root {
                    continue;
                }
                frags_total[ci] += 1;
                // Count the fragment: hops reachable from `r` without an
                // ownership change, plus one per cross-shard child edge.
                let (mut count, mut stack) = (0u16, vec![r]);
                while let Some(x) = stack.pop() {
                    count += 1;
                    for &(c, _) in &class.nodes[x].children {
                        if node_owner(c as usize) == node_owner(x) {
                            stack.push(c as usize);
                        } else {
                            count += 1;
                        }
                    }
                }
                exp[r] = count;
            }
            expected.push(exp);
        }

        // Reachability: an Arrive flows parent-owner → child-owner and its
        // ChildDone flows back; a FragDone flows fragment-owner → home.
        let mut reach = vec![false; n * n];
        for e in topology.call_edges() {
            let (a, b) = (owner[e.from] as usize, owner[e.to] as usize);
            if a != b {
                reach[a * n + b] = true;
                reach[b * n + a] = true;
            }
        }
        for (ci, class) in flat.iter().enumerate() {
            for r in 0..class.nodes.len() {
                if expected[ci][r] == 0 {
                    continue; // not a fragment root
                }
                let f = owner[class.nodes[r].service] as usize;
                let h = home[ci] as usize;
                if f != h {
                    reach[f * n + h] = true;
                }
            }
        }
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|j| (0..n).filter(|&i| reach[i * n + j]).collect())
            .collect();

        ShardPlan {
            n,
            owner,
            home,
            frags_total,
            expected,
            preds,
            lookahead,
        }
    }
}

/// Deterministic service partition: connected components of the service
/// graph (so tight RPC cliques co-locate), heaviest components split along
/// BFS order until N parts exist, then longest-processing-time placement
/// into N bins. Weight = call-tree hops hosted by the service.
pub fn partition_services(topology: &Topology, n: usize) -> Vec<u16> {
    let s = topology.num_services();
    let adj = topology.service_adjacency();
    let w: Vec<u64> = topology
        .service_node_weights()
        .iter()
        .map(|&x| x.max(1))
        .collect();

    // Connected components, each in BFS visit order from its lowest id.
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut seen = vec![false; s];
    for start in 0..s {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut comp = vec![start];
        let mut qi = 0;
        while qi < comp.len() {
            let x = comp[qi];
            qi += 1;
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    comp.push(y);
                }
            }
        }
        comps.push(comp);
    }

    // Fewer components than shards: split the heaviest splittable
    // component at its weight midpoint along BFS order (the prefix stays
    // connected, keeping at least one tight clique intact per half).
    let comp_w = |c: &[usize]| c.iter().map(|&x| w[x]).sum::<u64>();
    while comps.len() < n {
        let mut best: Option<usize> = None;
        for (i, c) in comps.iter().enumerate() {
            if c.len() < 2 {
                continue;
            }
            if best.is_none_or(|b| comp_w(c) > comp_w(&comps[b])) {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        let total = comp_w(&comps[i]);
        let mut acc = 0u64;
        let mut cut = comps[i].len() - 1;
        for (k, &x) in comps[i].iter().enumerate() {
            acc += w[x];
            if acc * 2 >= total && k + 1 < comps[i].len() {
                cut = k + 1;
                break;
            }
        }
        let tail = comps[i].split_off(cut);
        comps.push(tail);
    }

    // LPT: heaviest part first into the lightest bin (first bin on ties).
    let mut order: Vec<usize> = (0..comps.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(comp_w(&comps[i])), comps[i][0]));
    let mut bin_w = vec![0u64; n];
    let mut owner = vec![0u16; s];
    for i in order {
        let mut b = 0;
        for k in 1..n {
            if bin_w[k] < bin_w[b] {
                b = k;
            }
        }
        for &svc in &comps[i] {
            owner[svc] = b as u16;
        }
        bin_w[b] += comp_w(&comps[i]);
    }
    owner
}

/// Per-shard synchronization counters, accumulated by the worker loop.
/// Wall-clock dependent — reported for perf telemetry, excluded from all
/// deterministic artifacts.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShardStats {
    /// Worker-loop iterations (bound read + drain + process + publish).
    pub rounds: u64,
    /// Iterations that advanced nothing — pure null-message republishes.
    pub null_rounds: u64,
    /// Cross-shard envelopes sent.
    pub msgs_sent: u64,
    /// Cross-shard envelopes received.
    pub msgs_recv: u64,
}

/// Aggregated synchronization report for one [`ShardedSimulation`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard count.
    pub shards: usize,
    /// Conservative-time windows executed (`run_until` calls).
    pub windows: u64,
    /// Total worker-loop rounds across shards.
    pub rounds: u64,
    /// Rounds that only republished bounds (null messages).
    pub null_rounds: u64,
    /// Cross-shard envelopes sent.
    pub msgs_sent: u64,
    /// Live events processed per shard — the occupancy profile.
    pub per_shard_events: Vec<u64>,
}

impl ShardReport {
    /// Null-message rounds over all rounds, in `[0, 1]`.
    pub fn null_message_ratio(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.null_rounds as f64 / self.rounds as f64
        }
    }
}

/// Per-shard engine state: plan + mesh handles and per-slot fragment
/// bookkeeping, installed on a [`Simulation`] by the facade. Lives in this
/// module; the engine drives it from its dispatch loop.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    pub(crate) me: u16,
    pub(crate) plan: Arc<ShardPlan>,
    pub(crate) mesh: Arc<Mesh>,
    /// Per arena slot: the fragment's root hop (0 for home slots).
    pub(crate) frag_root: Vec<u16>,
    /// Per arena slot: parent fragment to notify when the root responds
    /// (`None` on home slots — the class root has no parent).
    pub(crate) reply: Vec<Option<SlotRef>>,
    /// Per arena slot: the home slot of the owning request.
    pub(crate) home: Vec<SlotRef>,
    /// Per arena slot (home slots only): fragments still running.
    pub(crate) remaining_frags: Vec<u16>,
    /// Parked payloads of scheduled `EventKind::Remote` events.
    pub(crate) slab: Vec<Envelope>,
    pub(crate) slab_free: Vec<u32>,
    pub(crate) stats: ShardStats,
}

impl ShardCtx {
    pub(crate) fn new(me: u16, plan: Arc<ShardPlan>, mesh: Arc<Mesh>) -> Self {
        ShardCtx {
            me,
            plan,
            mesh,
            frag_root: Vec::new(),
            reply: Vec::new(),
            home: Vec::new(),
            remaining_frags: Vec::new(),
            slab: Vec::new(),
            slab_free: Vec::new(),
            stats: ShardStats::default(),
        }
    }

    /// Grows the per-slot arrays to cover `slot`.
    pub(crate) fn ensure_slot(&mut self, slot: u32) {
        let need = slot as usize + 1;
        if self.frag_root.len() < need {
            self.frag_root.resize(need, 0);
            self.reply.resize(need, None);
            self.home.resize(
                need,
                SlotRef {
                    shard: 0,
                    slot: 0,
                    gen: 0,
                },
            );
            self.remaining_frags.resize(need, 0);
        }
    }

    /// Parks an envelope for a scheduled remote event, returning its index.
    pub(crate) fn park(&mut self, env: Envelope) -> u32 {
        match self.slab_free.pop() {
            Some(i) => {
                self.slab[i as usize] = env;
                i
            }
            None => {
                self.slab.push(env);
                (self.slab.len() - 1) as u32
            }
        }
    }

    /// Takes a parked envelope back out.
    pub(crate) fn unpark(&mut self, idx: u32) -> Envelope {
        self.slab_free.push(idx);
        self.slab[idx as usize]
    }
}

/// N engine shards executing one simulation under conservative time
/// synchronization. With `shards == 1` this is a zero-overhead wrapper
/// around the plain engine (no threads, no shard context, bit-identical
/// output).
#[derive(Debug)]
pub struct ShardedSimulation {
    shards: Vec<Simulation>,
    plan: Arc<ShardPlan>,
    mesh: Option<Arc<Mesh>>,
    windows: u64,
}

impl ShardedSimulation {
    /// Builds `n` shards of `topology`. Every shard constructs the full
    /// `Simulation` identically (same seed), so per-class Poisson source
    /// streams — split off the master RNG at construction — are identical
    /// across shard layouts; the facade then routes each class's rate to
    /// its home shard only, making the union of injection streams equal to
    /// the single-engine schedule. Work-sampling RNGs are re-seeded per
    /// shard to decorrelate service-time draws between shards.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `n > 1` with a zero or randomized network
    /// delay (`net_delay` is the conservative lookahead, so it must be
    /// positive and deterministic: `net_delay_cv == 0`).
    pub fn new(topology: Topology, cfg: SimConfig, seed: u64, n: usize) -> Self {
        assert!(n >= 1, "shard count must be at least 1");
        if n == 1 {
            let plan = Arc::new(ShardPlan::build(&topology, 1, cfg.net_delay));
            let sim = Simulation::new(topology, cfg, seed);
            return ShardedSimulation {
                shards: vec![sim],
                plan,
                mesh: None,
                windows: 0,
            };
        }
        assert!(
            cfg.net_delay > SimDur::ZERO,
            "sharded runs need net_delay > 0: it is the conservative lookahead"
        );
        assert!(
            cfg.net_delay_cv == 0.0,
            "sharded runs need a deterministic net_delay (net_delay_cv == 0): \
             a randomized hop below the mean would violate the lookahead bound"
        );
        let plan = Arc::new(ShardPlan::build(&topology, n, cfg.net_delay));
        let mesh = Arc::new(Mesh::new(n, cfg.net_delay));
        let shards = (0..n)
            .map(|i| {
                let mut sim = Simulation::new(topology.clone(), cfg.clone(), seed);
                sim.install_shard_ctx(
                    ShardCtx::new(i as u16, Arc::clone(&plan), Arc::clone(&mesh)),
                    // Decorrelate work sampling across shards without
                    // touching the already-split source streams.
                    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1),
                );
                sim
            })
            .collect();
        ShardedSimulation {
            shards,
            plan,
            mesh: Some(mesh),
            windows: 0,
        }
    }

    /// Shard count.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard layout.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Current simulated time (all shards advance in lock-step windows).
    pub fn now(&self) -> SimTime {
        self.shards[0].now()
    }

    /// Sets a class's arrival process on its home shard.
    pub fn set_rate(&mut self, class: ClassId, rate_fn: RateFn) {
        let h = self.plan.home[class.0] as usize;
        self.shards[h].set_rate(class, rate_fn);
    }

    /// Sets the live replica count of a service on its owning shard.
    pub fn set_replicas(&mut self, service: ServiceId, n: usize) {
        let o = self.plan.owner[service.0] as usize;
        self.shards[o].set_replicas(service, n);
    }

    /// Sets the per-replica CPU limit of a service on its owning shard.
    pub fn set_cpu_limit(&mut self, service: ServiceId, cores: f64) {
        let o = self.plan.owner[service.0] as usize;
        self.shards[o].set_cpu_limit(service, cores);
    }

    /// Requests in flight across all shards (fragments count toward their
    /// executing shard until they complete).
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.in_flight()).sum()
    }

    /// Live events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed()).sum()
    }

    /// Live events processed per shard.
    pub fn per_shard_events(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.events_processed()).collect()
    }

    /// Enables the phase profiler on every shard (same period everywhere
    /// so reports can be merged).
    pub fn enable_profiler(&mut self, sample_every: u32) {
        for s in &mut self.shards {
            s.enable_profiler(sample_every);
        }
    }

    /// Merged profiler report across shards (`None` until
    /// [`enable_profiler`](Self::enable_profiler) is called).
    pub fn profiler_report(&self) -> Option<ProfilerReport> {
        let mut iter = self.shards.iter().filter_map(|s| s.profiler());
        let first = iter.next()?;
        let mut merged = crate::profiler::PhaseProfiler::new(first.sample_every());
        merged.absorb(first);
        for p in iter {
            merged.absorb(p);
        }
        Some(merged.report())
    }

    /// Runs all shards until simulated time `t` under conservative
    /// synchronization (single-shard: plain `run_until`).
    pub fn run_until(&mut self, t: SimTime) {
        let Some(mesh) = self.mesh.as_ref() else {
            self.shards[0].run_until(t);
            return;
        };
        self.windows += 1;
        // Every cross-shard send in the new window happens at some
        // shard-local `now` (>= the shared horizon) plus the network hop,
        // so `now + lookahead` is a sound floor for every bound.
        let floor = self.shards[0]
            .now()
            .as_nanos()
            .saturating_add(mesh.lookahead());
        mesh.reset_bounds(floor);
        mesh.reset_done();
        std::thread::scope(|scope| {
            for sim in &mut self.shards {
                scope.spawn(move || sim.run_window(t));
            }
        });
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, dur: SimDur) {
        let t = self.now() + dur;
        self.run_until(t);
    }

    /// Harvests every shard and merges the snapshots deterministically:
    /// per-service rows come from the owning shard, per-class series from
    /// the home shard. Single-shard: plain `harvest`.
    pub fn harvest(&mut self) -> MetricsSnapshot {
        if self.mesh.is_none() {
            return self.shards[0].harvest();
        }
        let parts: Vec<MetricsSnapshot> = self.shards.iter_mut().map(|s| s.harvest()).collect();
        MetricsSnapshot::merge_sharded(&parts, &self.plan.owner, &self.plan.home)
    }

    /// Aggregated synchronization counters (zeroes for a 1-shard run).
    pub fn shard_report(&self) -> ShardReport {
        let mut r = ShardReport {
            shards: self.shards.len(),
            windows: self.windows,
            rounds: 0,
            null_rounds: 0,
            msgs_sent: 0,
            per_shard_events: self.per_shard_events(),
        };
        for s in &self.shards {
            if let Some(st) = s.shard_stats() {
                r.rounds += st.rounds;
                r.null_rounds += st.null_rounds;
                r.msgs_sent += st.msgs_sent;
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{
        CallNode, ClassCfg, EdgeKind, Priority, ServiceCfg, ServiceId, WorkDist,
    };

    fn chain(names: &[&str], edge: EdgeKind) -> Topology {
        let services = names.iter().map(|n| ServiceCfg::new(*n, 2.0)).collect();
        let mut node = CallNode::leaf(ServiceId(names.len() - 1), WorkDist::Constant(0.001));
        for i in (0..names.len() - 1).rev() {
            node = CallNode::leaf(ServiceId(i), WorkDist::Constant(0.001)).with_child(edge, node);
        }
        let classes = vec![ClassCfg {
            name: "req".into(),
            priority: Priority::HIGH,
            root: node,
        }];
        Topology::new(services, classes).expect("valid")
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let r = Ring::new();
        let env = |seq| Envelope {
            at: SimTime::ZERO,
            seq,
            msg: Msg::FragDone { slot: 0, gen: 0 },
        };
        for i in 0..RING_CAP as u64 {
            assert!(r.push(env(i)));
        }
        assert!(!r.push(env(9999)), "full ring rejects");
        for i in 0..RING_CAP as u64 {
            assert_eq!(r.pop().expect("non-empty").seq, i);
        }
        assert!(r.pop().is_none());
        // Wrap-around works.
        assert!(r.push(env(42)));
        assert_eq!(r.pop().unwrap().seq, 42);
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        let t = chain(&["a", "b", "c", "d"], EdgeKind::NestedRpc);
        let p1 = partition_services(&t, 2);
        let p2 = partition_services(&t, 2);
        assert_eq!(p1, p2, "deterministic");
        assert!(p1.contains(&0) && p1.contains(&1));
        // BFS-prefix split keeps the chain halves contiguous.
        assert_eq!(p1[0], p1[1]);
        assert_eq!(p1[2], p1[3]);
    }

    #[test]
    fn connected_components_colocate_before_splitting() {
        // Two disjoint two-service cliques over two shards: each clique
        // lands whole on one shard.
        let services = vec![
            ServiceCfg::new("a0", 1.0),
            ServiceCfg::new("a1", 1.0),
            ServiceCfg::new("b0", 1.0),
            ServiceCfg::new("b1", 1.0),
        ];
        let class = |name: &str, s0: usize, s1: usize| ClassCfg {
            name: name.into(),
            priority: Priority::HIGH,
            root: CallNode::leaf(ServiceId(s0), WorkDist::Constant(0.001)).with_child(
                EdgeKind::NestedRpc,
                CallNode::leaf(ServiceId(s1), WorkDist::Constant(0.001)),
            ),
        };
        let t = Topology::new(services, vec![class("a", 0, 1), class("b", 2, 3)]).unwrap();
        let p = partition_services(&t, 2);
        assert_eq!(p[0], p[1], "clique a stays whole");
        assert_eq!(p[2], p[3], "clique b stays whole");
        assert_ne!(p[0], p[2], "cliques spread across shards");
    }

    #[test]
    fn plan_counts_fragments_and_reachability() {
        let t = chain(&["a", "b", "c", "d"], EdgeKind::NestedRpc);
        let plan = ShardPlan::build(&t, 2, SimDur::from_nanos(100_000));
        // Chain a-b | c-d: one cross edge → two fragments.
        assert_eq!(plan.frags_total[0], 2);
        assert_eq!(plan.home[0], plan.owner[0]);
        // Home fragment: hops a,b plus the one cross edge = 3 responses.
        assert_eq!(plan.expected[0][0], 3);
        // Remote fragment rooted at hop 2: hops c,d = 2 responses.
        assert_eq!(plan.expected[0][2], 2);
        // Both directions are reachable (Arrive one way, ChildDone back).
        let (h, f) = (plan.owner[0] as usize, plan.owner[2] as usize);
        assert!(plan.preds[f].contains(&h));
        assert!(plan.preds[h].contains(&f));
    }

    #[test]
    fn disjoint_groups_have_no_preds() {
        let services = vec![ServiceCfg::new("a", 1.0), ServiceCfg::new("b", 1.0)];
        let class = |name: &str, s: usize| ClassCfg {
            name: name.into(),
            priority: Priority::HIGH,
            root: CallNode::leaf(ServiceId(s), WorkDist::Constant(0.001)),
        };
        let t = Topology::new(services, vec![class("a", 0), class("b", 1)]).unwrap();
        let plan = ShardPlan::build(&t, 2, SimDur::from_nanos(100_000));
        assert!(plan.preds.iter().all(|p| p.is_empty()));
        assert_eq!(plan.frags_total, vec![1, 1]);
    }
}
