//! Arrival-rate patterns for open-loop load generation.
//!
//! The paper evaluates under three kinds of user load (§VII-E): *constant*
//! (Poisson with fixed RPS), *dynamic* (diurnal ramps and sharp bursts of
//! +50 % to +125 %), and *skewed* (a different mix of request classes than
//! seen during exploration — expressed by giving each class its own
//! [`RateFn`]). The simulator realizes any [`RateFn`] as a non-homogeneous
//! Poisson process via thinning.

use crate::time::{SimDur, SimTime};

/// A deterministic instantaneous-arrival-rate function (requests/second).
#[derive(Debug, Clone, PartialEq)]
pub enum RateFn {
    /// Fixed rate.
    Constant(f64),
    /// Diurnal pattern: rises smoothly from `base` to `peak` and back over
    /// `period`, repeating. `rate(t) = base + (peak-base)·sin²(πt/period)`.
    Diurnal {
        /// Minimum rate (at t = 0 and t = period).
        base: f64,
        /// Maximum rate (at t = period/2).
        peak: f64,
        /// Length of one up-down cycle.
        period: SimDur,
    },
    /// A flat `base` rate with a rectangular burst to `burst` between
    /// `start` and `end`.
    Burst {
        /// Rate outside the burst window.
        base: f64,
        /// Rate inside the burst window.
        burst: f64,
        /// Burst start time.
        start: SimTime,
        /// Burst end time.
        end: SimTime,
    },
    /// Piecewise-constant rate: `(from, rate)` steps, sorted by time. The
    /// rate before the first step is 0.
    Steps(Vec<(SimTime, f64)>),
}

impl RateFn {
    /// The instantaneous rate at time `t`.
    pub fn rate(&self, t: SimTime) -> f64 {
        match self {
            RateFn::Constant(r) => *r,
            RateFn::Diurnal { base, peak, period } => {
                let frac = t.as_secs_f64() / period.as_secs_f64().max(1e-9);
                let s = (core::f64::consts::PI * frac).sin();
                base + (peak - base) * s * s
            }
            RateFn::Burst {
                base,
                burst,
                start,
                end,
            } => {
                if t >= *start && t < *end {
                    *burst
                } else {
                    *base
                }
            }
            RateFn::Steps(steps) => {
                let mut rate = 0.0;
                for (from, r) in steps {
                    if t >= *from {
                        rate = *r;
                    } else {
                        break;
                    }
                }
                rate
            }
        }
    }

    /// An upper bound on the rate over all time (for thinning).
    pub fn max_rate(&self) -> f64 {
        match self {
            RateFn::Constant(r) => *r,
            RateFn::Diurnal { base, peak, .. } => base.max(*peak),
            RateFn::Burst { base, burst, .. } => base.max(*burst),
            RateFn::Steps(steps) => steps.iter().map(|(_, r)| *r).fold(0.0, f64::max),
        }
    }

    /// Returns this rate function scaled by a constant factor.
    ///
    /// Used to derive per-class rates from an application-wide pattern and a
    /// request-mix ratio.
    pub fn scaled(&self, k: f64) -> RateFn {
        match self {
            RateFn::Constant(r) => RateFn::Constant(r * k),
            RateFn::Diurnal { base, peak, period } => RateFn::Diurnal {
                base: base * k,
                peak: peak * k,
                period: *period,
            },
            RateFn::Burst {
                base,
                burst,
                start,
                end,
            } => RateFn::Burst {
                base: base * k,
                burst: burst * k,
                start: *start,
                end: *end,
            },
            RateFn::Steps(steps) => RateFn::Steps(steps.iter().map(|(t, r)| (*t, r * k)).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant() {
        let r = RateFn::Constant(5.0);
        assert_eq!(r.rate(SimTime::from_secs_f64(100.0)), 5.0);
        assert_eq!(r.max_rate(), 5.0);
    }

    #[test]
    fn diurnal_shape() {
        let r = RateFn::Diurnal {
            base: 100.0,
            peak: 300.0,
            period: SimDur::from_secs(3600),
        };
        assert!((r.rate(SimTime::ZERO) - 100.0).abs() < 1e-9);
        assert!((r.rate(SimTime::from_secs_f64(1800.0)) - 300.0).abs() < 1e-9);
        assert!((r.rate(SimTime::from_secs_f64(3600.0)) - 100.0).abs() < 1e-6);
        assert_eq!(r.max_rate(), 300.0);
        // Monotone on the rising half.
        assert!(r.rate(SimTime::from_secs_f64(600.0)) < r.rate(SimTime::from_secs_f64(1200.0)));
    }

    #[test]
    fn burst_window() {
        let r = RateFn::Burst {
            base: 100.0,
            burst: 225.0,
            start: SimTime::from_secs_f64(60.0),
            end: SimTime::from_secs_f64(120.0),
        };
        assert_eq!(r.rate(SimTime::from_secs_f64(30.0)), 100.0);
        assert_eq!(r.rate(SimTime::from_secs_f64(90.0)), 225.0);
        assert_eq!(r.rate(SimTime::from_secs_f64(120.0)), 100.0);
        assert_eq!(r.max_rate(), 225.0);
    }

    #[test]
    fn steps_lookup() {
        let r = RateFn::Steps(vec![
            (SimTime::from_secs_f64(10.0), 5.0),
            (SimTime::from_secs_f64(20.0), 9.0),
        ]);
        assert_eq!(r.rate(SimTime::ZERO), 0.0);
        assert_eq!(r.rate(SimTime::from_secs_f64(15.0)), 5.0);
        assert_eq!(r.rate(SimTime::from_secs_f64(25.0)), 9.0);
        assert_eq!(r.max_rate(), 9.0);
    }

    #[test]
    fn scaling() {
        let r = RateFn::Diurnal {
            base: 100.0,
            peak: 200.0,
            period: SimDur::from_secs(100),
        }
        .scaled(0.5);
        assert_eq!(r.rate(SimTime::ZERO), 50.0);
        assert_eq!(r.max_rate(), 100.0);
    }
}
