//! Flight recorder: a bounded, deterministic ring of recent engine events
//! and control-plane state transitions, kept so a post-mortem can show
//! *what the engine was doing* in the moments before a trigger fired.
//!
//! Armed via `Simulation::arm_flight_recorder`; disarmed it costs one
//! predictably-false branch per dispatched event. The recorder is purely
//! observational — it never touches simulation state, schedules nothing,
//! and draws no random numbers — so arming it leaves simulated output
//! bit-identical to an unarmed run (enforced by
//! `tests/observability_bitident.rs`). Entries carry only simulated time,
//! event sequence numbers, and `Copy` payloads: no wall-clock, no
//! formatting at record time, so the ring contents are a pure function of
//! the seed and the installed plan.
//!
//! The ring holds the *most recent* `capacity` entries; a post-mortem
//! bundle dumps whatever window the ring holds at the moment its trigger
//! is evaluated (triggers run at control-tick boundaries, so the window
//! typically covers the tail of the offending control interval).

use crate::time::SimTime;
use std::collections::VecDeque;

/// What one flight-recorder entry witnessed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlightEventKind {
    /// A Poisson source fired (and re-armed) for `class`.
    SourceNext {
        /// Request class index.
        class: u32,
    },
    /// A request hop arrived at its service.
    NodeArrive {
        /// Engine slot of the owning request.
        slot: u32,
        /// Hop index within the class's call tree.
        node: u16,
    },
    /// A processor-sharing completion check fired.
    PsCheck {
        /// Service index.
        service: u16,
        /// Replica index.
        replica: u16,
        /// False when the check was stale on arrival (superseded
        /// generation) and did no work.
        live: bool,
    },
    /// A replayed (explicitly scheduled) arrival was injected.
    TraceArrival {
        /// Request class index.
        class: u32,
    },
    /// Fault window `fault` was injected.
    ChaosStart {
        /// Fault index within the installed plan.
        fault: u32,
    },
    /// Fault window `fault` recovered.
    ChaosEnd {
        /// Fault index within the installed plan.
        fault: u32,
    },
    /// A memory-plane usage scan fired.
    MemCheck,
    /// A replica was OOM-killed (crossed its memory limit).
    OomKill {
        /// Service index.
        service: u16,
        /// Replica slot index.
        replica: u16,
    },
    /// A replica was evicted under node memory pressure.
    Evict {
        /// Service index.
        service: u16,
        /// QoS tier of the evicted replica (0 = BestEffort, 1 =
        /// Burstable, 2 = Guaranteed).
        tier: u8,
    },
    /// A killed/evicted replica restarted.
    MemRestart {
        /// Service index.
        service: u16,
    },
    /// Control-plane transition: replica count changed.
    Scale {
        /// Service index.
        service: u16,
        /// Live replicas before.
        from: u16,
        /// Live replicas after.
        to: u16,
    },
    /// Control-plane transition: per-replica CPU limit changed.
    CpuLimit {
        /// Service index.
        service: u16,
        /// New per-replica limit in millicores.
        millicores: u32,
    },
    /// A telemetry harvest (control-window boundary) completed.
    Harvest {
        /// Requests in flight at harvest time.
        in_flight: u32,
    },
}

impl FlightEventKind {
    /// Stable snake_case identifier (used in post-mortem bundles).
    pub fn label(&self) -> &'static str {
        match self {
            FlightEventKind::SourceNext { .. } => "source_next",
            FlightEventKind::NodeArrive { .. } => "node_arrive",
            FlightEventKind::PsCheck { .. } => "ps_check",
            FlightEventKind::TraceArrival { .. } => "trace_arrival",
            FlightEventKind::ChaosStart { .. } => "chaos_start",
            FlightEventKind::ChaosEnd { .. } => "chaos_end",
            FlightEventKind::MemCheck => "mem_check",
            FlightEventKind::OomKill { .. } => "oom_kill",
            FlightEventKind::Evict { .. } => "evict",
            FlightEventKind::MemRestart { .. } => "mem_restart",
            FlightEventKind::Scale { .. } => "scale",
            FlightEventKind::CpuLimit { .. } => "cpu_limit",
            FlightEventKind::Harvest { .. } => "harvest",
        }
    }
}

/// One recorded engine event or state transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEntry {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Engine event sequence number (state transitions carry the sequence
    /// counter's value at transition time — ring order is causal order).
    pub seq: u64,
    /// What happened.
    pub kind: FlightEventKind,
}

/// The bounded ring of recent [`FlightEntry`] records.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEntry>,
    recorded: u64,
}

impl FlightRecorder {
    /// Default ring capacity: enough to cover the tail of a control
    /// interval on the bench topologies without holding megabytes.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a recorder holding the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(65_536)),
            recorded: 0,
        }
    }

    /// Appends one entry, evicting the oldest when full.
    #[inline]
    pub(crate) fn push(&mut self, entry: FlightEntry) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(entry);
        self.recorded += 1;
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held (at most `capacity`).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total entries recorded since arming (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Entries evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }

    /// The held window, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.ring.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(s: f64, seq: u64) -> FlightEntry {
        FlightEntry {
            at: SimTime::from_secs_f64(s),
            seq,
            kind: FlightEventKind::SourceNext { class: 0 },
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.push(entry(i as f64, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn labels_cover_all_kinds() {
        let kinds = [
            FlightEventKind::SourceNext { class: 0 },
            FlightEventKind::NodeArrive { slot: 0, node: 0 },
            FlightEventKind::PsCheck {
                service: 0,
                replica: 0,
                live: true,
            },
            FlightEventKind::TraceArrival { class: 0 },
            FlightEventKind::ChaosStart { fault: 0 },
            FlightEventKind::ChaosEnd { fault: 0 },
            FlightEventKind::MemCheck,
            FlightEventKind::OomKill {
                service: 0,
                replica: 0,
            },
            FlightEventKind::Evict {
                service: 0,
                tier: 0,
            },
            FlightEventKind::MemRestart { service: 0 },
            FlightEventKind::Scale {
                service: 0,
                from: 1,
                to: 2,
            },
            FlightEventKind::CpuLimit {
                service: 0,
                millicores: 1000,
            },
            FlightEventKind::Harvest { in_flight: 0 },
        ];
        let labels: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        FlightRecorder::new(0);
    }
}
