//! Per-request span tracing: the simulator's analog of a distributed
//! tracing substrate (Jaeger/Zipkin over the paper's Prometheus stack).
//!
//! When enabled (see `Simulation::enable_tracing`), a head-based sampling
//! decision is taken once per injected request; sampled requests record one
//! [`TraceSpan`] per hop of their call tree — with enqueue, work-start,
//! respond timestamps plus every downstream-wait and blocked-submit
//! interval — assembled into a [`Trace`] when the request completes and
//! kept in a bounded ring (oldest evicted). The sampler draws from its own
//! RNG so enabling tracing never perturbs the simulation's random stream.
//!
//! Analysis (critical paths, blame decomposition) and exporters live in the
//! `ursa-trace` crate; this module is only the recording substrate, kept
//! inside `ursa-sim` so the engine can call it without a dependency cycle.

use crate::time::{SimDur, SimTime};
use crate::topology::{ClassId, EdgeKind, ServiceId};
use std::collections::{HashMap, VecDeque};
use ursa_stats::rng::Rng;

/// One hop of a sampled request: timestamps and wait intervals for a single
/// (request, call-tree node) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Hop index within the class's flattened call tree (0 = root).
    pub node: u16,
    /// Parent hop and the edge kind connecting them (`None` for the root).
    pub parent: Option<(u16, EdgeKind)>,
    /// Service that executed the hop.
    pub service: ServiceId,
    /// When the hop arrived at the service (after network delay).
    pub enqueue_at: SimTime,
    /// When a worker picked the hop up (end of queue wait).
    pub start_at: SimTime,
    /// When the hop responded.
    pub respond_at: SimTime,
    /// Total time blocked on nested downstream responses (sum of `waits`).
    pub nested_wait: SimDur,
    /// Closed `[begin, end]` intervals spent parked awaiting nested
    /// downstream responses.
    pub waits: Vec<(SimTime, SimTime)>,
    /// Closed `[begin, end]` intervals spent blocked on a full event-driven
    /// daemon pool/queue (counted in tier latency, unlike `waits`).
    pub blocked: Vec<(SimTime, SimTime)>,
}

impl TraceSpan {
    fn placeholder(node: u16) -> Self {
        TraceSpan {
            node,
            parent: None,
            service: ServiceId(0),
            enqueue_at: SimTime::ZERO,
            start_at: SimTime::ZERO,
            respond_at: SimTime::ZERO,
            nested_wait: SimDur::ZERO,
            waits: Vec::new(),
            blocked: Vec::new(),
        }
    }

    /// Full hop latency (enqueue → respond).
    pub fn latency(&self) -> SimDur {
        self.respond_at - self.enqueue_at
    }

    /// Hop latency excluding nested downstream waits — the paper's per-tier
    /// response time, the quantity Algorithm 1 profiles.
    pub fn tier_latency(&self) -> SimDur {
        self.latency() - self.nested_wait
    }

    /// Time spent queued before a worker picked the hop up.
    pub fn queue_wait(&self) -> SimDur {
        self.start_at - self.enqueue_at
    }

    /// Total time parked on nested downstream responses.
    pub fn downstream_wait(&self) -> SimDur {
        self.waits
            .iter()
            .fold(SimDur::ZERO, |acc, &(b, e)| acc + (e - b))
    }

    /// Total time blocked on event-driven daemon submission.
    pub fn blocked_time(&self) -> SimDur {
        self.blocked
            .iter()
            .fold(SimDur::ZERO, |acc, &(b, e)| acc + (e - b))
    }

    /// Time attributable to the service itself: on-worker time minus
    /// downstream waits and submit blocking (includes processor-sharing
    /// contention, which is real service-side slowdown).
    pub fn service_time(&self) -> SimDur {
        (self.respond_at - self.start_at) - self.downstream_wait() - self.blocked_time()
    }
}

/// A completed sampled request: its spans, indexed by call-tree node id.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Monotonic id, unique within one `Simulation`.
    pub id: u64,
    /// Request class.
    pub class: ClassId,
    /// Injection time (before the injection network delay).
    pub arrival: SimTime,
    /// When the last hop responded (the request completed).
    pub end: SimTime,
    /// One span per call-tree node; `spans[i].node == i`.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// End-to-end latency (injection → last hop responded).
    pub fn e2e(&self) -> SimDur {
        self.end - self.arrival
    }

    /// The root hop's span.
    pub fn root(&self) -> &TraceSpan {
        &self.spans[0]
    }

    /// Spans whose parent is `node`, in call-tree order.
    pub fn children(&self, node: u16) -> impl Iterator<Item = &TraceSpan> {
        self.spans
            .iter()
            .filter(move |s| matches!(s.parent, Some((p, _)) if p == node))
    }
}

/// Records sampled requests for a `Simulation`. Driven entirely by engine
/// hooks; users interact with it through `Simulation::enable_tracing` /
/// `take_traces` / `tracer`.
#[derive(Debug)]
pub struct Tracer {
    sample_rate: f64,
    capacity: usize,
    ring: VecDeque<Trace>,
    /// In-flight sampled requests, keyed by engine slot index.
    pending: HashMap<u32, Trace>,
    next_id: u64,
    rng: Rng,
    sampled: u64,
    evicted: u64,
}

impl Tracer {
    /// Creates a tracer keeping at most `capacity` finished traces,
    /// sampling each injected request with probability `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `sample_rate` is outside `[0, 1]`.
    pub fn new(capacity: usize, sample_rate: f64, seed: u64) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&sample_rate),
            "sample rate must be within [0, 1], got {sample_rate}"
        );
        Tracer {
            sample_rate,
            capacity,
            ring: VecDeque::with_capacity(capacity.min(65_536)),
            pending: HashMap::new(),
            next_id: 0,
            rng: Rng::seed_from(seed),
            sampled: 0,
            evicted: 0,
        }
    }

    /// The configured head-based sampling probability.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Requests sampled so far (including in-flight and evicted ones).
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Finished traces evicted from the ring because it was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Finished traces currently held in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if no finished traces are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    // ---- Engine hooks (crate-private) ------------------------------------

    /// Head-based sampling decision for one injection. Uses the tracer's
    /// own RNG so the simulation's random stream is untouched.
    pub(crate) fn wants_sample(&mut self) -> bool {
        self.sample_rate >= 1.0 || self.rng.chance(self.sample_rate)
    }

    /// Begins recording a sampled request occupying engine slot `slot`.
    pub(crate) fn start(&mut self, slot: u32, class: ClassId, arrival: SimTime, nodes: usize) {
        let id = self.next_id;
        self.next_id += 1;
        self.sampled += 1;
        let spans = (0..nodes)
            .map(|i| TraceSpan::placeholder(i as u16))
            .collect();
        self.pending.insert(
            slot,
            Trace {
                id,
                class,
                arrival,
                end: arrival,
                spans,
            },
        );
    }

    fn span_mut(&mut self, slot: u32, node: u16) -> Option<&mut TraceSpan> {
        self.pending
            .get_mut(&slot)
            .and_then(|t| t.spans.get_mut(node as usize))
    }

    pub(crate) fn on_arrive(
        &mut self,
        slot: u32,
        node: u16,
        service: ServiceId,
        parent: Option<(u16, EdgeKind)>,
        now: SimTime,
    ) {
        if let Some(span) = self.span_mut(slot, node) {
            span.service = service;
            span.parent = parent;
            span.enqueue_at = now;
        }
    }

    pub(crate) fn on_start(&mut self, slot: u32, node: u16, now: SimTime) {
        if let Some(span) = self.span_mut(slot, node) {
            span.start_at = now;
        }
    }

    pub(crate) fn open_wait(&mut self, slot: u32, node: u16, now: SimTime) {
        if let Some(span) = self.span_mut(slot, node) {
            span.waits.push((now, now));
        }
    }

    pub(crate) fn close_wait(&mut self, slot: u32, node: u16, now: SimTime) {
        if let Some(span) = self.span_mut(slot, node) {
            if let Some(last) = span.waits.last_mut() {
                last.1 = now;
            }
        }
    }

    pub(crate) fn open_block(&mut self, slot: u32, node: u16, now: SimTime) {
        if let Some(span) = self.span_mut(slot, node) {
            span.blocked.push((now, now));
        }
    }

    pub(crate) fn close_block(&mut self, slot: u32, node: u16, now: SimTime) {
        if let Some(span) = self.span_mut(slot, node) {
            if let Some(last) = span.blocked.last_mut() {
                last.1 = now;
            }
        }
    }

    pub(crate) fn on_respond(&mut self, slot: u32, node: u16, now: SimTime, nested_wait: SimDur) {
        if let Some(span) = self.span_mut(slot, node) {
            span.respond_at = now;
            span.nested_wait = nested_wait;
        }
    }

    /// Completes a sampled request: moves it from the pending map to the
    /// ring, evicting the oldest finished trace if the ring is full.
    pub(crate) fn finish(&mut self, slot: u32, now: SimTime) {
        let Some(mut trace) = self.pending.remove(&slot) else {
            return;
        };
        trace.end = now;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(trace);
    }

    /// Drains the finished traces (in-flight sampled requests stay pending).
    pub fn take(&mut self) -> Vec<Trace> {
        self.ring.drain(..).collect()
    }

    /// Finished traces currently in the ring, oldest first, without
    /// draining them (post-mortem reads must not perturb later drains).
    pub fn finished(&self) -> impl Iterator<Item = &Trace> {
        self.ring.iter()
    }

    /// In-flight sampled requests — the live span trees a post-mortem
    /// captures mid-request. Sorted by trace id so the order is
    /// deterministic (the pending map itself is hash-ordered).
    pub fn live(&self) -> Vec<&Trace> {
        let mut live: Vec<&Trace> = self.pending.values().collect();
        live.sort_by_key(|t| t.id);
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn span_decomposition_sums() {
        let span = TraceSpan {
            node: 0,
            parent: None,
            service: ServiceId(3),
            enqueue_at: t(1.0),
            start_at: t(1.2),
            respond_at: t(3.0),
            nested_wait: SimDur::from_secs_f64(1.0),
            waits: vec![(t(1.5), t(2.5))],
            blocked: vec![(t(2.6), t(2.7))],
        };
        let eps = 1e-9;
        assert!((span.latency().as_secs_f64() - 2.0).abs() < eps);
        assert!((span.queue_wait().as_secs_f64() - 0.2).abs() < eps);
        assert!((span.downstream_wait().as_secs_f64() - 1.0).abs() < eps);
        assert!((span.blocked_time().as_secs_f64() - 0.1).abs() < eps);
        assert!((span.service_time().as_secs_f64() - 0.7).abs() < eps);
        // queue + downstream + blocked + service == latency
        let sum =
            span.queue_wait() + span.downstream_wait() + span.blocked_time() + span.service_time();
        assert!((sum.as_secs_f64() - span.latency().as_secs_f64()).abs() < eps);
        assert!((span.tier_latency().as_secs_f64() - 1.0).abs() < eps);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tr = Tracer::new(2, 1.0, 7);
        for slot in 0..3u32 {
            tr.start(slot, ClassId(0), t(slot as f64), 1);
            tr.on_arrive(slot, 0, ServiceId(0), None, t(slot as f64));
            tr.finish(slot, t(slot as f64 + 0.5));
        }
        assert_eq!(tr.evicted(), 1);
        let traces = tr.take();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].id, 1, "oldest trace evicted");
        assert_eq!(traces[1].id, 2);
        assert!(tr.is_empty());
    }

    #[test]
    fn sampling_rate_is_respected() {
        let mut tr = Tracer::new(16, 0.1, 42);
        let hits = (0..20_000).filter(|_| tr.wants_sample()).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn unsampled_slots_are_ignored() {
        let mut tr = Tracer::new(4, 0.0, 1);
        // Hooks for a slot without a pending trace must be no-ops.
        tr.on_arrive(9, 0, ServiceId(0), None, t(0.0));
        tr.on_respond(9, 0, t(1.0), SimDur::ZERO);
        tr.finish(9, t(1.0));
        assert!(tr.is_empty());
        assert_eq!(tr.sampled(), 0);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn rejects_bad_sample_rate() {
        Tracer::new(4, 1.5, 1);
    }
}
