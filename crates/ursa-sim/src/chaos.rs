//! Engine-level fault-injection primitives: the chaos plane.
//!
//! A [`FaultPlan`] is a concrete, fully-timed list of fault windows that the
//! engine schedules as ordinary discrete events (see
//! [`Simulation::install_faults`](crate::engine::Simulation::install_faults)).
//! Five fault kinds are supported:
//!
//! * **Replica crash** — a service abruptly loses replicas; they restart
//!   when the window ends. Modeled as fail-stop with connection draining:
//!   the crashed replica leaves the load balancer immediately and its
//!   queued requests are re-dispatched to surviving replicas, while work
//!   already executing finishes (killing it would lose requests, breaking
//!   the injections == completions conservation every experiment relies
//!   on). At least one replica per service always survives — total
//!   blackout of a service is out of scope.
//! * **Node failure** — a whole machine dies, taking every co-located
//!   replica down at once (correlated capacity loss across services).
//!   Placement is synthetic and deterministic: replica slot `r` of service
//!   `s` lives on node `(s + r) % nodes`. Replicas of one service are
//!   homogeneous, so capacity loss is modeled by count, reusing the same
//!   drain machinery as a crash.
//! * **Slowdown** — one service's replicas execute at `1/factor` speed
//!   (noisy neighbor / interference): the processor-sharing progress
//!   rate is divided by the factor for the window, stretching both new
//!   and already-in-flight work. Composes multiplicatively with
//!   overlapping slowdowns; the user-facing
//!   [`set_work_scale`](crate::engine::Simulation::set_work_scale) hook
//!   instead scales sampled demands at dispatch.
//! * **RPC fault** — messages toward a callee service suffer a latency
//!   spike and probabilistic loss with per-edge timeout and bounded
//!   retry-with-backoff: each attempt is dropped with `drop_prob` (at most
//!   `max_retries` retries); a timed-out attempt costs the timeout plus an
//!   exponential backoff doubling per attempt. The final attempt always
//!   delivers, so no request is ever lost. The penalty is computed
//!   analytically at send time and folded into the delivery delay — one
//!   event per message, no retry events.
//! * **MQ stall** — the broker feeding a service's shared queue stalls:
//!   consumers stop being offered messages and a backlog builds; on
//!   recovery the backlog drains through the normal consumer-group path.
//!
//! **Determinism and zero cost.** The chaos RNG is seeded independently of
//! the simulation RNG and is only consulted while a fault is actually
//! active. With no plan installed — or an empty plan — the engine draws no
//! extra random numbers and schedules no extra events, so output is
//! bit-identical to a chaos-free run (enforced by
//! `chaos_disabled_is_bit_identical` in the engine tests and a proptest in
//! `tests/chaos_bitident.rs`).

use crate::time::{SimDur, SimTime};
use ursa_stats::rng::Rng;

/// Default synthetic cluster size for node-failure placement, matching
/// [`Cluster::paper_testbed`](crate::cluster::Cluster::paper_testbed).
pub const DEFAULT_NODES: usize = 8;

/// What a fault does while its window is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Crash up to `count` replicas of `service` (capped so at least one
    /// live replica survives); they restart when the window ends.
    ReplicaCrash {
        /// The service losing replicas.
        service: usize,
        /// Replicas to kill (use a large value for "all but one").
        count: usize,
    },
    /// Fail node `node`: every service loses the replicas placed on it
    /// (slot `r` of service `s` is on node `(s + r) % nodes`), each capped
    /// to keep one live replica. Capacity returns at window end.
    NodeFailure {
        /// The failing node index (`< FaultPlan::nodes`).
        node: usize,
    },
    /// Divide the processor-sharing progress rate of every `service`
    /// replica by `factor` (> 1 slows). Because the window rescales the
    /// rate rather than the sampled demands, it stretches work already
    /// in flight too — a job caught mid-execution finishes later, just
    /// as a real interference burst would hit it.
    Slowdown {
        /// The service slowed down.
        service: usize,
        /// Execution-speed divisor (must be strictly positive).
        factor: f64,
    },
    /// Degrade RPC/MQ message delivery toward `service`.
    RpcFault {
        /// The callee service whose inbound messages degrade.
        service: usize,
        /// Latency spike added to every message in the window.
        extra_delay: SimDur,
        /// Per-attempt drop probability in `[0, 1)`.
        drop_prob: f64,
        /// Sender-side timeout detecting a dropped attempt.
        timeout: SimDur,
        /// Maximum retries; the attempt after the last retry always
        /// delivers.
        max_retries: u32,
    },
    /// Stall the broker feeding `service`'s shared MQ queue: no messages
    /// are offered to consumers until the window ends, then the backlog
    /// drains.
    MqStall {
        /// The consumer service whose queue stalls.
        service: usize,
    },
}

impl FaultKind {
    /// Short kebab-case label for tables and annotations.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ReplicaCrash { .. } => "replica-crash",
            FaultKind::NodeFailure { .. } => "node-failure",
            FaultKind::Slowdown { .. } => "slowdown",
            FaultKind::RpcFault { .. } => "rpc-fault",
            FaultKind::MqStall { .. } => "mq-stall",
        }
    }

    /// The directly-targeted service, when the fault has one (node
    /// failures hit many services and return `None`).
    pub fn service(&self) -> Option<usize> {
        match *self {
            FaultKind::ReplicaCrash { service, .. }
            | FaultKind::Slowdown { service, .. }
            | FaultKind::RpcFault { service, .. }
            | FaultKind::MqStall { service } => Some(service),
            FaultKind::NodeFailure { .. } => None,
        }
    }
}

/// One timed fault window: `kind` is active on `[at, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Injection time.
    pub at: SimTime,
    /// Recovery time (must be strictly after `at`).
    pub until: SimTime,
    /// What happens in between.
    pub kind: FaultKind,
}

/// A concrete, fully-timed fault schedule, ready to install on a
/// [`Simulation`](crate::engine::Simulation). Build directly for one-off
/// windows, or compile one from the `ursa-chaos` scenario DSL.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The timed fault windows, in schedule order.
    pub faults: Vec<Fault>,
    /// Synthetic cluster size for node-failure placement.
    pub nodes: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan (installing it leaves the simulation bit-identical to
    /// a chaos-free run).
    pub fn new() -> Self {
        FaultPlan {
            faults: Vec::new(),
            nodes: DEFAULT_NODES,
        }
    }

    /// Appends a fault window after validating it.
    ///
    /// # Panics
    ///
    /// Panics on an empty window, a non-positive slowdown factor, a drop
    /// probability outside `[0, 1)`, or a node index outside the cluster.
    pub fn push(&mut self, fault: Fault) {
        assert!(
            fault.until > fault.at,
            "fault window must be non-empty ({} >= {})",
            fault.at,
            fault.until
        );
        match fault.kind {
            FaultKind::Slowdown { factor, .. } => {
                assert!(
                    factor > 0.0 && factor.is_finite(),
                    "slowdown factor must be positive and finite"
                );
            }
            FaultKind::RpcFault { drop_prob, .. } => {
                assert!(
                    (0.0..1.0).contains(&drop_prob),
                    "drop probability must be in [0, 1)"
                );
            }
            FaultKind::NodeFailure { node } => {
                assert!(
                    node < self.nodes,
                    "node {node} >= cluster size {}",
                    self.nodes
                );
            }
            FaultKind::ReplicaCrash { .. } | FaultKind::MqStall { .. } => {}
        }
        self.faults.push(fault);
    }

    /// Number of fault windows.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Earliest injection time across all windows.
    pub fn first_at(&self) -> Option<SimTime> {
        self.faults.iter().map(|f| f.at).min()
    }

    /// Latest recovery time across all windows.
    pub fn last_until(&self) -> Option<SimTime> {
        self.faults.iter().map(|f| f.until).max()
    }

    /// Structural digest of the plan (FNV-1a over every window's timing
    /// and parameters, platform-stable). Run manifests embed it so
    /// `ursa-bench diff` can tell whether two chaos runs injected the same
    /// fault schedule.
    pub fn digest(&self) -> u64 {
        let mut h = crate::topology::Fnv::new();
        h.write_usize(self.nodes);
        h.write_usize(self.faults.len());
        for f in &self.faults {
            h.write_usize(f.at.as_nanos() as usize);
            h.write_usize(f.until.as_nanos() as usize);
            match f.kind {
                FaultKind::ReplicaCrash { service, count } => {
                    h.write_usize(1);
                    h.write_usize(service);
                    h.write_usize(count);
                }
                FaultKind::NodeFailure { node } => {
                    h.write_usize(2);
                    h.write_usize(node);
                }
                FaultKind::Slowdown { service, factor } => {
                    h.write_usize(3);
                    h.write_usize(service);
                    h.write_f64(factor);
                }
                FaultKind::RpcFault {
                    service,
                    extra_delay,
                    drop_prob,
                    timeout,
                    max_retries,
                } => {
                    h.write_usize(4);
                    h.write_usize(service);
                    h.write_usize(extra_delay.as_nanos() as usize);
                    h.write_f64(drop_prob);
                    h.write_usize(timeout.as_nanos() as usize);
                    h.write_usize(max_retries as usize);
                }
                FaultKind::MqStall { service } => {
                    h.write_usize(5);
                    h.write_usize(service);
                }
            }
        }
        h.finish()
    }
}

/// Which edge of a fault window a [`FaultEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// The fault was injected.
    Injected,
    /// The fault cleared (capacity restored / degradation ended).
    Recovered,
}

/// One fault-plane occurrence, surfaced through
/// [`MetricsSnapshot::faults`](crate::telemetry::MetricsSnapshot::faults)
/// so control planes, dashboards, and decision logs can attribute what
/// they observed to what was injected.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the edge occurred.
    pub at: SimTime,
    /// Index of the fault window in the installed plan.
    pub fault: u32,
    /// Injection or recovery.
    pub phase: FaultPhase,
    /// The fault kind's label (e.g. `"slowdown"`).
    pub kind: &'static str,
    /// Directly-targeted service, when the fault has one.
    pub service: Option<usize>,
    /// Human-readable details (e.g. replicas killed per service).
    pub detail: String,
}

impl FaultEvent {
    /// One-line annotation label, e.g. `"slowdown injected (svc 3, x6)"`.
    pub fn label(&self) -> String {
        let phase = match self.phase {
            FaultPhase::Injected => "injected",
            FaultPhase::Recovered => "recovered",
        };
        if self.detail.is_empty() {
            format!("{} {phase}", self.kind)
        } else {
            format!("{} {phase} ({})", self.kind, self.detail)
        }
    }
}

/// Live fault-plane state owned by the engine while a plan is installed.
/// Boxed behind an `Option` on the simulation so the disabled path costs
/// one predictable branch per hook, exactly like the tracer.
#[derive(Debug)]
pub(crate) struct ChaosState {
    /// Chaos RNG — independent of the simulation RNG, consulted only while
    /// an RPC fault is active.
    rng: Rng,
    /// The installed fault windows (index = event payload).
    pub(crate) faults: Vec<Fault>,
    /// Per-service stack of active slowdown factors.
    slow_active: Vec<Vec<f64>>,
    /// Cached per-service slowdown product (1.0 when no fault is active).
    pub(crate) slow: Vec<f64>,
    /// Per-callee stack of active RPC-fault indices (last wins).
    rpc_active: Vec<Vec<u32>>,
    /// Per-service MQ stall depth (stalled while > 0).
    pub(crate) mq_stalled: Vec<u32>,
    /// Replicas killed per fault window, as `(service, count)`, restored
    /// on recovery.
    pub(crate) killed: Vec<Vec<(usize, usize)>>,
    /// Fault-plane occurrences since the last harvest.
    pub(crate) events: Vec<FaultEvent>,
    /// Synthetic cluster size for node-failure placement.
    pub(crate) nodes: usize,
}

impl ChaosState {
    pub(crate) fn new(plan: &FaultPlan, num_services: usize, seed: u64) -> Self {
        let n_faults = plan.faults.len();
        ChaosState {
            rng: Rng::seed_from(seed),
            faults: plan.faults.clone(),
            slow_active: vec![Vec::new(); num_services],
            slow: vec![1.0; num_services],
            rpc_active: vec![Vec::new(); num_services],
            mq_stalled: vec![0; num_services],
            killed: vec![Vec::new(); n_faults],
            events: Vec::new(),
            nodes: plan.nodes.max(1),
        }
    }

    /// Activates a slowdown factor on a service.
    pub(crate) fn slow_on(&mut self, s: usize, factor: f64) {
        self.slow_active[s].push(factor);
        self.slow[s] = self.slow_active[s].iter().product();
    }

    /// Deactivates one occurrence of a slowdown factor.
    pub(crate) fn slow_off(&mut self, s: usize, factor: f64) {
        if let Some(i) = self.slow_active[s].iter().position(|&f| f == factor) {
            self.slow_active[s].remove(i);
        }
        self.slow[s] = self.slow_active[s].iter().product();
    }

    /// Activates an RPC fault toward a callee service.
    pub(crate) fn rpc_on(&mut self, s: usize, fault: u32) {
        self.rpc_active[s].push(fault);
    }

    /// Deactivates an RPC fault toward a callee service.
    pub(crate) fn rpc_off(&mut self, s: usize, fault: u32) {
        self.rpc_active[s].retain(|&f| f != fault);
    }

    /// Extra delivery delay for one message toward `callee`: the active
    /// RPC fault's latency spike plus the analytic timeout/retry penalty.
    /// Each attempt drops with `drop_prob` (chaos RNG), capped at
    /// `max_retries`; a timed-out attempt costs the timeout plus a backoff
    /// that doubles per attempt (`timeout << attempt`). Zero — and no RNG
    /// draw — when no fault is active on the callee.
    pub(crate) fn rpc_penalty(&mut self, callee: usize) -> SimDur {
        let Some(&fid) = self.rpc_active[callee].last() else {
            return SimDur::ZERO;
        };
        let FaultKind::RpcFault {
            extra_delay,
            drop_prob,
            timeout,
            max_retries,
            ..
        } = self.faults[fid as usize].kind
        else {
            return SimDur::ZERO;
        };
        let mut penalty = extra_delay.as_secs_f64();
        let timeout_s = timeout.as_secs_f64();
        let mut drops = 0u32;
        while drops < max_retries && self.rng.chance(drop_prob) {
            drops += 1;
        }
        for attempt in 0..drops {
            penalty += timeout_s * (1.0 + f64::from(1u32 << attempt.min(20)));
        }
        SimDur::from_secs_f64(penalty)
    }

    /// Records a fault-plane occurrence for the next harvest.
    pub(crate) fn record(&mut self, event: FaultEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_validates_windows() {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at: SimTime::from_secs_f64(1.0),
            until: SimTime::from_secs_f64(2.0),
            kind: FaultKind::MqStall { service: 0 },
        });
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.first_at(), Some(SimTime::from_secs_f64(1.0)));
        assert_eq!(plan.last_until(), Some(SimTime::from_secs_f64(2.0)));
    }

    #[test]
    fn plan_digest_is_stable_and_parameter_sensitive() {
        let mk = |factor: f64| {
            let mut plan = FaultPlan::new();
            plan.push(Fault {
                at: SimTime::from_secs_f64(1.0),
                until: SimTime::from_secs_f64(2.0),
                kind: FaultKind::Slowdown { service: 1, factor },
            });
            plan
        };
        assert_eq!(mk(2.0).digest(), mk(2.0).digest());
        assert_ne!(mk(2.0).digest(), mk(3.0).digest());
        assert_ne!(mk(2.0).digest(), FaultPlan::new().digest());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn plan_rejects_empty_window() {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at: SimTime::from_secs_f64(2.0),
            until: SimTime::from_secs_f64(2.0),
            kind: FaultKind::MqStall { service: 0 },
        });
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn plan_rejects_certain_drop() {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at: SimTime::ZERO,
            until: SimTime::from_secs_f64(1.0),
            kind: FaultKind::RpcFault {
                service: 0,
                extra_delay: SimDur::ZERO,
                drop_prob: 1.0,
                timeout: SimDur::from_millis(50),
                max_retries: 3,
            },
        });
    }

    #[test]
    fn slowdown_factors_compose() {
        let plan = FaultPlan::new();
        let mut st = ChaosState::new(&plan, 2, 1);
        st.slow_on(0, 2.0);
        st.slow_on(0, 3.0);
        assert_eq!(st.slow[0], 6.0);
        assert_eq!(st.slow[1], 1.0);
        st.slow_off(0, 2.0);
        assert_eq!(st.slow[0], 3.0);
        st.slow_off(0, 3.0);
        assert_eq!(st.slow[0], 1.0);
    }

    #[test]
    fn rpc_penalty_draws_nothing_when_inactive() {
        let plan = FaultPlan::new();
        let mut st = ChaosState::new(&plan, 1, 42);
        assert_eq!(st.rpc_penalty(0), SimDur::ZERO);
    }

    #[test]
    fn rpc_penalty_bounded_by_retries() {
        let mut plan = FaultPlan::new();
        let timeout = SimDur::from_millis(10);
        plan.push(Fault {
            at: SimTime::ZERO,
            until: SimTime::from_secs_f64(1.0),
            kind: FaultKind::RpcFault {
                service: 0,
                extra_delay: SimDur::from_millis(5),
                drop_prob: 0.99,
                timeout,
                max_retries: 2,
            },
        });
        let mut st = ChaosState::new(&plan, 1, 7);
        st.rpc_on(0, 0);
        // With p=0.99 nearly every sample hits the retry cap: spike (5 ms)
        // + attempt 0 (10 + 10) + attempt 1 (10 + 20) = 55 ms.
        let max = SimDur::from_millis(5 + (10 + 10) + (10 + 20));
        for _ in 0..100 {
            let p = st.rpc_penalty(0);
            assert!(p >= SimDur::from_millis(5) && p <= max, "penalty {p}");
        }
    }
}
