//! The memory plane: deterministic per-replica memory demand, node
//! capacities, OOM-kill, and QoS-ordered pressure eviction.
//!
//! The simulator's CPU model is *compressible* — an overloaded replica
//! slows down but keeps running. Memory is *incompressible*: a replica
//! whose usage crosses its limit is OOM-killed, and a node whose total
//! usage crosses the pressure threshold evicts replicas in Kubernetes QoS
//! order (BestEffort first, then Burstable, then Guaranteed; ties by
//! highest usage-over-request — the kubelet's ordering). Both are ordinary
//! discrete events in the engine loop ([`MemPlan`] is installed via
//! `Simulation::install_memory_plane`), reusing the chaos plane's
//! graceful-drain/restart machinery.
//!
//! Demand is a deterministic function of observable engine state — no RNG:
//!
//! ```text
//! usage(replica) = baseline_bytes
//!                + per_request_bytes × in-flight requests on the replica
//!                + growth_bytes_per_sec × seconds since replica start
//! ```
//!
//! so identical workloads produce identical OOM/eviction schedules. Like
//! the chaos plane, the whole plane is `Option`-boxed: a simulation
//! without a plan installed is bit-identical to a build without the plane.

use crate::time::{SimDur, SimTime};
use crate::topology::{QosClass, Topology};

/// Default periodic usage-scan interval (the kubelet's housekeeping tick).
pub const DEFAULT_CHECK_INTERVAL: SimDur = SimDur::from_millis(500);
/// Default delay before a killed/evicted replica is restarted.
pub const DEFAULT_RESTART_DELAY: SimDur = SimDur::from_secs(10);

/// Deterministic per-replica memory demand profile of a service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemProfile {
    /// Fixed footprint of an idle replica (code, runtime, caches).
    pub baseline_bytes: u64,
    /// Marginal bytes per in-flight request (buffers, session state).
    pub per_request_bytes: u64,
    /// Optional slow heap growth in bytes/second (0 = none) — the leak
    /// term that makes long-lived replicas drift toward their limit.
    pub growth_bytes_per_sec: f64,
}

impl MemProfile {
    /// A profile with the given baseline and per-request cost, no growth.
    pub fn new(baseline_bytes: u64, per_request_bytes: u64) -> Self {
        MemProfile {
            baseline_bytes,
            per_request_bytes,
            growth_bytes_per_sec: 0.0,
        }
    }

    /// Adds a slow heap-growth term, returning `self` for chaining.
    pub fn with_growth(mut self, bytes_per_sec: f64) -> Self {
        self.growth_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Usage of a replica with `in_flight` requests that has been alive
    /// for `age` seconds.
    pub fn usage(&self, in_flight: usize, age_secs: f64) -> u64 {
        let grown = (self.growth_bytes_per_sec * age_secs.max(0.0)) as u64;
        self.baseline_bytes + self.per_request_bytes * in_flight as u64 + grown
    }
}

/// Memory capacity of one simulated node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeMemCfg {
    /// Allocatable memory in bytes.
    pub mem_bytes: u64,
}

impl NodeMemCfg {
    /// A node with the given allocatable memory.
    pub fn new(mem_bytes: u64) -> Self {
        NodeMemCfg { mem_bytes }
    }
}

/// A memory-plane plan: which services have demand profiles, the node
/// capacities they share, and the kubelet-style thresholds.
///
/// Replica slot `r` of service `s` lives on node `(s + r) % nodes.len()`
/// — the same synthetic deterministic placement the chaos plane's
/// node-failure faults use.
#[derive(Debug, Clone, PartialEq)]
pub struct MemPlan {
    /// `(service index, profile)` pairs; services without a profile have
    /// zero memory demand and never trigger OOM or eviction.
    pub profiles: Vec<(usize, MemProfile)>,
    /// Node memory capacities.
    pub nodes: Vec<NodeMemCfg>,
    /// Interval between usage scans.
    pub check_interval: SimDur,
    /// Delay before a killed/evicted replica restarts.
    pub restart_delay: SimDur,
    /// Node usage fraction above which pressure eviction starts
    /// (evictions proceed until usage drops back under it).
    pub pressure_threshold: f64,
    /// Node usage fraction above which co-located services suffer
    /// noisy-neighbor CPU interference (paging/reclaim stealing cycles).
    pub interference_threshold: f64,
    /// Service-time multiplier applied while interference is active
    /// (≥ 1; 1.0 disables interference entirely).
    pub interference_factor: f64,
}

impl MemPlan {
    /// A plan over the given nodes with kubelet-flavoured defaults:
    /// 500 ms scans, 10 s restart delay, eviction above 100% usage,
    /// interference ×1.3 above 85% usage.
    pub fn new(nodes: Vec<NodeMemCfg>) -> Self {
        MemPlan {
            profiles: Vec::new(),
            nodes,
            check_interval: DEFAULT_CHECK_INTERVAL,
            restart_delay: DEFAULT_RESTART_DELAY,
            pressure_threshold: 1.0,
            interference_threshold: 0.85,
            interference_factor: 1.3,
        }
    }

    /// Attaches a demand profile to a service, returning `self`.
    pub fn with_profile(mut self, service: usize, profile: MemProfile) -> Self {
        self.profiles.push((service, profile));
        self
    }

    /// Sets the scan interval, returning `self`.
    pub fn with_check_interval(mut self, interval: SimDur) -> Self {
        self.check_interval = interval;
        self
    }

    /// Sets the restart delay, returning `self`.
    pub fn with_restart_delay(mut self, delay: SimDur) -> Self {
        self.restart_delay = delay;
        self
    }

    /// Sets pressure/interference thresholds and the interference factor,
    /// returning `self`.
    pub fn with_thresholds(mut self, pressure: f64, interference: f64, factor: f64) -> Self {
        self.pressure_threshold = pressure;
        self.interference_threshold = interference;
        self.interference_factor = factor;
        self
    }

    /// Structural digest (FNV-1a) for run manifests — same role as
    /// `FaultPlan::digest`.
    pub fn digest(&self) -> u64 {
        let mut h = crate::topology::Fnv::new();
        h.write_usize(self.nodes.len());
        for n in &self.nodes {
            h.write_usize(n.mem_bytes as usize);
        }
        h.write_usize(self.profiles.len());
        for (s, p) in &self.profiles {
            h.write_usize(*s);
            h.write_usize(p.baseline_bytes as usize);
            h.write_usize(p.per_request_bytes as usize);
            h.write_f64(p.growth_bytes_per_sec);
        }
        h.write_usize(self.check_interval.as_nanos() as usize);
        h.write_usize(self.restart_delay.as_nanos() as usize);
        h.write_f64(self.pressure_threshold);
        h.write_f64(self.interference_threshold);
        h.write_f64(self.interference_factor);
        h.finish()
    }
}

/// What happened in one memory-plane incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEventKind {
    /// A replica crossed its own memory limit and was killed.
    OomKill,
    /// A replica was evicted to relieve node memory pressure.
    Evict,
    /// A killed/evicted replica was restarted.
    Restart,
}

impl MemEventKind {
    /// Stable snake_case label for metrics annotations and tables.
    pub fn label(&self) -> &'static str {
        match self {
            MemEventKind::OomKill => "oom_kill",
            MemEventKind::Evict => "evict",
            MemEventKind::Restart => "restart",
        }
    }
}

/// One memory-plane incident, surfaced through
/// [`MetricsSnapshot`](crate::telemetry::MetricsSnapshot) like the chaos
/// plane's `FaultEvent`s.
#[derive(Debug, Clone, PartialEq)]
pub struct MemEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: MemEventKind,
    /// The service whose replica was affected.
    pub service: usize,
    /// The node the replica lived on (by the synthetic placement).
    pub node: usize,
    /// QoS class of the affected service.
    pub qos: QosClass,
    /// Replica usage at the time, in bytes.
    pub usage_bytes: u64,
}

impl MemEvent {
    /// One-line human-readable label.
    pub fn label(&self) -> String {
        format!(
            "{} svc {} node {} ({}, {} MiB)",
            self.kind.label(),
            self.service,
            self.node,
            self.qos.label(),
            self.usage_bytes >> 20
        )
    }
}

/// Per-window memory statistics attached to a
/// [`MetricsSnapshot`](crate::telemetry::MetricsSnapshot) when the plane
/// is installed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemSnapshot {
    /// Per-node memory utilization at the last scan, in `[0, ∞)`
    /// (values above 1 mean overcommit).
    pub node_util: Vec<f64>,
    /// OOM-kills during the window.
    pub oom_kills: u64,
    /// Pressure evictions during the window, indexed by QoS tier in
    /// eviction order (`[BestEffort, Burstable, Guaranteed]`).
    pub evictions: [u64; 3],
    /// Per-service seconds spent under noisy-neighbor CPU interference
    /// during the window (the compressible analog of throttling).
    pub throttle_secs: Vec<f64>,
    /// Incidents during the window, in order.
    pub events: Vec<MemEvent>,
}

/// One replica considered for pressure eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VictimCandidate {
    /// Service index.
    pub service: usize,
    /// Replica slot index.
    pub replica: usize,
    /// QoS class of the service.
    pub qos: QosClass,
    /// Current memory usage in bytes.
    pub usage_bytes: u64,
    /// Declared memory request in bytes (0 when none declared).
    pub request_bytes: u64,
    /// False when the replica cannot be killed (its service would drop
    /// to zero live replicas — the engine always keeps one alive).
    pub evictable: bool,
}

impl VictimCandidate {
    /// The kubelet's secondary sort key: how far usage exceeds the
    /// request, relatively. Replicas without a declared request are
    /// entirely "over" their request.
    fn usage_over_request(&self) -> f64 {
        self.usage_bytes as f64 / self.request_bytes.max(1) as f64
    }
}

/// Picks the next eviction victim with the kubelet's ordering: lowest QoS
/// tier first (BestEffort before Burstable before Guaranteed), then
/// highest usage-over-request, then lowest `(service, replica)` index for
/// determinism. Returns an index into `candidates`, or `None` when
/// nothing is evictable.
pub fn select_victim(candidates: &[VictimCandidate]) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.evictable)
        .min_by(|(_, a), (_, b)| {
            a.qos
                .cmp(&b.qos)
                .then(
                    b.usage_over_request()
                        .partial_cmp(&a.usage_over_request())
                        .expect("finite ratios"),
                )
                .then(a.service.cmp(&b.service))
                .then(a.replica.cmp(&b.replica))
        })
        .map(|(i, _)| i)
}

/// Engine-side state of the installed memory plane (the payload behind
/// `Simulation`'s `Option<Box<MemState>>`; same pattern as `ChaosState`).
#[derive(Debug)]
pub struct MemState {
    /// Dense per-service profiles (`None` = zero demand).
    pub profiles: Vec<Option<MemProfile>>,
    /// Per-service memory limit in bytes (0 = unlimited).
    pub limits: Vec<u64>,
    /// Per-service memory request in bytes (0 = none declared).
    pub requests: Vec<u64>,
    /// Per-service QoS class (BestEffort when no spec is attached).
    pub qos: Vec<QosClass>,
    /// Node capacities.
    pub nodes: Vec<NodeMemCfg>,
    /// Scan interval.
    pub check_interval: SimDur,
    /// Restart delay.
    pub restart_delay: SimDur,
    /// Eviction threshold (fraction of node capacity).
    pub pressure_threshold: f64,
    /// Interference threshold (fraction of node capacity).
    pub interference_threshold: f64,
    /// Interference service-time multiplier.
    pub interference_factor: f64,
    /// Current per-service interference multiplier (1.0 = none). Composes
    /// multiplicatively with the chaos plane's slowdown factor in the
    /// engine's PS rate hook.
    pub interf: Vec<f64>,
    /// Per-service, per-replica-slot first-seen times — the age base of
    /// the growth term. Reset on OOM (container restart zeroes the heap).
    pub births: Vec<Vec<Option<SimTime>>>,
    /// Per-node utilization at the last scan.
    pub node_util: Vec<f64>,
    /// Window counter: OOM-kills since the last harvest.
    pub oom_kills: u64,
    /// Window counter: evictions by QoS tier since the last harvest.
    pub evictions: [u64; 3],
    /// Window accumulator: per-service interference seconds.
    pub throttle_secs: Vec<f64>,
    /// Previous scan time (for throttle integration).
    pub last_check: SimTime,
    /// Incidents since the last harvest.
    pub events: Vec<MemEvent>,
}

impl MemState {
    /// Builds plane state for `plan` over `topology` (limits, requests,
    /// and QoS come from each service's
    /// [`ResourceSpec`](crate::topology::ResourceSpec), when attached).
    ///
    /// # Panics
    ///
    /// Panics if the plan has no nodes, a profile references an unknown
    /// service, or the thresholds/factor are not positive finite.
    pub fn new(plan: &MemPlan, topology: &Topology) -> Self {
        assert!(!plan.nodes.is_empty(), "memory plan needs nodes");
        assert!(
            plan.nodes.iter().all(|n| n.mem_bytes > 0),
            "node memory must be positive"
        );
        assert!(
            plan.pressure_threshold > 0.0 && plan.pressure_threshold.is_finite(),
            "invalid pressure threshold"
        );
        assert!(
            plan.interference_threshold > 0.0 && plan.interference_threshold.is_finite(),
            "invalid interference threshold"
        );
        assert!(
            plan.interference_factor >= 1.0 && plan.interference_factor.is_finite(),
            "interference factor must be >= 1"
        );
        assert!(
            plan.check_interval > SimDur::ZERO,
            "check interval must be positive"
        );
        let ns = topology.num_services();
        let mut profiles: Vec<Option<MemProfile>> = vec![None; ns];
        for (s, p) in &plan.profiles {
            assert!(*s < ns, "profile targets service {s}, topology has {ns}");
            profiles[*s] = Some(*p);
        }
        let mut limits = vec![0u64; ns];
        let mut requests = vec![0u64; ns];
        let mut qos = vec![QosClass::BestEffort; ns];
        for (s, cfg) in topology.services().iter().enumerate() {
            if let Some(spec) = &cfg.resources {
                limits[s] = spec.mem_limit;
                requests[s] = spec.mem_request;
                qos[s] = spec.qos_class();
            }
        }
        MemState {
            profiles,
            limits,
            requests,
            qos,
            nodes: plan.nodes.clone(),
            check_interval: plan.check_interval,
            restart_delay: plan.restart_delay,
            pressure_threshold: plan.pressure_threshold,
            interference_threshold: plan.interference_threshold,
            interference_factor: plan.interference_factor,
            interf: vec![1.0; ns],
            births: vec![Vec::new(); ns],
            node_util: vec![0.0; plan.nodes.len()],
            oom_kills: 0,
            evictions: [0; 3],
            throttle_secs: vec![0.0; ns],
            last_check: SimTime::ZERO,
            events: Vec::new(),
        }
    }

    /// The node hosting replica slot `r` of service `s` (the same
    /// synthetic placement as the chaos plane's node failures).
    #[inline]
    pub fn node_of(&self, s: usize, r: usize) -> usize {
        (s + r) % self.nodes.len()
    }

    /// Records an incident.
    pub fn record(&mut self, event: MemEvent) {
        self.events.push(event);
    }

    /// Index into the per-tier eviction counters for a QoS class.
    pub fn tier_index(qos: QosClass) -> usize {
        match qos {
            QosClass::BestEffort => 0,
            QosClass::Burstable => 1,
            QosClass::Guaranteed => 2,
        }
    }

    /// Drains the window counters into a [`MemSnapshot`] (called by the
    /// engine's harvest).
    pub fn take_snapshot(&mut self) -> MemSnapshot {
        MemSnapshot {
            node_util: self.node_util.clone(),
            oom_kills: std::mem::take(&mut self.oom_kills),
            evictions: std::mem::take(&mut self.evictions),
            throttle_secs: {
                let mut fresh = vec![0.0; self.throttle_secs.len()];
                std::mem::swap(&mut fresh, &mut self.throttle_secs);
                fresh
            },
            events: std::mem::take(&mut self.events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CallNode, ClassCfg, Priority, ResourceSpec, ServiceCfg, WorkDist};
    use crate::topology::{ServiceId, Topology};

    fn cand(
        service: usize,
        qos: QosClass,
        usage: u64,
        request: u64,
        evictable: bool,
    ) -> VictimCandidate {
        VictimCandidate {
            service,
            replica: 0,
            qos,
            usage_bytes: usage,
            request_bytes: request,
            evictable,
        }
    }

    #[test]
    fn victim_selection_follows_qos_order() {
        // A Guaranteed replica hugely over its request still loses to any
        // BestEffort replica: QoS strictly dominates.
        let cands = [
            cand(0, QosClass::Guaranteed, 10 << 30, 1 << 20, true),
            cand(1, QosClass::Burstable, 5 << 30, 1 << 30, true),
            cand(2, QosClass::BestEffort, 1 << 20, 0, true),
        ];
        assert_eq!(select_victim(&cands), Some(2));
        // Without the BestEffort candidate, Burstable goes first.
        assert_eq!(select_victim(&cands[..2]), Some(1));
    }

    #[test]
    fn victim_ties_break_by_usage_over_request() {
        // Same tier: the replica furthest over its request goes first.
        let cands = [
            cand(0, QosClass::Burstable, 2 << 30, 1 << 30, true), // 2x over
            cand(1, QosClass::Burstable, 3 << 30, 1 << 30, true), // 3x over
            cand(2, QosClass::Burstable, 1 << 30, 1 << 30, true), // at request
        ];
        assert_eq!(select_victim(&cands), Some(1));
        // Exact ratio tie: lowest (service, replica) index wins.
        let tied = [
            cand(3, QosClass::Burstable, 2 << 30, 1 << 30, true),
            cand(1, QosClass::Burstable, 2 << 30, 1 << 30, true),
        ];
        assert_eq!(select_victim(&tied), Some(1));
    }

    #[test]
    fn victim_selection_skips_unevictable() {
        let cands = [
            cand(0, QosClass::BestEffort, 4 << 30, 0, false),
            cand(1, QosClass::Guaranteed, 1 << 30, 1 << 30, true),
        ];
        assert_eq!(select_victim(&cands), Some(1));
        assert_eq!(select_victim(&cands[..1]), None);
        assert_eq!(select_victim(&[]), None);
    }

    #[test]
    fn profile_usage_is_deterministic() {
        let p = MemProfile::new(100 << 20, 1 << 20).with_growth(1024.0 * 1024.0);
        assert_eq!(p.usage(0, 0.0), 100 << 20);
        assert_eq!(p.usage(10, 0.0), 110 << 20);
        assert_eq!(p.usage(0, 2.0), 102 << 20);
        // Negative ages clamp (replica first seen after `now` can't shrink).
        assert_eq!(p.usage(0, -5.0), 100 << 20);
    }

    fn topo_with_specs() -> Topology {
        let services = vec![
            ServiceCfg::new("guaranteed", 2.0)
                .with_resources(ResourceSpec::guaranteed(2.0, 1 << 30)),
            ServiceCfg::new("besteffort", 2.0),
        ];
        let classes = vec![ClassCfg {
            name: "c".into(),
            priority: Priority::HIGH,
            root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)),
        }];
        Topology::new(services, classes).unwrap()
    }

    #[test]
    fn state_derives_limits_and_qos_from_topology() {
        let plan = MemPlan::new(vec![NodeMemCfg::new(4 << 30); 2])
            .with_profile(0, MemProfile::new(1 << 28, 1 << 20));
        let st = MemState::new(&plan, &topo_with_specs());
        assert_eq!(st.limits, vec![1 << 30, 0]);
        assert_eq!(st.requests, vec![1 << 30, 0]);
        assert_eq!(st.qos, vec![QosClass::Guaranteed, QosClass::BestEffort]);
        assert!(st.profiles[0].is_some());
        assert!(st.profiles[1].is_none());
        assert_eq!(st.node_of(0, 0), 0);
        assert_eq!(st.node_of(0, 1), 1);
        assert_eq!(st.node_of(1, 1), 0);
    }

    #[test]
    fn snapshot_drains_window_counters() {
        let plan = MemPlan::new(vec![NodeMemCfg::new(4 << 30)]);
        let mut st = MemState::new(&plan, &topo_with_specs());
        st.oom_kills = 3;
        st.evictions = [2, 1, 0];
        st.throttle_secs[0] = 1.5;
        st.record(MemEvent {
            at: SimTime::ZERO,
            kind: MemEventKind::OomKill,
            service: 0,
            node: 0,
            qos: QosClass::Guaranteed,
            usage_bytes: 2 << 30,
        });
        let snap = st.take_snapshot();
        assert_eq!(snap.oom_kills, 3);
        assert_eq!(snap.evictions, [2, 1, 0]);
        assert_eq!(snap.throttle_secs[0], 1.5);
        assert_eq!(snap.events.len(), 1);
        assert!(snap.events[0].label().contains("oom_kill"));
        let empty = st.take_snapshot();
        assert_eq!(empty.oom_kills, 0);
        assert_eq!(empty.evictions, [0, 0, 0]);
        assert!(empty.events.is_empty());
    }

    #[test]
    fn plan_digest_is_structure_sensitive() {
        let base = MemPlan::new(vec![NodeMemCfg::new(4 << 30)]);
        let same = MemPlan::new(vec![NodeMemCfg::new(4 << 30)]);
        assert_eq!(base.digest(), same.digest());
        let bigger_node = MemPlan::new(vec![NodeMemCfg::new(8 << 30)]);
        assert_ne!(base.digest(), bigger_node.digest());
        let with_profile = base
            .clone()
            .with_profile(0, MemProfile::new(1 << 28, 1 << 20));
        assert_ne!(base.digest(), with_profile.digest());
        let tuned = base.clone().with_thresholds(0.9, 0.8, 1.5);
        assert_ne!(base.digest(), tuned.digest());
    }
}
