//! Virtual-time processor sharing.
//!
//! The engine's replicas share their CPU among active compute phases by
//! egalitarian processor sharing: with `n` active phases and `c` cores,
//! each phase progresses at `min(c / n, 1)` CPU-seconds per real second.
//! The naive implementation keeps a countdown per job and sweeps all of
//! them on every membership change — O(n) per arrival/completion, O(n²)
//! per busy period, which is exactly the overloaded regime the Ursa
//! claims are generated in.
//!
//! [`VtPs`] replaces the sweep with *virtual time* (Zhang's Virtual Clock
//! / start-time fair queueing, specialised to egalitarian PS): the queue
//! keeps one scalar virtual clock `V` that advances at the common
//! per-job rate, and a job admitted at virtual time `v` with work `w`
//! receives an immutable finish tag `v + w`. A job completes when `V`
//! reaches its tag, so:
//!
//! * advancing the whole queue by an elapsed span is **O(1)** (`V += Δ`),
//! * the next completion is the minimum tag — **O(1)** to peek via a
//!   min-heap ordered by `(tag, admission seq)`,
//! * a completion is an **O(log n)** heap pop,
//! * rate changes (replica core limit, chaos slowdown multiplier) rescale
//!   how fast `V` advances per real second and never touch the tags.
//!
//! Ties — two jobs with bit-identical finish tags — pop in admission
//! order (`seq`), which is the engine's token order. This replaces the
//! old engine's implicit "whatever order the active vector held" rule
//! and is pinned by `equal_tags_pop_in_admission_order` below plus an
//! engine-level regression test.
//!
//! The conversion between real and virtual time lives in the caller: the
//! engine advances the queue by `elapsed * rate` and converts the head's
//! remaining virtual work back to real time via [`ps_rate`]. Keeping
//! `VtPs` purely virtual makes it directly comparable against a naive
//! per-job-countdown reference model (see `tests/ps_reference.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The common per-job progress rate of an egalitarian PS server with
/// `cores` CPUs, `n` active jobs, and a service **slowdown** multiplier
/// (`slow >= 1` slows the server; chaos interference windows rescale this
/// rather than rewriting finish tags).
///
/// Returns CPU-seconds per real second; `0` jobs yields the idle rate
/// (unused — callers never advance an empty queue's clock).
#[inline]
pub fn ps_rate(cores: f64, n: usize, slow: f64) -> f64 {
    debug_assert!(n > 0);
    // Division-free in the common cases (an uncontended replica, no
    // active slowdown); `x / 1.0 == x` bitwise, so the gates only save
    // time, never change the value.
    let n = n as f64;
    let base = if n <= cores { 1.0 } else { cores / n };
    if slow == 1.0 {
        base
    } else {
        base / slow
    }
}

/// One admitted job: immutable finish tag plus admission sequence.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    tag: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    /// Max-heap order *reversed*: the greatest entry is the smallest
    /// `(tag, seq)`, so `BinaryHeap::peek` yields the next completion
    /// without a `Reverse` wrapper at every call site.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .tag
            .total_cmp(&self.tag)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A virtual-time processor-sharing queue over payload `T`.
///
/// See the module docs for the model. All operations are deterministic:
/// the pop order is a pure function of the admission sequence, so two
/// runs feeding identical `(work, item)` streams observe identical
/// completion sequences.
#[derive(Debug, Clone, Default)]
pub struct VtPs<T> {
    vclock: f64,
    seq: u64,
    heap: BinaryHeap<Entry<T>>,
}

impl<T: Copy> VtPs<T> {
    /// An empty queue with virtual clock zero.
    pub fn new() -> Self {
        VtPs {
            vclock: 0.0,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Number of active jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no job is active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current virtual time (CPU-seconds of per-job progress since the
    /// queue was created).
    #[inline]
    pub fn vclock(&self) -> f64 {
        self.vclock
    }

    /// Advances the virtual clock by `dv` CPU-seconds (`elapsed_real *
    /// rate` for whatever rate held over the span). O(1).
    #[inline]
    pub fn advance(&mut self, dv: f64) {
        self.vclock += dv;
    }

    /// Admits a job needing `work` CPU-seconds; returns its finish tag.
    /// O(log n).
    pub fn admit(&mut self, work: f64, item: T) -> f64 {
        let tag = self.vclock + work;
        self.seq += 1;
        self.heap.push(Entry {
            tag,
            seq: self.seq,
            item,
        });
        tag
    }

    /// Virtual work remaining until the next completion (`>= 0`), or
    /// `None` when idle. O(1).
    #[inline]
    pub fn next_rem(&self) -> Option<f64> {
        self.heap.peek().map(|e| (e.tag - self.vclock).max(0.0))
    }

    /// Pops every job whose finish tag lies within `eps` of the current
    /// virtual clock, appending payloads to `out` in completion order
    /// (finish tag, then admission order). O(k log n) for k completions.
    pub fn pop_due(&mut self, eps: f64, out: &mut Vec<T>) {
        while let Some(e) = self.heap.peek() {
            if e.tag > self.vclock + eps {
                break;
            }
            out.push(self.heap.pop().expect("peeked").item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_in_tag_order() {
        let mut ps: VtPs<u32> = VtPs::new();
        ps.admit(3.0, 1);
        ps.admit(1.0, 2);
        ps.admit(2.0, 3);
        let mut out = Vec::new();
        ps.advance(3.0);
        ps.pop_due(0.0, &mut out);
        assert_eq!(out, vec![2, 3, 1]);
        assert!(ps.is_empty());
    }

    #[test]
    fn late_admission_offsets_by_vclock() {
        let mut ps: VtPs<u32> = VtPs::new();
        ps.admit(2.0, 1);
        ps.advance(1.5);
        // Admitted at V = 1.5 with 2.0 of work: finishes at V = 3.5.
        let tag = ps.admit(2.0, 2);
        assert!((tag - 3.5).abs() < 1e-15);
        assert!((ps.next_rem().unwrap() - 0.5).abs() < 1e-15);
        let mut out = Vec::new();
        ps.advance(0.5);
        ps.pop_due(1e-12, &mut out);
        assert_eq!(out, vec![1]);
        ps.advance(1.5);
        ps.pop_due(1e-12, &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    /// The pinned tie-break rule: equal finish tags complete in admission
    /// (token) order, deterministically.
    #[test]
    fn equal_tags_pop_in_admission_order() {
        let mut ps: VtPs<u32> = VtPs::new();
        for id in 0..16 {
            ps.admit(1.0, id);
        }
        ps.advance(1.0);
        let mut out = Vec::new();
        ps.pop_due(0.0, &mut out);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_eps() {
        let mut ps: VtPs<u32> = VtPs::new();
        ps.admit(1.0, 1);
        ps.advance(1.0 - 1e-13);
        let mut out = Vec::new();
        ps.pop_due(0.0, &mut out);
        assert!(out.is_empty(), "not yet due without tolerance");
        ps.pop_due(1e-12, &mut out);
        assert_eq!(out, vec![1], "due within the work epsilon");
    }

    #[test]
    fn rate_helper_caps_at_one_and_scales_slowdown() {
        assert_eq!(ps_rate(4.0, 2, 1.0), 1.0);
        assert_eq!(ps_rate(4.0, 8, 1.0), 0.5);
        assert_eq!(ps_rate(4.0, 8, 2.0), 0.25);
        assert_eq!(ps_rate(0.5, 1, 1.0), 0.5);
    }
}
