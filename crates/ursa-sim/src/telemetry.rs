//! Telemetry: the simulator's analog of the paper's Prometheus deployment.
//!
//! The tracing framework in Ursa (§V, component 1) collects, per harvest
//! interval: request counts and latency distributions per service and per
//! request class, end-to-end latency distributions per class, and CPU
//! usage. [`Telemetry`] accumulates those inside the simulator and
//! [`MetricsSnapshot`] is the immutable view handed to resource managers on
//! every control tick.

use crate::time::{SimDur, SimTime};
use crate::topology::{ClassId, ServiceId, Topology};
use ursa_stats::quantile::{percentile_of_sorted, QuantileWindow};

/// Capacity of per-(service, class) latency windows.
const SERVICE_WINDOW_CAP: usize = 16_384;
/// Capacity of per-class end-to-end latency windows.
const E2E_WINDOW_CAP: usize = 65_536;

/// Latency statistics for one stream of samples within a harvest window.
///
/// # Window semantics
///
/// The underlying telemetry windows are bounded rings: when more samples
/// arrive in one harvest interval than the retention capacity, the oldest
/// are evicted. Consequently [`total_count`](Self::total_count) counts
/// *every* sample observed during the window, while all distribution
/// statistics ([`percentile`](Self::percentile), [`mean`](Self::mean),
/// [`fraction_above`](Self::fraction_above), [`samples`](Self::samples),
/// [`len`](Self::len)) describe only the most recent
/// `len() <= total_count()` retained samples. At evaluation scale the
/// capacities are sized so eviction is rare; compare `len() as u64` with
/// `total_count()` to detect when it happened.
#[derive(Debug, Clone, Default)]
pub struct LatencySeries {
    sorted: Vec<f64>,
    count: u64,
}

impl LatencySeries {
    fn from_window(w: &QuantileWindow) -> Self {
        LatencySeries {
            sorted: w.sorted(),
            count: w.total_count(),
        }
    }

    /// Number of samples *retained* in the window (at most the retention
    /// capacity; see the type-level window-semantics note).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the window captured no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Total samples *observed* during the window, including any evicted
    /// beyond the retention capacity. May exceed [`len`](Self::len); see
    /// the type-level window-semantics note.
    pub fn total_count(&self) -> u64 {
        self.count
    }

    /// The `p`-th percentile (0–100) in seconds over the *retained*
    /// samples, or `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(percentile_of_sorted(&self.sorted, p))
        }
    }

    /// Mean latency in seconds over the *retained* samples (evicted
    /// samples are excluded — this is not `sum / total_count`), or `None`
    /// if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Fraction of *retained* samples strictly above `threshold` seconds
    /// (denominator is [`len`](Self::len), not
    /// [`total_count`](Self::total_count)), or `None` if empty.
    pub fn fraction_above(&self, threshold: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let idx = self.sorted.partition_point(|&x| x <= threshold);
        Some((self.sorted.len() - idx) as f64 / self.sorted.len() as f64)
    }

    /// The retained samples in ascending order.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Per-service metrics for one harvest window.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Service name (mirrors the topology).
    pub name: String,
    /// Live replica count at harvest time (excludes draining replicas).
    pub replicas: usize,
    /// CPU cores per replica at harvest time.
    pub cores_per_replica: f64,
    /// Mean CPU utilization over the window in `[0, 1]`
    /// (busy core-seconds / capacity core-seconds).
    pub cpu_utilization: f64,
    /// Requests that *arrived* at this service during the window, per class.
    pub arrivals: Vec<u64>,
    /// Per-class response-time distribution **excluding** time blocked on
    /// nested downstream responses — the paper's per-tier response time
    /// (S0−R0 minus downstream wait), the quantity Algorithm 1 profiles.
    pub tier_latency: Vec<LatencySeries>,
    /// Per-class full response-time distribution (enqueue → response),
    /// including downstream waits; what an upstream proxy observes.
    pub response_latency: Vec<LatencySeries>,
    /// Length of the service's shared (MQ) queue at harvest time.
    pub mq_depth: usize,
    /// Maximum shared-queue depth observed at any instant during the window
    /// (catches transient spikes the point-in-time sample misses).
    pub mq_depth_max: usize,
    /// Time-weighted mean shared-queue depth over the window
    /// (∫ depth · dt / window).
    pub mq_depth_mean: f64,
}

impl ServiceMetrics {
    /// Total arrivals across classes.
    pub fn total_arrivals(&self) -> u64 {
        self.arrivals.iter().sum()
    }

    /// Arrival rate in requests/second over the window.
    pub fn arrival_rps(&self, window: SimDur) -> f64 {
        self.total_arrivals() as f64 / window.as_secs_f64().max(1e-9)
    }

    /// Per-class load-per-replica vector in requests/second — the paper's
    /// LPR metric (§IV).
    pub fn load_per_replica(&self, window: SimDur) -> Vec<f64> {
        let secs = window.as_secs_f64().max(1e-9);
        let r = self.replicas.max(1) as f64;
        self.arrivals.iter().map(|&a| a as f64 / secs / r).collect()
    }
}

/// Immutable metrics view for one harvest window.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Harvest timestamp.
    pub at: SimTime,
    /// Length of the window this snapshot covers.
    pub window: SimDur,
    /// Per-service metrics, indexed by [`ServiceId`].
    pub services: Vec<ServiceMetrics>,
    /// Per-class end-to-end latency distributions, indexed by [`ClassId`]
    /// (a request completes when every hop of its call tree has responded).
    pub e2e_latency: Vec<LatencySeries>,
    /// Per-class completed-request counts during the window.
    pub completions: Vec<u64>,
    /// Per-class injected-request counts during the window.
    pub injections: Vec<u64>,
    /// Fault injections/recoveries that fired during the window (empty
    /// unless the chaos plane is installed — see [`crate::chaos`]).
    pub faults: Vec<crate::chaos::FaultEvent>,
    /// Memory-plane window snapshot (`None` unless the memory plane is
    /// installed — see [`crate::memory`]).
    pub mem: Option<crate::memory::MemSnapshot>,
}

impl MetricsSnapshot {
    /// Total CPU cores allocated across services (replicas × cores).
    pub fn total_allocated_cores(&self) -> f64 {
        self.services
            .iter()
            .map(|s| s.replicas as f64 * s.cores_per_replica)
            .sum()
    }

    /// Per-class offered load in requests/second.
    pub fn class_rps(&self, class: ClassId) -> f64 {
        self.injections[class.0] as f64 / self.window.as_secs_f64().max(1e-9)
    }

    /// Merges per-shard snapshots of one sharded run deterministically:
    /// each service row comes from the shard that owns the service (other
    /// shards hold idle phantom replicas of it), each per-class series
    /// from the class's home shard (the only one that injects it and
    /// records its completions). Fault and memory planes are not available
    /// per shard, so those fields stay empty.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or an owner/home index is out of range.
    pub fn merge_sharded(
        parts: &[MetricsSnapshot],
        owner: &[u16],
        home: &[u16],
    ) -> MetricsSnapshot {
        assert!(!parts.is_empty(), "no shard snapshots to merge");
        MetricsSnapshot {
            at: parts[0].at,
            window: parts[0].window,
            services: owner
                .iter()
                .enumerate()
                .map(|(s, &o)| parts[o as usize].services[s].clone())
                .collect(),
            e2e_latency: home
                .iter()
                .enumerate()
                .map(|(c, &h)| parts[h as usize].e2e_latency[c].clone())
                .collect(),
            completions: home
                .iter()
                .enumerate()
                .map(|(c, &h)| parts[h as usize].completions[c])
                .collect(),
            injections: home
                .iter()
                .enumerate()
                .map(|(c, &h)| parts[h as usize].injections[c])
                .collect(),
            faults: Vec::new(),
            mem: None,
        }
    }
}

/// Accumulates metrics between harvests.
#[derive(Debug)]
pub struct Telemetry {
    num_classes: usize,
    /// Flattened `[service * num_classes + class]` windows; `None` for
    /// (service, class) pairs that never interact (saves memory on large
    /// topologies). Flat layout keeps the per-event record path to a
    /// single bounds check and indirection.
    tier_windows: Vec<Option<QuantileWindow>>,
    response_windows: Vec<Option<QuantileWindow>>,
    arrivals: Vec<u64>,
    e2e_windows: Vec<QuantileWindow>,
    completions: Vec<u64>,
    injections: Vec<u64>,
    busy_core_secs: Vec<f64>,
    capacity_core_secs: Vec<f64>,
    /// MQ-depth accumulators: depth after the last transition, when it last
    /// changed, the ∫ depth · dt area so far this window, and the window max.
    mq_last_depth: Vec<usize>,
    mq_last_change: Vec<SimTime>,
    mq_area: Vec<f64>,
    mq_max: Vec<usize>,
    last_harvest: SimTime,
}

impl Telemetry {
    /// Creates telemetry storage shaped for the given topology: latency
    /// windows are only allocated for (service, class) pairs that the
    /// class's call tree actually touches.
    pub fn new(topology: &Topology) -> Self {
        let ns = topology.num_services();
        let nc = topology.num_classes();
        let mut tier_windows: Vec<Option<QuantileWindow>> = vec![None; ns * nc];
        let mut response_windows: Vec<Option<QuantileWindow>> = vec![None; ns * nc];
        for s in 0..ns {
            for c in topology.classes_on_service(ServiceId(s)) {
                tier_windows[s * nc + c.0] = Some(QuantileWindow::new(SERVICE_WINDOW_CAP));
                response_windows[s * nc + c.0] = Some(QuantileWindow::new(SERVICE_WINDOW_CAP));
            }
        }
        Telemetry {
            num_classes: nc,
            tier_windows,
            response_windows,
            arrivals: vec![0; ns * nc],
            e2e_windows: (0..nc)
                .map(|_| QuantileWindow::new(E2E_WINDOW_CAP))
                .collect(),
            completions: vec![0; nc],
            injections: vec![0; nc],
            busy_core_secs: vec![0.0; ns],
            capacity_core_secs: vec![0.0; ns],
            mq_last_depth: vec![0; ns],
            mq_last_change: vec![SimTime::ZERO; ns],
            mq_area: vec![0.0; ns],
            mq_max: vec![0; ns],
            last_harvest: SimTime::ZERO,
        }
    }

    /// Records a request arriving at a service.
    #[inline]
    pub fn record_arrival(&mut self, service: ServiceId, class: ClassId) {
        self.arrivals[service.0 * self.num_classes + class.0] += 1;
    }

    /// Records an injected (root) request.
    pub fn record_injection(&mut self, class: ClassId) {
        self.injections[class.0] += 1;
    }

    /// Records a hop's response: `tier` excludes nested downstream waits,
    /// `full` is enqueue→response.
    #[inline]
    pub fn record_response(&mut self, service: ServiceId, class: ClassId, tier: f64, full: f64) {
        let idx = service.0 * self.num_classes + class.0;
        if let Some(w) = &mut self.tier_windows[idx] {
            w.record(tier);
        }
        if let Some(w) = &mut self.response_windows[idx] {
            w.record(full);
        }
    }

    /// Records an end-to-end completion.
    pub fn record_e2e(&mut self, class: ClassId, latency: f64) {
        self.e2e_windows[class.0].record(latency);
        self.completions[class.0] += 1;
    }

    /// Records a shared-queue (MQ) depth transition: the queue of `service`
    /// has held `mq_last_depth` items since the previous call and holds
    /// `depth` from `now` on. Drives the per-window max and time-weighted
    /// mean exposed on [`ServiceMetrics`].
    pub fn record_mq_depth(&mut self, service: ServiceId, now: SimTime, depth: usize) {
        let s = service.0;
        let dt = (now - self.mq_last_change[s]).as_secs_f64();
        self.mq_area[s] += self.mq_last_depth[s] as f64 * dt;
        self.mq_last_change[s] = now;
        self.mq_last_depth[s] = depth;
        self.mq_max[s] = self.mq_max[s].max(depth);
    }

    /// Adds CPU accounting for a service over an elapsed span.
    pub fn record_cpu(&mut self, service: ServiceId, busy_core_secs: f64, capacity_core_secs: f64) {
        self.busy_core_secs[service.0] += busy_core_secs;
        self.capacity_core_secs[service.0] += capacity_core_secs;
    }

    /// Produces a snapshot of the window since the last harvest and resets
    /// all accumulators. Replica counts, core settings, and MQ depths are
    /// supplied by the engine.
    #[allow(clippy::too_many_arguments)]
    pub fn harvest(
        &mut self,
        now: SimTime,
        names: &[String],
        replicas: &[usize],
        cores: &[f64],
        mq_depths: &[usize],
    ) -> MetricsSnapshot {
        let window = now - self.last_harvest;
        let window_secs = window.as_secs_f64();
        // Close out the MQ-depth integrals at the window boundary: the
        // standing depth has persisted since its last transition.
        for s in 0..self.mq_area.len() {
            let dt = (now - self.mq_last_change[s]).as_secs_f64();
            self.mq_area[s] += self.mq_last_depth[s] as f64 * dt;
            self.mq_last_change[s] = now;
        }
        let nc = self.num_classes;
        let services = (0..self.busy_core_secs.len())
            .map(|s| {
                let tier_latency = (0..nc)
                    .map(|c| {
                        self.tier_windows[s * nc + c]
                            .as_ref()
                            .map(LatencySeries::from_window)
                            .unwrap_or_default()
                    })
                    .collect();
                let response_latency = (0..nc)
                    .map(|c| {
                        self.response_windows[s * nc + c]
                            .as_ref()
                            .map(LatencySeries::from_window)
                            .unwrap_or_default()
                    })
                    .collect();
                let cap = self.capacity_core_secs[s];
                ServiceMetrics {
                    name: names[s].clone(),
                    replicas: replicas[s],
                    cores_per_replica: cores[s],
                    cpu_utilization: if cap > 0.0 {
                        (self.busy_core_secs[s] / cap).min(1.0)
                    } else {
                        0.0
                    },
                    arrivals: self.arrivals[s * nc..(s + 1) * nc].to_vec(),
                    tier_latency,
                    response_latency,
                    mq_depth: mq_depths[s],
                    mq_depth_max: self.mq_max[s],
                    mq_depth_mean: if window_secs > 0.0 {
                        self.mq_area[s] / window_secs
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let e2e_latency = self
            .e2e_windows
            .iter()
            .map(LatencySeries::from_window)
            .collect();
        let snapshot = MetricsSnapshot {
            at: now,
            window,
            services,
            e2e_latency,
            completions: self.completions.clone(),
            injections: self.injections.clone(),
            faults: Vec::new(),
            mem: None,
        };
        // Reset for the next window.
        for w in self.tier_windows.iter_mut().flatten() {
            w.clear();
        }
        for w in self.response_windows.iter_mut().flatten() {
            w.clear();
        }
        self.arrivals.fill(0);
        for s in 0..self.busy_core_secs.len() {
            self.busy_core_secs[s] = 0.0;
            self.capacity_core_secs[s] = 0.0;
            self.mq_area[s] = 0.0;
            // A queue that enters the next window non-empty has already
            // "observed" its standing depth.
            self.mq_max[s] = self.mq_last_depth[s];
        }
        for c in 0..self.num_classes {
            self.e2e_windows[c].clear();
            self.completions[c] = 0;
            self.injections[c] = 0;
        }
        self.last_harvest = now;
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CallNode, ClassCfg, Priority, ServiceCfg, WorkDist};

    fn topo() -> Topology {
        let services = vec![ServiceCfg::new("a", 1.0), ServiceCfg::new("b", 1.0)];
        let classes = vec![ClassCfg {
            name: "only-a".into(),
            priority: Priority::HIGH,
            root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)),
        }];
        Topology::new(services, classes).unwrap()
    }

    #[test]
    fn windows_allocated_sparsely() {
        let t = Telemetry::new(&topo());
        assert!(t.tier_windows[0].is_some());
        assert!(
            t.tier_windows[t.num_classes].is_none(),
            "class never touches service b"
        );
    }

    #[test]
    fn harvest_resets() {
        let topo = topo();
        let mut t = Telemetry::new(&topo);
        t.record_arrival(ServiceId(0), ClassId(0));
        t.record_response(ServiceId(0), ClassId(0), 0.010, 0.012);
        t.record_e2e(ClassId(0), 0.012);
        t.record_injection(ClassId(0));
        t.record_cpu(ServiceId(0), 30.0, 60.0);
        let names = vec!["a".to_string(), "b".to_string()];
        let snap = t.harvest(
            SimTime::from_secs_f64(60.0),
            &names,
            &[1, 1],
            &[1.0, 1.0],
            &[0, 0],
        );
        assert_eq!(snap.services[0].arrivals[0], 1);
        assert!((snap.services[0].cpu_utilization - 0.5).abs() < 1e-12);
        assert_eq!(snap.completions[0], 1);
        assert_eq!(snap.injections[0], 1);
        assert_eq!(snap.e2e_latency[0].total_count(), 1);
        assert!((snap.window.as_secs_f64() - 60.0).abs() < 1e-9);

        let snap2 = t.harvest(
            SimTime::from_secs_f64(120.0),
            &names,
            &[1, 1],
            &[1.0, 1.0],
            &[0, 0],
        );
        assert_eq!(snap2.services[0].arrivals[0], 0);
        assert_eq!(snap2.completions[0], 0);
        assert!(snap2.e2e_latency[0].is_empty());
        assert_eq!(snap2.services[0].cpu_utilization, 0.0);
    }

    #[test]
    fn mq_depth_accumulators_track_and_reset() {
        let topo = topo();
        let mut t = Telemetry::new(&topo);
        let names = vec!["a".to_string(), "b".to_string()];
        // Depth 4 during [10, 40), depth 1 during [40, 60):
        // area = 4*30 + 1*20 = 140 depth-seconds over a 60 s window.
        t.record_mq_depth(ServiceId(0), SimTime::from_secs_f64(10.0), 4);
        t.record_mq_depth(ServiceId(0), SimTime::from_secs_f64(40.0), 1);
        let snap = t.harvest(
            SimTime::from_secs_f64(60.0),
            &names,
            &[1, 1],
            &[1.0, 1.0],
            &[1, 0],
        );
        assert_eq!(snap.services[0].mq_depth_max, 4);
        assert!((snap.services[0].mq_depth_mean - 140.0 / 60.0).abs() < 1e-9);
        assert_eq!(snap.services[1].mq_depth_max, 0);
        assert_eq!(snap.services[1].mq_depth_mean, 0.0);

        // Harvest resets the window accumulators; the standing depth of 1
        // carries into the next window as both its max-so-far and its mean.
        let snap2 = t.harvest(
            SimTime::from_secs_f64(120.0),
            &names,
            &[1, 1],
            &[1.0, 1.0],
            &[1, 0],
        );
        assert_eq!(
            snap2.services[0].mq_depth_max, 1,
            "max reset to standing depth"
        );
        assert!(
            (snap2.services[0].mq_depth_mean - 1.0).abs() < 1e-9,
            "standing depth persists across the whole second window"
        );

        // Drain the queue; a further window reports an empty queue again.
        t.record_mq_depth(ServiceId(0), SimTime::from_secs_f64(121.0), 0);
        let snap3 = t.harvest(
            SimTime::from_secs_f64(181.0),
            &names,
            &[1, 1],
            &[1.0, 1.0],
            &[0, 0],
        );
        assert_eq!(snap3.services[0].mq_depth_max, 1, "depth 1 held briefly");
        assert!(snap3.services[0].mq_depth_mean < 0.1);
        let snap4 = t.harvest(
            SimTime::from_secs_f64(241.0),
            &names,
            &[1, 1],
            &[1.0, 1.0],
            &[0, 0],
        );
        assert_eq!(snap4.services[0].mq_depth_max, 0);
        assert_eq!(snap4.services[0].mq_depth_mean, 0.0);
    }

    #[test]
    fn latency_series_stats() {
        let mut w = QuantileWindow::new(16);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.record(v);
        }
        let s = LatencySeries::from_window(&w);
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.fraction_above(2.0), Some(0.5));
        assert_eq!(s.fraction_above(4.0), Some(0.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(4.0));
    }

    #[test]
    fn latency_series_overflow_keeps_retained_semantics() {
        // Regression: when the source window overflows, the distribution
        // statistics must be over the retained (most recent) samples with
        // a matching denominator, while total_count still reports every
        // observation. Window of 4, 8 samples recorded: 1..=8 arrive, the
        // ring retains [5, 6, 7, 8].
        let mut w = QuantileWindow::new(4);
        for v in 1..=8 {
            w.record(v as f64);
        }
        let s = LatencySeries::from_window(&w);
        assert_eq!(s.len(), 4, "retained samples");
        assert_eq!(s.total_count(), 8, "observed samples");
        assert!(s.len() as u64 != s.total_count(), "overflow happened");
        // Mean over retained [5,6,7,8], not over all 8 (which would be 4.5)
        // and not sum-of-retained / total_count (which would be 3.25).
        assert_eq!(s.mean(), Some(6.5));
        // fraction_above uses len() as the denominator: 2 of 4 above 6.
        assert_eq!(s.fraction_above(6.0), Some(0.5));
        // Percentiles span the retained range only.
        assert_eq!(s.percentile(0.0), Some(5.0));
        assert_eq!(s.percentile(100.0), Some(8.0));
    }

    #[test]
    fn snapshot_aggregates() {
        let topo = topo();
        let mut t = Telemetry::new(&topo);
        for _ in 0..120 {
            t.record_arrival(ServiceId(0), ClassId(0));
        }
        let names = vec!["a".to_string(), "b".to_string()];
        let snap = t.harvest(
            SimTime::from_secs_f64(60.0),
            &names,
            &[2, 1],
            &[1.5, 1.0],
            &[0, 0],
        );
        assert!((snap.services[0].arrival_rps(snap.window) - 2.0).abs() < 1e-9);
        let lpr = snap.services[0].load_per_replica(snap.window);
        assert!((lpr[0] - 1.0).abs() < 1e-9);
        assert!((snap.total_allocated_cores() - 4.0).abs() < 1e-9);
    }
}
