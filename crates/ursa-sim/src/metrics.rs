//! The simulator-side metrics pipeline: scrapes [`MetricsSnapshot`]s into
//! an [`ursa_metrics`] registry/time-series store once per harvest
//! interval.
//!
//! Collection is strictly *pull*-based and sits outside the simulation:
//! [`SimMetrics`] only reads snapshots the simulator already produced (plus
//! pure accessors like [`Simulation::worker_occupancy`]), draws no random
//! numbers, and advances no simulated time. A run with metrics disabled
//! (`None` passed to
//! [`run_deployment_metered`](crate::control::run_deployment_metered))
//! therefore produces bit-identical results to a metered run — the registry
//! is zero-cost when absent and invisible when present. Wall-clock
//! measurements (control-tick timing) flow *into* the metrics only; they
//! never feed back into simulation state.
//!
//! Exported series (scraped at each harvest time, in seconds):
//!
//! | series | labels | meaning |
//! |---|---|---|
//! | `service_cpu_utilization` | `service` | busy/capacity core-seconds in the window |
//! | `service_replicas` | `service` | live replica count |
//! | `service_cores_per_replica` | `service` | CPU limit |
//! | `service_worker_occupancy` | `service` | busy worker slots / total (instantaneous) |
//! | `service_mq_depth_mean`, `service_mq_depth_max` | `service` | shared-queue depth over the window |
//! | `service_arrival_rps` | `service` | per-service arrival rate |
//! | `class_offered_rps` | `class` | injected load |
//! | `class_latency_p50/p95/p99` | `class` | end-to-end latency percentiles (gap when idle) |
//! | `class_completions_total`, `class_injections_total` | `class` | cumulative counters |
//! | `total_allocated_cores` | — | all replicas, live and draining |
//! | `sim_events_live_total`, `sim_events_stale_total` | — | scheduler: dispatched events that did / did no work |
//! | `sim_event_heap_depth`, `sim_event_heap_stale`, `sim_event_heap_max_depth` | — | scheduler: event-heap occupancy |
//! | `sim_heap_compactions_total` | — | scheduler: lazy stale-entry compaction passes |
//! | `node_mem_util` | `node` | node memory usage / capacity at the last scan (memory plane) |
//! | `mem_oom_kills_total` | — | cumulative OOM-kills (memory plane) |
//! | `mem_evictions_total` | `tier` | cumulative pressure evictions by QoS tier (memory plane) |
//! | `service_mem_throttle_secs` | `service` | window seconds under noisy-neighbor interference |
//! | `slo_violation_fraction`, `slo_burn_rate_short/long` | `class` | SLO monitor (when SLAs given) |
//! | `slo_alerts_active` | — | burn-rate alerts currently firing |
//! | `ctrl_tick_wall_ms_*` | `system` | control-tick wall time (t-digest fan-out) |
//! | `ctrl_ticks_total`, `ctrl_scale_events_total` | `system` (+`service`) | decision activity |
//! | manager [`self_profile`](crate::control::ResourceManager::self_profile) series | `system` | controller internals |
//!
//! Scale decisions and newly firing SLO alerts also become dashboard
//! [`Annotation`]s, so the HTML export overlays control actions on every
//! panel. When the memory plane is installed, its OOM-kill/eviction/restart
//! incidents are annotated the same way and three memory panels join the
//! standard dashboard.

use crate::control::Sla;
use crate::engine::Simulation;
use crate::telemetry::MetricsSnapshot;
use crate::time::SimTime;
use crate::topology::{ServiceId, Topology};
use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use ursa_metrics::{
    render_dashboard, write_csv, write_prometheus, Annotation, Labels, PanelSpec, Registry,
    SloMonitor, SloSpec, TimeSeriesStore,
};

/// End-to-end latency percentiles exported per class.
pub const LATENCY_PERCENTILES: [f64; 3] = [50.0, 95.0, 99.0];

/// Harvest intervals in the short / long SLO burn-rate gauges (the page
/// rule's short window and the ticket rule's short window, respectively).
const BURN_SHORT_WINDOWS: usize = 5;
const BURN_LONG_WINDOWS: usize = 30;

/// Metrics collector for one deployment run.
///
/// Create one per run (scrape times must be strictly increasing), hand it
/// to [`run_deployment_metered`](crate::control::run_deployment_metered),
/// then export with [`write_artifacts`](Self::write_artifacts) or inspect
/// via [`store`](Self::store).
#[derive(Debug, Clone)]
pub struct SimMetrics {
    system: String,
    service_names: Vec<String>,
    class_names: Vec<String>,
    registry: Registry,
    store: TimeSeriesStore,
    slo: Option<SloMonitor>,
    /// SLAs aligned 1:1 with the monitor's specs.
    slo_slas: Vec<Sla>,
    annotations: Vec<Annotation>,
    /// `(spec index, severity)` pairs firing at the previous harvest; used
    /// to annotate only alert *onsets*, not every interval of an incident.
    active_alerts: BTreeSet<(usize, &'static str)>,
    /// Alerts that *started* firing at the most recent harvest, as
    /// `(class name, severity, short-window burn rate)` — the SLO-page
    /// trigger the post-mortem pipeline polls after each control tick.
    alert_onsets: Vec<(String, &'static str, f64)>,
    /// Whether any observed snapshot carried memory-plane statistics; when
    /// set, [`standard_panels`](Self::standard_panels) appends the memory
    /// panels.
    saw_mem: bool,
}

impl SimMetrics {
    /// Creates a collector for `sim` labeled with the managing `system`
    /// ("ursa", "sinan", ...). `slas` (possibly empty) seed the SLO
    /// monitor; SLAs at percentile 0 or 100 have no error budget and are
    /// skipped.
    pub fn new(system: &str, sim: &Simulation, slas: &[Sla]) -> Self {
        Self::for_topology(system, sim.topology(), slas)
    }

    /// Like [`new`](Self::new), but from a bare topology — for callers that
    /// build the simulation later (or internally) yet need the collector
    /// up front.
    pub fn for_topology(system: &str, topo: &Topology, slas: &[Sla]) -> Self {
        let service_names: Vec<String> = topo.services().iter().map(|s| s.name.clone()).collect();
        let class_names: Vec<String> = topo.classes().iter().map(|c| c.name.clone()).collect();
        let slo_slas: Vec<Sla> = slas
            .iter()
            .filter(|s| s.percentile > 0.0 && s.percentile < 100.0)
            .copied()
            .collect();
        let slo = if slo_slas.is_empty() {
            None
        } else {
            Some(SloMonitor::new(
                slo_slas
                    .iter()
                    .map(|s| SloSpec::new(&class_names[s.class.0], s.percentile, s.target))
                    .collect(),
            ))
        };
        SimMetrics {
            system: system.to_string(),
            service_names,
            class_names,
            registry: Registry::new(),
            store: TimeSeriesStore::new(),
            slo,
            slo_slas,
            annotations: Vec::new(),
            active_alerts: BTreeSet::new(),
            alert_onsets: Vec::new(),
            saw_mem: false,
        }
    }

    /// The system label this collector was created with.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// The scraped time-series store.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// Dashboard annotations accumulated so far (scale events, alert
    /// onsets).
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// The underlying registry, for callers exporting extra series.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The SLO monitor, when SLAs were given.
    pub fn slo(&self) -> Option<&SloMonitor> {
        self.slo.as_ref()
    }

    /// Alerts that began firing at the most recent harvest window, as
    /// `(class name, severity, short-window burn rate)`. Empty when no new
    /// alert started (alerts still burning from earlier windows are not
    /// repeated). This is the hook the post-mortem pipeline uses as its
    /// SLO-page trigger.
    pub fn alert_onsets(&self) -> &[(String, &'static str, f64)] {
        &self.alert_onsets
    }

    /// Updates per-service, per-class, and SLO instruments from one harvest
    /// window. Reads `sim` only through pure accessors.
    pub fn observe_snapshot(&mut self, sim: &Simulation, snap: &MetricsSnapshot) {
        let window = snap.window;
        for (i, svc) in snap.services.iter().enumerate() {
            let labels = Labels::new(&[("service", &self.service_names[i])]);
            let r = &mut self.registry;
            r.gauge_set(
                "service_cpu_utilization",
                labels.clone(),
                svc.cpu_utilization,
            );
            r.gauge_set("service_replicas", labels.clone(), svc.replicas as f64);
            r.gauge_set(
                "service_cores_per_replica",
                labels.clone(),
                svc.cores_per_replica,
            );
            r.gauge_set(
                "service_worker_occupancy",
                labels.clone(),
                sim.worker_occupancy(ServiceId(i)),
            );
            r.gauge_set("service_mq_depth_mean", labels.clone(), svc.mq_depth_mean);
            r.gauge_set(
                "service_mq_depth_max",
                labels.clone(),
                svc.mq_depth_max as f64,
            );
            r.gauge_set("service_arrival_rps", labels, svc.arrival_rps(window));
        }
        for c in 0..self.class_names.len() {
            let labels = Labels::new(&[("class", &self.class_names[c])]);
            let r = &mut self.registry;
            r.gauge_set(
                "class_offered_rps",
                labels.clone(),
                snap.injections[c] as f64 / window.as_secs_f64().max(1e-9),
            );
            r.counter_add(
                "class_completions_total",
                labels.clone(),
                snap.completions[c] as f64,
            );
            r.counter_add(
                "class_injections_total",
                labels.clone(),
                snap.injections[c] as f64,
            );
            // NaN when the window had no completions: the store keeps a gap
            // instead of forward-filling a stale percentile.
            for p in LATENCY_PERCENTILES {
                let v = snap.e2e_latency[c].percentile(p).unwrap_or(f64::NAN);
                r.gauge_set(&format!("class_latency_p{p:.0}"), labels.clone(), v);
            }
        }
        self.registry.gauge_set(
            "total_allocated_cores",
            Labels::empty(),
            sim.total_allocated_cores(),
        );
        // Scheduler internals (PR 5's stale-aware event loop), surfaced so
        // heap pathologies are visible next to the workload series.
        {
            let r = &mut self.registry;
            r.counter_set(
                "sim_events_live_total",
                Labels::empty(),
                sim.events_processed() as f64,
            );
            r.counter_set(
                "sim_events_stale_total",
                Labels::empty(),
                sim.events_stale() as f64,
            );
            r.counter_set(
                "sim_heap_compactions_total",
                Labels::empty(),
                sim.heap_compactions() as f64,
            );
            r.gauge_set(
                "sim_event_heap_depth",
                Labels::empty(),
                sim.event_heap_depth() as f64,
            );
            r.gauge_set(
                "sim_event_heap_stale",
                Labels::empty(),
                sim.event_heap_stale() as f64,
            );
            r.gauge_set(
                "sim_event_heap_max_depth",
                Labels::empty(),
                sim.event_heap_max_depth() as f64,
            );
        }
        // Fault-plane events become dashboard annotations so injected
        // faults are visible against the latency/occupancy series.
        for fault in &snap.faults {
            self.annotations.push(Annotation::new(
                fault.at.as_secs_f64(),
                "fault",
                &fault.label(),
            ));
        }
        // Memory-plane statistics (present only when the plane is
        // installed): node utilization, incident counters, and the
        // interference (compressible throttling) accumulator. Incidents
        // reuse the fault annotation style — an OOM-kill is as visible a
        // disruption as an injected fault.
        if let Some(mem) = &snap.mem {
            self.saw_mem = true;
            let r = &mut self.registry;
            for (n, util) in mem.node_util.iter().enumerate() {
                r.gauge_set(
                    "node_mem_util",
                    Labels::new(&[("node", &n.to_string())]),
                    *util,
                );
            }
            r.counter_add("mem_oom_kills_total", Labels::empty(), mem.oom_kills as f64);
            for (tier, label) in ["besteffort", "burstable", "guaranteed"]
                .into_iter()
                .enumerate()
            {
                r.counter_add(
                    "mem_evictions_total",
                    Labels::new(&[("tier", label)]),
                    mem.evictions[tier] as f64,
                );
            }
            for (i, secs) in mem.throttle_secs.iter().enumerate() {
                r.gauge_set(
                    "service_mem_throttle_secs",
                    Labels::new(&[("service", &self.service_names[i])]),
                    *secs,
                );
            }
            for e in &mem.events {
                self.annotations
                    .push(Annotation::new(e.at.as_secs_f64(), "fault", &e.label()));
            }
        }
        self.observe_slo(snap);
    }

    /// Feeds one harvest window into the SLO monitor and refreshes the
    /// burn-rate gauges and alert annotations.
    fn observe_slo(&mut self, snap: &MetricsSnapshot) {
        self.alert_onsets.clear();
        let Some(slo) = self.slo.as_mut() else {
            return;
        };
        for (idx, sla) in self.slo_slas.iter().enumerate() {
            let c = sla.class.0;
            let total = snap.completions[c];
            // fraction_above is measured over the retained window samples;
            // scale it to the window's completion count (see the retained
            // vs. total discussion on `LatencySeries`).
            let bad = match snap.e2e_latency[c].fraction_above(sla.target) {
                Some(frac) => ((frac * total as f64).round() as u64).min(total),
                None => 0,
            };
            slo.observe(idx, total, bad);
            let labels = Labels::new(&[("class", &self.class_names[c])]);
            let frac = slo.violation_fraction(idx, BURN_SHORT_WINDOWS);
            let short = slo.burn_rate(idx, BURN_SHORT_WINDOWS);
            let long = slo.burn_rate(idx, BURN_LONG_WINDOWS);
            let r = &mut self.registry;
            r.gauge_set(
                "slo_violation_fraction",
                labels.clone(),
                frac.unwrap_or(f64::NAN),
            );
            r.gauge_set(
                "slo_burn_rate_short",
                labels.clone(),
                short.unwrap_or(f64::NAN),
            );
            r.gauge_set("slo_burn_rate_long", labels, long.unwrap_or(f64::NAN));
        }
        let alerts = self.slo.as_ref().expect("slo set above").check();
        let now_active: BTreeSet<(usize, &'static str)> =
            alerts.iter().map(|a| (a.spec, a.severity)).collect();
        for a in &alerts {
            if !self.active_alerts.contains(&(a.spec, a.severity)) {
                self.annotations.push(Annotation::new(
                    snap.at.as_secs_f64(),
                    "alert",
                    &format!(
                        "{} alert: {} burning {:.1}x budget",
                        a.severity, a.class, a.short_burn
                    ),
                ));
                self.alert_onsets
                    .push((a.class.clone(), a.severity, a.short_burn));
            }
        }
        self.active_alerts = now_active;
        let active = self.active_alerts.len() as f64;
        self.registry
            .gauge_set("slo_alerts_active", Labels::empty(), active);
    }

    /// Records one control-plane decision: tick wall time, the manager's
    /// [`self_profile`](crate::control::ResourceManager::self_profile)
    /// series, and replica changes (each becomes a `scale` annotation).
    ///
    /// `scale_changes` entries are `(service name, replicas before,
    /// replicas after)` for services the tick actually changed.
    pub fn observe_decision(
        &mut self,
        at: SimTime,
        wall_ms: f64,
        profile: &[(&'static str, f64)],
        scale_changes: &[(String, usize, usize)],
    ) {
        let sys = Labels::new(&[("system", &self.system)]);
        let r = &mut self.registry;
        r.histogram_record("ctrl_tick_wall_ms", sys.clone(), wall_ms);
        r.counter_add("ctrl_ticks_total", sys.clone(), 1.0);
        for (name, v) in profile {
            // Managers report cumulative totals under `*_total`; everything
            // else is a point-in-time gauge.
            if name.ends_with("_total") {
                r.counter_set(name, sys.clone(), *v);
            } else {
                r.gauge_set(name, sys.clone(), *v);
            }
        }
        for (service, before, after) in scale_changes {
            r.counter_add(
                "ctrl_scale_events_total",
                Labels::new(&[("system", &self.system), ("service", service)]),
                1.0,
            );
            self.annotations.push(Annotation::new(
                at.as_secs_f64(),
                "scale",
                &format!("{service}: {before} -> {after} replicas"),
            ));
        }
    }

    /// Adds a free-form dashboard annotation (e.g. an injected anomaly or
    /// experiment phase boundary). `kind` selects the marker style:
    /// `"scale"`, `"alert"`, and `"fault"` have dedicated colors, anything
    /// else is neutral.
    pub fn annotate(&mut self, at: SimTime, kind: &str, label: &str) {
        self.annotations
            .push(Annotation::new(at.as_secs_f64(), kind, label));
    }

    /// Scrapes every instrument into the store as one row at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` does not advance past the previous scrape (one
    /// collector serves one run).
    pub fn scrape(&mut self, at: SimTime) {
        self.registry.scrape_into(at.as_secs_f64(), &mut self.store);
    }

    /// The default dashboard layout for a deployment run.
    pub fn standard_panels(&self) -> Vec<PanelSpec> {
        let mut panels = vec![
            PanelSpec::new(
                "End-to-end latency",
                "s",
                &["class_latency_p50", "class_latency_p99"],
            )
            .log_y(),
            PanelSpec::new("Offered load", "req/s", &["class_offered_rps"]),
            PanelSpec::new("Replicas", "", &["service_replicas"]),
            PanelSpec::new("CPU utilization", "", &["service_cpu_utilization"]),
            PanelSpec::new("Worker occupancy", "", &["service_worker_occupancy"]),
            PanelSpec::new(
                "Shared-queue depth (window mean)",
                "",
                &["service_mq_depth_mean"],
            ),
            PanelSpec::new("Total allocated cores", "cores", &["total_allocated_cores"]),
        ];
        if self.saw_mem {
            panels.push(PanelSpec::new(
                "Node memory utilization",
                "",
                &["node_mem_util"],
            ));
            panels.push(PanelSpec::new(
                "Memory incidents (cumulative)",
                "",
                &["mem_oom_kills_total", "mem_evictions_total"],
            ));
            panels.push(PanelSpec::new(
                "Noisy-neighbor throttle",
                "s/window",
                &["service_mem_throttle_secs"],
            ));
        }
        if self.slo.is_some() {
            panels.push(PanelSpec::new(
                "SLO burn rate (5-interval window)",
                "x budget",
                &["slo_burn_rate_short"],
            ));
        }
        panels.push(
            PanelSpec::new(
                "Control tick wall time",
                "ms",
                &["ctrl_tick_wall_ms_p50", "ctrl_tick_wall_ms_p99"],
            )
            .log_y(),
        );
        panels
    }

    /// Writes `<stem>.prom`, `<stem>.csv`, and `<stem>.html` under `dir`
    /// (created if missing) and returns the paths in that order. The HTML
    /// dashboard uses [`standard_panels`](Self::standard_panels) with all
    /// accumulated annotations overlaid.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_artifacts(
        &mut self,
        dir: &Path,
        stem: &str,
        title: &str,
    ) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let prom = dir.join(format!("{stem}.prom"));
        let mut f = std::fs::File::create(&prom)?;
        write_prometheus(&mut f, &mut self.registry)?;
        f.flush()?;

        let csv = dir.join(format!("{stem}.csv"));
        let mut f = std::fs::File::create(&csv)?;
        write_csv(&mut f, &self.store)?;
        f.flush()?;

        let html = dir.join(format!("{stem}.html"));
        let subtitle = format!(
            "system: {} — {} scrapes, {} series",
            self.system,
            self.store.len(),
            self.store.num_series()
        );
        let page = render_dashboard(
            title,
            &subtitle,
            &self.store,
            &self.standard_panels(),
            &self.annotations,
        );
        std::fs::write(&html, page)?;
        Ok(vec![prom, csv, html])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{
        run_deployment, run_deployment_metered, ControlPlane, DeployConfig, ResourceManager,
        StaticManager,
    };
    use crate::engine::SimConfig;
    use crate::time::SimDur;
    use crate::topology::{CallNode, ClassCfg, ClassId, Priority, ServiceCfg, Topology, WorkDist};
    use crate::workload::RateFn;
    use ursa_metrics::SeriesKey;

    fn sim(seed: u64) -> Simulation {
        let topo = Topology::new(
            vec![ServiceCfg::new("api", 2.0)],
            vec![ClassCfg {
                name: "get".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.002 }),
            }],
        )
        .unwrap();
        let mut s = Simulation::new(topo, SimConfig::default(), seed);
        s.set_rate(ClassId(0), RateFn::Constant(300.0));
        s
    }

    /// Scales to 3 replicas on its second tick, reporting a profile.
    struct ScaleOnce {
        ticks: u64,
    }

    impl ResourceManager for ScaleOnce {
        fn name(&self) -> &str {
            "scale-once"
        }
        fn on_tick(&mut self, _snap: &MetricsSnapshot, control: &mut dyn ControlPlane) {
            self.ticks += 1;
            if self.ticks == 2 {
                control.set_replicas(ServiceId(0), 3);
            }
        }
        fn self_profile(&self) -> Vec<(&'static str, f64)> {
            vec![("ctrl_demo_ticks_total", self.ticks as f64)]
        }
    }

    fn cfg() -> DeployConfig {
        DeployConfig {
            duration: SimDur::from_mins(6),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(1),
            collect_samples: false,
        }
    }

    #[test]
    fn metered_run_collects_series_and_annotations() {
        let mut s = sim(11);
        let slas = [Sla::new(ClassId(0), 99.0, 0.100)];
        let mut metrics = SimMetrics::new("scale-once", &s, &slas);
        run_deployment_metered(
            &mut s,
            &slas,
            &mut ScaleOnce { ticks: 0 },
            &cfg(),
            Some(&mut metrics),
        );
        // One scrape per control window.
        assert_eq!(metrics.store().len(), 6);
        let store = metrics.store();
        for name in [
            "service_cpu_utilization",
            "service_replicas",
            "service_worker_occupancy",
            "class_latency_p99",
            "slo_burn_rate_short",
            "sim_events_live_total",
            "sim_events_stale_total",
            "sim_event_heap_depth",
            "sim_event_heap_stale",
            "sim_event_heap_max_depth",
            "sim_heap_compactions_total",
        ] {
            assert!(
                store.series_named(name).next().is_some(),
                "missing series {name}"
            );
        }
        // The self-profile counter came through under the system label.
        let key = SeriesKey::new(
            "ctrl_demo_ticks_total",
            Labels::new(&[("system", "scale-once")]),
        );
        let col = store.values(&key).expect("profile series");
        assert_eq!(col.last().copied(), Some(6.0));
        // The scale decision produced an annotation and bumped the gauge.
        assert!(metrics
            .annotations()
            .iter()
            .any(|a| a.kind == "scale" && a.label.contains("1 -> 3")));
        let replicas = store
            .values(&SeriesKey::new(
                "service_replicas",
                Labels::new(&[("service", "api")]),
            ))
            .unwrap();
        assert_eq!(replicas.last().copied(), Some(3.0));
    }

    #[test]
    fn metered_and_unmetered_runs_are_identical() {
        // The acceptance criterion: collecting metrics must not perturb the
        // simulation. Identical seeds with and without a collector must
        // yield identical reports.
        let slas = [Sla::new(ClassId(0), 99.0, 0.050)];
        let mut a = sim(7);
        let plain = run_deployment(&mut a, &slas, &mut ScaleOnce { ticks: 0 }, &cfg());
        let mut b = sim(7);
        let mut metrics = SimMetrics::new("scale-once", &b, &slas);
        let metered = run_deployment_metered(
            &mut b,
            &slas,
            &mut ScaleOnce { ticks: 0 },
            &cfg(),
            Some(&mut metrics),
        );
        assert_eq!(plain.records.len(), metered.records.len());
        for (x, y) in plain.records.iter().zip(&metered.records) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.class_latency, y.class_latency);
            assert_eq!(x.class_violation, y.class_violation);
            assert_eq!(x.service_replicas, y.service_replicas);
            assert_eq!(x.total_cores, y.total_cores);
        }
    }

    #[test]
    fn artifacts_written_and_self_contained() {
        let mut s = sim(5);
        let slas = [Sla::new(ClassId(0), 99.0, 0.100)];
        let mut metrics = SimMetrics::new("static", &s, &slas);
        run_deployment_metered(
            &mut s,
            &slas,
            &mut StaticManager,
            &cfg(),
            Some(&mut metrics),
        );
        let dir = std::env::temp_dir().join(format!("ursa-metrics-test-{}", std::process::id()));
        let paths = metrics.write_artifacts(&dir, "run", "Test run").unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            let data = std::fs::read_to_string(p).unwrap();
            assert!(!data.is_empty(), "{} is empty", p.display());
        }
        let html = std::fs::read_to_string(&paths[2]).unwrap();
        assert!(html.contains("<svg"));
        assert!(!html.contains("<script"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_snapshot_feeds_series_panels_and_annotations() {
        let mut s = sim(3);
        let mut metrics = SimMetrics::new("static", &s, &[]);
        s.run_for(SimDur::from_secs(10));
        let mut snap = s.harvest();
        // No memory plane installed: no mem series, no mem panels.
        metrics.observe_snapshot(&s, &snap);
        metrics.scrape(SimTime::ZERO + SimDur::from_secs(10));
        assert!(metrics
            .store()
            .series_named("node_mem_util")
            .next()
            .is_none());
        assert!(!metrics
            .standard_panels()
            .iter()
            .any(|p| p.title.contains("memory")));
        // Attach a memory snapshot (as the engine does when the plane is
        // installed): series, panels, and incident annotations appear.
        snap.mem = Some(crate::memory::MemSnapshot {
            node_util: vec![0.5, 1.25],
            oom_kills: 2,
            evictions: [1, 0, 0],
            throttle_secs: vec![0.75],
            events: vec![crate::memory::MemEvent {
                at: SimTime::ZERO + SimDur::from_secs(4),
                kind: crate::memory::MemEventKind::OomKill,
                service: 0,
                node: 1,
                qos: crate::topology::QosClass::Burstable,
                usage_bytes: 256 << 20,
            }],
        });
        metrics.observe_snapshot(&s, &snap);
        metrics.scrape(SimTime::ZERO + SimDur::from_secs(20));
        let store = metrics.store();
        for name in [
            "node_mem_util",
            "mem_oom_kills_total",
            "mem_evictions_total",
            "service_mem_throttle_secs",
        ] {
            assert!(
                store.series_named(name).next().is_some(),
                "missing series {name}"
            );
        }
        let key = SeriesKey::new("node_mem_util", Labels::new(&[("node", "1")]));
        assert_eq!(store.values(&key).unwrap().last().copied(), Some(1.25));
        assert!(metrics
            .annotations()
            .iter()
            .any(|a| a.kind == "fault" && a.label.contains("oom_kill")));
        assert!(metrics
            .standard_panels()
            .iter()
            .any(|p| p.title.contains("memory utilization")));
    }

    #[test]
    fn slo_skips_budgetless_percentiles() {
        let s = sim(1);
        let slas = [Sla::new(ClassId(0), 100.0, 0.1)];
        let metrics = SimMetrics::new("x", &s, &slas);
        assert!(metrics.slo().is_none());
    }
}
