//! A deterministic discrete-event simulator of cloud-native microservice
//! applications — the testbed substrate for the Ursa reproduction.
//!
//! The simulator stands in for the paper's 8-node Kubernetes/Dapr cluster:
//! it models services as graphs connected by nested RPCs, event-driven RPCs,
//! and message queues; replicas with processor-sharing CPUs and bounded
//! worker pools; strict-priority request scheduling; Poisson (optionally
//! time-varying) open-loop load; and Prometheus-style telemetry. Resource
//! managers actuate it through the [`control::ControlPlane`] trait exactly
//! as they would actuate Kubernetes.
//!
//! The queueing mechanics are faithful enough that the paper's central
//! observation — RPC backpressure exists, MQ backpressure does not, and
//! bounded CPU utilization eliminates it (§III) — *emerges* from the model
//! rather than being hard-coded. See `DESIGN.md` at the workspace root for
//! the full substitution argument.
//!
//! # Example
//!
//! ```
//! use ursa_sim::prelude::*;
//!
//! // One service, one request class, Poisson load.
//! let topo = Topology::new(
//!     vec![ServiceCfg::new("api", 2.0)],
//!     vec![ClassCfg {
//!         name: "get".into(),
//!         priority: Priority::HIGH,
//!         root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.002 }),
//!     }],
//! )?;
//! let mut sim = Simulation::new(topo, SimConfig::default(), 1);
//! sim.set_rate(ClassId(0), RateFn::Constant(100.0));
//! sim.run_for(SimDur::from_secs(60));
//! let metrics = sim.harvest();
//! assert!(metrics.e2e_latency[0].percentile(99.0).is_some());
//! # Ok::<(), ursa_sim::topology::TopologyError>(())
//! ```

pub mod arena;
pub mod calq;
pub mod chaos;
pub mod cluster;
pub mod control;
pub mod engine;
pub mod memory;
pub mod metrics;
pub mod profiler;
pub mod ps;
pub mod recorder;
pub mod shard;
pub mod telemetry;
pub mod time;
pub mod topology;
pub mod trace;
pub mod workload;

/// Convenient glob-import of the commonly used simulator types.
pub mod prelude {
    pub use crate::chaos::{Fault, FaultEvent, FaultKind, FaultPhase, FaultPlan};
    pub use crate::cluster::{CappedControlPlane, Cluster, MachineCfg, PlacementPolicy};
    pub use crate::control::{
        run_deployment, run_deployment_metered, run_deployment_observed, ControlPlane,
        DeployConfig, DeployObserver, DeploymentReport, ResourceManager, Sla, StaticManager,
        WindowRecord,
    };
    pub use crate::engine::{SimConfig, Simulation};
    pub use crate::memory::{MemEvent, MemEventKind, MemPlan, MemProfile, MemSnapshot, NodeMemCfg};
    pub use crate::metrics::SimMetrics;
    pub use crate::profiler::{PhaseProfiler, PhaseStat, ProfilerReport, SimPhase};
    pub use crate::recorder::{FlightEntry, FlightEventKind, FlightRecorder};
    pub use crate::shard::{ShardPlan, ShardReport, ShardedSimulation};
    pub use crate::telemetry::{LatencySeries, MetricsSnapshot, ServiceMetrics};
    pub use crate::time::{SimDur, SimTime};
    pub use crate::topology::{
        CallMode, CallNode, ClassCfg, ClassId, EdgeKind, Priority, QosClass, ResourceSpec,
        ServiceCfg, ServiceId, Topology, WorkDist,
    };
    pub use crate::trace::{Trace, TraceSpan, Tracer};
    pub use crate::workload::RateFn;
}
