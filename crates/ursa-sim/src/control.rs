//! Control-plane abstractions and the deployment driver.
//!
//! [`ControlPlane`] is the actuation surface a resource manager sees —
//! replica counts and CPU limits, mirroring the Kubernetes APIs Ursa uses
//! in the paper (§V). [`ResourceManager`] is the common interface behind
//! which Ursa, Sinan-style, Firm-style, and autoscaling controllers all
//! plug into the same experiment driver, [`run_deployment`].

use crate::engine::Simulation;
use crate::telemetry::MetricsSnapshot;
use crate::time::{SimDur, SimTime};
use crate::topology::{ClassId, ServiceId};

/// An end-to-end latency SLA for one request class (paper Tables II–IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// The request class this SLA constrains.
    pub class: ClassId,
    /// The constrained percentile (e.g. 99.0, or 50.0 for the pipeline's
    /// low-priority class).
    pub percentile: f64,
    /// Latency target in seconds.
    pub target: f64,
}

impl Sla {
    /// Creates an SLA on the given percentile of `class` with `target`
    /// seconds.
    pub fn new(class: ClassId, percentile: f64, target: f64) -> Self {
        assert!((0.0..=100.0).contains(&percentile));
        assert!(target > 0.0);
        Sla {
            class,
            percentile,
            target,
        }
    }
}

/// Actuation interface offered to resource managers.
pub trait ControlPlane {
    /// Current simulated time (timestamps the manager's decision log).
    fn now(&self) -> SimTime;
    /// Number of services in the application.
    fn num_services(&self) -> usize;
    /// Human-readable service name.
    fn service_name(&self, service: ServiceId) -> String;
    /// Live replica count.
    fn replicas(&self, service: ServiceId) -> usize;
    /// Sets the replica count (graceful drain on scale-in).
    fn set_replicas(&mut self, service: ServiceId, n: usize);
    /// CPU cores per replica.
    fn cpu_limit(&self, service: ServiceId) -> f64;
    /// Sets the per-replica CPU limit.
    fn set_cpu_limit(&mut self, service: ServiceId, cores: f64);
    /// Total CPU cores currently allocated across all services.
    fn total_allocated_cores(&self) -> f64;
}

impl ControlPlane for Simulation {
    fn now(&self) -> SimTime {
        Simulation::now(self)
    }
    fn num_services(&self) -> usize {
        self.topology().num_services()
    }
    fn service_name(&self, service: ServiceId) -> String {
        self.topology().services()[service.0].name.clone()
    }
    fn replicas(&self, service: ServiceId) -> usize {
        Simulation::replicas(self, service)
    }
    fn set_replicas(&mut self, service: ServiceId, n: usize) {
        Simulation::set_replicas(self, service, n);
    }
    fn cpu_limit(&self, service: ServiceId) -> f64 {
        Simulation::cpu_limit(self, service)
    }
    fn set_cpu_limit(&mut self, service: ServiceId, cores: f64) {
        Simulation::set_cpu_limit(self, service, cores);
    }
    fn total_allocated_cores(&self) -> f64 {
        Simulation::total_allocated_cores(self)
    }
}

/// A resource management policy invoked on every control tick.
pub trait ResourceManager {
    /// Short identifier used in experiment output ("ursa", "sinan", ...).
    fn name(&self) -> &str;
    /// Reacts to the latest metrics window by actuating the control plane.
    fn on_tick(&mut self, snapshot: &MetricsSnapshot, control: &mut dyn ControlPlane);
    /// Self-profiling series exported after each tick when the run is
    /// metered (see [`crate::metrics::SimMetrics::observe_decision`]):
    /// `(metric name, value)` pairs labeled with the manager's name. Names
    /// ending in `_total` are treated as cumulative counters, everything
    /// else as gauges. The default exports nothing.
    fn self_profile(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
    /// Downcast hook for observers that need manager-specific state (the
    /// post-mortem pipeline reads Ursa's decision log through this). The
    /// default opts out; managers with inspectable state return
    /// `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Observer hooks on the deployment driver — the attachment point for the
/// post-mortem pipeline (and any other tooling that wants to watch a run
/// without being a resource manager).
///
/// The observer is called strictly *after* the window has simulated, the
/// manager has ticked, and (when metered) the metrics collector has
/// scraped — it sees the simulation only through `&` accessors, so it can
/// never perturb the run.
pub trait DeployObserver {
    /// Called once per control window, after the manager's tick.
    fn after_tick(
        &mut self,
        sim: &Simulation,
        manager: &dyn ResourceManager,
        metrics: Option<&crate::metrics::SimMetrics>,
        snapshot: &MetricsSnapshot,
    );
}

/// A manager that never changes anything (static allocation baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticManager;

impl ResourceManager for StaticManager {
    fn name(&self) -> &str {
        "static"
    }
    fn on_tick(&mut self, _snapshot: &MetricsSnapshot, _control: &mut dyn ControlPlane) {}
}

/// Configuration of a managed deployment run.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Total simulated run length.
    pub duration: SimDur,
    /// Metrics/actuation interval (paper: one sample per minute).
    pub control_interval: SimDur,
    /// Initial span excluded from the report (manager still runs).
    pub warmup: SimDur,
    /// If true, retain every end-to-end latency sample per class (for CDFs).
    pub collect_samples: bool,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            duration: SimDur::from_mins(30),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(2),
            collect_samples: false,
        }
    }
}

/// Per-window observations retained by the deployment driver.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// Window end time.
    pub at: SimTime,
    /// Per-class latency at the SLA percentile (None if no completions).
    pub class_latency: Vec<Option<f64>>,
    /// Per-class SLA violation in this window (None if no completions).
    pub class_violation: Vec<Option<bool>>,
    /// Per-class offered load (requests/second).
    pub class_rps: Vec<f64>,
    /// Per-service live replica counts.
    pub service_replicas: Vec<usize>,
    /// Per-service arrival rate (requests/second).
    pub service_rps: Vec<f64>,
    /// Per-service CPU utilization in `[0, 1]`.
    pub service_cpu_util: Vec<f64>,
    /// Total allocated CPU cores at window end.
    pub total_cores: f64,
}

/// Outcome of a managed deployment run.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// SLAs the run was evaluated against.
    pub slas: Vec<Sla>,
    /// One record per post-warmup control window.
    pub records: Vec<WindowRecord>,
    /// All end-to-end samples per class (only if `collect_samples`).
    pub class_samples: Vec<Vec<f64>>,
    /// Mean wall-clock cost of one manager decision, in milliseconds.
    pub decision_wall_ms: f64,
}

impl DeploymentReport {
    /// Fraction of windows in which `class` violated its SLA
    /// (windows without completions are excluded).
    pub fn class_violation_rate(&self, class: ClassId) -> f64 {
        let mut violated = 0usize;
        let mut total = 0usize;
        for rec in &self.records {
            if let Some(v) = rec.class_violation[class.0] {
                total += 1;
                if v {
                    violated += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            violated as f64 / total as f64
        }
    }

    /// Mean violation rate across all SLA-constrained classes.
    pub fn overall_violation_rate(&self) -> f64 {
        if self.slas.is_empty() {
            return 0.0;
        }
        self.slas
            .iter()
            .map(|s| self.class_violation_rate(s.class))
            .sum::<f64>()
            / self.slas.len() as f64
    }

    /// Time-averaged total CPU allocation in cores.
    pub fn avg_cpu_allocation(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.total_cores).sum::<f64>() / self.records.len() as f64
    }
}

/// Runs a managed deployment: alternates simulation windows with manager
/// decisions, recording SLA compliance and resource usage.
///
/// The caller sets arrival rates on `sim` beforehand. Warmup windows tick
/// the manager but are excluded from the report.
pub fn run_deployment(
    sim: &mut Simulation,
    slas: &[Sla],
    manager: &mut dyn ResourceManager,
    cfg: &DeployConfig,
) -> DeploymentReport {
    run_deployment_metered(sim, slas, manager, cfg, None)
}

/// [`run_deployment`] with an optional metrics collector.
///
/// When `metrics` is given, every harvest window is scraped into it
/// (utilization, latency percentiles, SLO burn rates), each manager tick is
/// wall-clock timed and its [`self_profile`](ResourceManager::self_profile)
/// exported, and replica changes become `scale` annotations. The collector
/// observes the simulation only through pure accessors *after* each window
/// has run, so the simulated outcome is bit-identical with `None` (see
/// `metered_and_unmetered_runs_are_identical` in `crate::metrics`).
pub fn run_deployment_metered(
    sim: &mut Simulation,
    slas: &[Sla],
    manager: &mut dyn ResourceManager,
    cfg: &DeployConfig,
    metrics: Option<&mut crate::metrics::SimMetrics>,
) -> DeploymentReport {
    run_deployment_observed(sim, slas, manager, cfg, metrics, None)
}

/// [`run_deployment_metered`] with an optional [`DeployObserver`] invoked
/// after every control window — the hook the post-mortem pipeline hangs
/// off. The observer reads the run through `&` accessors only, so the
/// simulated outcome is bit-identical with `None`.
pub fn run_deployment_observed(
    sim: &mut Simulation,
    slas: &[Sla],
    manager: &mut dyn ResourceManager,
    cfg: &DeployConfig,
    mut metrics: Option<&mut crate::metrics::SimMetrics>,
    mut observer: Option<&mut dyn DeployObserver>,
) -> DeploymentReport {
    let num_classes = sim.topology().num_classes();
    let num_services = sim.topology().num_services();
    let mut sla_of_class: Vec<Option<Sla>> = vec![None; num_classes];
    for sla in slas {
        sla_of_class[sla.class.0] = Some(*sla);
    }
    let mut records = Vec::new();
    let mut class_samples: Vec<Vec<f64>> = vec![Vec::new(); num_classes];
    let mut decision_nanos = 0u128;
    let mut decisions = 0u64;

    let end = sim.now() + cfg.duration;
    let warm_until = sim.now() + cfg.warmup;
    while sim.now() < end {
        sim.run_for(cfg.control_interval);
        let snapshot = sim.harvest();
        if let Some(m) = metrics.as_mut() {
            m.observe_snapshot(sim, &snapshot);
        }
        let in_warmup = snapshot.at <= warm_until;
        if !in_warmup {
            let mut class_latency = vec![None; num_classes];
            let mut class_violation = vec![None; num_classes];
            let mut class_rps = vec![0.0; num_classes];
            for c in 0..num_classes {
                class_rps[c] = snapshot.class_rps(ClassId(c));
                if let Some(sla) = sla_of_class[c] {
                    if let Some(lat) = snapshot.e2e_latency[c].percentile(sla.percentile) {
                        class_latency[c] = Some(lat);
                        class_violation[c] = Some(lat > sla.target);
                    }
                }
                if cfg.collect_samples {
                    class_samples[c].extend_from_slice(snapshot.e2e_latency[c].samples());
                }
            }
            records.push(WindowRecord {
                at: snapshot.at,
                class_latency,
                class_violation,
                class_rps,
                service_replicas: snapshot.services.iter().map(|s| s.replicas).collect(),
                service_rps: (0..num_services)
                    .map(|s| snapshot.services[s].arrival_rps(snapshot.window))
                    .collect(),
                service_cpu_util: snapshot
                    .services
                    .iter()
                    .map(|s| s.cpu_utilization)
                    .collect(),
                total_cores: sim.total_allocated_cores(),
            });
        }
        // Replica counts before the tick, for scale-event detection. Only
        // read when metered; wall-clock time never feeds back into the sim.
        let before: Option<Vec<usize>> = metrics.as_ref().map(|_| {
            (0..num_services)
                .map(|s| Simulation::replicas(sim, ServiceId(s)))
                .collect()
        });
        let t0 = std::time::Instant::now();
        manager.on_tick(&snapshot, sim);
        let wall = t0.elapsed();
        decision_nanos += wall.as_nanos();
        decisions += 1;
        // Exact (unsampled) control-phase time; no-op when profiling is off.
        sim.profiler_note_control(wall.as_nanos() as u64);
        if let Some(m) = metrics.as_mut() {
            let before = before.expect("captured when metered");
            let changes: Vec<(String, usize, usize)> = (0..num_services)
                .filter_map(|s| {
                    let after = Simulation::replicas(sim, ServiceId(s));
                    (after != before[s])
                        .then(|| (sim.topology().services()[s].name.clone(), before[s], after))
                })
                .collect();
            m.observe_decision(
                snapshot.at,
                wall.as_secs_f64() * 1e3,
                &manager.self_profile(),
                &changes,
            );
            m.scrape(snapshot.at);
        }
        if let Some(obs) = observer.as_deref_mut() {
            obs.after_tick(sim, &*manager, metrics.as_deref(), &snapshot);
        }
    }
    DeploymentReport {
        slas: slas.to_vec(),
        records,
        class_samples,
        decision_wall_ms: if decisions > 0 {
            decision_nanos as f64 / decisions as f64 / 1e6
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::topology::{CallNode, ClassCfg, Priority, ServiceCfg, Topology, WorkDist};
    use crate::workload::RateFn;

    fn sim() -> Simulation {
        let topo = Topology::new(
            vec![ServiceCfg::new("svc", 2.0)],
            vec![ClassCfg {
                name: "req".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.002 }),
            }],
        )
        .unwrap();
        Simulation::new(topo, SimConfig::default(), 3)
    }

    #[test]
    fn control_plane_roundtrip() {
        let mut s = sim();
        let cp: &mut dyn ControlPlane = &mut s;
        assert_eq!(cp.num_services(), 1);
        assert_eq!(cp.service_name(ServiceId(0)), "svc");
        cp.set_replicas(ServiceId(0), 3);
        assert_eq!(cp.replicas(ServiceId(0)), 3);
        cp.set_cpu_limit(ServiceId(0), 1.5);
        assert!((cp.cpu_limit(ServiceId(0)) - 1.5).abs() < 1e-12);
        assert!((cp.total_allocated_cores() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn deployment_report_static_manager() {
        let mut s = sim();
        s.set_rate(ClassId(0), RateFn::Constant(200.0));
        let slas = [Sla::new(ClassId(0), 99.0, 0.100)];
        let cfg = DeployConfig {
            duration: SimDur::from_mins(10),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(2),
            collect_samples: true,
        };
        let report = run_deployment(&mut s, &slas, &mut StaticManager, &cfg);
        assert_eq!(report.records.len(), 8); // 10 windows - 2 warmup
                                             // Comfortably provisioned: rho = 0.2, SLA should hold.
        assert_eq!(report.overall_violation_rate(), 0.0);
        assert!((report.avg_cpu_allocation() - 2.0).abs() < 1e-12);
        assert!(!report.class_samples[0].is_empty());
        assert!(report.decision_wall_ms >= 0.0);
    }

    #[test]
    fn deployment_detects_violations_when_underprovisioned() {
        let mut s = sim();
        s.set_rate(ClassId(0), RateFn::Constant(1400.0)); // rho = 1.4 on 2 cores
        let slas = [Sla::new(ClassId(0), 99.0, 0.050)];
        let cfg = DeployConfig {
            duration: SimDur::from_mins(6),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(1),
            collect_samples: false,
        };
        let report = run_deployment(&mut s, &slas, &mut StaticManager, &cfg);
        assert!(
            report.overall_violation_rate() > 0.9,
            "rate {}",
            report.overall_violation_rate()
        );
    }

    #[test]
    fn sla_constructor_validates() {
        let sla = Sla::new(ClassId(0), 99.0, 0.5);
        assert_eq!(sla.percentile, 99.0);
    }

    #[test]
    #[should_panic]
    fn sla_rejects_bad_percentile() {
        Sla::new(ClassId(0), 101.0, 0.5);
    }
}
