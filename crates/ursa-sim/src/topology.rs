//! Microservice application topologies.
//!
//! A [`Topology`] declares the services of an application (with their
//! per-replica resource configuration) and one [`CallNode`] tree per request
//! class, describing how a request of that class flows through the services:
//! which service handles each hop, how much compute it costs, and whether
//! each inter-service edge is a nested RPC, an event-driven RPC, or a
//! message queue — the three communication styles whose backpressure
//! behaviour §III of the paper characterizes.

use std::sync::Arc;

use ursa_stats::dist::{Constant, Distribution, Exponential, LogNormal, Pareto, Uniform};
use ursa_stats::rng::Rng;

/// Index of a service within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(pub usize);

/// Index of a request class within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub usize);

/// Request priority: lower value = higher priority (0 is highest).
///
/// Queues serve strictly by priority, matching the video-processing
/// pipeline's semantics in the paper ("low-priority requests are processed
/// only when there is no high-priority request waiting").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u8);

impl Priority {
    /// The highest priority.
    pub const HIGH: Priority = Priority(0);
    /// A standard low priority.
    pub const LOW: Priority = Priority(1);
}

/// How an upstream service communicates with a downstream service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Synchronous RPC: the caller's worker thread blocks until the callee
    /// responds (Fig. 1a). Exhibits backpressure.
    NestedRpc,
    /// Event-driven RPC: the handler submits a continuation to a bounded
    /// daemon pool and responds immediately; the continuation performs the
    /// RPC and waits (Fig. 1b). Exhibits backpressure when the daemon pool
    /// and its submission queue fill up.
    EventDrivenRpc,
    /// Message queue: the producer publishes and continues; consumers pull
    /// from an unbounded queue (Fig. 1c). No backpressure.
    Mq,
}

/// A cloneable service-time distribution (CPU-seconds of work per request).
///
/// This is a closed enum rather than a boxed trait object so that topologies
/// can be cloned, inspected, and re-profiled (the profiling engine in
/// `ursa-core` builds synthetic single-service topologies from these specs).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkDist {
    /// Fixed compute cost.
    Constant(f64),
    /// Uniform on `[low, high)`.
    Uniform { low: f64, high: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Log-normal with the given mean and coefficient of variation.
    LogNormal { mean: f64, cv: f64 },
    /// Pareto with scale `x_min` and shape `alpha`.
    Pareto { x_min: f64, alpha: f64 },
}

impl WorkDist {
    /// Draws one compute cost in CPU-seconds (always non-negative).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let v = match self {
            WorkDist::Constant(c) => Constant(*c).sample(rng),
            WorkDist::Uniform { low, high } => Uniform::new(*low, *high).sample(rng),
            WorkDist::Exponential { mean } => Exponential::with_mean(*mean).sample(rng),
            WorkDist::LogNormal { mean, cv } => LogNormal::from_mean_cv(*mean, *cv).sample(rng),
            WorkDist::Pareto { x_min, alpha } => Pareto::new(*x_min, *alpha).sample(rng),
        };
        v.max(0.0)
    }

    /// The distribution mean in CPU-seconds.
    pub fn mean(&self) -> f64 {
        match self {
            WorkDist::Constant(c) => *c,
            WorkDist::Uniform { low, high } => 0.5 * (low + high),
            WorkDist::Exponential { mean } => *mean,
            WorkDist::LogNormal { mean, .. } => *mean,
            WorkDist::Pareto { x_min, alpha } => Pareto::new(*x_min, *alpha).mean(),
        }
    }

    /// Validates parameters, returning a description of the first problem.
    fn validate(&self) -> Result<(), String> {
        let ok = match self {
            WorkDist::Constant(c) => *c >= 0.0 && c.is_finite(),
            WorkDist::Uniform { low, high } => *low >= 0.0 && high >= low && high.is_finite(),
            WorkDist::Exponential { mean } => *mean > 0.0 && mean.is_finite(),
            WorkDist::LogNormal { mean, cv } => *mean > 0.0 && *cv >= 0.0 && cv.is_finite(),
            WorkDist::Pareto { x_min, alpha } => *x_min > 0.0 && *alpha > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("invalid work distribution {self:?}"))
        }
    }
}

/// Whether a node's nested child calls are issued one-by-one or all at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CallMode {
    /// Children are called in order; each nested call completes before the
    /// next child is issued.
    #[default]
    Sequential,
    /// All children are issued immediately; the node waits for every nested
    /// response before continuing (fan-out).
    Parallel,
}

/// One hop of a request-class call tree.
#[derive(Debug, Clone)]
pub struct CallNode {
    /// Which service executes this hop.
    pub service: ServiceId,
    /// Compute performed before issuing child calls.
    pub pre_work: WorkDist,
    /// Compute performed after all nested children respond.
    pub post_work: WorkDist,
    /// Sequential or parallel issuance of children.
    pub mode: CallMode,
    /// Downstream calls made by this hop.
    pub children: Vec<(EdgeKind, CallNode)>,
}

impl CallNode {
    /// Creates a leaf hop with the given pre-work and no post-work.
    pub fn leaf(service: ServiceId, work: WorkDist) -> Self {
        CallNode {
            service,
            pre_work: work,
            post_work: WorkDist::Constant(0.0),
            mode: CallMode::Sequential,
            children: Vec::new(),
        }
    }

    /// Adds a downstream call, returning `self` for chaining.
    pub fn with_child(mut self, edge: EdgeKind, node: CallNode) -> Self {
        self.children.push((edge, node));
        self
    }

    /// Sets the post-children compute, returning `self` for chaining.
    pub fn with_post_work(mut self, work: WorkDist) -> Self {
        self.post_work = work;
        self
    }

    /// Sets the child call mode, returning `self` for chaining.
    pub fn with_mode(mut self, mode: CallMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of hops in the subtree rooted here.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|(_, c)| c.node_count())
            .sum::<usize>()
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a CallNode)) {
        f(self);
        for (_, c) in &self.children {
            c.visit(f);
        }
    }
}

/// Kubernetes-style per-replica resource requests and limits.
///
/// CPU is measured in cores and is *compressible*: exceeding the request on
/// an overcommitted node causes throttling/interference, never death. Memory
/// is measured in bytes and is *incompressible*: exceeding the limit is an
/// OOM-kill, and node-level pressure evicts replicas in QoS order. A spec
/// with every field zero is the Kubernetes "no resources declared" pod.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceSpec {
    /// Guaranteed CPU cores (the scheduler reserves this much).
    pub cpu_request: f64,
    /// Maximum CPU cores (0 = unlimited).
    pub cpu_limit: f64,
    /// Guaranteed memory in bytes (the scheduler reserves this much).
    pub mem_request: u64,
    /// Maximum memory in bytes before OOM-kill (0 = unlimited).
    pub mem_limit: u64,
}

impl ResourceSpec {
    /// A Guaranteed-class spec: requests equal limits on both dimensions.
    pub fn guaranteed(cpu: f64, mem_bytes: u64) -> Self {
        ResourceSpec {
            cpu_request: cpu,
            cpu_limit: cpu,
            mem_request: mem_bytes,
            mem_limit: mem_bytes,
        }
    }

    /// A Burstable-class spec: requests below limits.
    pub fn burstable(cpu_request: f64, cpu_limit: f64, mem_request: u64, mem_limit: u64) -> Self {
        ResourceSpec {
            cpu_request,
            cpu_limit,
            mem_request,
            mem_limit,
        }
    }

    /// A BestEffort-class spec: nothing requested, nothing limited.
    pub fn best_effort() -> Self {
        ResourceSpec::default()
    }

    /// Derives the QoS class with the kubelet's rules: Guaranteed iff
    /// requests equal limits and are set on *both* dimensions, BestEffort
    /// iff no request or limit is set anywhere, Burstable otherwise.
    pub fn qos_class(&self) -> QosClass {
        let none_set = self.cpu_request == 0.0
            && self.cpu_limit == 0.0
            && self.mem_request == 0
            && self.mem_limit == 0;
        if none_set {
            return QosClass::BestEffort;
        }
        let cpu_guaranteed = self.cpu_request > 0.0 && self.cpu_request == self.cpu_limit;
        let mem_guaranteed = self.mem_request > 0 && self.mem_request == self.mem_limit;
        if cpu_guaranteed && mem_guaranteed {
            QosClass::Guaranteed
        } else {
            QosClass::Burstable
        }
    }

    /// Validates parameters, returning a description of the first problem.
    fn validate(&self) -> Result<(), String> {
        if !(self.cpu_request >= 0.0 && self.cpu_request.is_finite()) {
            return Err(format!("invalid cpu_request {}", self.cpu_request));
        }
        if !(self.cpu_limit >= 0.0 && self.cpu_limit.is_finite()) {
            return Err(format!("invalid cpu_limit {}", self.cpu_limit));
        }
        if self.cpu_limit > 0.0 && self.cpu_request > self.cpu_limit {
            return Err(format!(
                "cpu_request {} exceeds cpu_limit {}",
                self.cpu_request, self.cpu_limit
            ));
        }
        if self.mem_limit > 0 && self.mem_request > self.mem_limit {
            return Err(format!(
                "mem_request {} exceeds mem_limit {}",
                self.mem_request, self.mem_limit
            ));
        }
        Ok(())
    }
}

/// Kubernetes QoS class, derived from a [`ResourceSpec`].
///
/// Ordered by eviction priority: `BestEffort < Burstable < Guaranteed`, so
/// the *minimum* is evicted first — exactly the kubelet's pressure-eviction
/// ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// No requests or limits declared: first to be evicted.
    BestEffort,
    /// Requests below limits (or only partially declared).
    Burstable,
    /// Requests equal limits on both CPU and memory: evicted last.
    Guaranteed,
}

impl QosClass {
    /// Stable lowercase label for metrics and result tables.
    pub fn label(&self) -> &'static str {
        match self {
            QosClass::BestEffort => "besteffort",
            QosClass::Burstable => "burstable",
            QosClass::Guaranteed => "guaranteed",
        }
    }

    /// All classes in eviction order (first evicted first).
    pub const ALL: [QosClass; 3] = [
        QosClass::BestEffort,
        QosClass::Burstable,
        QosClass::Guaranteed,
    ];
}

/// Per-replica configuration of a service.
#[derive(Debug, Clone)]
pub struct ServiceCfg {
    /// Human-readable name (unique within a topology).
    pub name: String,
    /// CPU cores per replica (the Kubernetes CPU limit; fractional allowed
    /// for throttling experiments).
    pub cores: f64,
    /// Request worker threads per replica. A worker is held for the entire
    /// synchronous lifetime of a request, including nested-RPC waits.
    pub workers: usize,
    /// Daemon threads per replica serving event-driven continuations.
    pub daemon_workers: usize,
    /// Bounded submission queue in front of the daemon pool; when full,
    /// handlers block on submission (the §III event-driven backpressure
    /// mechanism).
    pub daemon_queue_cap: usize,
    /// Replica count at simulation start.
    pub initial_replicas: usize,
    /// Optional Kubernetes-style resource spec. `None` means the service
    /// predates the resource plane: no QoS class, never OOM-killed, and the
    /// topology digest is byte-identical to pre-resource-plane builds.
    pub resources: Option<ResourceSpec>,
}

impl ServiceCfg {
    /// A service with the given name and core count, with defaults sized so
    /// that thread pools are not the bottleneck at moderate load
    /// (64 workers, 32 daemons, 64-deep daemon queue, 1 replica).
    pub fn new(name: impl Into<String>, cores: f64) -> Self {
        ServiceCfg {
            name: name.into(),
            cores,
            workers: 64,
            daemon_workers: 32,
            daemon_queue_cap: 64,
            initial_replicas: 1,
            resources: None,
        }
    }

    /// Sets the worker pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the daemon pool size and submission queue depth.
    pub fn with_daemons(mut self, daemons: usize, queue_cap: usize) -> Self {
        self.daemon_workers = daemons;
        self.daemon_queue_cap = queue_cap;
        self
    }

    /// Sets the starting replica count.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.initial_replicas = replicas;
        self
    }

    /// Attaches a Kubernetes-style resource spec (requests/limits → QoS).
    pub fn with_resources(mut self, spec: ResourceSpec) -> Self {
        self.resources = Some(spec);
        self
    }

    /// The QoS class derived from this service's resource spec, or `None`
    /// when no spec is attached.
    pub fn qos_class(&self) -> Option<QosClass> {
        self.resources.as_ref().map(ResourceSpec::qos_class)
    }
}

/// A request class: a named call tree with a priority.
#[derive(Debug, Clone)]
pub struct ClassCfg {
    /// Human-readable name (unique within a topology).
    pub name: String,
    /// Scheduling priority of this class's requests.
    pub priority: Priority,
    /// The call tree executed by each request of this class.
    pub root: CallNode,
}

/// Error produced when a topology fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError(String);

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid topology: {}", self.0)
    }
}

impl std::error::Error for TopologyError {}

/// One call-tree hop flattened into dense per-class indices — the engine's
/// hot-path view of a [`CallNode`]. Children/parent are indices into the
/// owning [`FlatClass::nodes`] array.
#[derive(Debug)]
pub struct FlatNode {
    /// Service executing this hop (dense index into the services array).
    pub service: usize,
    /// Parent hop and the edge kind through which this hop is reached
    /// (`None` for the root).
    pub parent: Option<(u16, EdgeKind)>,
    /// Child hops with their edge kinds, in issue order.
    pub children: Vec<(u16, EdgeKind)>,
    /// Sequential or parallel child issuance.
    pub mode: CallMode,
    /// Compute before issuing children.
    pub pre: WorkDist,
    /// Compute after all nested children respond.
    pub post: WorkDist,
}

/// A request class flattened for the engine: hops in preorder plus the
/// class priority as a dense level.
#[derive(Debug)]
pub struct FlatClass {
    /// Hops in preorder (root first).
    pub nodes: Vec<FlatNode>,
    /// Priority level (0 = highest).
    pub prio: usize,
}

fn flatten(root: &CallNode, out: &mut Vec<FlatNode>, parent: Option<(u16, EdgeKind)>) -> u16 {
    let idx = out.len() as u16;
    out.push(FlatNode {
        service: root.service.0,
        parent,
        children: Vec::new(),
        mode: root.mode,
        pre: root.pre_work.clone(),
        post: root.post_work.clone(),
    });
    for (edge, child) in &root.children {
        let cidx = flatten(child, out, Some((idx, *edge)));
        out[idx as usize].children.push((cidx, *edge));
    }
    idx
}

/// Sentinel for [`HotTable::nested_parent`]: no nested-RPC parent.
pub const NO_NESTED_PARENT: u16 = u16::MAX;

/// Struct-of-arrays view of the per-hop fields the engine reads on *every*
/// arrival and response. A [`FlatNode`] is large (two `WorkDist` enums plus
/// a child vector), so walking `flat[class].nodes[node].service` on the hot
/// path drags a whole cache line of cold payload along. The hot table packs
/// the per-event fields into dense primitive arrays indexed by
/// `class_base[class] + node`, one global namespace across classes.
#[derive(Debug)]
pub struct HotTable {
    /// Per class: base index of its hops in the node arrays below.
    pub class_base: Vec<u32>,
    /// Per class: priority level (0 = highest), same as [`FlatClass::prio`].
    pub class_prio: Vec<u8>,
    /// Per hop: service executing it.
    pub service: Vec<u16>,
    /// Per hop: true iff it is reached through an [`EdgeKind::Mq`] edge.
    pub via_mq: Vec<bool>,
    /// Per hop: parent hop index when reached via [`EdgeKind::NestedRpc`],
    /// else [`NO_NESTED_PARENT`] — exactly the question `respond` asks.
    pub nested_parent: Vec<u16>,
    /// Per hop: number of child calls it issues.
    pub n_children: Vec<u16>,
}

impl HotTable {
    fn build(flat: &[FlatClass]) -> Self {
        let total: usize = flat.iter().map(|c| c.nodes.len()).sum();
        let mut t = HotTable {
            class_base: Vec::with_capacity(flat.len()),
            class_prio: Vec::with_capacity(flat.len()),
            service: Vec::with_capacity(total),
            via_mq: Vec::with_capacity(total),
            nested_parent: Vec::with_capacity(total),
            n_children: Vec::with_capacity(total),
        };
        for class in flat {
            t.class_base.push(t.service.len() as u32);
            t.class_prio.push(class.prio as u8);
            for node in &class.nodes {
                t.service.push(node.service as u16);
                t.via_mq
                    .push(matches!(node.parent, Some((_, EdgeKind::Mq))));
                t.nested_parent.push(match node.parent {
                    Some((p, EdgeKind::NestedRpc)) => p,
                    _ => NO_NESTED_PARENT,
                });
                t.n_children.push(node.children.len() as u16);
            }
        }
        t
    }

    /// Index of hop `node` of `class` into the per-hop arrays.
    #[inline]
    pub fn node(&self, class: usize, node: u16) -> usize {
        self.class_base[class] as usize + node as usize
    }
}

/// A validated microservice application: services plus request classes.
///
/// The flattened per-class call trees ([`FlatClass`]) are built once at
/// construction and shared via `Arc`: cloning a topology — or building many
/// [`Simulation`](crate::engine::Simulation)s of it — never re-clones the
/// work distributions.
#[derive(Debug, Clone)]
pub struct Topology {
    services: Vec<ServiceCfg>,
    classes: Vec<ClassCfg>,
    flat: Arc<Vec<FlatClass>>,
    hot: Arc<HotTable>,
}

impl Topology {
    /// Validates and constructs a topology.
    ///
    /// # Errors
    ///
    /// Returns an error if any of the following hold: no services; a
    /// service with non-positive cores, zero workers, or zero replicas;
    /// duplicate service or class names; a call node referencing an
    /// out-of-range service; or an invalid work distribution.
    pub fn new(services: Vec<ServiceCfg>, classes: Vec<ClassCfg>) -> Result<Self, TopologyError> {
        if services.is_empty() {
            return Err(TopologyError("no services".into()));
        }
        let mut names = std::collections::HashSet::new();
        for s in &services {
            if !(s.cores > 0.0 && s.cores.is_finite()) {
                return Err(TopologyError(format!(
                    "service {} has invalid cores",
                    s.name
                )));
            }
            if s.workers == 0 {
                return Err(TopologyError(format!(
                    "service {} has zero workers",
                    s.name
                )));
            }
            if s.initial_replicas == 0 {
                return Err(TopologyError(format!(
                    "service {} has zero replicas",
                    s.name
                )));
            }
            if let Some(spec) = &s.resources {
                if let Err(e) = spec.validate() {
                    return Err(TopologyError(format!("service {}: {e}", s.name)));
                }
            }
            if !names.insert(s.name.clone()) {
                return Err(TopologyError(format!("duplicate service name {}", s.name)));
            }
        }
        let mut cnames = std::collections::HashSet::new();
        for c in &classes {
            if !cnames.insert(c.name.clone()) {
                return Err(TopologyError(format!("duplicate class name {}", c.name)));
            }
            let mut err = None;
            c.root.visit(&mut |node| {
                if node.service.0 >= services.len() {
                    err = Some(format!(
                        "class {} references unknown service {}",
                        c.name, node.service.0
                    ));
                }
                if let Err(e) = node.pre_work.validate() {
                    err = Some(format!("class {}: {e}", c.name));
                }
                if let Err(e) = node.post_work.validate() {
                    err = Some(format!("class {}: {e}", c.name));
                }
            });
            if let Some(e) = err {
                return Err(TopologyError(e));
            }
        }
        let flat: Arc<Vec<FlatClass>> = Arc::new(
            classes
                .iter()
                .map(|c| {
                    let mut nodes = Vec::with_capacity(c.root.node_count());
                    flatten(&c.root, &mut nodes, None);
                    FlatClass {
                        nodes,
                        prio: c.priority.0 as usize,
                    }
                })
                .collect(),
        );
        let hot = Arc::new(HotTable::build(&flat));
        Ok(Topology {
            services,
            classes,
            flat,
            hot,
        })
    }

    /// The services of this application.
    pub fn services(&self) -> &[ServiceCfg] {
        &self.services
    }

    /// The flattened per-class call trees, shared by reference count —
    /// the engine indexes these on every hop instead of cloning work
    /// distributions per simulation.
    pub fn flat_classes(&self) -> Arc<Vec<FlatClass>> {
        Arc::clone(&self.flat)
    }

    /// The SoA hot table over the flattened call trees, shared by
    /// reference count like [`flat_classes`](Self::flat_classes).
    pub fn hot_table(&self) -> Arc<HotTable> {
        Arc::clone(&self.hot)
    }

    /// The request classes of this application.
    pub fn classes(&self) -> &[ClassCfg] {
        &self.classes
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Number of request classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Finds a service by name.
    pub fn service_by_name(&self, name: &str) -> Option<ServiceId> {
        self.services
            .iter()
            .position(|s| s.name == name)
            .map(ServiceId)
    }

    /// Finds a request class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId)
    }

    /// All `(class, node)` pairs whose node runs on `service`, with the
    /// edge kind through which the node is reached (`None` for roots).
    ///
    /// Used by the profiling engine to synthesize per-service workloads.
    pub fn nodes_on_service(
        &self,
        service: ServiceId,
    ) -> Vec<(ClassId, &CallNode, Option<EdgeKind>)> {
        let mut out = Vec::new();
        for (ci, class) in self.classes.iter().enumerate() {
            fn walk<'a>(
                node: &'a CallNode,
                via: Option<EdgeKind>,
                service: ServiceId,
                ci: usize,
                out: &mut Vec<(ClassId, &'a CallNode, Option<EdgeKind>)>,
            ) {
                if node.service == service {
                    out.push((ClassId(ci), node, via));
                }
                for (edge, child) in &node.children {
                    walk(child, Some(*edge), service, ci, out);
                }
            }
            walk(&class.root, None, service, ci, &mut out);
        }
        out
    }

    /// True if any request class reaches `service` via a synchronous
    /// (nested or event-driven) RPC edge, i.e. the service can exert
    /// backpressure on an upstream caller.
    pub fn is_rpc_connected(&self, service: ServiceId) -> bool {
        self.nodes_on_service(service).iter().any(|(_, _, via)| {
            matches!(
                via,
                Some(EdgeKind::NestedRpc) | Some(EdgeKind::EventDrivenRpc)
            )
        })
    }

    /// Services traversed by the given class's call tree (deduplicated,
    /// in visit order).
    pub fn services_of_class(&self, class: ClassId) -> Vec<ServiceId> {
        let mut seen = Vec::new();
        self.classes[class.0].root.visit(&mut |node| {
            if !seen.contains(&node.service) {
                seen.push(node.service);
            }
        });
        seen
    }

    /// Request classes whose call tree touches the given service.
    pub fn classes_on_service(&self, service: ServiceId) -> Vec<ClassId> {
        (0..self.classes.len())
            .map(ClassId)
            .filter(|&c| self.services_of_class(c).contains(&service))
            .collect()
    }

    /// Every parent→child edge of every class call tree, flattened — the
    /// raw material for the shard partitioner (service affinity graph) and
    /// the cross-shard lookahead computation.
    pub fn call_edges(&self) -> Vec<CallEdge> {
        let mut out = Vec::new();
        for (ci, class) in self.flat.iter().enumerate() {
            for (pi, node) in class.nodes.iter().enumerate() {
                for &(child, kind) in &node.children {
                    out.push(CallEdge {
                        class: ci,
                        parent: pi as u16,
                        child,
                        from: node.service,
                        to: class.nodes[child as usize].service,
                        kind,
                    });
                }
            }
        }
        out
    }

    /// Undirected service adjacency derived from the call trees: `adj[s]`
    /// lists the services sharing a call edge with `s`, sorted and
    /// deduplicated. Services never referenced by any class have empty
    /// rows. Deterministic — drives the deterministic shard partition.
    pub fn service_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.services.len()];
        for e in self.call_edges() {
            if e.from != e.to {
                adj[e.from].push(e.to);
                adj[e.to].push(e.from);
            }
        }
        for row in &mut adj {
            row.sort_unstable();
            row.dedup();
        }
        adj
    }

    /// Call-tree hops per service, summed across classes — the partition
    /// weight (a service hosting many hops sees proportionally more
    /// events).
    pub fn service_node_weights(&self) -> Vec<u64> {
        let mut w = vec![0u64; self.services.len()];
        for class in self.flat.iter() {
            for node in &class.nodes {
                w[node.service] += 1;
            }
        }
        w
    }

    /// Structural digest of the topology (FNV-1a over services and call
    /// trees). Two topologies digest equal iff they have the same service
    /// configurations and the same class trees (names, priorities, edges,
    /// call modes, and work-distribution parameters); run manifests embed
    /// the digest so `ursa-bench diff` can tell "same workload, different
    /// code" apart from "different workload".
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(self.services.len());
        for s in &self.services {
            h.write_str(&s.name);
            h.write_f64(s.cores);
            h.write_usize(s.workers);
            h.write_usize(s.daemon_workers);
            h.write_usize(s.daemon_queue_cap);
            h.write_usize(s.initial_replicas);
            // Resource specs are hashed only when present: a spec-free
            // topology digests byte-identically to pre-resource-plane
            // builds, so existing run manifests don't churn.
            if let Some(spec) = &s.resources {
                h.write_usize(6);
                h.write_f64(spec.cpu_request);
                h.write_f64(spec.cpu_limit);
                h.write_usize(spec.mem_request as usize);
                h.write_usize(spec.mem_limit as usize);
            }
        }
        h.write_usize(self.classes.len());
        for c in &self.classes {
            h.write_str(&c.name);
            h.write_usize(c.priority.0 as usize);
            c.root.visit(&mut |node| {
                h.write_usize(node.service.0);
                h.write_usize(match node.mode {
                    CallMode::Sequential => 0,
                    CallMode::Parallel => 1,
                });
                for work in [&node.pre_work, &node.post_work] {
                    match work {
                        WorkDist::Constant(v) => {
                            h.write_usize(1);
                            h.write_f64(*v);
                        }
                        WorkDist::Uniform { low, high } => {
                            h.write_usize(2);
                            h.write_f64(*low);
                            h.write_f64(*high);
                        }
                        WorkDist::Exponential { mean } => {
                            h.write_usize(3);
                            h.write_f64(*mean);
                        }
                        WorkDist::LogNormal { mean, cv } => {
                            h.write_usize(4);
                            h.write_f64(*mean);
                            h.write_f64(*cv);
                        }
                        WorkDist::Pareto { x_min, alpha } => {
                            h.write_usize(5);
                            h.write_f64(*x_min);
                            h.write_f64(*alpha);
                        }
                    }
                }
                h.write_usize(node.children.len());
                for (edge, _) in &node.children {
                    h.write_usize(match edge {
                        EdgeKind::NestedRpc => 0,
                        EdgeKind::EventDrivenRpc => 1,
                        EdgeKind::Mq => 2,
                    });
                }
            });
        }
        h.finish()
    }
}

/// One parent→child call edge of a class tree, flattened with its service
/// endpoints — see [`Topology::call_edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Owning request class (dense index).
    pub class: usize,
    /// Parent hop index within the class's flat node array.
    pub parent: u16,
    /// Child hop index within the class's flat node array.
    pub child: u16,
    /// Service executing the parent hop.
    pub from: usize,
    /// Service executing the child hop.
    pub to: usize,
    /// Communication style of the edge.
    pub kind: EdgeKind,
}

/// Minimal FNV-1a hasher for structural digests (no dependencies, stable
/// across platforms — unlike `DefaultHasher`, whose output is unspecified).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        // Length-delimit so ("ab","c") never collides with ("a","bc").
        self.write_usize(s.len());
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_bytes(&(v as u64).to_le_bytes());
    }

    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> Topology {
        let services = vec![
            ServiceCfg::new("frontend", 2.0),
            ServiceCfg::new("backend", 2.0),
        ];
        let root = CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)).with_child(
            EdgeKind::NestedRpc,
            CallNode::leaf(ServiceId(1), WorkDist::Exponential { mean: 0.002 }),
        );
        let classes = vec![ClassCfg {
            name: "get".into(),
            priority: Priority::HIGH,
            root,
        }];
        Topology::new(services, classes).expect("valid")
    }

    #[test]
    fn builds_and_queries() {
        let t = two_tier();
        assert_eq!(t.num_services(), 2);
        assert_eq!(t.num_classes(), 1);
        assert_eq!(t.service_by_name("backend"), Some(ServiceId(1)));
        assert_eq!(t.class_by_name("get"), Some(ClassId(0)));
        assert_eq!(t.class_by_name("nope"), None);
        assert_eq!(t.classes()[0].root.node_count(), 2);
    }

    #[test]
    fn nodes_on_service_reports_edges() {
        let t = two_tier();
        let on_backend = t.nodes_on_service(ServiceId(1));
        assert_eq!(on_backend.len(), 1);
        assert_eq!(on_backend[0].2, Some(EdgeKind::NestedRpc));
        let on_frontend = t.nodes_on_service(ServiceId(0));
        assert_eq!(on_frontend[0].2, None);
    }

    #[test]
    fn rpc_connectivity() {
        let t = two_tier();
        assert!(t.is_rpc_connected(ServiceId(1)));
        assert!(!t.is_rpc_connected(ServiceId(0))); // root is not called via RPC
    }

    #[test]
    fn services_and_classes_cross_index() {
        let t = two_tier();
        assert_eq!(
            t.services_of_class(ClassId(0)),
            vec![ServiceId(0), ServiceId(1)]
        );
        assert_eq!(t.classes_on_service(ServiceId(1)), vec![ClassId(0)]);
    }

    #[test]
    fn rejects_unknown_service() {
        let services = vec![ServiceCfg::new("a", 1.0)];
        let classes = vec![ClassCfg {
            name: "c".into(),
            priority: Priority::HIGH,
            root: CallNode::leaf(ServiceId(3), WorkDist::Constant(0.001)),
        }];
        assert!(Topology::new(services, classes).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let services = vec![ServiceCfg::new("a", 1.0), ServiceCfg::new("a", 1.0)];
        assert!(Topology::new(services, vec![]).is_err());
    }

    #[test]
    fn rejects_bad_work_dist() {
        let services = vec![ServiceCfg::new("a", 1.0)];
        let classes = vec![ClassCfg {
            name: "c".into(),
            priority: Priority::HIGH,
            root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: -1.0 }),
        }];
        assert!(Topology::new(services, classes).is_err());
    }

    #[test]
    fn rejects_zero_replicas() {
        let services = vec![ServiceCfg::new("a", 1.0).with_replicas(0)];
        assert!(Topology::new(services, vec![]).is_err());
    }

    #[test]
    fn work_dist_sampling_nonnegative_and_mean() {
        let mut rng = Rng::seed_from(3);
        let dists = [
            WorkDist::Constant(0.01),
            WorkDist::Uniform {
                low: 0.0,
                high: 0.02,
            },
            WorkDist::Exponential { mean: 0.01 },
            WorkDist::LogNormal {
                mean: 0.01,
                cv: 1.0,
            },
            WorkDist::Pareto {
                x_min: 0.005,
                alpha: 2.0,
            },
        ];
        for d in &dists {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(mean >= 0.0);
            assert!(
                (mean - d.mean()).abs() / d.mean() < 0.15,
                "{d:?}: sampled {mean} vs {}",
                d.mean()
            );
        }
    }

    #[test]
    fn digest_is_stable_and_structure_sensitive() {
        let a = two_tier();
        let b = two_tier();
        assert_eq!(a.digest(), b.digest(), "same structure, same digest");
        assert_eq!(a.clone().digest(), a.digest(), "clone preserves digest");
        // Changing any structural knob must change the digest.
        let services = vec![
            ServiceCfg::new("frontend", 2.0),
            ServiceCfg::new("backend", 4.0), // cores differ
        ];
        let root = CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)).with_child(
            EdgeKind::NestedRpc,
            CallNode::leaf(ServiceId(1), WorkDist::Exponential { mean: 0.002 }),
        );
        let classes = vec![ClassCfg {
            name: "get".into(),
            priority: Priority::HIGH,
            root: root.clone(),
        }];
        let c = Topology::new(services, classes).unwrap();
        assert_ne!(a.digest(), c.digest(), "cores change the digest");
        let services = vec![
            ServiceCfg::new("frontend", 2.0),
            ServiceCfg::new("backend", 2.0),
        ];
        let mq_root = CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)).with_child(
            EdgeKind::Mq,
            CallNode::leaf(ServiceId(1), WorkDist::Exponential { mean: 0.002 }),
        );
        let d = Topology::new(
            services,
            vec![ClassCfg {
                name: "get".into(),
                priority: Priority::HIGH,
                root: mq_root,
            }],
        )
        .unwrap();
        assert_ne!(a.digest(), d.digest(), "edge kind changes the digest");
    }

    #[test]
    fn call_edges_and_adjacency_reflect_the_tree() {
        let t = two_tier();
        let edges = t.call_edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(
            edges[0],
            CallEdge {
                class: 0,
                parent: 0,
                child: 1,
                from: 0,
                to: 1,
                kind: EdgeKind::NestedRpc,
            }
        );
        assert_eq!(t.service_adjacency(), vec![vec![1], vec![0]]);
        assert_eq!(t.service_node_weights(), vec![1, 1]);
    }

    #[test]
    fn qos_class_derivation_follows_kubelet_rules() {
        assert_eq!(
            ResourceSpec::guaranteed(2.0, 1 << 30).qos_class(),
            QosClass::Guaranteed
        );
        assert_eq!(
            ResourceSpec::best_effort().qos_class(),
            QosClass::BestEffort
        );
        assert_eq!(
            ResourceSpec::burstable(1.0, 2.0, 1 << 29, 1 << 30).qos_class(),
            QosClass::Burstable
        );
        // Requests == limits on CPU only: still Burstable (both dimensions
        // must be fully specified for Guaranteed).
        let cpu_only = ResourceSpec {
            cpu_request: 1.0,
            cpu_limit: 1.0,
            mem_request: 0,
            mem_limit: 0,
        };
        assert_eq!(cpu_only.qos_class(), QosClass::Burstable);
        // Limit without request: Burstable.
        let limit_only = ResourceSpec {
            cpu_request: 0.0,
            cpu_limit: 2.0,
            mem_request: 0,
            mem_limit: 1 << 30,
        };
        assert_eq!(limit_only.qos_class(), QosClass::Burstable);
        // Eviction order: BestEffort evicted before Burstable before
        // Guaranteed — the Ord impl is the kubelet's priority.
        assert!(QosClass::BestEffort < QosClass::Burstable);
        assert!(QosClass::Burstable < QosClass::Guaranteed);
    }

    #[test]
    fn resource_spec_validation() {
        let bad_cpu =
            ServiceCfg::new("a", 1.0).with_resources(ResourceSpec::burstable(4.0, 2.0, 0, 0));
        assert!(Topology::new(vec![bad_cpu], vec![]).is_err());
        let bad_mem = ServiceCfg::new("a", 1.0).with_resources(ResourceSpec {
            cpu_request: 0.0,
            cpu_limit: 0.0,
            mem_request: 1 << 30,
            mem_limit: 1 << 20,
        });
        assert!(Topology::new(vec![bad_mem], vec![]).is_err());
        let ok = ServiceCfg::new("a", 1.0).with_resources(ResourceSpec::guaranteed(1.0, 1 << 28));
        assert!(Topology::new(vec![ok], vec![]).is_ok());
    }

    #[test]
    fn digest_ignores_absent_resources_but_not_present_ones() {
        let a = two_tier();
        // Attaching a spec changes the digest; leaving it off does not
        // (two_tier never sets resources, so its digest is the
        // pre-resource-plane value by construction — compare against a
        // rebuilt spec-free topology for stability).
        let with_spec = {
            let services = vec![
                ServiceCfg::new("frontend", 2.0)
                    .with_resources(ResourceSpec::guaranteed(2.0, 1 << 30)),
                ServiceCfg::new("backend", 2.0),
            ];
            let root = CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)).with_child(
                EdgeKind::NestedRpc,
                CallNode::leaf(ServiceId(1), WorkDist::Exponential { mean: 0.002 }),
            );
            Topology::new(
                services,
                vec![ClassCfg {
                    name: "get".into(),
                    priority: Priority::HIGH,
                    root,
                }],
            )
            .unwrap()
        };
        assert_ne!(a.digest(), with_spec.digest(), "spec changes the digest");
        assert_eq!(a.digest(), two_tier().digest());
    }

    #[test]
    fn call_node_builder_chains() {
        let node = CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001))
            .with_post_work(WorkDist::Constant(0.002))
            .with_mode(CallMode::Parallel)
            .with_child(
                EdgeKind::Mq,
                CallNode::leaf(ServiceId(0), WorkDist::Constant(0.003)),
            );
        assert_eq!(node.mode, CallMode::Parallel);
        assert_eq!(node.children.len(), 1);
        assert_eq!(node.node_count(), 2);
    }
}
