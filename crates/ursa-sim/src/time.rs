//! Virtual time for the discrete-event simulator.
//!
//! Time is integer nanoseconds so that event ordering is exact and runs are
//! reproducible; all public APIs also accept/produce `f64` seconds for
//! convenience.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(u64);

const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or non-finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid time {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Span since an earlier instant; saturates to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    /// The zero-length span.
    pub const ZERO: SimDur = SimDur(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }

    /// Creates a span from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or non-finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid duration {secs}");
        SimDur((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDur(secs * NANOS_PER_SEC)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDur(ms * 1_000_000)
    }

    /// Creates a span from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDur(mins * 60 * NANOS_PER_SEC)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the span by an integer factor.
    pub const fn times(self, k: u64) -> SimDur {
        SimDur(self.0 * k)
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        self.since(rhs)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(2.0) + SimDur::from_millis(500);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        let d = t - SimTime::from_secs_f64(1.0);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert_eq!(a.since(b), SimDur::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDur::from_secs(60), SimDur::from_mins(1));
        assert_eq!(SimDur::from_millis(1000), SimDur::from_secs(1));
        assert_eq!(SimDur::from_secs(2).times(3), SimDur::from_secs(6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250s");
        assert_eq!(format!("{}", SimDur::from_millis(10)), "0.010s");
    }
}
