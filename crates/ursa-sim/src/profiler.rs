//! Engine phase profiler: sampled wall-clock accounting of where one
//! `Simulation` spends its time, broken down by engine phase.
//!
//! The profiler exists to answer one question for the perf roadmap: *which
//! phase do we attack next?* It is off by default; when off it costs one
//! predictably-false branch per dispatched event and never touches the
//! simulation state or any RNG — enabling it leaves simulated output
//! bit-identical to a run without it (enforced by
//! `tests/observability_bitident.rs`).
//!
//! # How the accounting works
//!
//! Timing every hook of every event with `Instant::now()` would cost far
//! more than the phases being measured (the canonical bench cell runs at
//! ~160 ns/event, a clock read pair is a meaningful fraction of that). So
//! the profiler *samples*: every `sample_every`-th popped event is timed in
//! detail — its total dispatch wall time, plus one span per instrumented
//! leaf phase it passes through. Unsampled events pay only the countdown
//! decrement. Reported totals are scaled estimates
//! (`sampled nanos x sample_every`); with the default period and
//! bench-scale event counts (10^5..10^7 events) the breakdown is stable to
//! a few percent, which is all a "what do we optimize next" signal needs.
//!
//! Spans never nest: the outermost span a sampled event opens wins, and any
//! phase hook reached while a span is open is folded into the open span's
//! phase (e.g. the event-heap push performed inside a PS admit counts as
//! [`SimPhase::PsAdmit`]). Whatever part of a sampled event is covered by
//! no span at all lands in [`SimPhase::Other`].
//!
//! The control phase is the exception to sampling: manager decisions are
//! rare (one per control window) and already wall-clock timed by the
//! deployment driver, so their cost is fed in exactly via
//! [`PhaseProfiler::accrue_control`] and reported unscaled.

/// Engine phases distinguished by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimPhase {
    /// Event-queue pop at the head of the dispatch loop.
    QueuePop,
    /// Event-queue push (O(1) bucket append in the common case).
    QueuePush,
    /// Event-queue maintenance: stale-entry compaction and adaptive
    /// band-width rebuilds of the calendar queue.
    QueueMaint,
    /// Advancing a replica's virtual clock (`advance_to` / re-sync).
    PsAdvance,
    /// Admitting a compute phase into a PS queue (the fused hot path).
    PsAdmit,
    /// Popping due PS completions and re-arming the next check.
    PsComplete,
    /// Random draws: work sizes, network delays, source interarrivals.
    Rng,
    /// Telemetry accumulator writes (arrivals, responses, MQ depth).
    Telemetry,
    /// Chaos fault injection / recovery actuation.
    Chaos,
    /// Memory-plane scans: usage accounting, OOM-kill, eviction.
    Mem,
    /// Sharded engine: conservative-time synchronization — reading peer
    /// bounds, publishing this shard's bound, and idle spins waiting for
    /// the safe horizon to advance (exact, not sampled).
    Sync,
    /// Sharded engine: cross-shard channel traffic — draining inbound
    /// SPSC rings and pushing outbound messages (exact, not sampled).
    Channel,
    /// Resource-manager decision callbacks (exact, not sampled).
    Control,
    /// Sampled event time covered by no instrumented span.
    Other,
}

/// Number of [`SimPhase`] variants.
pub const PHASE_COUNT: usize = 14;

impl SimPhase {
    /// All phases, in reporting order.
    pub const ALL: [SimPhase; PHASE_COUNT] = [
        SimPhase::QueuePop,
        SimPhase::QueuePush,
        SimPhase::QueueMaint,
        SimPhase::PsAdvance,
        SimPhase::PsAdmit,
        SimPhase::PsComplete,
        SimPhase::Rng,
        SimPhase::Telemetry,
        SimPhase::Chaos,
        SimPhase::Mem,
        SimPhase::Sync,
        SimPhase::Channel,
        SimPhase::Control,
        SimPhase::Other,
    ];

    /// True for phases whose time is fed in exactly (wall-clock timed at
    /// the call site) rather than sampled: control callbacks and the
    /// sharded engine's sync/channel accounting, all of which live outside
    /// the per-event dispatch loop the sampler covers.
    pub fn is_exact(&self) -> bool {
        matches!(self, SimPhase::Control | SimPhase::Sync | SimPhase::Channel)
    }

    /// Stable snake_case identifier (used in `BENCH_sim.json` v6).
    pub fn label(&self) -> &'static str {
        match self {
            SimPhase::QueuePop => "queue_pop",
            SimPhase::QueuePush => "queue_push",
            SimPhase::QueueMaint => "queue_maint",
            SimPhase::PsAdvance => "ps_advance",
            SimPhase::PsAdmit => "ps_admit",
            SimPhase::PsComplete => "ps_complete",
            SimPhase::Rng => "rng",
            SimPhase::Telemetry => "telemetry",
            SimPhase::Chaos => "chaos",
            SimPhase::Mem => "mem",
            SimPhase::Sync => "sync",
            SimPhase::Channel => "channel",
            SimPhase::Control => "control",
            SimPhase::Other => "other",
        }
    }
}

/// One phase's line in a [`ProfilerReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStat {
    /// The phase.
    pub phase: SimPhase,
    /// Estimated total nanoseconds spent in the phase over the run
    /// (sampled nanos scaled by the sampling period; exact for
    /// [`SimPhase::Control`]).
    pub est_nanos: f64,
    /// Fraction of the estimated total across all phases, in `[0, 1]`.
    pub share: f64,
    /// Spans accrued (sampled-event spans; control callbacks for
    /// [`SimPhase::Control`]).
    pub count: u64,
}

/// A finished profile: per-phase estimated time shares.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerReport {
    /// Events popped while the profiler was installed.
    pub events_seen: u64,
    /// Events timed in detail.
    pub events_sampled: u64,
    /// Sampling period (every N-th event is timed).
    pub sample_every: u32,
    /// Per-phase stats in [`SimPhase::ALL`] order; phases with zero time
    /// are included so consumers see a fixed-shape table.
    pub phases: Vec<PhaseStat>,
}

impl ProfilerReport {
    /// Estimated nanoseconds per popped event attributed to `phase`.
    pub fn ns_per_event(&self, phase: SimPhase) -> f64 {
        if self.events_seen == 0 {
            return 0.0;
        }
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map_or(0.0, |p| p.est_nanos / self.events_seen as f64)
    }
}

/// Sampled per-phase wall-clock accounting for one `Simulation`.
///
/// Installed via `Simulation::enable_profiler`; the engine drives it from
/// the dispatch loop. All methods are branch-cheap; none touch simulation
/// state.
#[derive(Debug)]
pub struct PhaseProfiler {
    sample_every: u32,
    /// Events until the next sampled one (counts down to 0).
    countdown: u32,
    events_seen: u64,
    events_sampled: u64,
    /// Leaf-span nanos accrued within the event currently being sampled,
    /// used to derive the uninstrumented remainder ([`SimPhase::Other`]).
    leaf_in_event: u64,
    nanos: [u64; PHASE_COUNT],
    counts: [u64; PHASE_COUNT],
}

impl PhaseProfiler {
    /// Default sampling period: detailed timing every 256th event keeps
    /// measured overhead well under the 2 % budget on the bench cells
    /// while still sampling thousands of events per cell.
    pub const DEFAULT_SAMPLE_EVERY: u32 = 256;

    /// Creates a profiler timing every `sample_every`-th event.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn new(sample_every: u32) -> Self {
        assert!(sample_every > 0, "sampling period must be positive");
        PhaseProfiler {
            sample_every,
            countdown: sample_every,
            events_seen: 0,
            events_sampled: 0,
            leaf_in_event: 0,
            nanos: [0; PHASE_COUNT],
            counts: [0; PHASE_COUNT],
        }
    }

    /// The sampling period this profiler was built with.
    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// Advances the event counter; returns `true` when this event should
    /// be timed in detail.
    #[inline]
    pub(crate) fn event_tick(&mut self) -> bool {
        self.events_seen += 1;
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.sample_every;
            self.events_sampled += 1;
            self.leaf_in_event = 0;
            true
        } else {
            false
        }
    }

    /// Accrues one closed leaf span of a sampled event.
    #[inline]
    pub(crate) fn accrue(&mut self, phase: SimPhase, nanos: u64) {
        let i = phase as usize;
        self.nanos[i] += nanos;
        self.counts[i] += 1;
        self.leaf_in_event += nanos;
    }

    /// Closes a sampled event: `total` is its full dispatch wall time,
    /// `queue_pop` the pop portion. (Bucket promotions triggered by the
    /// pre-dispatch peek run before the sampling window opens and are not
    /// attributed — an accepted undercount of `queue_pop`.) The remainder
    /// not covered by any leaf span is booked as [`SimPhase::Other`].
    #[inline]
    pub(crate) fn event_done(&mut self, total: u64, queue_pop: u64) {
        self.accrue(SimPhase::QueuePop, queue_pop);
        let covered = self.leaf_in_event;
        let other = total.saturating_sub(covered);
        self.nanos[SimPhase::Other as usize] += other;
        self.counts[SimPhase::Other as usize] += 1;
    }

    /// Accrues exact (unsampled) control-callback time.
    #[inline]
    pub(crate) fn accrue_control(&mut self, nanos: u64) {
        self.accrue_exact(SimPhase::Control, nanos);
    }

    /// Accrues exact (unsampled) time to an [`is_exact`](SimPhase::is_exact)
    /// phase — the sharded worker loop times its sync and channel work
    /// directly instead of going through the event sampler.
    #[inline]
    pub(crate) fn accrue_exact(&mut self, phase: SimPhase, nanos: u64) {
        debug_assert!(phase.is_exact(), "accrue_exact on sampled phase");
        self.nanos[phase as usize] += nanos;
        self.counts[phase as usize] += 1;
    }

    /// Folds another profiler's accumulators into this one — the merge the
    /// sharded facade performs over per-shard profilers at report time.
    /// Periods must match (the facade installs the same `sample_every` on
    /// every shard).
    pub fn absorb(&mut self, other: &PhaseProfiler) {
        assert_eq!(
            self.sample_every, other.sample_every,
            "cannot merge profilers with different sampling periods"
        );
        self.events_seen += other.events_seen;
        self.events_sampled += other.events_sampled;
        for i in 0..PHASE_COUNT {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Events popped while the profiler was installed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Events timed in detail.
    pub fn events_sampled(&self) -> u64 {
        self.events_sampled
    }

    /// Builds the report: sampled phases scaled to run totals, control
    /// exact, shares normalized over the estimated grand total.
    pub fn report(&self) -> ProfilerReport {
        let scale = self.sample_every as f64;
        let est = |phase: SimPhase| -> f64 {
            let raw = self.nanos[phase as usize] as f64;
            if phase.is_exact() {
                raw
            } else {
                raw * scale
            }
        };
        let total: f64 = SimPhase::ALL.iter().map(|&p| est(p)).sum();
        let phases = SimPhase::ALL
            .iter()
            .map(|&phase| {
                let est_nanos = est(phase);
                PhaseStat {
                    phase,
                    est_nanos,
                    share: if total > 0.0 { est_nanos / total } else { 0.0 },
                    count: self.counts[phase as usize],
                }
            })
            .collect();
        ProfilerReport {
            events_seen: self.events_seen,
            events_sampled: self.events_sampled,
            sample_every: self.sample_every,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_period_is_honored() {
        let mut p = PhaseProfiler::new(4);
        let sampled = (0..100).filter(|_| p.event_tick()).count();
        assert_eq!(sampled, 25);
        assert_eq!(p.events_seen(), 100);
        assert_eq!(p.events_sampled(), 25);
    }

    #[test]
    fn report_scales_sampled_phases_and_keeps_control_exact() {
        let mut p = PhaseProfiler::new(10);
        assert!(!p.event_tick()); // 9 to go
        for _ in 0..8 {
            assert!(!p.event_tick());
        }
        assert!(p.event_tick()); // the 10th is sampled
        p.accrue(SimPhase::PsAdmit, 100);
        p.event_done(300, 50); // 150 uncovered -> Other
        p.accrue_control(1_000);
        let r = p.report();
        let by = |ph: SimPhase| r.phases.iter().find(|s| s.phase == ph).unwrap();
        assert_eq!(by(SimPhase::PsAdmit).est_nanos, 1_000.0);
        assert_eq!(by(SimPhase::QueuePop).est_nanos, 500.0);
        assert_eq!(by(SimPhase::Other).est_nanos, 1_500.0);
        assert_eq!(by(SimPhase::Control).est_nanos, 1_000.0);
        let total: f64 = r.phases.iter().map(|s| s.est_nanos).sum();
        assert_eq!(total, 4_000.0);
        let share_sum: f64 = r.phases.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        assert!(r.ns_per_event(SimPhase::PsAdmit) > 0.0);
    }

    #[test]
    fn empty_report_has_fixed_shape() {
        let p = PhaseProfiler::new(64);
        let r = p.report();
        assert_eq!(r.phases.len(), PHASE_COUNT);
        assert!(r.phases.iter().all(|s| s.share == 0.0));
        assert_eq!(r.ns_per_event(SimPhase::QueuePop), 0.0);
    }

    #[test]
    #[should_panic(expected = "sampling period")]
    fn rejects_zero_period() {
        PhaseProfiler::new(0);
    }

    #[test]
    fn sync_and_channel_are_exact_and_absorb_merges() {
        let mut a = PhaseProfiler::new(8);
        a.accrue_exact(SimPhase::Sync, 500);
        a.accrue_exact(SimPhase::Channel, 200);
        let mut b = PhaseProfiler::new(8);
        b.accrue_exact(SimPhase::Sync, 300);
        for _ in 0..8 {
            b.event_tick();
        }
        b.accrue(SimPhase::Rng, 10);
        b.event_done(40, 5);
        a.absorb(&b);
        let r = a.report();
        let by = |ph: SimPhase| r.phases.iter().find(|s| s.phase == ph).unwrap();
        // Exact phases are reported unscaled; sampled phases scale by the
        // period.
        assert_eq!(by(SimPhase::Sync).est_nanos, 800.0);
        assert_eq!(by(SimPhase::Channel).est_nanos, 200.0);
        assert_eq!(by(SimPhase::Rng).est_nanos, 80.0);
        assert_eq!(r.events_seen, 8);
    }

    #[test]
    #[should_panic(expected = "different sampling periods")]
    fn absorb_rejects_mismatched_periods() {
        let mut a = PhaseProfiler::new(8);
        let b = PhaseProfiler::new(16);
        a.absorb(&b);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            SimPhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PHASE_COUNT);
    }
}
