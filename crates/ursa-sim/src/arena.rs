//! Generational arena for in-flight requests, laid out struct-of-arrays.
//!
//! The engine keeps one record per in-flight request (class, arrival time,
//! response count) plus one record per *hop* of that request (phase, queue
//! timestamps, replica assignment, …). The previous layout boxed each
//! request's hop records in a recycled `Vec<NodeRt>` behind an
//! `Option<RequestRt>`: every hop access paid an `Option` check, a pointer
//! chase into a separately-allocated vector, and a ~100-byte struct stride.
//!
//! Here both levels live flat:
//!
//! * **Slot records** — one packed 32-byte record per request slot
//!   (everything `alloc`/`release` touches sits in one cache line),
//!   recycled LIFO through `free` (the exact free-list discipline of the
//!   old layout, so slot IDs — which feed the tracer and flight recorder
//!   — are bit-identical).
//! * **Node arrays** — one entry per hop, public so the engine's hot path
//!   indexes them directly. Each slot owns a contiguous region
//!   `[node_base, node_base + num_nodes)`; regions are carved once and
//!   only re-carved when a slot is reused for a *larger* call tree (caps
//!   grow monotonically, so the orphaned-region leak is bounded by the
//!   number of distinct tree sizes). Reusing a region is a handful of
//!   `slice::fill` sweeps over primitive arrays — branch-free and
//!   auto-vectorizable, where the old layout cloned a `NodeRt` per hop.
//!
//! Stale-token protection is generational: [`release`](ReqArena::release)
//! bumps the slot's generation, so a token minted for a completed request
//! can never alias its slot's next tenant. [`node_index`](ReqArena::node_index)
//! asserts the generation match under `debug_assertions` — CI runs the
//! differential proptests in a debug profile precisely so misuse panics
//! there instead of corrupting a release run.

use crate::time::{SimDur, SimTime};

/// Sentinel for [`ReqArena::daemon_of`]: this hop frees no daemon.
pub const NO_DAEMON: u64 = u64::MAX;

/// Lifecycle phase of one hop of an in-flight request.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Queued,
    Pre,
    Issuing,
    BlockedDaemon,
    Waiting,
    Post,
    Responded,
}

/// Packed per-request record: one cache line covers everything the
/// alloc/release path and the per-request accessors read.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    arrival: SimTime,
    class: u32,
    gen: u32,
    node_base: u32,
    num_nodes: u16,
    node_cap: u16,
    responded: u16,
    traced: bool,
}

/// Arena of request slots (packed records) and their hop state (SoA).
#[derive(Debug, Default)]
pub struct ReqArena {
    slots: Vec<SlotMeta>,
    /// LIFO free list — must stay LIFO: slot assignment order is part of
    /// the engine's bit-identical-output contract (trace/recorder IDs).
    free: Vec<u32>,

    // ---- per-node (hop) arrays, indexed via `node_index` --------------
    pub phase: Vec<Phase>,
    pub enqueue_at: Vec<SimTime>,
    pub nested_wait: Vec<SimDur>,
    pub wait_start: Vec<SimTime>,
    pub awaiting: Vec<u16>,
    pub next_child: Vec<u16>,
    pub replica: Vec<u32>,
    /// Replica whose daemon pool this hop's response frees, packed as
    /// `(service << 32) | replica`; [`NO_DAEMON`] when none.
    pub daemon_of: Vec<u64>,
}

impl ReqArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot for a new request and resets its node region.
    /// Returns the slot ID; read the matching generation with [`gen`](Self::gen).
    pub fn alloc(&mut self, class: u32, arrival: SimTime, num_nodes: u16, traced: bool) -> u32 {
        match self.free.pop() {
            Some(s) => {
                let si = s as usize;
                let m = &mut self.slots[si];
                m.class = class;
                m.arrival = arrival;
                m.responded = 0;
                m.num_nodes = num_nodes;
                m.traced = traced;
                if m.node_cap < num_nodes {
                    // Larger call tree than this slot ever held: carve a
                    // fresh region at the end (caps only grow).
                    m.node_base = self.phase.len() as u32;
                    m.node_cap = num_nodes;
                    self.grow_nodes(num_nodes as usize);
                } else {
                    let base = m.node_base as usize;
                    self.reset_nodes(base, num_nodes as usize);
                }
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(SlotMeta {
                    arrival,
                    class,
                    gen: 0,
                    node_base: self.phase.len() as u32,
                    num_nodes,
                    node_cap: num_nodes,
                    responded: 0,
                    traced,
                });
                self.grow_nodes(num_nodes as usize);
                s
            }
        }
    }

    /// Frees a slot: bumps its generation (invalidating every outstanding
    /// token) and returns it to the LIFO free list.
    pub fn release(&mut self, slot: u32) {
        let si = slot as usize;
        self.slots[si].gen = self.slots[si].gen.wrapping_add(1);
        self.free.push(slot);
    }

    /// True iff `gen` is the slot's current generation. The generation is
    /// bumped exactly when a slot is freed, so a match implies the token's
    /// request is still in flight.
    #[inline]
    pub fn alive(&self, slot: u32, gen: u32) -> bool {
        matches!(self.slots.get(slot as usize), Some(m) if m.gen == gen)
    }

    #[inline]
    pub fn gen(&self, slot: u32) -> u32 {
        self.slots[slot as usize].gen
    }

    #[inline]
    pub fn class(&self, slot: u32) -> usize {
        self.slots[slot as usize].class as usize
    }

    #[inline]
    pub fn arrival(&self, slot: u32) -> SimTime {
        self.slots[slot as usize].arrival
    }

    #[inline]
    pub fn traced(&self, slot: u32) -> bool {
        self.slots[slot as usize].traced
    }

    #[inline]
    pub fn num_nodes(&self, slot: u32) -> u16 {
        self.slots[slot as usize].num_nodes
    }

    /// Counts one hop response; true when every hop has now responded.
    #[inline]
    pub fn respond_one(&mut self, slot: u32) -> bool {
        let m = &mut self.slots[slot as usize];
        m.responded += 1;
        m.responded == m.num_nodes
    }

    /// Declares that only `expected` responses will arrive for this slot
    /// (the sharded engine's fragment slots: a fragment executes a subset
    /// of the class tree locally plus one counted notification per
    /// cross-shard child edge). Implemented by pre-biasing the response
    /// counter so [`respond_one`](Self::respond_one) still completes at
    /// `num_nodes` — no extra per-slot field, no hot-path change.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `expected` exceeds the slot's node count or any
    /// responses were already counted.
    #[inline]
    pub fn set_expected_responses(&mut self, slot: u32, expected: u16) {
        let m = &mut self.slots[slot as usize];
        debug_assert_eq!(m.responded, 0, "expected-count set after responses");
        debug_assert!(expected >= 1 && expected <= m.num_nodes);
        m.responded = m.num_nodes - expected;
    }

    /// Index of hop `node` of the request in `slot` into the node arrays.
    ///
    /// The generation check is the arena's safety net: with debug
    /// assertions on, presenting a stale token panics instead of silently
    /// reading the slot's next tenant.
    #[inline]
    pub fn node_index(&self, slot: u32, gen: u32, node: u16) -> usize {
        let m = &self.slots[slot as usize];
        debug_assert_eq!(
            m.gen, gen,
            "generational index misuse: stale token for slot {slot}"
        );
        debug_assert!(
            node < m.num_nodes,
            "node {node} out of range for slot {slot} ({} nodes)",
            m.num_nodes
        );
        m.node_base as usize + node as usize
    }

    /// High-water mark of request slots ever allocated.
    pub fn slots_high_water(&self) -> usize {
        self.slots.len()
    }

    /// High-water mark of hop records ever carved (including regions
    /// orphaned by cap growth).
    pub fn nodes_high_water(&self) -> usize {
        self.phase.len()
    }

    fn grow_nodes(&mut self, n: usize) {
        let new_len = self.phase.len() + n;
        self.phase.resize(new_len, Phase::Queued);
        self.enqueue_at.resize(new_len, SimTime::ZERO);
        self.nested_wait.resize(new_len, SimDur::ZERO);
        self.wait_start.resize(new_len, SimTime::ZERO);
        self.awaiting.resize(new_len, 0);
        self.next_child.resize(new_len, 0);
        self.replica.resize(new_len, 0);
        self.daemon_of.resize(new_len, NO_DAEMON);
    }

    /// Resets a reused node region to the fresh-hop state — the SoA sweep:
    /// eight contiguous primitive fills instead of a per-hop struct clone.
    fn reset_nodes(&mut self, base: usize, n: usize) {
        let end = base + n;
        self.phase[base..end].fill(Phase::Queued);
        self.enqueue_at[base..end].fill(SimTime::ZERO);
        self.nested_wait[base..end].fill(SimDur::ZERO);
        self.wait_start[base..end].fill(SimTime::ZERO);
        self.awaiting[base..end].fill(0);
        self.next_child[base..end].fill(0);
        self.replica[base..end].fill(0);
        self.daemon_of[base..end].fill(NO_DAEMON);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_lifo_and_generational() {
        let mut a = ReqArena::new();
        let s0 = a.alloc(0, SimTime::ZERO, 2, false);
        let s1 = a.alloc(1, SimTime::ZERO, 2, false);
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(a.gen(s0), 0);
        assert!(a.alive(s0, 0));
        a.release(s0);
        assert!(!a.alive(s0, 0), "released slot invalidates old tokens");
        // LIFO: the freed slot is handed out next, same generation.
        let s2 = a.alloc(7, SimTime::ZERO, 1, true);
        assert_eq!(s2, s0);
        assert_eq!(a.gen(s2), 1);
        assert!(a.alive(s2, 1));
        assert_eq!(a.class(s2), 7);
        assert!(a.traced(s2));
    }

    #[test]
    fn node_regions_reset_on_reuse() {
        let mut a = ReqArena::new();
        let s = a.alloc(0, SimTime::ZERO, 3, false);
        let g = a.gen(s);
        let i = a.node_index(s, g, 1);
        a.phase[i] = Phase::Post;
        a.awaiting[i] = 5;
        a.daemon_of[i] = 42;
        a.release(s);
        let s2 = a.alloc(0, SimTime::ZERO, 3, false);
        assert_eq!(s2, s, "same slot, same region");
        let i2 = a.node_index(s2, a.gen(s2), 1);
        assert_eq!(i2, i);
        assert_eq!(a.phase[i2], Phase::Queued);
        assert_eq!(a.awaiting[i2], 0);
        assert_eq!(a.daemon_of[i2], NO_DAEMON);
    }

    #[test]
    fn node_region_grows_when_reused_larger() {
        let mut a = ReqArena::new();
        let s = a.alloc(0, SimTime::ZERO, 2, false);
        let old_base = a.node_index(s, a.gen(s), 0);
        a.release(s);
        let s2 = a.alloc(0, SimTime::ZERO, 8, false);
        assert_eq!(s2, s);
        let new_base = a.node_index(s2, a.gen(s2), 0);
        assert!(new_base > old_base, "larger tree gets a fresh region");
        assert_eq!(a.nodes_high_water(), 10);
        // Shrinking reuses the (larger) existing region.
        a.release(s2);
        let s3 = a.alloc(0, SimTime::ZERO, 4, false);
        assert_eq!(a.node_index(s3, a.gen(s3), 0), new_base);
        assert_eq!(a.nodes_high_water(), 10);
    }

    #[test]
    fn respond_one_counts_to_completion() {
        let mut a = ReqArena::new();
        let s = a.alloc(0, SimTime::ZERO, 2, false);
        assert!(!a.respond_one(s));
        assert!(a.respond_one(s));
    }

    #[test]
    fn expected_responses_pre_bias_completes_early() {
        let mut a = ReqArena::new();
        let s = a.alloc(0, SimTime::ZERO, 5, false);
        a.set_expected_responses(s, 2);
        assert!(!a.respond_one(s));
        assert!(a.respond_one(s), "completes after the expected 2 of 5");
    }

    #[test]
    fn high_water_marks_track_allocation() {
        let mut a = ReqArena::new();
        for _ in 0..4 {
            let s = a.alloc(0, SimTime::ZERO, 2, false);
            a.release(s);
        }
        assert_eq!(a.slots_high_water(), 1, "LIFO reuse keeps one slot");
        let keep: Vec<u32> = (0..3)
            .map(|_| a.alloc(0, SimTime::ZERO, 2, false))
            .collect();
        assert_eq!(a.slots_high_water(), 3);
        assert_eq!(a.nodes_high_water(), 6);
        for s in keep {
            a.release(s);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "generational index misuse")]
    fn stale_token_panics_in_debug() {
        let mut a = ReqArena::new();
        let s = a.alloc(0, SimTime::ZERO, 1, false);
        let g = a.gen(s);
        a.release(s);
        a.alloc(0, SimTime::ZERO, 1, false);
        let _ = a.node_index(s, g, 0);
    }
}
