//! Cluster capacity model: machines, replica placement, and a
//! capacity-constrained control plane.
//!
//! The paper deploys on a local Kubernetes cluster of 8 machines with
//! 40–88 CPUs each, using the static CPU-manager policy (exclusive integer
//! cores per container). This module reproduces that layer: replicas are
//! *placed* on machines with a bin-packing policy, total placement never
//! exceeds machine capacity, and a [`CappedControlPlane`] wrapper lets any
//! resource manager run under a finite cluster, with scale-outs clamped to
//! what fits.

use crate::control::ControlPlane;
use crate::topology::ServiceId;

/// A physical machine's capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCfg {
    /// Machine name.
    pub name: String,
    /// Allocatable CPU cores.
    pub cores: f64,
    /// Allocatable memory in bytes. `0` means memory is not modeled on
    /// this machine (the pre-resource-plane CPU-only cluster): memory
    /// requests always fit and never influence placement scores.
    pub mem_bytes: u64,
}

impl MachineCfg {
    /// A CPU-only machine (memory unmodeled).
    pub fn new(name: impl Into<String>, cores: f64) -> Self {
        MachineCfg {
            name: name.into(),
            cores,
            mem_bytes: 0,
        }
    }

    /// Sets the allocatable memory, returning `self` for chaining.
    pub fn with_mem(mut self, mem_bytes: u64) -> Self {
        self.mem_bytes = mem_bytes;
        self
    }
}

/// Replica placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Pack the machine with the least remaining capacity that still fits
    /// (minimizes fragmentation — Kubernetes' `MostAllocated` flavour).
    #[default]
    BestFit,
    /// Spread onto the machine with the most remaining capacity
    /// (`LeastAllocated`).
    WorstFit,
}

/// One placed replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The service the replica belongs to.
    pub service: ServiceId,
    /// Machine index.
    pub machine: usize,
    /// Cores reserved on the machine.
    pub cores: f64,
    /// Memory reserved on the machine in bytes (0 for CPU-only placements).
    pub mem_bytes: u64,
}

/// Error returned when a placement does not fit anywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityError {
    /// Cores requested.
    pub requested: f64,
    /// Largest free block available.
    pub largest_free: f64,
    /// Memory requested in bytes (0 for CPU-only placements).
    pub requested_mem: u64,
}

impl core::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "no machine fits {} cores (largest free block {})",
            self.requested, self.largest_free
        )
    }
}

impl std::error::Error for CapacityError {}

/// A cluster of machines with tracked placements.
#[derive(Debug, Clone)]
pub struct Cluster {
    machines: Vec<MachineCfg>,
    used: Vec<f64>,
    mem_used: Vec<u64>,
    placements: Vec<Placement>,
    policy: PlacementPolicy,
}

impl Cluster {
    /// Creates a cluster from machine configurations.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is empty or any capacity is non-positive.
    pub fn new(machines: Vec<MachineCfg>, policy: PlacementPolicy) -> Self {
        assert!(!machines.is_empty(), "cluster needs machines");
        assert!(
            machines.iter().all(|m| m.cores > 0.0),
            "non-positive capacity"
        );
        let used = vec![0.0; machines.len()];
        let mem_used = vec![0; machines.len()];
        Cluster {
            machines,
            used,
            mem_used,
            placements: Vec::new(),
            policy,
        }
    }

    /// The paper's testbed: 8 machines, 40–88 cores each (§VII-A).
    pub fn paper_testbed() -> Self {
        let cores = [88.0, 80.0, 64.0, 64.0, 48.0, 48.0, 40.0, 40.0];
        Cluster::new(
            cores
                .iter()
                .enumerate()
                .map(|(i, &c)| MachineCfg::new(format!("node{i}"), c))
                .collect(),
            PlacementPolicy::BestFit,
        )
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total allocatable cores.
    pub fn total_cores(&self) -> f64 {
        self.machines.iter().map(|m| m.cores).sum()
    }

    /// Cores currently reserved across machines.
    pub fn used_cores(&self) -> f64 {
        self.used.iter().sum()
    }

    /// Free cores on the fullest-fitting machine for a request of `cores`.
    pub fn largest_free(&self) -> f64 {
        self.machines
            .iter()
            .zip(&self.used)
            .map(|(m, u)| m.cores - u)
            .fold(0.0, f64::max)
    }

    /// Current placements (replicas → machines).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Replica count of a service.
    pub fn replicas_of(&self, service: ServiceId) -> usize {
        self.placements
            .iter()
            .filter(|p| p.service == service)
            .count()
    }

    /// Places one replica of `service` needing `cores` (CPU-only: memory
    /// request 0, which always fits).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if no machine has room.
    pub fn place(&mut self, service: ServiceId, cores: f64) -> Result<usize, CapacityError> {
        self.place_2d(service, cores, 0)
    }

    /// Places one replica of `service` needing `cores` CPU and `mem_bytes`
    /// memory.
    ///
    /// Placement scores are deterministic: a CPU-only request (memory 0)
    /// scores on absolute free cores exactly as the pre-memory cluster
    /// did, while a two-dimensional request scores on the mean free
    /// *fraction* across both dimensions after placement (the
    /// Kubernetes `LeastAllocated`/`MostAllocated` shape). Score ties
    /// always break toward the lowest machine index under both policies.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if no machine fits both dimensions.
    pub fn place_2d(
        &mut self,
        service: ServiceId,
        cores: f64,
        mem_bytes: u64,
    ) -> Result<usize, CapacityError> {
        let mut chosen: Option<(usize, f64)> = None;
        for (i, m) in self.machines.iter().enumerate() {
            let cpu_free = m.cores - self.used[i];
            if cpu_free < cores - 1e-9 {
                continue;
            }
            // A machine with mem_bytes == 0 doesn't model memory: any
            // memory request fits and memory never enters its score.
            let mem_modeled = m.mem_bytes > 0;
            if mem_modeled && m.mem_bytes - self.mem_used[i] < mem_bytes {
                continue;
            }
            let score = if mem_bytes > 0 && mem_modeled {
                let cpu_frac = (cpu_free - cores) / m.cores;
                let mem_frac =
                    (m.mem_bytes - self.mem_used[i] - mem_bytes) as f64 / m.mem_bytes as f64;
                0.5 * (cpu_frac + mem_frac)
            } else {
                cpu_free
            };
            // Strict comparisons on both policies: on a score tie the
            // earlier (lower-index) machine wins. `min_by`/`max_by` had
            // asymmetric tie handling (first vs last match), which made
            // WorstFit placement order depend on iteration direction.
            let better = match (&chosen, self.policy) {
                (None, _) => true,
                (Some((_, best)), PlacementPolicy::BestFit) => score < *best,
                (Some((_, best)), PlacementPolicy::WorstFit) => score > *best,
            };
            if better {
                chosen = Some((i, score));
            }
        }
        match chosen {
            Some((machine, _)) => {
                self.used[machine] += cores;
                self.mem_used[machine] += mem_bytes;
                self.placements.push(Placement {
                    service,
                    machine,
                    cores,
                    mem_bytes,
                });
                Ok(machine)
            }
            None => Err(CapacityError {
                requested: cores,
                largest_free: self.largest_free(),
                requested_mem: mem_bytes,
            }),
        }
    }

    /// Evicts one replica of `service` (the most recently placed), freeing
    /// its machine reservation. Returns false if none was placed.
    pub fn evict(&mut self, service: ServiceId) -> bool {
        if let Some(idx) = self.placements.iter().rposition(|p| p.service == service) {
            let p = self.placements.remove(idx);
            self.used[p.machine] -= p.cores;
            self.mem_used[p.machine] -= p.mem_bytes;
            true
        } else {
            false
        }
    }

    /// Per-machine utilization of reservations in `[0, 1]`.
    pub fn machine_utilization(&self) -> Vec<f64> {
        self.machines
            .iter()
            .zip(&self.used)
            .map(|(m, u)| u / m.cores)
            .collect()
    }

    /// Total allocatable memory in bytes across modeled machines.
    pub fn total_mem_bytes(&self) -> u64 {
        self.machines.iter().map(|m| m.mem_bytes).sum()
    }

    /// Memory currently reserved across machines, in bytes.
    pub fn used_mem_bytes(&self) -> u64 {
        self.mem_used.iter().sum()
    }

    /// Per-machine memory utilization of reservations in `[0, 1]`
    /// (0 for machines that don't model memory).
    pub fn machine_mem_utilization(&self) -> Vec<f64> {
        self.machines
            .iter()
            .zip(&self.mem_used)
            .map(|(m, &u)| {
                if m.mem_bytes > 0 {
                    u as f64 / m.mem_bytes as f64
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// A control plane wrapper that enforces cluster capacity: scale-outs are
/// clamped to the replicas that actually fit, scale-ins free machine
/// reservations.
#[derive(Debug)]
pub struct CappedControlPlane<'a, C: ControlPlane> {
    inner: &'a mut C,
    cluster: &'a mut Cluster,
    /// Scale-out requests denied (fully or partially) by capacity.
    pub denials: u64,
}

impl<'a, C: ControlPlane> CappedControlPlane<'a, C> {
    /// Wraps `inner`, syncing the cluster to the current replica counts.
    ///
    /// # Panics
    ///
    /// Panics if the current allocation already exceeds cluster capacity.
    pub fn new(inner: &'a mut C, cluster: &'a mut Cluster) -> Self {
        for s in 0..inner.num_services() {
            let sid = ServiceId(s);
            let want = inner.replicas(sid);
            let cores = inner.cpu_limit(sid);
            while cluster.replicas_of(sid) < want {
                cluster
                    .place(sid, cores)
                    .expect("initial allocation must fit the cluster");
            }
        }
        CappedControlPlane {
            inner,
            cluster,
            denials: 0,
        }
    }
}

impl<C: ControlPlane> ControlPlane for CappedControlPlane<'_, C> {
    fn now(&self) -> crate::time::SimTime {
        self.inner.now()
    }
    fn num_services(&self) -> usize {
        self.inner.num_services()
    }
    fn service_name(&self, service: ServiceId) -> String {
        self.inner.service_name(service)
    }
    fn replicas(&self, service: ServiceId) -> usize {
        self.inner.replicas(service)
    }
    fn set_replicas(&mut self, service: ServiceId, n: usize) {
        let cores = self.inner.cpu_limit(service);
        let current = self.cluster.replicas_of(service);
        if n > current {
            let mut placed = current;
            while placed < n {
                match self.cluster.place(service, cores) {
                    Ok(_) => placed += 1,
                    Err(_) => {
                        self.denials += 1;
                        break;
                    }
                }
            }
            self.inner.set_replicas(service, placed);
        } else if n < current {
            for _ in n..current {
                self.cluster.evict(service);
            }
            self.inner.set_replicas(service, n.max(1));
        }
    }
    fn cpu_limit(&self, service: ServiceId) -> f64 {
        self.inner.cpu_limit(service)
    }
    fn set_cpu_limit(&mut self, service: ServiceId, cores: f64) {
        self.inner.set_cpu_limit(service, cores);
    }
    fn total_allocated_cores(&self) -> f64 {
        self.inner.total_allocated_cores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use crate::topology::{CallNode, ClassCfg, Priority, ServiceCfg, Topology, WorkDist};

    fn small_cluster() -> Cluster {
        Cluster::new(
            vec![MachineCfg::new("a", 8.0), MachineCfg::new("b", 4.0)],
            PlacementPolicy::BestFit,
        )
    }

    #[test]
    fn paper_testbed_shape() {
        let c = Cluster::paper_testbed();
        assert_eq!(c.num_machines(), 8);
        assert_eq!(c.total_cores(), 472.0);
        assert_eq!(c.used_cores(), 0.0);
    }

    #[test]
    fn best_fit_packs_tightest() {
        let mut c = small_cluster();
        // 4-core request: best fit is the 4-core machine (index 1).
        let m = c.place(ServiceId(0), 4.0).unwrap();
        assert_eq!(m, 1);
        // Next 4-core request must go to the big machine.
        let m = c.place(ServiceId(0), 4.0).unwrap();
        assert_eq!(m, 0);
    }

    #[test]
    fn worst_fit_spreads() {
        let mut c = Cluster::new(
            vec![MachineCfg::new("a", 8.0), MachineCfg::new("b", 4.0)],
            PlacementPolicy::WorstFit,
        );
        assert_eq!(c.place(ServiceId(0), 2.0).unwrap(), 0);
        assert_eq!(c.place(ServiceId(0), 2.0).unwrap(), 0); // 6 free > 4 free
                                                            // 4 free == 4 free: ties break toward the lowest machine index.
        assert_eq!(c.place(ServiceId(0), 2.0).unwrap(), 0);
    }

    #[test]
    fn score_ties_break_by_machine_index() {
        // Four identical machines: every placement scores a four-way tie,
        // so the order is pinned — fill machine 0, then 1, then 2, then 3,
        // under *both* policies. (Before the explicit tie-break, WorstFit
        // kept the *last* maximal machine while BestFit kept the first.)
        for policy in [PlacementPolicy::BestFit, PlacementPolicy::WorstFit] {
            let mut c = Cluster::new(
                (0..4)
                    .map(|i| MachineCfg::new(format!("m{i}"), 4.0))
                    .collect(),
                policy,
            );
            assert_eq!(c.place(ServiceId(0), 4.0).unwrap(), 0, "{policy:?}");
            assert_eq!(c.place(ServiceId(0), 4.0).unwrap(), 1, "{policy:?}");
            assert_eq!(c.place(ServiceId(0), 4.0).unwrap(), 2, "{policy:?}");
            assert_eq!(c.place(ServiceId(0), 4.0).unwrap(), 3, "{policy:?}");
            assert!(c.place(ServiceId(0), 4.0).is_err());
        }
        // Same pin for 2-D placements on identical (cores, mem) machines.
        let mut c = Cluster::new(
            (0..3)
                .map(|i| MachineCfg::new(format!("m{i}"), 8.0).with_mem(1 << 30))
                .collect(),
            PlacementPolicy::WorstFit,
        );
        assert_eq!(c.place_2d(ServiceId(0), 2.0, 1 << 28).unwrap(), 0);
        assert_eq!(c.place_2d(ServiceId(0), 2.0, 1 << 28).unwrap(), 1);
        assert_eq!(c.place_2d(ServiceId(0), 2.0, 1 << 28).unwrap(), 2);
    }

    #[test]
    fn two_dimensional_fit_and_scoring() {
        // Machine 0: plenty of CPU, tight memory. Machine 1: tight CPU,
        // plenty of memory. A memory-hungry request must land on 1.
        let mut c = Cluster::new(
            vec![
                MachineCfg::new("a", 16.0).with_mem(1 << 28), // 256 MiB
                MachineCfg::new("b", 4.0).with_mem(8 << 30),  // 8 GiB
            ],
            PlacementPolicy::BestFit,
        );
        let m = c.place_2d(ServiceId(0), 2.0, 1 << 30).unwrap();
        assert_eq!(m, 1, "memory dimension must gate the fit");
        // Memory accounting is tracked and freed on evict.
        assert_eq!(c.used_mem_bytes(), 1 << 30);
        assert!(c.machine_mem_utilization()[1] > 0.1);
        assert!(c.evict(ServiceId(0)));
        assert_eq!(c.used_mem_bytes(), 0);
        // A request exceeding every machine's memory fails with the
        // memory request in the error.
        let err = c.place_2d(ServiceId(0), 1.0, 64 << 30).unwrap_err();
        assert_eq!(err.requested_mem, 64 << 30);
        // CPU-only machines (mem unmodeled) accept any memory request.
        let mut legacy = small_cluster();
        assert!(legacy.place_2d(ServiceId(0), 1.0, u64::MAX / 2).is_ok());
    }

    #[test]
    fn capacity_enforced() {
        let mut c = small_cluster();
        c.place(ServiceId(0), 8.0).unwrap();
        c.place(ServiceId(0), 4.0).unwrap();
        let err = c.place(ServiceId(0), 1.0).unwrap_err();
        assert_eq!(err.requested, 1.0);
        assert_eq!(err.largest_free, 0.0);
        assert_eq!(c.used_cores(), 12.0);
    }

    #[test]
    fn evict_frees_capacity() {
        let mut c = small_cluster();
        c.place(ServiceId(0), 4.0).unwrap();
        c.place(ServiceId(1), 4.0).unwrap();
        assert!(c.evict(ServiceId(0)));
        assert!(!c.evict(ServiceId(0)));
        assert_eq!(c.replicas_of(ServiceId(0)), 0);
        assert_eq!(c.replicas_of(ServiceId(1)), 1);
        assert_eq!(c.used_cores(), 4.0);
    }

    fn sim_one_service(cores: f64, replicas: usize) -> Simulation {
        let topo = Topology::new(
            vec![ServiceCfg::new("svc", cores).with_replicas(replicas)],
            vec![ClassCfg {
                name: "c".into(),
                priority: Priority::HIGH,
                root: CallNode::leaf(ServiceId(0), WorkDist::Constant(0.001)),
            }],
        )
        .unwrap();
        Simulation::new(topo, SimConfig::default(), 1)
    }

    #[test]
    fn capped_plane_clamps_scale_out() {
        let mut sim = sim_one_service(4.0, 1);
        let mut cluster = small_cluster(); // 12 cores total -> 3 replicas max
        let mut capped = CappedControlPlane::new(&mut sim, &mut cluster);
        capped.set_replicas(ServiceId(0), 10);
        assert_eq!(capped.replicas(ServiceId(0)), 3);
        assert!(capped.denials > 0);
        // Scale-in frees capacity for a later scale-out.
        capped.set_replicas(ServiceId(0), 1);
        capped.set_replicas(ServiceId(0), 2);
        assert_eq!(capped.replicas(ServiceId(0)), 2);
    }

    #[test]
    fn machine_utilization_reported() {
        let mut c = small_cluster();
        c.place(ServiceId(0), 4.0).unwrap();
        let util = c.machine_utilization();
        assert_eq!(util, vec![0.0, 1.0]);
    }
}
