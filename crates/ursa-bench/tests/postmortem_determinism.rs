//! Post-mortem bundles are deterministic artifacts: the same seed must
//! produce byte-identical JSON and HTML regardless of `--jobs`, and the
//! anomaly trigger must actually fire on the chaos grid's guaranteed
//! slowdown cell.

use std::fs;
use std::path::{Path, PathBuf};

use ursa_apps::{social_network, App};
use ursa_baselines::Autoscaler;
use ursa_bench::experiments::chaos::fault_plans;
use ursa_bench::postmortem::PostmortemObserver;
use ursa_bench::runner::run_cells_with;
use ursa_bench::{default_rates, prepare_ursa, Scale};
use ursa_sim::control::{run_deployment_observed, DeployConfig};
use ursa_sim::metrics::SimMetrics;
use ursa_sim::recorder::FlightRecorder;
use ursa_sim::time::SimDur;
use ursa_sim::workload::RateFn;

/// Seed base of the chaos grid (`fi = 0`, `si = 0` is the slowdown/Ursa
/// cell whose anomaly re-exploration is the acceptance criterion).
const CHAOS_SEED: u64 = 0xC4A0_5C11;

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Reads a bundle pair (JSON + linked HTML) back as named byte blobs.
fn bundle_bytes(json_path: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for path in [json_path.to_path_buf(), json_path.with_extension("html")] {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.push((name, fs::read(&path).expect("bundle file readable")));
    }
    out
}

/// One cheap observed deployment (static autoscaler, no training) with an
/// explicit `--snapshot-at` trigger; returns every bundle it wrote.
fn snapshot_cell(app: &App, dir: &Path, seed: u64) -> Vec<(String, Vec<u8>)> {
    let mut sim = app.build_sim(seed);
    sim.arm_flight_recorder(FlightRecorder::DEFAULT_CAPACITY);
    sim.enable_tracing(256, 0.05);
    sim.enable_profiler(ursa_sim::profiler::PhaseProfiler::DEFAULT_SAMPLE_EVERY);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    let mut auto = Autoscaler::auto_a(app.topology.num_services());
    let mut metrics = SimMetrics::for_topology("auto_a", &app.topology, &app.slas);
    let mut obs = PostmortemObserver::new(dir, "snap", Some(240.0));
    let cfg = DeployConfig {
        duration: SimDur::from_mins(6),
        control_interval: SimDur::from_mins(1),
        warmup: SimDur::from_mins(2),
        collect_samples: false,
    };
    run_deployment_observed(
        &mut sim,
        &app.slas,
        &mut auto,
        &cfg,
        Some(&mut metrics),
        Some(&mut obs),
    );
    let written = obs.written().to_vec();
    assert!(!written.is_empty(), "snapshot-at must produce a bundle");
    written.iter().flat_map(|p| bundle_bytes(p)).collect()
}

/// `--snapshot-at` bundles are jobs-invariant: the cells rendered under 1
/// worker and under 8 are byte-identical, and re-running reproduces them.
#[test]
fn snapshot_bundles_are_jobs_invariant() {
    let app = social_network(true);
    let seeds = [11u64, 23, 37];
    let render = |jobs: usize, tag: &str| {
        let inputs: Vec<(usize, u64)> = seeds.iter().copied().enumerate().collect();
        run_cells_with(jobs, inputs, |_, (i, seed)| {
            let dir = scratch(&format!("pm-{tag}-{jobs}-{i}"));
            snapshot_cell(&app, &dir, seed)
        })
    };
    let serial = render(1, "a");
    let parallel = render(8, "b");
    assert_eq!(serial, parallel, "bundles must not depend on --jobs");
    let again = render(1, "c");
    assert_eq!(
        serial, again,
        "bundles must be reproducible at a fixed seed"
    );
    // Sanity: the bundle records its trigger and schema.
    let json = String::from_utf8(serial[0][0].1.clone()).unwrap();
    assert!(json.contains("\"schema\":\"ursa-postmortem/v1\""), "{json}");
    let all: String = serial[0]
        .iter()
        .filter(|(name, _)| name.ends_with(".json"))
        .map(|(_, bytes)| String::from_utf8(bytes.clone()).unwrap())
        .collect();
    assert!(all.contains("snapshot-at"), "{all}");
    // The armed profiler's sample counts land in the bundle (the
    // wall-derived nanos stay out — determinism above proves it).
    assert!(
        all.contains("\"phase_profile\":{\"sample_every\":"),
        "{all}"
    );
}

/// The acceptance-criterion path: the chaos grid's slowdown cell, run
/// observed, fires the anomaly-re-exploration trigger and dumps a
/// deterministic bundle correlating the decision-log tail.
#[test]
fn slowdown_cell_dumps_anomaly_bundle() {
    let app = social_network(false);
    let plans = fault_plans(&app, Scale::Quick);
    let (label, plan) = &plans[0];
    assert_eq!(label, "slowdown");
    let run_once = |dir: &Path| -> Vec<(String, Vec<u8>)> {
        let mut ursa = prepare_ursa(&app, Scale::Quick, CHAOS_SEED);
        let mut sim = app.build_sim(CHAOS_SEED);
        sim.install_faults(plan, CHAOS_SEED);
        sim.arm_flight_recorder(FlightRecorder::DEFAULT_CAPACITY);
        sim.enable_tracing(512, 0.02);
        sim.enable_profiler(ursa_sim::profiler::PhaseProfiler::DEFAULT_SAMPLE_EVERY);
        app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
        ursa.apply_initial_allocation(&default_rates(&app), &mut sim);
        let mut metrics = SimMetrics::for_topology("ursa", &app.topology, &app.slas);
        let mut obs = PostmortemObserver::new(dir, "chaos-slowdown-ursa", None);
        let cfg = DeployConfig {
            duration: Scale::Quick.deploy_duration(),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(2),
            collect_samples: false,
        };
        run_deployment_observed(
            &mut sim,
            &app.slas,
            &mut ursa,
            &cfg,
            Some(&mut metrics),
            Some(&mut obs),
        );
        let written = obs.written().to_vec();
        assert!(!written.is_empty(), "slowdown must trigger a bundle");
        written.iter().flat_map(|p| bundle_bytes(p)).collect()
    };
    let first = run_once(&scratch("pm-anomaly-1"));
    // The per-kind bundle budget guarantees the anomaly fires its own
    // bundle even when SLO burn alerts page on earlier windows.
    let json = first
        .iter()
        .filter(|(name, _)| name.ends_with(".json"))
        .map(|(_, bytes)| String::from_utf8(bytes.clone()).unwrap())
        .find(|j| j.contains("anomaly-reexplore"))
        .expect("an anomaly-reexplore bundle must be dumped");
    // The bundle correlates the planes: faults, decisions, events, spans.
    for section in [
        "\"active_faults\"",
        "\"decisions\"",
        "\"flight_recorder\"",
        "\"phase_profile\"",
        "\"spans\"",
        "\"metrics_window\"",
    ] {
        assert!(json.contains(section), "bundle misses {section}");
    }
    let second = run_once(&scratch("pm-anomaly-2"));
    assert_eq!(first, second, "anomaly bundles must be seed-deterministic");
}
