//! Properties of the differential-observability layer: a run manifest is a
//! deterministic artifact (byte-identical under `--jobs 1` and `--jobs 8`
//! for the same cells), and `diff(run, run)` of any manifest against itself
//! reports zero deltas with deterministic TSV/HTML renders.

use std::fmt::Write as _;

use proptest::prelude::*;
use ursa_apps::chains::study_chain_with;
use ursa_bench::diff::{diff_manifests, render_html, render_tsv};
use ursa_bench::manifest::{parse_json, RunManifest};
use ursa_bench::perf::REGRESSION_TOLERANCE;
use ursa_bench::runner::run_cells_with;
use ursa_core::decision_log::{DecisionKind, DecisionLog, DecisionRecord, ServiceDelta};
use ursa_sim::engine::{SimConfig, Simulation};
use ursa_sim::metrics::SimMetrics;
use ursa_sim::time::{SimDur, SimTime};
use ursa_sim::topology::{ClassId, EdgeKind};
use ursa_sim::workload::RateFn;

/// One random simulation cell: a chain topology plus a load.
#[derive(Debug, Clone)]
struct CellSpec {
    edge: u8,
    tiers: usize,
    work_us: u64,
    rps: f64,
    seed: u64,
    secs: u64,
}

fn cell_specs() -> impl Strategy<Value = Vec<CellSpec>> {
    proptest::collection::vec(
        (
            0u8..3,
            2usize..4,
            500u64..4000,
            (20.0f64..150.0, 0u64..1_000_000),
            3u64..8,
        )
            .prop_map(|(edge, tiers, work_us, (rps, seed), secs)| CellSpec {
                edge,
                tiers,
                work_us,
                rps,
                seed,
                secs,
            }),
        2..6,
    )
}

/// Runs one cell and records everything a real experiment would into a
/// non-global [`RunManifest`] (the builder, not the process-wide
/// collector, so parallel test cells cannot race), returning the JSON.
fn manifest_json(index: usize, spec: &CellSpec) -> String {
    let edge = match spec.edge {
        0 => EdgeKind::NestedRpc,
        1 => EdgeKind::EventDrivenRpc,
        _ => EdgeKind::Mq,
    };
    let topo = study_chain_with(edge, spec.tiers, spec.work_us as f64 * 1e-6, 2.0);
    let digest = topo.digest();
    let mut metrics = SimMetrics::for_topology("static", &topo, &[]);
    let mut sim = Simulation::new(topo, SimConfig::default(), spec.seed);
    sim.set_rate(ClassId(0), RateFn::Constant(spec.rps));
    sim.run_for(SimDur::from_secs(spec.secs));
    let snap = sim.harvest();
    metrics.observe_snapshot(&sim, &snap);
    metrics.scrape(snap.at);

    // Constant jobs/scale: the manifest must not observe the worker count.
    let mut m = RunManifest::new("proptest", spec.seed, 1, "quick");
    m.set_topology_digest(digest);
    m.note_store(&format!("cell{index}"), metrics.store());
    m.note_scalar("events", sim.events_processed() as f64);
    let mut tsv = String::from("tier\tp99\n");
    for t in 0..spec.tiers {
        let _ = writeln!(
            tsv,
            "{t}\t{:.6}",
            snap.services[t].tier_latency[0]
                .percentile(99.0)
                .unwrap_or(0.0)
        );
    }
    m.note_table(&format!("cell{index}_p99"), spec.tiers, tsv.as_bytes());
    let mut log = DecisionLog::new(16);
    log.push(DecisionRecord {
        at: SimTime::ZERO,
        kind: DecisionKind::InitialAllocation,
        deltas: vec![ServiceDelta {
            service: 0,
            replicas_before: 1,
            replicas_after: spec.tiers,
            cores_before: 1.0,
            cores_after: 2.0,
        }],
        estimated_latency: vec![spec.rps / 1000.0],
        objective: Some(spec.tiers as f64),
    });
    m.note_decisions(&format!("cell{index}"), &log);
    m.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Manifests are jobs-invariant and self-diff to zero deltas with
    /// deterministic report renders.
    #[test]
    fn manifests_are_jobs_invariant_and_self_diff_zero(specs in cell_specs()) {
        let inputs: Vec<(usize, CellSpec)> =
            specs.iter().cloned().enumerate().collect();
        let render = |jobs: usize| -> Vec<String> {
            run_cells_with(jobs, inputs.clone(), |_, (i, s)| manifest_json(i, &s))
        };
        let seq = render(1);
        let par = render(8);
        prop_assert_eq!(&seq, &par, "manifest bytes must not depend on --jobs");
        for json in &seq {
            let v = parse_json(json).expect("manifest round-trips through the parser");
            let report = diff_manifests(&v, &v, REGRESSION_TOLERANCE);
            prop_assert!(report.is_zero(), "self-diff must report zero deltas");
            prop_assert_eq!(report.significant(), 0);
            // The renders are pure functions of the report: two independent
            // alignments of the same manifest produce identical bytes.
            let again = diff_manifests(&v, &v, REGRESSION_TOLERANCE);
            prop_assert_eq!(render_tsv(&report), render_tsv(&again));
            prop_assert_eq!(render_html(&report, &[]), render_html(&again, &[]));
        }
    }
}
