//! QoS determinism: with the memory plane active — OOM-kills, pressure
//! eviction, and noisy-neighbor throttling all firing — the qos grid must
//! stay (a) jobs-invariant — `--jobs 1` and `--jobs 8` render
//! byte-identical rows — and (b) seed-stable — re-running with the same
//! seed reproduces the rows exactly.

use ursa_apps::{social_network, App};
use ursa_bench::experiments::qos::mem_stats;
use ursa_bench::runner::run_cells_with;
use ursa_bench::{f3, LoadSpec, PreparedManagers, Scale, System};
use ursa_k8s::{EvictionPolicy, K8sPlane, PodTemplate, GIB, MIB};
use ursa_sim::memory::MemPlan;
use ursa_sim::metrics::SimMetrics;

const SEED: u64 = 0xA110_57E5;

/// One pressure level: node memory plus the post-store leak rate. The
/// templates (and hence the annotated topology) are identical across
/// levels, so one prepared-manager set serves the whole reduced grid.
fn plane(node_mem: u64, leak_bytes_per_sec: f64) -> K8sPlane {
    let mut post_store =
        PodTemplate::burstable(1.0, 4.0, 192 * MIB, 320 * MIB).with_memory(192 * MIB, 2 * MIB);
    if leak_bytes_per_sec > 0.0 {
        post_store = post_store.with_leak(leak_bytes_per_sec);
    }
    K8sPlane::new()
        .pool(3, 16.0, node_mem)
        .policy(EvictionPolicy {
            pressure_threshold: 0.92,
            interference_threshold: 0.80,
            interference_factor: 1.35,
            ..EvictionPolicy::default()
        })
        .pod(
            "frontend",
            PodTemplate::guaranteed(2.0, 512 * MIB).with_memory(160 * MIB, MIB),
        )
        .pod("post-store", post_store)
        .pod(
            "timeline-read",
            PodTemplate::best_effort().with_memory(128 * MIB, MIB),
        )
        .pod(
            "social-graph",
            PodTemplate::best_effort().with_memory(96 * MIB, MIB),
        )
}

/// The vanilla social network with the level-invariant resource specs
/// attached.
fn annotated_app() -> App {
    let mut app = social_network(true);
    app.topology = plane(2 * GIB, 0.0).annotate(app.topology).unwrap();
    app
}

/// The two pressure levels: comfortable, and overcommitted with a leak
/// fast enough to cross the 320 MiB post-store limit in ~85 s.
fn plans(app: &App) -> Vec<MemPlan> {
    [(2 * GIB, 0.0), (GIB, 1.5 * MIB as f64)]
        .into_iter()
        .map(|(mem, leak)| plane(mem, leak).mem_plan(&app.topology).unwrap())
        .collect()
}

fn render_rows(jobs: usize, managers: &PreparedManagers) -> Vec<String> {
    let app = annotated_app();
    let plans = plans(&app);
    let systems = [System::Ursa, System::AutoA];
    let inputs: Vec<(usize, usize)> = (0..plans.len())
        .flat_map(|li| (0..systems.len()).map(move |si| (li, si)))
        .collect();
    run_cells_with(jobs, inputs, |_, (li, si)| {
        let seed = SEED ^ ((li as u64) << 8) ^ si as u64;
        let mut metrics = SimMetrics::for_topology(systems[si].label(), &app.topology, &app.slas);
        let report = managers.deploy_cell_with_planes(
            &app,
            systems[si],
            &LoadSpec::Constant,
            Scale::Quick,
            seed,
            None,
            Some(&plans[li]),
            Some(&mut metrics),
        );
        let cores: f64 = report.records.iter().map(|r| r.total_cores).sum();
        let m = mem_stats(&metrics);
        format!(
            "{li}/{si}\tcores={}\toom={}\tevict={}/{}/{}\tutil={}\tthrottle={}",
            f3(cores),
            m.oom_kills,
            m.evictions[0],
            m.evictions[1],
            m.evictions[2],
            f3(m.max_node_util),
            f3(m.throttle_secs),
        )
    })
}

#[test]
fn qos_grid_is_jobs_invariant_and_seed_stable() {
    let app = annotated_app();
    let managers = PreparedManagers::prepare(&app, Scale::Quick, SEED);
    let serial = render_rows(1, &managers);
    let parallel = render_rows(8, &managers);
    assert_eq!(serial, parallel, "rows must not depend on --jobs");
    let again = render_rows(1, &managers);
    assert_eq!(serial, again, "rows must be reproducible at a fixed seed");
    // The plane actually bit: the overcommit level OOM-killed somewhere.
    assert!(
        serial.iter().any(|row| !row.contains("\toom=0\t")),
        "no cell registered any memory incident: {serial:?}"
    );
    // And the kubelet order held everywhere: a Guaranteed eviction
    // without BestEffort evictions would be out of order.
    for row in &serial {
        let evict = row.split("evict=").nth(1).unwrap();
        let parts: Vec<u64> = evict
            .split('\t')
            .next()
            .unwrap()
            .split('/')
            .map(|x| x.parse().unwrap())
            .collect();
        assert!(
            parts[2] == 0 || parts[0] > 0,
            "Guaranteed evicted before BestEffort: {row}"
        );
    }
}
