//! Chaos determinism: under active fault injection, the resilience grid
//! must stay (a) jobs-invariant — `--jobs 1` and `--jobs 8` render
//! byte-identical rows — and (b) seed-stable — re-running with the same
//! seed reproduces the rows exactly.

use ursa_apps::social_network;
use ursa_bench::experiments::chaos::resilience_metrics;
use ursa_bench::runner::run_cells_with;
use ursa_bench::{f3, pct, LoadSpec, PreparedManagers, Scale, System};
use ursa_chaos::Scenario;
use ursa_sim::chaos::{FaultKind, FaultPlan};
use ursa_sim::time::SimDur;

/// A reduced grid on the vanilla social network: two fault kinds (one
/// deterministic window, one Poisson process) crossed with two systems.
fn plans(horizon: SimDur) -> Vec<FaultPlan> {
    let scenarios = [
        Scenario::new("slowdown").one_shot(
            SimDur::from_mins(5),
            SimDur::from_mins(4),
            FaultKind::Slowdown {
                service: 1,
                factor: 5.0,
            },
        ),
        Scenario::new("flaky").stochastic(
            SimDur::from_mins(3),
            SimDur::from_secs(30),
            FaultKind::ReplicaCrash {
                service: 0,
                count: 1,
            },
        ),
    ];
    scenarios.iter().map(|s| s.compile(0xD3, horizon)).collect()
}

fn render_rows(jobs: usize, managers: &PreparedManagers) -> Vec<String> {
    let app = social_network(true);
    let plans = plans(Scale::Quick.deploy_duration());
    let systems = [System::Ursa, System::AutoA];
    let inputs: Vec<(usize, usize)> = (0..plans.len())
        .flat_map(|fi| (0..systems.len()).map(move |si| (fi, si)))
        .collect();
    run_cells_with(jobs, inputs, |_, (fi, si)| {
        let plan = &plans[fi];
        let seed = 0xC4A0_57E5u64 ^ ((fi as u64) << 8) ^ si as u64;
        let report = managers.deploy_cell_with_faults(
            &app,
            systems[si],
            &LoadSpec::Constant,
            Scale::Quick,
            seed,
            Some(plan),
            None,
        );
        let span = (plan.first_at().unwrap(), plan.last_until().unwrap());
        let m = resilience_metrics(&report, span, SimDur::from_mins(1));
        format!(
            "{fi}/{si}\t{}\t{}\t{}\t{}\t{}",
            pct(m.viol_pre),
            pct(m.viol_fault),
            pct(m.viol_after),
            m.recovery_s.map(f3).unwrap_or_else(|| "never".into()),
            pct(m.overshoot),
        )
    })
}

#[test]
fn chaos_grid_is_jobs_invariant_and_seed_stable() {
    let app = social_network(true);
    let managers = PreparedManagers::prepare(&app, Scale::Quick, 0xC4A0_57E5);
    let serial = render_rows(1, &managers);
    let parallel = render_rows(8, &managers);
    assert_eq!(serial, parallel, "rows must not depend on --jobs");
    let again = render_rows(1, &managers);
    assert_eq!(serial, again, "rows must be reproducible at a fixed seed");
    // The faults actually bit: some cell saw violations during its window.
    assert!(
        serial.iter().any(|row| !row.contains("\t0.0%\t0.0%\t")),
        "no cell registered any fault impact: {serial:?}"
    );
}
