//! Bench-layer rerun determinism for the sharded engine: the committed
//! `--exp scale` goldens are only meaningful if regenerating them is
//! byte-stable, so the grid is built twice in-process and compared as
//! exact TSV bytes and as the FNV digests the run manifest would record.
//! Synchronization *round* counters are wall-clock dependent by design
//! and are excluded from the tables — this test is what keeps them out.

use ursa_bench::experiments::scale::grid_tables;
use ursa_bench::manifest::fnv64;

/// The default grid (shards 1/2/4, scale 3) rendered twice must be
/// byte-identical — same TSV strings, same manifest digests.
#[test]
fn scale_grid_rerun_is_byte_identical() {
    let (grid_a, totals_a) = grid_tables(&[1, 2, 4], 3, 0x5CA1E);
    let (grid_b, totals_b) = grid_tables(&[1, 2, 4], 3, 0x5CA1E);
    assert_eq!(grid_a.to_tsv(), grid_b.to_tsv());
    assert_eq!(totals_a.to_tsv(), totals_b.to_tsv());
    assert_eq!(
        fnv64(grid_a.to_tsv().as_bytes()),
        fnv64(grid_b.to_tsv().as_bytes())
    );
}

/// Four worker shards, run twice: the parallel engine must not leak
/// scheduling nondeterminism into anything digested.
#[test]
fn four_shard_grid_rerun_is_byte_identical() {
    let (grid_a, totals_a) = grid_tables(&[4], 3, 0x5CA1E);
    let (grid_b, totals_b) = grid_tables(&[4], 3, 0x5CA1E);
    assert_eq!(grid_a.to_tsv(), grid_b.to_tsv());
    assert_eq!(
        fnv64(totals_a.to_tsv().as_bytes()),
        fnv64(totals_b.to_tsv().as_bytes())
    );
}
