//! Property: the parallel cell runner is jobs-invariant. `--jobs 1` and
//! `--jobs 8` must produce byte-identical experiment output — the TSV-style
//! renders and metrics-snapshot digests that every artifact is built from —
//! across random topologies and loads, and across the real fig11/12 cell
//! path.

use std::fmt::Write as _;

use proptest::prelude::*;
use ursa_apps::chains::study_chain_with;
use ursa_bench::runner::run_cells_with;
use ursa_sim::engine::{SimConfig, Simulation};
use ursa_sim::time::SimDur;
use ursa_sim::topology::{ClassId, EdgeKind};
use ursa_sim::workload::RateFn;

/// One random simulation cell: a chain topology plus a load.
#[derive(Debug, Clone)]
struct CellSpec {
    edge: u8,
    tiers: usize,
    work_us: u64,
    rps: f64,
    seed: u64,
    secs: u64,
}

fn cell_specs() -> impl Strategy<Value = Vec<CellSpec>> {
    proptest::collection::vec(
        (
            0u8..3,
            2usize..5,
            500u64..4000,
            (20.0f64..200.0, 0u64..1_000_000),
            5u64..15,
        )
            .prop_map(|(edge, tiers, work_us, (rps, seed), secs)| CellSpec {
                edge,
                tiers,
                work_us,
                rps,
                seed,
                secs,
            }),
        2..9,
    )
}

/// Runs one cell and renders everything the experiments derive artifacts
/// from: event count, injection/completion counters, per-tier and
/// end-to-end latency percentiles.
fn digest(spec: &CellSpec) -> String {
    let edge = match spec.edge {
        0 => EdgeKind::NestedRpc,
        1 => EdgeKind::EventDrivenRpc,
        _ => EdgeKind::Mq,
    };
    let topo = study_chain_with(edge, spec.tiers, spec.work_us as f64 * 1e-6, 2.0);
    let mut sim = Simulation::new(topo, SimConfig::default(), spec.seed);
    sim.set_rate(ClassId(0), RateFn::Constant(spec.rps));
    sim.run_for(SimDur::from_secs(spec.secs));
    let snap = sim.harvest();
    let mut out = String::new();
    let _ = writeln!(out, "events\t{}", sim.events_processed());
    let _ = writeln!(
        out,
        "inj\t{:?}\tcomp\t{:?}",
        snap.injections, snap.completions
    );
    for t in 0..spec.tiers {
        let _ = writeln!(
            out,
            "tier{t}\t{:?}",
            snap.services[t].tier_latency[0].percentile(99.0)
        );
    }
    let _ = writeln!(out, "e2e\t{:?}", snap.e2e_latency[0].percentile(99.0));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn jobs1_and_jobs8_produce_identical_output(specs in cell_specs()) {
        let seq = run_cells_with(1, specs.clone(), |_, s| digest(&s));
        let par = run_cells_with(8, specs.clone(), |_, s| digest(&s));
        prop_assert_eq!(seq, par);
    }
}

/// The real fig11/12 cell path is jobs-invariant: a slice of the grid on
/// the vanilla social network (two load families × all five systems, for
/// suite-runtime reasons) renders to the same TSV rows under 1 and 8
/// workers.
#[test]
fn fig11_12_grid_jobs_invariant() {
    use ursa_bench::experiments::fig11_12::cell_inputs;
    use ursa_bench::{PreparedManagers, Scale, System};
    let app = ursa_apps::social_network(true);
    let managers = PreparedManagers::prepare(&app, Scale::Quick, 0xCAFE);
    let inputs: Vec<_> = cell_inputs(&app)
        .into_iter()
        .filter(|(li, _, _)| *li == 0 || *li == 3)
        .collect();
    let grid = |jobs: usize| -> Vec<String> {
        run_cells_with(jobs, inputs.clone(), |_, (li, load, si)| {
            let report = managers.deploy_cell(
                &app,
                System::ALL[si],
                &load,
                Scale::Quick,
                0xDE_9107 ^ ((li as u64) << 8) ^ si as u64,
                None,
            );
            format!(
                "{}\t{}\t{:.4}\t{:.1}",
                load.label(),
                System::ALL[si].label(),
                report.overall_violation_rate(),
                report.avg_cpu_allocation()
            )
        })
    };
    assert_eq!(grid(1), grid(8));
}
