//! `perf` subcommand — engine-throughput measurement with a tracked
//! baseline.
//!
//! Three cells are timed best-of-N (single-core CI runners are
//! noisy; the minimum wall over a few repetitions is far more stable
//! than a single shot):
//!
//! * **canonical** — the vanilla social network under constant load for
//!   a fixed stretch of simulated time; the general-purpose figure.
//! * **ps_heavy** — one 8-core replica with 512 worker slots driven into
//!   deep overload (hundreds of concurrent jobs sharing the CPU). This
//!   is the regime where the old per-job-countdown PS loop went
//!   quadratic; the virtual-time queue keeps it near-linear, and this
//!   cell exists so a regression back to O(n²) fails `--check` loudly.
//! * **big** — new in the v6 schema: the full social network replicated
//!   [`BIG_SCALE`]× (63 services) run twice through
//!   [`ShardedSimulation`], once on one shard and once on `--shards N`
//!   worker threads. The pair yields the sharded-engine speedup
//!   (`big_speedup`), per-shard occupancy, and window/null-message
//!   counters; `--check` gates the 1-shard throughput like the other
//!   cells and the speedup against both the baseline's recorded ratio
//!   and a core-aware absolute floor ([`speedup_floor`] — ≥3× applies on
//!   hosts with at least 8 cores; a 1-core host only has to bound the
//!   sharding overhead).
//!
//! Each cell also reports the stale-event split (live events drive
//! state; stale pops are lazily-invalidated PS checks) plus event-queue
//! depth/compaction counters and — new in the v5 schema — the calendar
//! queue's band occupancy (band width, adaptive resizes, promotions into
//! the current band, deepest single-band drain, overflow high-water) and
//! the request arena's slot/node high-water marks. Each cell is timed as
//! plain/profiled back-to-back pairs: the schema reports a per-phase
//! breakdown (`phases` / `ps_heavy_phases`, one
//! `{phase, count, pct, ns_per_event}` row per [`SimPhase`]) so the next
//! perf PR attacks the measured hot phase, plus the paired-minimum
//! profiler overhead, asserting along the
//! way that the profiled run's counters are identical to the plain run's
//! (the profiler must observe, not perturb). After the cells, an 8-cell
//! batch runs under 1 worker and under the configured `--jobs` to report
//! the harness speedup. Results go to `BENCH_sim.json`, a `run.json`
//! manifest for `ursa-bench diff`, and an append-only `history.jsonl`
//! trajectory point alongside; `--check <baseline.json>` compares both
//! cells' events/sec against a committed baseline (tolerance from
//! `--tolerance` / `URSA_PERF_TOLERANCE`, default
//! [`REGRESSION_TOLERANCE`], with the remaining margin printed) and gates
//! the profiler overhead at [`PROFILER_OVERHEAD_BUDGET_PCT`], which is
//! what CI runs.

use std::path::Path;
use std::time::Instant;

use ursa_apps::{scale_app, social_network};
use ursa_sim::prelude::*;
use ursa_sim::time::SimDur;
use ursa_sim::workload::RateFn;

use crate::{manifest, runner};

/// Simulated seconds per canonical cell.
const SIM_SECS: u64 = 30;
/// Simulated seconds for the ps_heavy cell (overloaded, so event-dense).
const PS_HEAVY_SECS: u64 = 10;
/// Concurrent worker slots on the ps_heavy replica.
const PS_HEAVY_WORKERS: usize = 512;
/// Cells in the speedup batch.
const BATCH_CELLS: u64 = 8;
/// Wall-clock repetitions per cell; the minimum is reported.
const MEASURE_REPS: usize = 5;
/// Simulated seconds for the big sharded cell.
const BIG_SECS: u64 = 20;
/// Service-group replication of the big cell: the full social network
/// (9 services) × 7 = 63 services of independent cells — the partition
/// co-locates each replica group, so the cell measures pure engine
/// scaling rather than cross-shard chatter (the differential tests own
/// that axis).
const BIG_SCALE: usize = 7;
/// Load multiplier over the scaled app's default request rate, to keep
/// the cell event-dense enough to time.
const BIG_RPS_FACTOR: f64 = 2.0;
/// Wall-clock repetitions per big-cell leg; the minimum wall is kept.
const BIG_REPS: usize = 3;
/// Default worker-shard count for the big cell (`--shards`).
pub const DEFAULT_BIG_SHARDS: usize = 8;
/// Allowed relative regression of `big_speedup` against the baseline's
/// recorded ratio. A ratio of two walls measured back-to-back on the
/// same machine is far more stable than either wall alone, so this band
/// is tighter than [`REGRESSION_TOLERANCE`].
pub const SPEEDUP_TOLERANCE: f64 = 0.25;
/// Default allowed events/sec regression vs the baseline before
/// `--check` fails (override with `--tolerance` or
/// `URSA_PERF_TOLERANCE`). Generous because the reference numbers come
/// from shared, single-core runners where even best-of-N walls wander by
/// tens of percent between machine windows; the check exists to catch
/// complexity-class regressions (the ps_heavy cell slows ~3x if PS goes
/// quadratic again), not single-digit codegen drift.
pub const REGRESSION_TOLERANCE: f64 = 0.35;
/// Maximum tolerated profiler overhead (`--check` gate): the sampled
/// accounting must stay within 2 % of the plain wall on both cells,
/// measured as the paired-minimum ratio (see [`time_cell_pair`]).
/// Overhead below measurement noise clamps to zero.
pub const PROFILER_OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// Counters harvested from one cell run (deterministic per seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CellStats {
    /// Events that drove simulation state.
    live: u64,
    /// Stale pops: lazily-invalidated PS checks and source timers.
    stale: u64,
    /// High-water mark of the event queue.
    heap_max_depth: usize,
    /// Lazy-compaction sweeps of the event queue.
    compactions: u64,
    /// Calendar-queue band width, nanoseconds of simulated time.
    band_ns: u64,
    /// Adaptive band-width resizes (including hybrid heap/calendar flips).
    resizes: u64,
    /// Entries promoted from ring/overflow into the current band.
    promotions: u64,
    /// Deepest single-band drain observed.
    max_band_drain: usize,
    /// High-water mark of the far-future overflow list.
    overflow_max: usize,
    /// Request-arena slot high-water mark.
    arena_slots: usize,
    /// Request-arena node (hop) high-water mark.
    arena_nodes: usize,
}

fn stats_of(sim: &Simulation) -> CellStats {
    CellStats {
        live: sim.events_processed(),
        stale: sim.events_stale(),
        heap_max_depth: sim.event_heap_max_depth(),
        compactions: sim.heap_compactions(),
        band_ns: sim.event_queue_band_ns(),
        resizes: sim.event_queue_resizes(),
        promotions: sim.event_queue_promotions(),
        max_band_drain: sim.event_queue_max_band_drain(),
        overflow_max: sim.event_queue_overflow_max(),
        arena_slots: sim.arena_slots_high_water(),
        arena_nodes: sim.arena_nodes_high_water(),
    }
}

/// Runs the canonical cell and returns its counters.
fn canonical_cell(seed: u64) -> CellStats {
    canonical_cell_run(seed, false).0
}

/// [`canonical_cell`] with the phase profiler optionally enabled; returns
/// the counters plus the profile when profiling was on.
fn canonical_cell_run(seed: u64, profiled: bool) -> (CellStats, Option<ProfilerReport>) {
    let app = social_network(true);
    let mut sim = app.build_sim(seed);
    if profiled {
        sim.enable_profiler(PhaseProfiler::DEFAULT_SAMPLE_EVERY);
    }
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    sim.run_for(SimDur::from_secs(SIM_SECS));
    let profile = sim.profiler().map(|p| p.report());
    (stats_of(&sim), profile)
}

/// Runs the ps_heavy cell: a single replica pushed far past saturation
/// so hundreds of jobs share its cores, exercising the virtual-time PS
/// queue and the stale-check machinery at depth.
#[cfg(test)]
fn ps_heavy_cell(seed: u64) -> CellStats {
    ps_heavy_cell_run(seed, false).0
}

/// [`ps_heavy_cell`] with the phase profiler optionally enabled.
fn ps_heavy_cell_run(seed: u64, profiled: bool) -> (CellStats, Option<ProfilerReport>) {
    let topo = Topology::new(
        vec![ServiceCfg::new("svc", 8.0).with_workers(PS_HEAVY_WORKERS)],
        vec![ClassCfg {
            name: "req".into(),
            priority: Priority::HIGH,
            root: CallNode::leaf(ServiceId(0), WorkDist::Exponential { mean: 0.004 }),
        }],
    )
    .expect("static ps_heavy topology");
    let mut sim = Simulation::new(topo, SimConfig::default(), seed);
    if profiled {
        sim.enable_profiler(PhaseProfiler::DEFAULT_SAMPLE_EVERY);
    }
    sim.set_rate(ClassId(0), RateFn::Constant(4000.0));
    sim.run_for(SimDur::from_secs(PS_HEAVY_SECS));
    let profile = sim.profiler().map(|p| p.report());
    (stats_of(&sim), profile)
}

/// Counters from one big-cell run. Live-event counts and the per-shard
/// split are deterministic per (seed, shard count) and asserted so
/// across repetitions; the synchronization *round* counters
/// (null-message ratio) are wall-clock dependent and are reported but
/// never gated or digested.
#[derive(Debug, Clone)]
struct BigStats {
    /// Live events summed over shards.
    live: u64,
    /// Live events per shard — the occupancy profile.
    per_shard: Vec<u64>,
    /// Conservative-time windows executed.
    windows: u64,
    /// Null-message rounds / all rounds (wall-clock dependent).
    null_ratio: f64,
    /// Cross-shard envelopes sent.
    msgs_sent: u64,
}

/// Runs the big cell on `shards` worker threads.
fn big_cell_run(seed: u64, shards: usize) -> BigStats {
    let app = scale_app(&social_network(false), BIG_SCALE);
    let mut sim = ShardedSimulation::new(app.topology.clone(), SimConfig::default(), seed, shards);
    let total: f64 = app.mix.iter().sum();
    let rps = app.default_rps * BIG_RPS_FACTOR;
    for (i, w) in app.mix.iter().enumerate() {
        sim.set_rate(ClassId(i), RateFn::Constant(rps * w / total));
    }
    sim.run_for(SimDur::from_secs(BIG_SECS));
    let report = sim.shard_report();
    BigStats {
        live: sim.events_processed(),
        per_shard: sim.per_shard_events(),
        windows: report.windows,
        null_ratio: report.null_message_ratio(),
        msgs_sent: report.msgs_sent,
    }
}

/// Times the big cell best-of-N at a fixed shard count, asserting that
/// the simulation-event counters repeat exactly (the per-N determinism
/// contract at the bench layer).
fn time_big(seed: u64, shards: usize) -> (BigStats, f64) {
    let mut best = f64::MAX;
    let mut kept: Option<BigStats> = None;
    for _ in 0..BIG_REPS {
        let t = Instant::now();
        let s = big_cell_run(seed, shards);
        let wall = t.elapsed().as_secs_f64();
        if let Some(prev) = &kept {
            assert_eq!(
                prev.live, s.live,
                "big cell must be deterministic at {shards} shard(s)"
            );
            assert_eq!(
                prev.per_shard, s.per_shard,
                "per-shard event split must be deterministic"
            );
        }
        kept = Some(s);
        best = best.min(wall);
    }
    (kept.expect("BIG_REPS > 0"), best)
}

/// One cell timed both plain and profiled.
struct CellTiming {
    /// Deterministic counters (identical across every repetition, plain
    /// and profiled alike).
    stats: CellStats,
    /// Best-of-N plain wall-clock, seconds.
    wall: f64,
    /// The profile from the fastest (least-disturbed) profiled rep.
    profile: ProfilerReport,
    /// Paired-minimum profiler overhead, percent (see below).
    overhead_pct: f64,
}

/// Times `run(false)` / `run(true)` as back-to-back pairs, N times.
///
/// The overhead estimate is the *minimum over pairs* of the
/// profiled/plain wall ratio, clamped at zero. Single best-of-N walls of
/// two separately-timed populations wander by several percent on shared
/// runners — far above the real sampled-profiler cost — so a
/// difference-of-minima gate would flake. Pairing keeps machine state
/// comparable within each ratio, and the minimum rejects pairs where the
/// profiled half got unlucky; a *systematic* regression (the profiler
/// suddenly doing real work per event) inflates every pair and still
/// trips the gate.
fn time_cell_pair(run: impl Fn(bool) -> (CellStats, Option<ProfilerReport>)) -> CellTiming {
    let mut best_plain = f64::MAX;
    let mut best_prof = f64::MAX;
    let mut best_ratio = f64::MAX;
    let mut stats: Option<CellStats> = None;
    let mut profile: Option<ProfilerReport> = None;
    for _ in 0..MEASURE_REPS {
        let t = Instant::now();
        let (s_plain, _) = run(false);
        let wall_plain = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let (s_prof, p) = run(true);
        let wall_prof = t.elapsed().as_secs_f64();
        assert_eq!(s_plain, s_prof, "profiler perturbed the cell");
        if let Some(prev) = stats {
            assert_eq!(prev, s_plain, "cell counters must be deterministic");
        }
        stats = Some(s_plain);
        best_plain = best_plain.min(wall_plain);
        if wall_prof < best_prof {
            best_prof = wall_prof;
            profile = p;
        }
        best_ratio = best_ratio.min(wall_prof / wall_plain.max(1e-9));
    }
    CellTiming {
        stats: stats.expect("MEASURE_REPS > 0"),
        wall: best_plain,
        profile: profile.expect("profiled rep ran"),
        overhead_pct: (best_ratio - 1.0).max(0.0) * 100.0,
    }
}

/// One row of the per-phase breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRow {
    /// Stable phase label (see [`SimPhase::label`]).
    pub phase: &'static str,
    /// Sampled spans accrued in the phase (deterministic per seed).
    pub count: u64,
    /// Share of estimated engine time, percent.
    pub pct: f64,
    /// Estimated nanoseconds per popped event in this phase.
    pub ns_per_event: f64,
}

/// Flattens a [`ProfilerReport`] into the `phases` rows.
fn phase_rows(profile: &ProfilerReport) -> Vec<PhaseRow> {
    profile
        .phases
        .iter()
        .map(|s| PhaseRow {
            phase: s.phase.label(),
            count: s.count,
            pct: s.share * 100.0,
            ns_per_event: profile.ns_per_event(s.phase),
        })
        .collect()
}

/// Renders the per-shard occupancy shares as a JSON array.
fn occupancy_json(shares: &[f64]) -> String {
    let cells: Vec<String> = shares.iter().map(|s| format!("{s:.4}")).collect();
    format!("[{}]", cells.join(", "))
}

fn phases_json(rows: &[PhaseRow]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"phase\": \"{}\", \"count\": {}, \"pct\": {:.2}, \"ns_per_event\": {:.1}}}",
                r.phase, r.count, r.pct, r.ns_per_event
            )
        })
        .collect();
    format!("[{}]", cells.join(", "))
}

/// One perf measurement.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Live engine events in the canonical cell.
    pub events: u64,
    /// Stale event pops in the canonical cell.
    pub events_stale: u64,
    /// stale / (live + stale) for the canonical cell.
    pub stale_ratio: f64,
    /// Event-queue high-water mark in the canonical cell.
    pub heap_max_depth: usize,
    /// Event-queue lazy compactions in the canonical cell.
    pub heap_compactions: u64,
    /// Calendar-queue band width in the canonical cell, ns.
    pub queue_band_ns: u64,
    /// Calendar-queue resizes (incl. hybrid flips) in the canonical cell.
    pub queue_resizes: u64,
    /// Calendar-queue promotions in the canonical cell.
    pub queue_promotions: u64,
    /// Deepest single-band drain in the canonical cell.
    pub queue_max_band_drain: usize,
    /// Overflow-list high-water in the canonical cell.
    pub queue_overflow_max: usize,
    /// Request-arena slot high-water in the canonical cell.
    pub arena_slots_high_water: usize,
    /// Request-arena node high-water in the canonical cell.
    pub arena_nodes_high_water: usize,
    /// Single-thread engine throughput (live events / best wall).
    pub events_per_sec: f64,
    /// Best-of-N wall-clock of the canonical cell, milliseconds.
    pub cell_wall_ms: f64,
    /// Live engine events in the ps_heavy cell.
    pub ps_heavy_events: u64,
    /// Stale event pops in the ps_heavy cell.
    pub ps_heavy_events_stale: u64,
    /// Event-queue high-water mark in the ps_heavy cell.
    pub ps_heavy_heap_max_depth: usize,
    /// Calendar-queue band width in the ps_heavy cell, ns.
    pub ps_heavy_queue_band_ns: u64,
    /// Calendar-queue resizes (incl. hybrid flips) in the ps_heavy cell.
    pub ps_heavy_queue_resizes: u64,
    /// Calendar-queue promotions in the ps_heavy cell.
    pub ps_heavy_queue_promotions: u64,
    /// Deepest single-band drain in the ps_heavy cell.
    pub ps_heavy_queue_max_band_drain: usize,
    /// Overflow-list high-water in the ps_heavy cell.
    pub ps_heavy_queue_overflow_max: usize,
    /// Request-arena slot high-water in the ps_heavy cell.
    pub ps_heavy_arena_slots_high_water: usize,
    /// Request-arena node high-water in the ps_heavy cell.
    pub ps_heavy_arena_nodes_high_water: usize,
    /// ps_heavy throughput (live events / best wall).
    pub ps_heavy_events_per_sec: f64,
    /// Best-of-N wall-clock of the ps_heavy cell, milliseconds.
    pub ps_heavy_wall_ms: f64,
    /// Measured profiler overhead on the canonical cell, percent
    /// (profiled best wall vs plain best wall, clamped at zero).
    pub profiler_overhead_pct: f64,
    /// Per-phase breakdown of the canonical cell (profiled run).
    pub phases: Vec<PhaseRow>,
    /// Measured profiler overhead on the ps_heavy cell, percent.
    pub ps_heavy_profiler_overhead_pct: f64,
    /// Per-phase breakdown of the ps_heavy cell (profiled run).
    pub ps_heavy_phases: Vec<PhaseRow>,
    /// Worker shards of the big cell's sharded leg (`--shards`).
    pub big_shards: usize,
    /// CPU cores visible to the process; the speedup is core-bound.
    pub cores_available: usize,
    /// Live engine events in the big cell's 1-shard leg.
    pub big_events: u64,
    /// Big-cell throughput on one shard (live events / best wall).
    pub big_events_per_sec: f64,
    /// Best-of-N wall of the big cell's 1-shard leg, milliseconds.
    pub big_wall_ms: f64,
    /// Live engine events in the big cell's sharded leg.
    pub big_shard_events: u64,
    /// Big-cell throughput on `big_shards` shards.
    pub big_shard_events_per_sec: f64,
    /// Best-of-N wall of the big cell's sharded leg, milliseconds.
    pub big_shard_wall_ms: f64,
    /// Sharded-engine speedup: sharded ev/s over 1-shard ev/s.
    pub big_speedup: f64,
    /// Conservative-time windows in the sharded leg.
    pub big_windows: u64,
    /// Null-message rounds over all rounds in the sharded leg
    /// (wall-clock dependent: reported, never gated).
    pub big_null_message_ratio: f64,
    /// Cross-shard envelopes sent in the sharded leg.
    pub big_msgs_sent: u64,
    /// Share of live events per shard in the sharded leg.
    pub big_shard_occupancy: Vec<f64>,
    /// Workers used for the parallel batch.
    pub jobs: usize,
    /// Wall-clock of the batch with 1 worker, milliseconds.
    pub batch_wall_jobs1_ms: f64,
    /// Wall-clock of the batch with `jobs` workers, milliseconds.
    pub batch_wall_jobsn_ms: f64,
    /// Harness speedup: batch wall-clock ratio (1 worker / N workers).
    pub speedup: f64,
}

impl PerfReport {
    /// Renders the report as JSON (stable key order, no dependencies).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"ursa-bench-perf/v6\",\n  \"canonical_cell\": \"social_vanilla constant {SIM_SECS}s\",\n  \"events\": {},\n  \"events_stale\": {},\n  \"stale_ratio\": {:.4},\n  \"heap_max_depth\": {},\n  \"heap_compactions\": {},\n  \"queue_band_ns\": {},\n  \"queue_resizes\": {},\n  \"queue_promotions\": {},\n  \"queue_max_band_drain\": {},\n  \"queue_overflow_max\": {},\n  \"arena_slots_high_water\": {},\n  \"arena_nodes_high_water\": {},\n  \"events_per_sec\": {:.1},\n  \"cell_wall_ms\": {:.2},\n  \"profiler_overhead_pct\": {:.2},\n  \"phases\": {},\n  \"ps_heavy_cell\": \"1x8c {PS_HEAVY_WORKERS}w overload {PS_HEAVY_SECS}s\",\n  \"ps_heavy_events\": {},\n  \"ps_heavy_events_stale\": {},\n  \"ps_heavy_heap_max_depth\": {},\n  \"ps_heavy_queue_band_ns\": {},\n  \"ps_heavy_queue_resizes\": {},\n  \"ps_heavy_queue_promotions\": {},\n  \"ps_heavy_queue_max_band_drain\": {},\n  \"ps_heavy_queue_overflow_max\": {},\n  \"ps_heavy_arena_slots_high_water\": {},\n  \"ps_heavy_arena_nodes_high_water\": {},\n  \"ps_heavy_events_per_sec\": {:.1},\n  \"ps_heavy_wall_ms\": {:.2},\n  \"ps_heavy_profiler_overhead_pct\": {:.2},\n  \"ps_heavy_phases\": {},\n  \"big_cell\": \"social x{BIG_SCALE} sharded constant {BIG_SECS}s\",\n  \"big_shards\": {},\n  \"cores_available\": {},\n  \"big_events\": {},\n  \"big_events_per_sec\": {:.1},\n  \"big_wall_ms\": {:.2},\n  \"big_shard_events\": {},\n  \"big_shard_events_per_sec\": {:.1},\n  \"big_shard_wall_ms\": {:.2},\n  \"big_speedup\": {:.3},\n  \"big_windows\": {},\n  \"big_null_message_ratio\": {:.4},\n  \"big_msgs_sent\": {},\n  \"big_shard_occupancy\": {},\n  \"batch_cells\": {BATCH_CELLS},\n  \"jobs\": {},\n  \"batch_wall_jobs1_ms\": {:.2},\n  \"batch_wall_jobsn_ms\": {:.2},\n  \"speedup\": {:.3}\n}}\n",
            self.events,
            self.events_stale,
            self.stale_ratio,
            self.heap_max_depth,
            self.heap_compactions,
            self.queue_band_ns,
            self.queue_resizes,
            self.queue_promotions,
            self.queue_max_band_drain,
            self.queue_overflow_max,
            self.arena_slots_high_water,
            self.arena_nodes_high_water,
            self.events_per_sec,
            self.cell_wall_ms,
            self.profiler_overhead_pct,
            phases_json(&self.phases),
            self.ps_heavy_events,
            self.ps_heavy_events_stale,
            self.ps_heavy_heap_max_depth,
            self.ps_heavy_queue_band_ns,
            self.ps_heavy_queue_resizes,
            self.ps_heavy_queue_promotions,
            self.ps_heavy_queue_max_band_drain,
            self.ps_heavy_queue_overflow_max,
            self.ps_heavy_arena_slots_high_water,
            self.ps_heavy_arena_nodes_high_water,
            self.ps_heavy_events_per_sec,
            self.ps_heavy_wall_ms,
            self.ps_heavy_profiler_overhead_pct,
            phases_json(&self.ps_heavy_phases),
            self.big_shards,
            self.cores_available,
            self.big_events,
            self.big_events_per_sec,
            self.big_wall_ms,
            self.big_shard_events,
            self.big_shard_events_per_sec,
            self.big_shard_wall_ms,
            self.big_speedup,
            self.big_windows,
            self.big_null_message_ratio,
            self.big_msgs_sent,
            occupancy_json(&self.big_shard_occupancy),
            self.jobs,
            self.batch_wall_jobs1_ms,
            self.batch_wall_jobsn_ms,
            self.speedup,
        )
    }
}

/// Measures engine throughput, sharded-engine speedup, and harness
/// speedup. `shards` is the big cell's sharded-leg worker count.
pub fn measure(shards: usize) -> PerfReport {
    // Warm-up (page in code and allocator state).
    canonical_cell(1);

    // Each cell is timed as plain/profiled pairs: the plain best-of-N
    // wall yields events/sec, the profiled best carries the v3 phase
    // breakdown, and the paired-minimum ratio is the overhead gate. The
    // counter equality inside `time_cell_pair` is the non-perturbation
    // proof (the profiler observes; it never perturbs).
    let canon = time_cell_pair(|profiled| canonical_cell_run(0xBE7C, profiled));
    let heavy = time_cell_pair(|profiled| ps_heavy_cell_run(0x9527, profiled));

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (big1, big1_wall) = time_big(0x816C, 1);
    let (bign, bign_wall) = if shards > 1 {
        time_big(0x816C, shards)
    } else {
        (big1.clone(), big1_wall)
    };
    let big_eps1 = big1.live as f64 / big1_wall.max(1e-9);
    let big_epsn = bign.live as f64 / bign_wall.max(1e-9);
    let occupancy: Vec<f64> = bign
        .per_shard
        .iter()
        .map(|&e| e as f64 / bign.live.max(1) as f64)
        .collect();

    let seeds: Vec<u64> = (0..BATCH_CELLS).map(|i| 0xBE7C ^ (i << 16)).collect();
    let t = Instant::now();
    let seq = runner::run_cells_with(1, seeds.clone(), |_, s| canonical_cell(s).live);
    let wall1 = t.elapsed();
    let jobs = runner::jobs();
    let t = Instant::now();
    let par = runner::run_cells_with(jobs, seeds, |_, s| canonical_cell(s).live);
    let walln = t.elapsed();
    assert_eq!(seq, par, "parallel batch must reproduce the sequential one");

    PerfReport {
        events: canon.stats.live,
        events_stale: canon.stats.stale,
        stale_ratio: canon.stats.stale as f64
            / (canon.stats.live + canon.stats.stale).max(1) as f64,
        heap_max_depth: canon.stats.heap_max_depth,
        heap_compactions: canon.stats.compactions,
        queue_band_ns: canon.stats.band_ns,
        queue_resizes: canon.stats.resizes,
        queue_promotions: canon.stats.promotions,
        queue_max_band_drain: canon.stats.max_band_drain,
        queue_overflow_max: canon.stats.overflow_max,
        arena_slots_high_water: canon.stats.arena_slots,
        arena_nodes_high_water: canon.stats.arena_nodes,
        events_per_sec: canon.stats.live as f64 / canon.wall.max(1e-9),
        cell_wall_ms: canon.wall * 1e3,
        ps_heavy_events: heavy.stats.live,
        ps_heavy_events_stale: heavy.stats.stale,
        ps_heavy_heap_max_depth: heavy.stats.heap_max_depth,
        ps_heavy_queue_band_ns: heavy.stats.band_ns,
        ps_heavy_queue_resizes: heavy.stats.resizes,
        ps_heavy_queue_promotions: heavy.stats.promotions,
        ps_heavy_queue_max_band_drain: heavy.stats.max_band_drain,
        ps_heavy_queue_overflow_max: heavy.stats.overflow_max,
        ps_heavy_arena_slots_high_water: heavy.stats.arena_slots,
        ps_heavy_arena_nodes_high_water: heavy.stats.arena_nodes,
        ps_heavy_events_per_sec: heavy.stats.live as f64 / heavy.wall.max(1e-9),
        ps_heavy_wall_ms: heavy.wall * 1e3,
        profiler_overhead_pct: canon.overhead_pct,
        phases: phase_rows(&canon.profile),
        ps_heavy_profiler_overhead_pct: heavy.overhead_pct,
        ps_heavy_phases: phase_rows(&heavy.profile),
        big_shards: shards,
        cores_available: cores,
        big_events: big1.live,
        big_events_per_sec: big_eps1,
        big_wall_ms: big1_wall * 1e3,
        big_shard_events: bign.live,
        big_shard_events_per_sec: big_epsn,
        big_shard_wall_ms: bign_wall * 1e3,
        big_speedup: big_epsn / big_eps1.max(1e-9),
        big_windows: bign.windows,
        big_null_message_ratio: bign.null_ratio,
        big_msgs_sent: bign.msgs_sent,
        big_shard_occupancy: occupancy,
        jobs,
        batch_wall_jobs1_ms: wall1.as_secs_f64() * 1e3,
        batch_wall_jobsn_ms: walln.as_secs_f64() * 1e3,
        speedup: wall1.as_secs_f64() / walln.as_secs_f64().max(1e-9),
    }
}

/// Extracts a numeric field from the hand-rolled JSON format above.
pub fn json_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Checks one throughput field of `report` against `baseline` at the
/// given tolerance; returns an exit code (0 ok, 1 regression, 2 missing
/// field). Failure output names both the offending cell and the metric
/// (a multi-cell check that only echoes a number is undebuggable from CI
/// logs); the passing branch prints the measured-vs-gate margin so logs
/// show how much headroom is left before the floor trips.
fn check_field(report: &str, baseline: &str, cell: &str, key: &str, tolerance: f64) -> i32 {
    let Some(base) = json_field(baseline, key) else {
        eprintln!("error: baseline has no `{key}` (cell `{cell}`)");
        return 2;
    };
    let Some(cur) = json_field(report, key) else {
        eprintln!("error: report has no `{key}` (cell `{cell}`)");
        return 2;
    };
    let floor = base * (1.0 - tolerance);
    if cur < floor {
        eprintln!(
            "PERF REGRESSION: cell `{cell}`, metric `{key}`: {cur:.0} is below floor {floor:.0} \
             ({}% under baseline {base:.0})",
            (100.0 * (1.0 - cur / base)).round(),
        );
        return 1;
    }
    let margin_pct = if floor > 0.0 {
        100.0 * (cur / floor - 1.0)
    } else {
        0.0
    };
    println!(
        "perf check ok: [{cell}] {key} {cur:.0} vs baseline {base:.0} \
         (floor {floor:.0}, margin +{margin_pct:.0}%)"
    );
    0
}

/// The absolute floor the big-cell speedup must clear. Sharding cannot
/// beat the cores actually present, so the floor scales with
/// `min(shards, cores)` at 45 % parallel efficiency, capped at the 3×
/// acceptance bar: 8 shards on a ≥8-core host must deliver at least 3×,
/// while on a 1-core host the same 8 shards only have to keep 0.45× of
/// single-thread throughput (i.e. oversubscription overhead may not eat
/// more than ~55 %).
pub fn speedup_floor(shards: usize, cores: usize) -> f64 {
    (0.45 * shards.min(cores) as f64).min(3.0)
}

/// Gates `big_speedup` with its own tolerance: against the baseline's
/// recorded ratio shrunk by [`SPEEDUP_TOLERANCE`] (regressions only) and
/// against the core-aware absolute floor, whichever is higher. Skipped
/// at one shard, where the ratio is 1.0 by construction; a baseline
/// predating the v6 schema gates on the absolute floor alone.
fn check_speedup(report: &str, baseline: &str) -> i32 {
    let Some(cur) = json_field(report, "big_speedup") else {
        eprintln!("error: report has no `big_speedup` (cell `big`)");
        return 2;
    };
    let shards = json_field(report, "big_shards").unwrap_or(1.0) as usize;
    if shards <= 1 {
        println!("perf check ok: [big] big_speedup not gated at 1 shard");
        return 0;
    }
    let cores = json_field(report, "cores_available").unwrap_or(1.0) as usize;
    let abs = speedup_floor(shards, cores);
    // The baseline-relative band only means something where the ratio
    // measures real parallel scaling; on a host with fewer cores than
    // shards it measures oversubscription overhead, which wanders too
    // much between runs to gate tighter than the absolute floor.
    let rel = if cores >= shards {
        json_field(baseline, "big_speedup").map_or(0.0, |b| b * (1.0 - SPEEDUP_TOLERANCE))
    } else {
        0.0
    };
    let floor = abs.max(rel);
    if cur < floor {
        eprintln!(
            "PERF REGRESSION: cell `big`, metric `big_speedup`: {cur:.2}x on {shards} shards / \
             {cores} cores is below floor {floor:.2}x"
        );
        return 1;
    }
    println!(
        "perf check ok: [big] big_speedup {cur:.2}x on {shards} shards / {cores} cores \
         (floor {floor:.2}x)"
    );
    0
}

/// Gates a measured profiler-overhead field against the fixed budget;
/// returns an exit code (0 ok, 1 over budget, 2 missing field).
fn check_overhead(report: &str, key: &str) -> i32 {
    let Some(cur) = json_field(report, key) else {
        eprintln!("error: report has no {key}");
        return 2;
    };
    if cur > PROFILER_OVERHEAD_BUDGET_PCT {
        eprintln!(
            "PROFILER OVERHEAD: {key} {cur:.2}% exceeds the {PROFILER_OVERHEAD_BUDGET_PCT}% budget"
        );
        return 1;
    }
    println!("perf check ok: {key} {cur:.2}% <= {PROFILER_OVERHEAD_BUDGET_PCT}% budget");
    0
}

/// Builds the perf run manifest (`run.json` next to the `--out` report):
/// every scalar of the report plus the canonical cell's phase profile, so
/// `ursa-bench diff` can align two perf runs without re-parsing the
/// schema-versioned report format.
fn perf_manifest(report: &PerfReport) -> manifest::RunManifest {
    let mut m = manifest::RunManifest::new("perf", crate::global_seed(), report.jobs, "perf");
    m.note_scalar("events", report.events as f64);
    m.note_scalar("events_stale", report.events_stale as f64);
    m.note_scalar("stale_ratio", report.stale_ratio);
    m.note_scalar("heap_max_depth", report.heap_max_depth as f64);
    m.note_scalar("heap_compactions", report.heap_compactions as f64);
    m.note_scalar("queue_band_ns", report.queue_band_ns as f64);
    m.note_scalar("queue_resizes", report.queue_resizes as f64);
    m.note_scalar("queue_promotions", report.queue_promotions as f64);
    m.note_scalar(
        "arena_slots_high_water",
        report.arena_slots_high_water as f64,
    );
    m.note_scalar(
        "arena_nodes_high_water",
        report.arena_nodes_high_water as f64,
    );
    m.note_scalar("events_per_sec", report.events_per_sec);
    m.note_scalar("cell_wall_ms", report.cell_wall_ms);
    m.note_scalar("profiler_overhead_pct", report.profiler_overhead_pct);
    m.note_scalar("ps_heavy_events", report.ps_heavy_events as f64);
    m.note_scalar("ps_heavy_events_per_sec", report.ps_heavy_events_per_sec);
    m.note_scalar("ps_heavy_wall_ms", report.ps_heavy_wall_ms);
    m.note_scalar(
        "ps_heavy_profiler_overhead_pct",
        report.ps_heavy_profiler_overhead_pct,
    );
    m.note_scalar("big_shards", report.big_shards as f64);
    m.note_scalar("cores_available", report.cores_available as f64);
    m.note_scalar("big_events", report.big_events as f64);
    m.note_scalar("big_events_per_sec", report.big_events_per_sec);
    m.note_scalar("big_shard_events_per_sec", report.big_shard_events_per_sec);
    m.note_scalar("big_speedup", report.big_speedup);
    m.note_scalar("big_windows", report.big_windows as f64);
    m.note_scalar("big_msgs_sent", report.big_msgs_sent as f64);
    m.note_scalar("jobs", report.jobs as f64);
    m.note_scalar("batch_wall_jobs1_ms", report.batch_wall_jobs1_ms);
    m.note_scalar("batch_wall_jobsn_ms", report.batch_wall_jobsn_ms);
    m.note_scalar("speedup", report.speedup);
    m.set_phase_profile(manifest::PhaseProfile {
        sample_every: u64::from(PhaseProfiler::DEFAULT_SAMPLE_EVERY),
        events_seen: report.events,
        events_sampled: report.phases.iter().map(|r| r.count).sum(),
        rows: report
            .phases
            .iter()
            .map(|r| manifest::PhaseProfileRow {
                phase: r.phase.to_string(),
                count: r.count,
                pct: r.pct,
                ns_per_event: r.ns_per_event,
            })
            .collect(),
    });
    m
}

/// One `history.jsonl` line: the perf trajectory point this run appends.
fn history_line(report: &PerfReport) -> String {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!(
        "{{\"schema\": \"ursa-bench-history/v1\", \"unix_s\": {unix_s}, \
         \"events_per_sec\": {:.1}, \"ps_heavy_events_per_sec\": {:.1}, \
         \"big_events_per_sec\": {:.1}, \"big_speedup\": {:.3}, \"big_shards\": {}, \
         \"profiler_overhead_pct\": {:.2}, \"speedup\": {:.3}, \"jobs\": {}}}\n",
        report.events_per_sec,
        report.ps_heavy_events_per_sec,
        report.big_events_per_sec,
        report.big_speedup,
        report.big_shards,
        report.profiler_overhead_pct,
        report.speedup,
        report.jobs,
    )
}

/// Appends this run's point to the append-only perf trajectory.
fn append_history(path: &Path, report: &PerfReport) {
    use std::io::Write as _;
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let line = history_line(report);
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(mut f) => {
            if f.write_all(line.as_bytes()).is_ok() {
                println!("appended perf point to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot append history {}: {e}", path.display()),
    }
}

/// Runs the measurement, writes `BENCH_sim.json` plus the `run.json`
/// manifest, appends the `history.jsonl` trajectory point, and optionally
/// checks against a baseline at `tolerance`. Returns the process exit
/// code (0 = ok, 1 = regression, 2 = bad baseline).
pub fn run(out: &Path, check: Option<&Path>, tolerance: f64, shards: usize) -> i32 {
    let report = measure(shards);
    let json = report.to_json();
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("error: failed to write {}: {e}", out.display());
            return 2;
        }
    }
    print!("{json}");
    println!(
        "queue band width: canonical {} ns, ps_heavy {} ns",
        report.queue_band_ns, report.ps_heavy_queue_band_ns
    );
    println!(
        "arena high-water: canonical {} slots / {} nodes, ps_heavy {} slots / {} nodes",
        report.arena_slots_high_water,
        report.arena_nodes_high_water,
        report.ps_heavy_arena_slots_high_water,
        report.ps_heavy_arena_nodes_high_water
    );
    println!(
        "big cell: {:.0} ev/s on 1 shard, {:.0} ev/s on {} shards ({} cores) = {:.2}x",
        report.big_events_per_sec,
        report.big_shard_events_per_sec,
        report.big_shards,
        report.cores_available,
        report.big_speedup
    );
    let side = out.parent().unwrap_or(Path::new("."));
    match perf_manifest(&report).write(&side.join("run.json")) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: failed to write perf manifest: {e}"),
    }
    append_history(&side.join("history.jsonl"), &report);
    let Some(baseline_path) = check else { return 0 };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            return 2;
        }
    };
    println!("perf check tolerance: {tolerance:.2}");
    let canon = check_field(&json, &baseline, "canonical", "events_per_sec", tolerance);
    let heavy = check_field(
        &json,
        &baseline,
        "ps_heavy",
        "ps_heavy_events_per_sec",
        tolerance,
    );
    let big = check_field(&json, &baseline, "big", "big_events_per_sec", tolerance);
    let ratio = check_speedup(&json, &baseline);
    let canon_oh = check_overhead(&json, "profiler_overhead_pct");
    let heavy_oh = check_overhead(&json, "ps_heavy_profiler_overhead_pct");
    canon
        .max(heavy)
        .max(big)
        .max(ratio)
        .max(canon_oh)
        .max(heavy_oh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_cell_is_deterministic() {
        assert_eq!(canonical_cell(42), canonical_cell(42));
        assert!(canonical_cell(42).live > 0);
    }

    #[test]
    fn ps_heavy_cell_is_deterministic_and_deep() {
        let a = ps_heavy_cell(7);
        assert_eq!(a, ps_heavy_cell(7));
        assert!(a.live > 0);
        // Despite hundreds of concurrent jobs sharing the replica, the
        // event heap must stay shallow: the scheduler keeps at most one
        // pending completion check per replica (plus source timers),
        // never one timer per job. Deep heaps here mean the lazy
        // invalidation machinery broke.
        assert!(
            a.heap_max_depth < 64,
            "ps_heavy event heap blew up: {}",
            a.heap_max_depth
        );
    }

    fn sample_report() -> PerfReport {
        PerfReport {
            events: 1234,
            events_stale: 56,
            stale_ratio: 0.0434,
            heap_max_depth: 99,
            heap_compactions: 2,
            queue_band_ns: 131072,
            queue_resizes: 3,
            queue_promotions: 17,
            queue_max_band_drain: 11,
            queue_overflow_max: 5,
            arena_slots_high_water: 120,
            arena_nodes_high_water: 480,
            events_per_sec: 56789.5,
            cell_wall_ms: 21.7,
            ps_heavy_events: 4321,
            ps_heavy_events_stale: 7,
            ps_heavy_heap_max_depth: 600,
            ps_heavy_queue_band_ns: 262144,
            ps_heavy_queue_resizes: 0,
            ps_heavy_queue_promotions: 0,
            ps_heavy_queue_max_band_drain: 4,
            ps_heavy_queue_overflow_max: 0,
            ps_heavy_arena_slots_high_water: 9000,
            ps_heavy_arena_nodes_high_water: 9000,
            ps_heavy_events_per_sec: 98765.5,
            ps_heavy_wall_ms: 43.7,
            profiler_overhead_pct: 0.85,
            phases: vec![
                PhaseRow {
                    phase: "ps_advance",
                    count: 90,
                    pct: 61.25,
                    ns_per_event: 120.5,
                },
                PhaseRow {
                    phase: "queue_pop",
                    count: 10,
                    pct: 12.5,
                    ns_per_event: 24.6,
                },
            ],
            ps_heavy_profiler_overhead_pct: 1.15,
            ps_heavy_phases: vec![PhaseRow {
                phase: "ps_advance",
                count: 44,
                pct: 80.0,
                ns_per_event: 300.0,
            }],
            big_shards: 8,
            cores_available: 8,
            big_events: 2_000_000,
            big_events_per_sec: 5_000_000.0,
            big_wall_ms: 400.0,
            big_shard_events: 2_000_100,
            big_shard_events_per_sec: 16_000_000.0,
            big_shard_wall_ms: 125.0,
            big_speedup: 3.2,
            big_windows: 1,
            big_null_message_ratio: 0.0712,
            big_msgs_sent: 0,
            big_shard_occupancy: vec![0.125; 8],
            jobs: 4,
            batch_wall_jobs1_ms: 180.0,
            batch_wall_jobsn_ms: 60.0,
            speedup: 3.0,
        }
    }

    #[test]
    fn json_roundtrip_fields() {
        let j = sample_report().to_json();
        assert_eq!(json_field(&j, "events_per_sec"), Some(56789.5));
        assert_eq!(json_field(&j, "speedup"), Some(3.0));
        // The quoted needle keeps `events` from matching the longer
        // `ps_heavy_events` / `events_stale` keys and vice versa.
        assert_eq!(json_field(&j, "events"), Some(1234.0));
        assert_eq!(json_field(&j, "events_stale"), Some(56.0));
        assert_eq!(json_field(&j, "ps_heavy_events"), Some(4321.0));
        assert_eq!(json_field(&j, "ps_heavy_events_stale"), Some(7.0));
        assert_eq!(json_field(&j, "ps_heavy_events_per_sec"), Some(98765.5));
        assert_eq!(json_field(&j, "stale_ratio"), Some(0.0434));
        assert_eq!(json_field(&j, "heap_max_depth"), Some(99.0));
        assert_eq!(json_field(&j, "queue_band_ns"), Some(131072.0));
        assert_eq!(json_field(&j, "queue_promotions"), Some(17.0));
        assert_eq!(json_field(&j, "arena_slots_high_water"), Some(120.0));
        assert_eq!(json_field(&j, "ps_heavy_queue_band_ns"), Some(262144.0));
        assert_eq!(
            json_field(&j, "ps_heavy_arena_nodes_high_water"),
            Some(9000.0)
        );
        assert_eq!(json_field(&j, "profiler_overhead_pct"), Some(0.85));
        assert_eq!(json_field(&j, "ps_heavy_profiler_overhead_pct"), Some(1.15));
        assert_eq!(json_field(&j, "big_events"), Some(2_000_000.0));
        assert_eq!(json_field(&j, "big_events_per_sec"), Some(5_000_000.0));
        assert_eq!(
            json_field(&j, "big_shard_events_per_sec"),
            Some(16_000_000.0)
        );
        assert_eq!(json_field(&j, "big_speedup"), Some(3.2));
        assert_eq!(json_field(&j, "big_shards"), Some(8.0));
        assert_eq!(json_field(&j, "cores_available"), Some(8.0));
        assert_eq!(json_field(&j, "big_null_message_ratio"), Some(0.0712));
        assert_eq!(json_field(&j, "missing"), None);
    }

    #[test]
    fn v6_schema_and_phase_arrays() {
        let j = sample_report().to_json();
        assert!(j.contains("\"schema\": \"ursa-bench-perf/v6\""));
        assert!(j.contains("\"big_cell\": \"social x7 sharded constant 20s\""));
        assert!(j.contains("\"big_shard_occupancy\": [0.1250, 0.1250"));
        assert!(j.contains(
            "\"phases\": [{\"phase\": \"ps_advance\", \"count\": 90, \"pct\": 61.25, \
             \"ns_per_event\": 120.5}, {\"phase\": \"queue_pop\", \"count\": 10, \
             \"pct\": 12.50, \"ns_per_event\": 24.6}]"
        ));
        assert!(j.contains(
            "\"ps_heavy_phases\": [{\"phase\": \"ps_advance\", \"count\": 44, \"pct\": 80.00, \
             \"ns_per_event\": 300.0}]"
        ));
    }

    #[test]
    fn perf_manifest_carries_scalars_and_profile() {
        let m = perf_manifest(&sample_report());
        let json = m.to_json();
        let v = crate::manifest::parse_json(&json).expect("manifest parses");
        let scalars = v.get("scalars").unwrap();
        assert_eq!(
            scalars.get("events_per_sec").and_then(|x| x.as_f64()),
            Some(56789.5)
        );
        assert_eq!(scalars.get("speedup").and_then(|x| x.as_f64()), Some(3.0));
        let profile = v.get("phase_profile").unwrap();
        let rows = profile.get("phases").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("count").and_then(|x| x.as_f64()), Some(90.0));
    }

    #[test]
    fn overhead_gate_trips_only_over_budget() {
        let j = sample_report().to_json();
        assert_eq!(check_overhead(&j, "profiler_overhead_pct"), 0);
        assert_eq!(check_overhead(&j, "ps_heavy_profiler_overhead_pct"), 0);
        let hot = j.replace(
            "\"profiler_overhead_pct\": 0.85",
            "\"profiler_overhead_pct\": 7.30",
        );
        assert_eq!(check_overhead(&hot, "profiler_overhead_pct"), 1);
        assert_eq!(check_overhead(&j, "no_such_field"), 2);
    }

    #[test]
    fn profiled_cells_match_plain_counters() {
        let (plain, prof) = (canonical_cell(3), canonical_cell_run(3, true));
        assert_eq!(plain, prof.0);
        let report = prof.1.expect("profiled run carries a report");
        assert!(report.events_seen > 0);
        let rows = phase_rows(&report);
        assert_eq!(rows.len(), SimPhase::ALL.len());
        let total: f64 = rows.iter().map(|r| r.pct).sum();
        assert!(
            (total - 100.0).abs() < 1.0,
            "phase shares sum to ~100%: {total}"
        );
    }

    #[test]
    fn check_field_flags_regressions_only() {
        let j = sample_report().to_json();
        // Same report as its own baseline: trivially passes.
        assert_eq!(
            check_field(&j, &j, "canonical", "events_per_sec", REGRESSION_TOLERANCE),
            0
        );
        assert_eq!(
            check_field(
                &j,
                &j,
                "ps_heavy",
                "ps_heavy_events_per_sec",
                REGRESSION_TOLERANCE
            ),
            0
        );
        // A baseline far above the report trips the floor.
        let inflated = j.replace("56789.5", "999999999.0");
        assert_eq!(
            check_field(
                &j,
                &inflated,
                "canonical",
                "events_per_sec",
                REGRESSION_TOLERANCE
            ),
            1
        );
        assert_eq!(
            check_field(&j, &j, "canonical", "no_such_field", REGRESSION_TOLERANCE),
            2
        );
        // A tighter tolerance turns a tolerated drift into a failure: 10%
        // down passes the default band but not a 5% one.
        let drifted = j.replace("56789.5", "51110.6");
        assert_eq!(
            check_field(&drifted, &j, "canonical", "events_per_sec", 0.35),
            0
        );
        assert_eq!(
            check_field(&drifted, &j, "canonical", "events_per_sec", 0.05),
            1
        );
    }

    #[test]
    fn speedup_floor_is_core_aware() {
        // 8 shards on >= 8 cores: the 3x acceptance bar.
        assert_eq!(speedup_floor(8, 8), 3.0);
        assert_eq!(speedup_floor(8, 16), 3.0);
        assert_eq!(speedup_floor(16, 32), 3.0);
        // Core-bound below the cap.
        assert!((speedup_floor(4, 4) - 1.8).abs() < 1e-12);
        assert!((speedup_floor(2, 8) - 0.9).abs() < 1e-12);
        // Oversubscribed 1-core host: only overhead is bounded.
        assert!((speedup_floor(8, 1) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn check_speedup_gates_on_baseline_and_core_floor() {
        // Fixture: 3.2x on 8 shards / 8 cores (floor 3.0).
        let j = sample_report().to_json();
        assert_eq!(check_speedup(&j, &j), 0);
        // Below the core-aware absolute floor: fails even against a
        // baseline that recorded the same poor ratio.
        let slow = j.replace("\"big_speedup\": 3.200", "\"big_speedup\": 1.100");
        assert_eq!(check_speedup(&slow, &slow), 1);
        // Regression vs a faster baseline trips the relative band even
        // above the absolute floor: 16 shards on 16 cores cap the
        // absolute floor at 3x, but dropping from a recorded 8x to 5x is
        // more than the 25% band allows.
        let wide = j
            .replace("\"big_shards\": 8", "\"big_shards\": 16")
            .replace("\"cores_available\": 8", "\"cores_available\": 16");
        let fast_base = wide.replace("\"big_speedup\": 3.200", "\"big_speedup\": 8.000");
        let dropped = wide.replace("\"big_speedup\": 3.200", "\"big_speedup\": 5.000");
        assert_eq!(check_speedup(&dropped, &fast_base), 1);
        assert_eq!(check_speedup(&fast_base, &fast_base), 0);
        // Below shard-count cores the relative band is suspended (the
        // ratio measures oversubscription noise): 2.3x clears the 4-core
        // absolute floor of 1.8x even against a 3.2x baseline.
        let few_cores = j
            .replace("\"big_speedup\": 3.200", "\"big_speedup\": 2.300")
            .replace("\"cores_available\": 8", "\"cores_available\": 4");
        assert_eq!(check_speedup(&few_cores, &j), 0);
        // At one shard the ratio is 1.0 by construction and not gated.
        let one = j.replace("\"big_shards\": 8", "\"big_shards\": 1");
        assert_eq!(check_speedup(&one, &one), 0);
        // A v5 baseline without the field gates on the absolute floor.
        assert_eq!(check_speedup(&j, "{}"), 0);
    }

    #[test]
    fn history_line_is_one_json_object() {
        let line = history_line(&sample_report());
        assert!(line.ends_with('\n'));
        let v = crate::manifest::parse_json(line.trim()).expect("history line parses");
        assert_eq!(
            v.get("events_per_sec").and_then(|x| x.as_f64()),
            Some(56789.5)
        );
        assert_eq!(
            v.get("schema").and_then(|x| x.as_str()),
            Some("ursa-bench-history/v1")
        );
    }
}
