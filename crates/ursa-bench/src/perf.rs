//! `perf` subcommand — engine-throughput measurement with a tracked
//! baseline.
//!
//! Runs one canonical cell (the vanilla social network under constant
//! load, a fixed stretch of simulated time) to measure single-thread
//! events/sec, then times an 8-cell batch under 1 worker and under the
//! configured `--jobs` to report the harness speedup. Results go to
//! `BENCH_sim.json`; `--check <baseline.json>` compares events/sec
//! against a committed baseline and fails on a >25 % regression, which
//! is what CI runs.

use std::path::Path;
use std::time::Instant;

use ursa_apps::social_network;
use ursa_sim::time::SimDur;
use ursa_sim::workload::RateFn;

use crate::runner;

/// Simulated seconds per canonical cell.
const SIM_SECS: u64 = 30;
/// Cells in the speedup batch.
const BATCH_CELLS: u64 = 8;
/// Allowed events/sec regression vs the baseline before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// Runs the canonical cell and returns the number of engine events.
fn canonical_cell(seed: u64) -> u64 {
    let app = social_network(true);
    let mut sim = app.build_sim(seed);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    sim.run_for(SimDur::from_secs(SIM_SECS));
    sim.events_processed()
}

/// One perf measurement.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Engine events in the canonical cell.
    pub events: u64,
    /// Single-thread engine throughput.
    pub events_per_sec: f64,
    /// Wall-clock of the canonical cell, milliseconds.
    pub cell_wall_ms: f64,
    /// Workers used for the parallel batch.
    pub jobs: usize,
    /// Wall-clock of the batch with 1 worker, milliseconds.
    pub batch_wall_jobs1_ms: f64,
    /// Wall-clock of the batch with `jobs` workers, milliseconds.
    pub batch_wall_jobsn_ms: f64,
    /// Harness speedup: batch wall-clock ratio (1 worker / N workers).
    pub speedup: f64,
}

impl PerfReport {
    /// Renders the report as JSON (stable key order, no dependencies).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"ursa-bench-perf/v1\",\n  \"canonical_cell\": \"social_vanilla constant {SIM_SECS}s\",\n  \"events\": {},\n  \"events_per_sec\": {:.1},\n  \"cell_wall_ms\": {:.2},\n  \"batch_cells\": {BATCH_CELLS},\n  \"jobs\": {},\n  \"batch_wall_jobs1_ms\": {:.2},\n  \"batch_wall_jobsn_ms\": {:.2},\n  \"speedup\": {:.3}\n}}\n",
            self.events,
            self.events_per_sec,
            self.cell_wall_ms,
            self.jobs,
            self.batch_wall_jobs1_ms,
            self.batch_wall_jobsn_ms,
            self.speedup,
        )
    }
}

/// Measures engine throughput and harness speedup.
pub fn measure() -> PerfReport {
    // Warm-up (page in code and allocator state).
    canonical_cell(1);

    let t = Instant::now();
    let events = canonical_cell(0xBE7C);
    let cell_wall = t.elapsed();
    let events_per_sec = events as f64 / cell_wall.as_secs_f64().max(1e-9);

    let seeds: Vec<u64> = (0..BATCH_CELLS).map(|i| 0xBE7C ^ (i << 16)).collect();
    let t = Instant::now();
    let seq = runner::run_cells_with(1, seeds.clone(), |_, s| canonical_cell(s));
    let wall1 = t.elapsed();
    let jobs = runner::jobs();
    let t = Instant::now();
    let par = runner::run_cells_with(jobs, seeds, |_, s| canonical_cell(s));
    let walln = t.elapsed();
    assert_eq!(seq, par, "parallel batch must reproduce the sequential one");

    PerfReport {
        events,
        events_per_sec,
        cell_wall_ms: cell_wall.as_secs_f64() * 1e3,
        jobs,
        batch_wall_jobs1_ms: wall1.as_secs_f64() * 1e3,
        batch_wall_jobsn_ms: walln.as_secs_f64() * 1e3,
        speedup: wall1.as_secs_f64() / walln.as_secs_f64().max(1e-9),
    }
}

/// Extracts a numeric field from the hand-rolled JSON format above.
pub fn json_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Runs the measurement, writes `BENCH_sim.json`, optionally checks it
/// against a baseline. Returns the process exit code (0 = ok, 1 =
/// regression, 2 = bad baseline).
pub fn run(out: &Path, check: Option<&Path>) -> i32 {
    let report = measure();
    let json = report.to_json();
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("error: failed to write {}: {e}", out.display());
            return 2;
        }
    }
    print!("{json}");
    let Some(baseline_path) = check else { return 0 };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "error: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            return 2;
        }
    };
    let Some(base_eps) = json_field(&baseline, "events_per_sec") else {
        eprintln!(
            "error: baseline {} has no events_per_sec",
            baseline_path.display()
        );
        return 2;
    };
    let floor = base_eps * (1.0 - REGRESSION_TOLERANCE);
    if report.events_per_sec < floor {
        eprintln!(
            "PERF REGRESSION: events/sec {:.0} is below {:.0} ({}% under baseline {:.0})",
            report.events_per_sec,
            floor,
            (100.0 * (1.0 - report.events_per_sec / base_eps)).round(),
            base_eps,
        );
        return 1;
    }
    println!(
        "perf check ok: events/sec {:.0} vs baseline {:.0} (floor {:.0})",
        report.events_per_sec, base_eps, floor
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_cell_is_deterministic() {
        assert_eq!(canonical_cell(42), canonical_cell(42));
        assert!(canonical_cell(42) > 0);
    }

    #[test]
    fn json_roundtrip_fields() {
        let r = PerfReport {
            events: 1234,
            events_per_sec: 56789.5,
            cell_wall_ms: 21.7,
            jobs: 4,
            batch_wall_jobs1_ms: 180.0,
            batch_wall_jobsn_ms: 60.0,
            speedup: 3.0,
        };
        let j = r.to_json();
        assert_eq!(json_field(&j, "events_per_sec"), Some(56789.5));
        assert_eq!(json_field(&j, "speedup"), Some(3.0));
        assert_eq!(json_field(&j, "events"), Some(1234.0));
        assert_eq!(json_field(&j, "missing"), None);
    }
}
