//! Anomaly flight-recorder bundles: correlated post-mortems for a
//! deployment run.
//!
//! [`PostmortemObserver`] hangs off the deployment driver's
//! [`DeployObserver`](ursa_sim::control::DeployObserver) hook and evaluates
//! three triggers after every control tick:
//!
//! | trigger | source | fires when |
//! |---|---|---|
//! | `anomaly-reexplore` | Ursa's decision log (via `ResourceManager::as_any`) | the latency-anomaly detector queued a re-exploration this tick |
//! | `slo-alert` | [`SimMetrics::alert_onsets`] | a burn-rate page/ticket alert *started* firing this tick |
//! | `snapshot-at` | `--snapshot-at SECS` | the first control tick at or after the requested simulated time |
//!
//! When any trigger fires (and the per-cell bundle budget is not
//! exhausted), the observer dumps one self-contained bundle: a JSON
//! document plus a linked script-free HTML report, correlating
//!
//! * the flight-recorder window of recent engine events,
//! * live span trees and recently finished traces from the tracer,
//! * the last few control windows of the columnar metrics store,
//! * the tail of Ursa's decision log,
//! * the faults active at dump time,
//! * the engine phase-profile sample counts (when the profiler is armed), and
//! * a topology/replica-state snapshot.
//!
//! Everything in a bundle is a pure function of the simulation seed and
//! the installed plan — content and filenames use simulated time only, so
//! the same cell produces byte-identical bundles at any `--jobs` value
//! (enforced by `tests/postmortem_determinism.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ursa_core::decision_log::{DecisionKind, DecisionLog};
use ursa_core::manager::Ursa;
use ursa_sim::control::{DeployObserver, ResourceManager};
use ursa_sim::engine::Simulation;
use ursa_sim::metrics::SimMetrics;
use ursa_sim::recorder::FlightEventKind;
use ursa_sim::telemetry::MetricsSnapshot;
use ursa_sim::topology::ServiceId;
use ursa_sim::trace::Trace;

/// Bundle schema identifier (bump on breaking layout changes).
pub const SCHEMA: &str = "ursa-postmortem/v1";

/// Most bundles one cell will write **per trigger kind**: after this many
/// the observer keeps updating its trigger baselines but stops dumping for
/// that kind, so a pathological run cannot fill the disk. The budget is
/// per-kind (not global) so that a cell paging its SLO burn alert every
/// window cannot crowd out the rarer — and more valuable —
/// anomaly-re-exploration bundle that fires when the fault actually lands.
pub const MAX_BUNDLES: usize = 4;

/// Decision-log records retained in a bundle's tail.
const DECISION_TAIL: usize = 32;

/// Recently finished traces embedded per bundle.
const FINISHED_TRACES: usize = 16;

/// Live (in-flight) span trees embedded per bundle.
const LIVE_TRACES: usize = 32;

/// Control windows of metrics history embedded per bundle.
const METRICS_WINDOWS: f64 = 5.0;

/// Flight-recorder entries shown in the HTML report (the JSON bundle
/// always carries the full ring window).
const HTML_EVENT_TAIL: usize = 64;

/// Why a bundle was dumped.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Ursa's latency-anomaly detector queued a re-exploration.
    AnomalyReExplore {
        /// The implicated service.
        service: usize,
        /// Observed SLA violation rate in basis points.
        violation_bps: u32,
    },
    /// An SLO burn-rate alert started firing.
    SloAlert {
        /// The violating request class.
        class: String,
        /// `"page"` or `"ticket"`.
        severity: &'static str,
        /// Short-window burn rate (multiples of budget).
        short_burn: f64,
    },
    /// The explicit `--snapshot-at` time was reached.
    SnapshotAt {
        /// The requested simulated time in seconds.
        requested: f64,
    },
}

impl Trigger {
    /// Stable snake_case identifier.
    pub fn label(&self) -> &'static str {
        match self {
            Trigger::AnomalyReExplore { .. } => "anomaly-reexplore",
            Trigger::SloAlert { .. } => "slo-alert",
            Trigger::SnapshotAt { .. } => "snapshot-at",
        }
    }

    fn to_json(&self) -> String {
        match self {
            Trigger::AnomalyReExplore {
                service,
                violation_bps,
            } => format!(
                "{{\"kind\":\"anomaly-reexplore\",\"service\":{service},\
                 \"violation_bps\":{violation_bps}}}"
            ),
            Trigger::SloAlert {
                class,
                severity,
                short_burn,
            } => format!(
                "{{\"kind\":\"slo-alert\",\"class\":\"{}\",\"severity\":\"{}\",\
                 \"short_burn\":{}}}",
                esc(class),
                esc(severity),
                num(*short_burn)
            ),
            Trigger::SnapshotAt { requested } => format!(
                "{{\"kind\":\"snapshot-at\",\"requested\":{}}}",
                num(*requested)
            ),
        }
    }

    fn describe(&self) -> String {
        match self {
            Trigger::AnomalyReExplore {
                service,
                violation_bps,
            } => format!(
                "anomaly re-exploration of service {service} \
                 (violation {:.2}%)",
                *violation_bps as f64 / 100.0
            ),
            Trigger::SloAlert {
                class,
                severity,
                short_burn,
            } => format!("{severity} SLO alert: {class} burning {short_burn:.1}x budget"),
            Trigger::SnapshotAt { requested } => {
                format!("explicit snapshot requested at t={requested}s")
            }
        }
    }
}

/// The [`DeployObserver`] that evaluates triggers and dumps bundles.
#[derive(Debug)]
pub struct PostmortemObserver {
    dir: PathBuf,
    cell: String,
    snapshot_at: Option<f64>,
    snapshot_fired: bool,
    /// Count of anomaly-reexplore records at the previous tick; `None`
    /// until the first tick establishes the baseline.
    seen_reexplores: Option<usize>,
    /// Bundles written so far, per trigger-kind label (the
    /// [`MAX_BUNDLES`] budget is per kind).
    kind_counts: BTreeMap<&'static str, usize>,
    written: Vec<PathBuf>,
}

impl PostmortemObserver {
    /// Creates an observer dumping into `dir` with filenames prefixed by
    /// `cell` (which must be unique across concurrently running cells).
    /// `snapshot_at` arms the explicit-time trigger.
    pub fn new(dir: &Path, cell: &str, snapshot_at: Option<f64>) -> Self {
        PostmortemObserver {
            dir: dir.to_path_buf(),
            cell: cell.to_string(),
            snapshot_at,
            snapshot_fired: false,
            seen_reexplores: None,
            kind_counts: BTreeMap::new(),
            written: Vec::new(),
        }
    }

    /// Paths of the bundles written so far (`.json` files; each has a
    /// sibling `.html`).
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    fn collect_triggers(
        &mut self,
        manager: &dyn ResourceManager,
        metrics: Option<&SimMetrics>,
        snapshot: &MetricsSnapshot,
    ) -> Vec<Trigger> {
        let mut triggers = Vec::new();
        if let Some(t) = self.snapshot_at {
            if !self.snapshot_fired && snapshot.at.as_secs_f64() >= t {
                self.snapshot_fired = true;
                triggers.push(Trigger::SnapshotAt { requested: t });
            }
        }
        if let Some(ursa) = manager.as_any().and_then(|a| a.downcast_ref::<Ursa>()) {
            let anomalies: Vec<(usize, u32)> = ursa
                .decisions()
                .records()
                .filter_map(|r| match r.kind {
                    DecisionKind::AnomalyReExplore {
                        service,
                        violation_bps,
                    } => Some((service, violation_bps)),
                    _ => None,
                })
                .collect();
            match self.seen_reexplores {
                None => self.seen_reexplores = Some(anomalies.len()),
                Some(seen) => {
                    for &(service, violation_bps) in anomalies.iter().skip(seen) {
                        triggers.push(Trigger::AnomalyReExplore {
                            service,
                            violation_bps,
                        });
                    }
                    self.seen_reexplores = Some(anomalies.len());
                }
            }
        }
        if let Some(m) = metrics {
            for (class, severity, short_burn) in m.alert_onsets() {
                triggers.push(Trigger::SloAlert {
                    class: class.clone(),
                    severity,
                    short_burn: *short_burn,
                });
            }
        }
        triggers
    }
}

impl DeployObserver for PostmortemObserver {
    fn after_tick(
        &mut self,
        sim: &Simulation,
        manager: &dyn ResourceManager,
        metrics: Option<&SimMetrics>,
        snapshot: &MetricsSnapshot,
    ) {
        let mut triggers = self.collect_triggers(manager, metrics, snapshot);
        triggers.retain(|t| self.kind_counts.get(t.label()).copied().unwrap_or(0) < MAX_BUNDLES);
        if triggers.is_empty() {
            return;
        }
        let stem = format!("{}-t{:.0}", self.cell, snapshot.at.as_secs_f64().round());
        let json = render_json(&self.cell, &triggers, sim, manager, metrics, snapshot);
        let html = render_html(&stem, &self.cell, &triggers, sim, snapshot);
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            crate::warn!("postmortem: cannot create {}: {e}", self.dir.display());
            return;
        }
        let json_path = self.dir.join(format!("{stem}.json"));
        let html_path = self.dir.join(format!("{stem}.html"));
        if let Err(e) = std::fs::write(&json_path, json) {
            crate::warn!("postmortem: cannot write {}: {e}", json_path.display());
            return;
        }
        if let Err(e) = std::fs::write(&html_path, html) {
            crate::warn!("postmortem: cannot write {}: {e}", html_path.display());
        }
        crate::info!(
            "postmortem: {} ({})",
            json_path.display(),
            triggers
                .iter()
                .map(Trigger::describe)
                .collect::<Vec<_>>()
                .join("; ")
        );
        for kind in triggers.iter().map(Trigger::label).collect::<BTreeSet<_>>() {
            *self.kind_counts.entry(kind).or_insert(0) += 1;
        }
        self.written.push(json_path);
    }
}

/// Escapes a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value (`null` for NaN/infinities, which
/// JSON cannot represent).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn flight_event_json(at: f64, seq: u64, kind: &FlightEventKind) -> String {
    let mut s = format!(
        "{{\"at\":{},\"seq\":{seq},\"kind\":\"{}\"",
        num(at),
        kind.label()
    );
    match *kind {
        FlightEventKind::SourceNext { class } | FlightEventKind::TraceArrival { class } => {
            let _ = write!(s, ",\"class\":{class}");
        }
        FlightEventKind::NodeArrive { slot, node } => {
            let _ = write!(s, ",\"slot\":{slot},\"node\":{node}");
        }
        FlightEventKind::PsCheck {
            service,
            replica,
            live,
        } => {
            let _ = write!(
                s,
                ",\"service\":{service},\"replica\":{replica},\"live\":{live}"
            );
        }
        FlightEventKind::ChaosStart { fault } | FlightEventKind::ChaosEnd { fault } => {
            let _ = write!(s, ",\"fault\":{fault}");
        }
        FlightEventKind::Scale { service, from, to } => {
            let _ = write!(s, ",\"service\":{service},\"from\":{from},\"to\":{to}");
        }
        FlightEventKind::CpuLimit {
            service,
            millicores,
        } => {
            let _ = write!(s, ",\"service\":{service},\"millicores\":{millicores}");
        }
        FlightEventKind::Harvest { in_flight } => {
            let _ = write!(s, ",\"in_flight\":{in_flight}");
        }
        FlightEventKind::MemCheck => {}
        FlightEventKind::OomKill { service, replica } => {
            let _ = write!(s, ",\"service\":{service},\"replica\":{replica}");
        }
        FlightEventKind::Evict { service, tier } => {
            let _ = write!(s, ",\"service\":{service},\"tier\":{tier}");
        }
        FlightEventKind::MemRestart { service } => {
            let _ = write!(s, ",\"service\":{service}");
        }
    }
    s.push('}');
    s
}

fn trace_json(t: &Trace) -> String {
    let mut s = format!(
        "{{\"id\":{},\"class\":{},\"arrival\":{},\"end\":{},\"spans\":[",
        t.id,
        t.class.0,
        num(t.arrival.as_secs_f64()),
        num(t.end.as_secs_f64())
    );
    for (i, sp) in t.spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"node\":{},\"parent\":{},\"service\":{},\"enqueue\":{},\
             \"start\":{},\"respond\":{},\"queue_wait\":{},\"nested_wait\":{}}}",
            sp.node,
            sp.parent.map_or("null".into(), |(p, _)| p.to_string()),
            sp.service.0,
            num(sp.enqueue_at.as_secs_f64()),
            num(sp.start_at.as_secs_f64()),
            num(sp.respond_at.as_secs_f64()),
            num(sp.queue_wait().as_secs_f64()),
            num(sp.nested_wait.as_secs_f64()),
        );
    }
    s.push_str("]}");
    s
}

fn render_json(
    cell: &str,
    triggers: &[Trigger],
    sim: &Simulation,
    manager: &dyn ResourceManager,
    metrics: Option<&SimMetrics>,
    snapshot: &MetricsSnapshot,
) -> String {
    let at = snapshot.at.as_secs_f64();
    let window = snapshot.window.as_secs_f64();
    let topo = sim.topology();
    let mut s = String::with_capacity(64 * 1024);
    let _ = write!(
        s,
        "{{\n\"schema\":\"{SCHEMA}\",\n\"cell\":\"{}\",\n\"manager\":\"{}\",\n\
         \"at\":{},\n\"window\":{},",
        esc(cell),
        esc(manager.name()),
        num(at),
        num(window)
    );
    s.push('\n');

    s.push_str("\"triggers\":[");
    for (i, t) in triggers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&t.to_json());
    }
    s.push_str("],\n");

    // Topology / replica-state snapshot.
    s.push_str("\"services\":[");
    for (i, svc) in snapshot.services.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"replicas\":{},\"cores_per_replica\":{},\
             \"cpu_utilization\":{},\"worker_occupancy\":{},\
             \"mq_depth_mean\":{},\"mq_depth_max\":{},\"arrival_rps\":{}}}",
            esc(&topo.services()[i].name),
            svc.replicas,
            num(svc.cores_per_replica),
            num(svc.cpu_utilization),
            num(sim.worker_occupancy(ServiceId(i))),
            num(svc.mq_depth_mean),
            svc.mq_depth_max,
            num(svc.arrival_rps(snapshot.window)),
        );
    }
    s.push_str("],\n\"classes\":[");
    for (c, cls) in topo.classes().iter().enumerate() {
        if c > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"injections\":{},\"completions\":{},\"offered_rps\":{}}}",
            esc(&cls.name),
            snapshot.injections[c],
            snapshot.completions[c],
            num(snapshot.injections[c] as f64 / window.max(1e-9)),
        );
    }
    let _ = write!(
        s,
        "],\n\"in_flight\":{},\n\"total_allocated_cores\":{},",
        sim.in_flight(),
        num(sim.total_allocated_cores())
    );
    s.push('\n');

    // Faults active at dump time.
    s.push_str("\"active_faults\":[");
    for (i, (idx, f)) in sim.active_faults().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"fault\":{idx},\"kind\":\"{}\",\"service\":{},\"at\":{},\"until\":{}}}",
            f.kind.label(),
            f.kind.service().map_or("null".into(), |x| x.to_string()),
            num(f.at.as_secs_f64()),
            num(f.until.as_secs_f64()),
        );
    }
    s.push_str("],\n");

    // Engine phase profile — deterministic fields only. Per-phase
    // `est_nanos`/`share` measure the host wall clock and would break the
    // byte-identical-at-any-`--jobs` guarantee; sample counts are a pure
    // function of the seed (every Nth popped event) and survive.
    match sim.profiler() {
        None => s.push_str("\"phase_profile\":null,\n"),
        Some(p) => {
            let report = p.report();
            let _ = write!(
                s,
                "\"phase_profile\":{{\"sample_every\":{},\"events_seen\":{},\
                 \"events_sampled\":{},\"counts\":[",
                report.sample_every, report.events_seen, report.events_sampled
            );
            for (i, st) in report.phases.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"phase\":\"{}\",\"count\":{}}}",
                    st.phase.label(),
                    st.count
                );
            }
            s.push_str("]},\n");
        }
    }

    // Flight-recorder window.
    match sim.flight_recorder() {
        None => s.push_str("\"flight_recorder\":null,\n"),
        Some(r) => {
            let _ = write!(
                s,
                "\"flight_recorder\":{{\"capacity\":{},\"recorded\":{},\"dropped\":{},\
                 \"events\":[",
                r.capacity(),
                r.recorded(),
                r.dropped()
            );
            for (i, e) in r.entries().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&flight_event_json(e.at.as_secs_f64(), e.seq, &e.kind));
            }
            s.push_str("]},\n");
        }
    }

    // Span trees: in-flight requests plus the most recently finished traces.
    match sim.tracer() {
        None => s.push_str("\"spans\":null,\n"),
        Some(tr) => {
            let _ = write!(s, "\"spans\":{{\"sampled\":{},\"live\":[", tr.sampled());
            for (i, t) in tr.live().into_iter().take(LIVE_TRACES).enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&trace_json(t));
            }
            s.push_str("],\"finished_recent\":[");
            let finished: Vec<&Trace> = tr.finished().collect();
            let skip = finished.len().saturating_sub(FINISHED_TRACES);
            for (i, t) in finished.into_iter().skip(skip).enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&trace_json(t));
            }
            s.push_str("]},\n");
        }
    }

    // The last few control windows of the columnar store.
    match metrics {
        None => s.push_str("\"metrics_window\":null,\n"),
        Some(m) => {
            let t0 = at - METRICS_WINDOWS * window;
            let w = m.store().window(t0, at);
            let _ = write!(
                s,
                "\"metrics_window\":{{\"t0\":{},\"t1\":{},\"times\":[",
                num(t0),
                num(at)
            );
            for (i, t) in w.times().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&num(*t));
            }
            s.push_str("],\"series\":[");
            // Wall-clock series (controller tick and MIP solve timings)
            // measure the host, not the simulation; they are the one
            // nondeterministic signal in the store and would break
            // byte-identical bundles.
            let deterministic = w
                .iter()
                .filter(|(key, _)| !key.name.contains("wall_ms") && !key.name.contains("solve_ms"));
            for (i, (key, col)) in deterministic.enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"name\":\"{}\",\"labels\":{{", esc(&key.name));
                for (j, (k, v)) in key.labels.pairs().iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":\"{}\"", esc(k), esc(v));
                }
                s.push_str("},\"values\":[");
                for (j, v) in col.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    s.push_str(&num(*v));
                }
                s.push_str("]}");
            }
            s.push_str("]},\n");
        }
    }

    // Decision-log tail (Ursa only; other managers have no log to read).
    match manager.as_any().and_then(|a| a.downcast_ref::<Ursa>()) {
        None => s.push_str("\"decisions\":null\n"),
        Some(ursa) => {
            let log = ursa.decisions();
            // Replaying the tail through a fresh bounded log reuses the
            // canonical JSONL serializer: each line is a complete JSON
            // object, embeddable as an array element.
            let mut tail = DecisionLog::new(DECISION_TAIL);
            for r in log.records() {
                tail.push(r.clone());
            }
            let mut buf = Vec::new();
            tail.write_jsonl(&mut buf).expect("in-memory write");
            let jsonl = String::from_utf8(buf).expect("serializer emits UTF-8");
            let _ = write!(
                s,
                "\"decisions\":{{\"total\":{},\"tail\":[",
                log.len() as u64 + log.dropped()
            );
            for (i, line) in jsonl.lines().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(line);
            }
            s.push_str("]}\n");
        }
    }
    s.push_str("}\n");
    s
}

fn render_html(
    stem: &str,
    cell: &str,
    triggers: &[Trigger],
    sim: &Simulation,
    snapshot: &MetricsSnapshot,
) -> String {
    let at = snapshot.at.as_secs_f64();
    let topo = sim.topology();
    let mut h = String::with_capacity(16 * 1024);
    let hesc = |s: &str| -> String {
        s.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    };
    let _ = writeln!(
        h,
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>Post-mortem: {} @ t={at}s</title>\
         <style>body{{font-family:sans-serif;margin:2em}}\
         table{{border-collapse:collapse;margin:1em 0}}\
         td,th{{border:1px solid #999;padding:2px 8px;text-align:left}}\
         th{{background:#eee}}</style></head><body>",
        hesc(cell)
    );
    let _ = writeln!(
        h,
        "<h1>Post-mortem: {}</h1>\n<p>simulated time t={at}s — full data in \
         <a href=\"{}.json\">{}.json</a></p>",
        hesc(cell),
        hesc(stem),
        hesc(stem)
    );

    h.push_str("<h2>Triggers</h2>\n<ul>\n");
    for t in triggers {
        let _ = writeln!(h, "<li><b>{}</b>: {}</li>", t.label(), hesc(&t.describe()));
    }
    h.push_str("</ul>\n");

    let active = sim.active_faults();
    h.push_str("<h2>Active faults</h2>\n");
    if active.is_empty() {
        h.push_str("<p>none</p>\n");
    } else {
        h.push_str("<table><tr><th>#</th><th>kind</th><th>service</th><th>window</th></tr>\n");
        for (idx, f) in &active {
            let _ = writeln!(
                h,
                "<tr><td>{idx}</td><td>{}</td><td>{}</td>\
                 <td>[{:.0}s, {:.0}s)</td></tr>",
                f.kind.label(),
                f.kind
                    .service()
                    .map_or("-".into(), |x| hesc(&topo.services()[x].name)),
                f.at.as_secs_f64(),
                f.until.as_secs_f64(),
            );
        }
        h.push_str("</table>\n");
    }

    h.push_str(
        "<h2>Replica state</h2>\n<table><tr><th>service</th><th>replicas</th>\
                <th>cores/replica</th><th>cpu util</th><th>occupancy</th>\
                <th>arrival rps</th></tr>\n",
    );
    for (i, svc) in snapshot.services.iter().enumerate() {
        let _ = writeln!(
            h,
            "<tr><td>{}</td><td>{}</td><td>{:.2}</td><td>{:.2}</td>\
             <td>{:.2}</td><td>{:.1}</td></tr>",
            hesc(&topo.services()[i].name),
            svc.replicas,
            svc.cores_per_replica,
            svc.cpu_utilization,
            sim.worker_occupancy(ServiceId(i)),
            svc.arrival_rps(snapshot.window),
        );
    }
    h.push_str("</table>\n");

    if let Some(r) = sim.flight_recorder() {
        let _ = writeln!(
            h,
            "<h2>Flight recorder (last {HTML_EVENT_TAIL} of {} held, {} dropped)</h2>\n\
             <table><tr><th>t (s)</th><th>seq</th><th>event</th></tr>",
            r.len(),
            r.dropped()
        );
        let skip = r.len().saturating_sub(HTML_EVENT_TAIL);
        for e in r.entries().skip(skip) {
            let _ = writeln!(
                h,
                "<tr><td>{:.6}</td><td>{}</td><td>{}</td></tr>",
                e.at.as_secs_f64(),
                e.seq,
                e.kind.label(),
            );
        }
        h.push_str("</table>\n");
    }

    if let Some(p) = sim.profiler() {
        let report = p.report();
        let _ = writeln!(
            h,
            "<h2>Engine phase profile ({} of {} events sampled, 1/{})</h2>\n\
             <table><tr><th>phase</th><th>sampled spans</th></tr>",
            report.events_sampled, report.events_seen, report.sample_every
        );
        // Counts only: wall-derived nanos would break bundle determinism.
        for st in report.phases.iter().filter(|st| st.count > 0) {
            let _ = writeln!(
                h,
                "<tr><td>{}</td><td>{}</td></tr>",
                st.phase.label(),
                st.count
            );
        }
        h.push_str("</table>\n");
    }
    h.push_str("</body></html>\n");
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn trigger_json_and_labels() {
        let t = Trigger::AnomalyReExplore {
            service: 3,
            violation_bps: 2150,
        };
        assert_eq!(t.label(), "anomaly-reexplore");
        assert!(t.to_json().contains("\"violation_bps\":2150"));
        let t = Trigger::SloAlert {
            class: "compose\"post".into(),
            severity: "page",
            short_burn: 14.5,
        };
        assert!(t.to_json().contains("compose\\\"post"));
        let t = Trigger::SnapshotAt { requested: 300.0 };
        assert!(t.to_json().contains("\"requested\":300"));
        assert!(!t.describe().is_empty());
    }

    #[test]
    fn flight_event_json_covers_kinds() {
        let kinds = [
            FlightEventKind::SourceNext { class: 1 },
            FlightEventKind::PsCheck {
                service: 2,
                replica: 0,
                live: true,
            },
            FlightEventKind::Scale {
                service: 1,
                from: 2,
                to: 4,
            },
            FlightEventKind::Harvest { in_flight: 7 },
            FlightEventKind::OomKill {
                service: 3,
                replica: 1,
            },
            FlightEventKind::Evict {
                service: 2,
                tier: 0,
            },
            FlightEventKind::MemRestart { service: 3 },
        ];
        for k in kinds {
            let j = flight_event_json(1.0, 9, &k);
            assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
            assert!(j.contains(&format!("\"kind\":\"{}\"", k.label())));
        }
    }
}
