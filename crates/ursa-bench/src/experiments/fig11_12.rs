//! **Figures 11 & 12** — SLA violation rates and average CPU allocation
//! across applications × load patterns × systems.
//!
//! The evaluation grid of §VII-E: four applications (social, vanilla
//! social, media, video pipeline), three load families (constant, dynamic
//! = diurnal & burst, skewed), five systems (Ursa, Sinan, Firm, Auto-a,
//! Auto-b). Figure 11 reports the SLA violation rate; Figure 12 the mean
//! total CPU allocation — both come from the same deployments, so this
//! module produces them together.
//!
//! Shape targets from the paper: Ursa ≤ a few percent violations
//! everywhere; ML systems 9–52 %; Auto-a cheap but > 40 % violations;
//! Auto-b SLA-safe but 44–148 % more CPU than Ursa.

use crate::{results_dir, LoadSpec, PreparedManagers, Scale, System, TsvTable};
use ursa_apps::{all_apps, App};
use ursa_sim::metrics::SimMetrics;

/// One grid cell's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Application name.
    pub app: String,
    /// Load scenario label.
    pub load: String,
    /// System label.
    pub system: String,
    /// Mean SLA violation rate across classes.
    pub violation_rate: f64,
    /// Mean total allocated CPU cores.
    pub avg_cores: f64,
}

/// Load scenarios per app, in paper order.
pub fn load_specs(app: &App) -> Vec<LoadSpec> {
    if app.name == "video" {
        // Priority-mix skews 40:60 and 60:40 (exploration used 50:50).
        vec![
            LoadSpec::Constant,
            LoadSpec::Diurnal,
            LoadSpec::Burst,
            LoadSpec::Skewed(40.0 / 60.0),
            LoadSpec::Skewed(60.0 / 40.0),
        ]
    } else {
        vec![
            LoadSpec::Constant,
            LoadSpec::Diurnal,
            LoadSpec::Burst,
            LoadSpec::Skewed(2.0),
            LoadSpec::Skewed(0.5),
        ]
    }
}

/// Enumerates one app's grid cells in paper order:
/// `(load index, load, system index)`.
pub fn cell_inputs(app: &App) -> Vec<(usize, LoadSpec, usize)> {
    let mut inputs = Vec::new();
    for (li, load) in load_specs(app).iter().enumerate() {
        for si in 0..System::ALL.len() {
            inputs.push((li, load.clone(), si));
        }
    }
    inputs
}

/// Runs the grid for one app with pre-trained managers, fanning cells
/// across the configured workers ([`crate::runner`]) and collecting them
/// back in paper order.
///
/// With `--metrics-dir` set, the constant-load row additionally exports
/// metrics artifacts per system (`fig11_12_<app>_<system>.{prom,csv,html}`),
/// including each controller's self-profiling series — one directly
/// comparable dashboard per competing system.
pub fn run_app(app: &App, managers: &PreparedManagers, scale: Scale, seed: u64) -> Vec<Cell> {
    let metrics_dir = crate::logging::metrics_dir();
    crate::runner::run_cells(cell_inputs(app), |_, (li, load, si)| {
        run_cell(
            app,
            managers,
            &load,
            System::ALL[si],
            scale,
            seed ^ ((li as u64) << 8) ^ si as u64,
            metrics_dir.as_deref(),
        )
    })
}

/// Runs one grid cell on a pristine clone of the trained managers. With
/// `metrics_dir` set, constant-load cells export their metrics artifacts.
fn run_cell(
    app: &App,
    managers: &PreparedManagers,
    load: &LoadSpec,
    system: System,
    scale: Scale,
    seed: u64,
    metrics_dir: Option<&std::path::Path>,
) -> Cell {
    let mut metrics = match (metrics_dir, load) {
        (Some(_), LoadSpec::Constant) => Some(SimMetrics::for_topology(
            system.label(),
            &app.topology,
            &app.slas,
        )),
        _ => None,
    };
    let report = managers.deploy_cell(app, system, load, scale, seed, metrics.as_mut());
    if let (Some(dir), Some(m)) = (metrics_dir, metrics.as_mut()) {
        let stem = format!("fig11_12_{}_{}", app.name, system.label());
        let title = format!(
            "Fig. 11/12 — {} on {} (constant load)",
            system.label(),
            app.name
        );
        match m.write_artifacts(dir, &stem, &title) {
            Ok(_) => crate::info!(
                "[fig11/12] wrote metrics artifacts {stem}.{{prom,csv,html}} under {}",
                dir.display()
            ),
            Err(e) => crate::warn!("[fig11/12] metrics export failed: {e}"),
        }
    }
    Cell {
        app: app.name.clone(),
        load: load.label(),
        system: system.label().to_string(),
        violation_rate: report.overall_violation_rate(),
        avg_cores: report.avg_cpu_allocation(),
    }
}

/// Runs the full grid over all four applications.
///
/// Phase 1 trains every app's managers in parallel; phase 2 flattens the
/// whole grid (app × load × system) into one cell list and fans it across
/// the workers, so a wide machine saturates even within a single app.
pub fn run(scale: Scale) -> Vec<Cell> {
    println!("== Figures 11 & 12: SLA violations and CPU allocation ==");
    let apps = all_apps();
    crate::info!(
        "[fig11/12] preparing managers for {} apps ({} workers) ...",
        apps.len(),
        crate::runner::jobs()
    );
    let managers: Vec<PreparedManagers> =
        crate::runner::run_cells((0..apps.len()).collect(), |_, ai| {
            PreparedManagers::prepare(&apps[ai], scale, 0x11_12 + ai as u64)
        });
    let metrics_dir = crate::logging::metrics_dir();
    let mut inputs: Vec<(usize, usize, LoadSpec, usize)> = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        for (li, load, si) in cell_inputs(app) {
            inputs.push((ai, li, load, si));
        }
    }
    crate::info!("[fig11/12] deploying {} cells ...", inputs.len());
    let cells: Vec<Cell> = crate::runner::run_cells(inputs, |_, (ai, li, load, si)| {
        run_cell(
            &apps[ai],
            &managers[ai],
            &load,
            System::ALL[si],
            scale,
            (0xDE_9107 + ai as u64) ^ ((li as u64) << 8) ^ si as u64,
            metrics_dir.as_deref(),
        )
    });
    let mut table = TsvTable::new(
        "fig11_12",
        &["app", "load", "system", "violation_rate", "avg_cores"],
    );
    for c in &cells {
        table.row(vec![
            c.app.clone(),
            c.load.clone(),
            c.system.clone(),
            format!("{:.4}", c.violation_rate),
            format!("{:.1}", c.avg_cores),
        ]);
    }
    print!("{}", table.render());
    let _ = table.write_tsv(&results_dir().join("fig11_12"));

    // Headline aggregates, paper-style.
    for system in System::ALL {
        let sys_cells: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.system == system.label())
            .collect();
        let mean_viol =
            sys_cells.iter().map(|c| c.violation_rate).sum::<f64>() / sys_cells.len().max(1) as f64;
        let mean_cores =
            sys_cells.iter().map(|c| c.avg_cores).sum::<f64>() / sys_cells.len().max(1) as f64;
        println!(
            "{:>7}: mean violation rate {:>6.2}%  mean CPU {:>7.1} cores",
            system.label(),
            100.0 * mean_viol,
            mean_cores
        );
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_apps::social_network;

    /// A reduced version of the §VII-E comparison on the vanilla social
    /// network: Ursa must beat the ML baselines on violations under the
    /// exploration mix, and Auto-b must burn more CPU than Ursa while
    /// staying SLA-safe-ish.
    #[test]
    fn headline_comparison_vanilla_social() {
        let app = social_network(true);
        let mut managers = PreparedManagers::prepare(&app, Scale::Quick, 0xCAFE);
        let load = LoadSpec::Constant;
        let ursa = managers.deploy(&app, System::Ursa, &load, Scale::Quick, 1);
        let sinan = managers.deploy(&app, System::Sinan, &load, Scale::Quick, 2);
        let firm = managers.deploy(&app, System::Firm, &load, Scale::Quick, 3);
        let auto_b = managers.deploy(&app, System::AutoB, &load, Scale::Quick, 4);

        let vr = |r: &ursa_sim::control::DeploymentReport| r.overall_violation_rate();
        assert!(vr(&ursa) <= 0.10, "ursa violations {:.3}", vr(&ursa));
        // Ursa no worse than the ML-driven systems.
        assert!(
            vr(&ursa) <= vr(&sinan) + 0.02 && vr(&ursa) <= vr(&firm) + 0.02,
            "ursa {:.3} vs sinan {:.3} firm {:.3}",
            vr(&ursa),
            vr(&sinan),
            vr(&firm)
        );
        // Auto-b: safe but expensive relative to Ursa.
        assert!(vr(&auto_b) <= 0.25, "auto-b violations {:.3}", vr(&auto_b));
        assert!(
            auto_b.avg_cpu_allocation() > ursa.avg_cpu_allocation(),
            "auto-b {} cores vs ursa {}",
            auto_b.avg_cpu_allocation(),
            ursa.avg_cpu_allocation()
        );
    }

    /// Every system's constant-load cell exports metrics artifacts whose
    /// Prometheus dump carries that controller's self-profiling series —
    /// the control planes stay comparable side by side.
    #[test]
    fn constant_cells_export_self_profiles_per_system() {
        let app = social_network(true);
        let managers = PreparedManagers::prepare(&app, Scale::Quick, 0x11FE);
        let dir = std::env::temp_dir().join(format!("ursa-fig1112-metrics-{}", std::process::id()));
        for (i, system) in System::ALL.iter().enumerate() {
            let cell = run_cell(
                &app,
                &managers,
                &LoadSpec::Constant,
                *system,
                Scale::Quick,
                0x51 + i as u64,
                Some(&dir),
            );
            assert_eq!(cell.system, system.label());
            let stem = format!("fig11_12_{}_{}", app.name, system.label());
            let prom = std::fs::read_to_string(dir.join(format!("{stem}.prom"))).unwrap();
            assert!(
                prom.contains(&format!("system=\"{}\"", system.label())),
                "{stem}: missing system label"
            );
            assert!(prom.contains("ctrl_ticks_total"), "{stem}: no tick counter");
            let profile_series = match system {
                System::Ursa => "ctrl_recalcs_total",
                System::Sinan => "ctrl_candidates_evaluated_total",
                System::Firm => "ctrl_training_samples_total",
                System::AutoA | System::AutoB => "ctrl_scale_outs_total",
            };
            assert!(
                prom.contains(profile_series),
                "{stem}: missing self-profile series {profile_series}"
            );
            let html = std::fs::read_to_string(dir.join(format!("{stem}.html"))).unwrap();
            assert!(html.contains("<svg") && !html.contains("<script"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
