//! **Figure 14 / §VII-G** — adapting to business-logic changes.
//!
//! The social network's object-detection service swaps its model from DETR
//! (heavy) to MobileNet (light). Ursa's anomaly-driven response: partially
//! re-explore *only* the changed service (the paper: 75 samples, 1.25 h),
//! recalculate the LPR thresholds, and keep serving the SLA. The figure
//! shows CDFs of the end-to-end object-detect p99 before and after the
//! swap, both within SLA (paper: 0.62 % and 0.50 % violation rates).

use crate::{default_rates, prepare_ursa, results_dir, Scale, TsvTable};
use ursa_apps::social_network;
use ursa_sim::control::{run_deployment, DeployConfig};
use ursa_sim::time::SimDur;
use ursa_sim::workload::RateFn;

/// Work-scale factor modelling the DETR → MobileNet swap (MobileNet is
/// roughly 4× lighter).
pub const MOBILENET_SCALE: f64 = 0.25;

/// Experiment outcome.
#[derive(Debug, Clone)]
pub struct AdaptationResult {
    /// Violation rate of the object-detect class before the swap.
    pub violation_before: f64,
    /// Violation rate after re-exploration, running MobileNet.
    pub violation_after: f64,
    /// Samples consumed by the partial re-exploration.
    pub reexploration_samples: usize,
    /// Simulated hours of the partial re-exploration.
    pub reexploration_hours: f64,
    /// Sorted p99-window samples before (for the CDF).
    pub p99_before: Vec<f64>,
    /// Sorted p99-window samples after.
    pub p99_after: Vec<f64>,
}

/// Runs the adaptation experiment.
pub fn run(scale: Scale) -> AdaptationResult {
    println!("== Figure 14 / §VII-G: adapting to a service-logic change ==");
    let app = social_network(false);
    let detect_class = app.class("object-detect").expect("class exists");
    let detect_svc = app.service("object-detect").expect("service exists");
    let sla = app.sla_of(detect_class).expect("sla exists");
    let rates = default_rates(&app);
    let ursa = prepare_ursa(&app, scale, 0x000F_1614);

    let duration = match scale {
        Scale::Quick => SimDur::from_mins(14),
        Scale::Full => SimDur::from_mins(40),
    };
    let deploy_cfg = DeployConfig {
        duration,
        control_interval: SimDur::from_mins(1),
        warmup: SimDur::from_mins(2),
        collect_samples: false,
    };
    let windows_p99 = |report: &ursa_sim::control::DeploymentReport| -> Vec<f64> {
        let mut v: Vec<f64> = report
            .records
            .iter()
            .filter_map(|r| r.class_latency[detect_class.0])
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    };

    // The three phases depend on each other (the re-exploration consumes
    // phase 1's manager, phase 3 deploys the refreshed one), so the whole
    // experiment is a single cell of the runner — sequential under any
    // `--jobs`.
    let (before, stats, after) = crate::runner::run_cells(vec![ursa], |_, mut ursa| {
        // Phase 1: deploy with the original DETR-scale model.
        let mut sim = app.build_sim(0xBEF0E);
        app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
        ursa.apply_initial_allocation(&rates, &mut sim);
        let before = run_deployment(&mut sim, &app.slas, &mut ursa, &deploy_cfg);

        // Phase 2: the operators deploy MobileNet — the service gets ~4x
        // lighter. Ursa partially re-explores only that service and
        // re-solves.
        let stats = ursa
            .re_explore(detect_svc.0, MOBILENET_SCALE, &rates)
            .expect("re-exploration feasible");

        // Phase 3: deploy the updated application with the refreshed model.
        let mut sim = app.build_sim(0xAF7E5);
        sim.set_work_scale(detect_svc, MOBILENET_SCALE);
        app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
        ursa.apply_initial_allocation(&rates, &mut sim);
        let after = run_deployment(&mut sim, &app.slas, &mut ursa, &deploy_cfg);
        (before, stats, after)
    })
    .pop()
    .expect("single cell");
    let violation_before = before.class_violation_rate(detect_class);
    let p99_before = windows_p99(&before);
    let violation_after = after.class_violation_rate(detect_class);
    let p99_after = windows_p99(&after);

    // Emit the CDFs.
    for (name, data) in [("before", &p99_before), ("after", &p99_after)] {
        let mut table = TsvTable::new(&format!("fig14_cdf_{name}"), &["p99_s", "cdf"]);
        for (i, v) in data.iter().enumerate() {
            table.row(vec![
                format!("{v:.3}"),
                format!("{:.4}", (i + 1) as f64 / data.len() as f64),
            ]);
        }
        let _ = table.write_tsv(&results_dir().join("fig14"));
    }

    let result = AdaptationResult {
        violation_before,
        violation_after,
        reexploration_samples: stats.samples,
        reexploration_hours: stats.time.as_secs_f64() / 3600.0,
        p99_before,
        p99_after,
    };
    println!(
        "partial re-exploration: {} samples in {:.2} simulated hours (service: object-detect)",
        result.reexploration_samples, result.reexploration_hours
    );
    println!(
        "object-detect violation rate: before {:.2}%, after {:.2}% (SLA p99 <= {}s)",
        100.0 * result.violation_before,
        100.0 * result.violation_after,
        sla.target
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §VII-G's claims: the partial re-exploration is small (tens of
    /// samples, a fraction of the initial exploration) and SLA compliance
    /// holds both before and after the logic change.
    #[test]
    fn adapts_to_model_swap() {
        let r = run(Scale::Quick);
        assert!(r.violation_before <= 0.15, "before {}", r.violation_before);
        assert!(r.violation_after <= 0.15, "after {}", r.violation_after);
        assert!(
            r.reexploration_samples < 200,
            "partial exploration used {} samples",
            r.reexploration_samples
        );
        assert!(!r.p99_before.is_empty() && !r.p99_after.is_empty());
        // MobileNet is lighter: the post-swap latency distribution should
        // sit well below the pre-swap one.
        let med = |v: &[f64]| v[v.len() / 2];
        assert!(
            med(&r.p99_after) < med(&r.p99_before),
            "after {} !< before {}",
            med(&r.p99_after),
            med(&r.p99_before)
        );
    }
}
