//! **Table V** — exploration overhead: samples and time, Ursa vs ML-driven.
//!
//! Ursa's numbers are *measured* by running its offline phase (profiling +
//! Algorithm-1 exploration) on each application; samples sum over services
//! and time is the longest single service (services explore in parallel).
//! Sinan/Firm numbers follow their published protocol — 10 000 samples at
//! one per minute = 166.7 h — exactly as the paper charges them; Quick
//! scale also runs a reduced-size collection to demonstrate the pipeline.

use crate::{prepare_ursa, results_dir, Scale, TsvTable};
use ursa_apps::{media_service, social_network, video_pipeline, App};

/// Ursa-vs-ML overhead for one application.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Application name.
    pub app: String,
    /// Ursa's measured sample count.
    pub ursa_samples: usize,
    /// Ursa's measured exploration time in (simulated) hours.
    pub ursa_hours: f64,
    /// The ML protocol's sample count (Sinan's recipe, also used for Firm).
    pub ml_samples: usize,
    /// The ML protocol's collection time in hours (1 sample/minute).
    pub ml_hours: f64,
}

/// The ML-driven protocol constants from the paper.
pub const ML_SAMPLES: usize = 10_000;
/// 10 000 minutes.
pub const ML_HOURS: f64 = 166.7;

/// Measures Ursa's exploration overhead on one app.
pub fn measure_app(app: &App, scale: Scale, seed: u64) -> OverheadRow {
    let ursa = prepare_ursa(app, scale, seed);
    let stats = ursa.offline_stats();
    OverheadRow {
        app: app.name.clone(),
        ursa_samples: stats.exploration_samples,
        ursa_hours: stats.exploration_time.as_secs_f64() / 3600.0,
        ml_samples: ML_SAMPLES,
        ml_hours: ML_HOURS,
    }
}

/// Runs the full table.
pub fn run(scale: Scale) -> Vec<OverheadRow> {
    println!("== Table V: exploration overhead ==");
    let apps = [social_network(false), media_service(), video_pipeline(0.5)];
    let mut table = TsvTable::new(
        "table5",
        &[
            "app",
            "ursa_samples",
            "ursa_hours",
            "ml_samples",
            "ml_hours",
            "sample_reduction",
            "time_reduction",
        ],
    );
    // One independent cell per application.
    let rows = crate::runner::run_cells(apps.to_vec(), |i, app| {
        measure_app(&app, scale, 0x7AB5 + i as u64)
    });
    for row in &rows {
        table.row(vec![
            row.app.clone(),
            row.ursa_samples.to_string(),
            format!("{:.2}", row.ursa_hours),
            row.ml_samples.to_string(),
            format!("{:.1}", row.ml_hours),
            format!("{:.1}x", row.ml_samples as f64 / row.ursa_samples as f64),
            format!("{:.1}x", row.ml_hours / row.ursa_hours),
        ]);
    }
    print!("{}", table.render());
    println!("(ML protocol: 10 000 samples at 1/min per Sinan's recipe; Ursa measured on this substrate.)");
    let _ = table.write_tsv(&results_dir().join("table5"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's headline: >16x fewer samples and >128x less time. At
    /// Quick scale our exploration windows are shorter than the paper's
    /// 1/min, so we check the sample ratio and that time is parallel
    /// (longest service) rather than summed.
    #[test]
    fn ursa_exploration_is_orders_cheaper() {
        let app = social_network(true);
        let row = measure_app(&app, Scale::Quick, 3);
        assert!(
            row.ursa_samples * 10 < ML_SAMPLES,
            "ursa used {} samples",
            row.ursa_samples
        );
        assert!(
            row.ursa_hours < ML_HOURS / 50.0,
            "ursa hours {}",
            row.ursa_hours
        );
        assert!(row.ursa_samples > 0 && row.ursa_hours > 0.0);
    }
}
