//! **`--exp qos`** — the resource-plane experiment: every system of
//! §VII-B under a memory-pressure sweep on the full social network, with
//! Kubernetes-style requests/limits, QoS tiers, OOM-kill, and pressure
//! eviction supplied by the [`ursa_k8s`] plane.
//!
//! The pod templates (and therefore the annotated topology and the
//! prepared managers) are *identical* across pressure levels — only the
//! node memory capacity and the leak term of the profile sweep:
//!
//! * `ample` — 32 GiB nodes, no leak: the control row, memory never
//!   matters;
//! * `tight` — 3 GiB nodes: working sets crowd the nodes, pressure
//!   eviction and noisy-neighbor throttling appear;
//! * `overcommit` — 2 GiB nodes plus a slow heap leak on the sentiment
//!   model: its usage crosses the 448 MiB limit every couple of minutes,
//!   so the kubelet-style OOM-killer fires repeatedly.
//!
//! Each cell reports SLA violations, mean allocated cores, the memory
//! incident counters (OOM-kills, evictions by tier), peak node memory
//! utilization, and total noisy-neighbor throttle time — all read back
//! from the scraped metrics store, so the table exercises the same
//! pipeline the dashboards use. A `mip` column runs the 2-D allocator
//! ([`ursa_mip::solve_2d`]) against the level's node pool: the SLA forces
//! the limit-sized option everywhere, and the column records whether that
//! allocation packs onto the nodes (`overcommit` is deliberately
//! unpackable — the 2.5 GiB post-store limit exceeds a 2 GiB node).
//!
//! The whole grid runs on the shared cell runner: rows are byte-identical
//! for any `--jobs` value at a fixed `--seed` (enforced by
//! `tests/qos_determinism.rs`).

use crate::postmortem::PostmortemObserver;
use crate::runner::run_cells;
use crate::{
    f3, logging, manifest, pct, results_dir, LoadSpec, PreparedManagers, Scale, System, TsvTable,
};
use ursa_apps::{social_network, App};
use ursa_k8s::{EvictionPolicy, K8sPlane, PodTemplate, GIB, MIB};
use ursa_metrics::{Labels, SeriesKey};
use ursa_mip::{
    solve_2d, LatencyMatrix, Model2d, NodeCapacity, ResourceCost, ServiceModel2d, SlaConstraint,
    Weights,
};
use ursa_sim::control::DeploymentReport;
use ursa_sim::memory::MemPlan;
use ursa_sim::metrics::SimMetrics;

/// Seed base for the qos grid (mixed with the global `--seed`).
const QOS_SEED: u64 = 0xA110_C8ED;

/// Experiment outcome.
#[derive(Debug, Clone)]
pub struct QosResult {
    /// The rendered grid (TSV content, also written to
    /// `results/qos/qos_grid.tsv`).
    pub tsv: String,
    /// Total OOM-kills across all cells (nonzero iff the overcommit row
    /// did its job).
    pub oom_kills: u64,
}

/// One memory-pressure level of the sweep. Templates never change across
/// levels — only node capacity and the sentiment model's leak rate.
#[derive(Debug, Clone, Copy)]
pub struct PressureLevel {
    /// Row label.
    pub name: &'static str,
    /// Allocatable memory per node.
    pub node_mem: u64,
    /// Heap-leak rate on the sentiment service (bytes/s; 0 = none).
    pub leak_bytes_per_sec: f64,
}

/// The sweep, mildest first.
pub fn levels() -> [PressureLevel; 3] {
    [
        PressureLevel {
            name: "ample",
            node_mem: 32 * GIB,
            leak_bytes_per_sec: 0.0,
        },
        PressureLevel {
            name: "tight",
            node_mem: 3 * GIB,
            leak_bytes_per_sec: 0.0,
        },
        PressureLevel {
            name: "overcommit",
            node_mem: 2 * GIB,
            leak_bytes_per_sec: 1.5 * MIB as f64,
        },
    ]
}

/// The resource plane for one pressure level: a three-tier QoS story on
/// the full social network. The interactive path (frontend,
/// timeline-read) is Guaranteed, the mid tier is Burstable, and the
/// offline-ish tiers (image-store, object-detect) run BestEffort so they
/// are first against the wall under node pressure.
pub fn qos_plane(level: &PressureLevel) -> K8sPlane {
    let mut sentiment =
        PodTemplate::burstable(1.0, 4.0, 256 * MIB, 448 * MIB).with_memory(256 * MIB, 2 * MIB);
    if level.leak_bytes_per_sec > 0.0 {
        sentiment = sentiment.with_leak(level.leak_bytes_per_sec);
    }
    let guaranteed = PodTemplate::guaranteed(2.0, 512 * MIB).with_memory(160 * MIB, MIB);
    let mid = |mem_limit: u64| {
        PodTemplate::burstable(1.0, 4.0, 192 * MIB, mem_limit).with_memory(128 * MIB, MIB)
    };
    K8sPlane::new()
        .pool(4, 16.0, level.node_mem)
        .policy(EvictionPolicy {
            pressure_threshold: 0.92,
            interference_threshold: 0.80,
            interference_factor: 1.35,
            ..EvictionPolicy::default()
        })
        .pod("frontend", guaranteed)
        .pod("timeline-read", guaranteed)
        .pod("compose-post", mid(GIB))
        // The fattest limit in the fleet: exceeds an overcommit node
        // outright, which is what makes the MIP's packing check fail
        // there.
        .pod("post-store", mid(2560 * MIB))
        .pod("social-graph", mid(GIB))
        .pod("timeline-update", mid(GIB))
        .pod(
            "image-store",
            PodTemplate::best_effort().with_memory(96 * MIB, MIB),
        )
        .pod("sentiment", sentiment)
        .pod(
            "object-detect",
            PodTemplate::best_effort().with_memory(192 * MIB, 2 * MIB),
        )
}

/// Lowers a plane into a 2-D allocation model. Every templated service
/// gets two LPR options — `lean` sized at its requests, `rich` at its
/// limits (BestEffort services derive both from the demand profile) —
/// and the single-class SLA target (140 ms against 9 × 15 ms rich /
/// 9 × 30 ms lean) forces the rich option everywhere, so the packing
/// feasibility answer is about the *limits* fitting the level's nodes.
pub fn mip_model(plane: &K8sPlane) -> Model2d {
    let services = plane
        .templates()
        .iter()
        .map(|(name, t)| {
            let (lean, rich) = match t.resources {
                Some(spec) => (
                    ResourceCost::new(spec.cpu_request, spec.mem_request as f64),
                    ResourceCost::new(spec.cpu_limit, spec.mem_limit as f64),
                ),
                None => {
                    let base = t
                        .profile
                        .map_or(64.0 * MIB as f64, |p| p.baseline_bytes as f64);
                    (
                        ResourceCost::new(0.5, base),
                        ResourceCost::new(1.0, 2.0 * base),
                    )
                }
            };
            ServiceModel2d {
                name: name.clone(),
                cost: vec![lean, rich],
                latency: vec![Some(LatencyMatrix::new(2, 1, vec![0.030, 0.015]))],
            }
        })
        .collect();
    let nodes = plane
        .pools()
        .iter()
        .flat_map(|p| std::iter::repeat_n(NodeCapacity::new(p.cores, p.mem_bytes as f64), p.count))
        .collect();
    // One p99.9 grid point: the percentile-residual budget
    // `Σ (100 − 99.9) = 0.9 ≤ 100 − 99` admits all nine services under a
    // p99 end-to-end SLA (a p99-only grid would be structurally
    // infeasible past one service).
    Model2d {
        percentiles: vec![99.9],
        services,
        constraints: vec![SlaConstraint {
            class: 0,
            percentile: 99.0,
            target: 0.140,
        }],
        nodes,
        weights: Weights::default(),
    }
}

/// The `mip` column for one level: does the SLA-optimal 2-D allocation
/// pack onto the level's nodes?
pub fn mip_verdict(level: &PressureLevel) -> String {
    match solve_2d(&mip_model(&qos_plane(level))) {
        Ok(sol) if sol.placement.is_some() => "packed".into(),
        Ok(_) => "unpackable".into(),
        Err(e) => format!("error({e})"),
    }
}

/// Memory-plane statistics read back from a cell's scraped metrics store
/// (the counters are per-window and cumulative in the store, so the last
/// scraped value is the run total).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// OOM-kills over the run.
    pub oom_kills: u64,
    /// Pressure evictions by tier: `[besteffort, burstable, guaranteed]`.
    pub evictions: [u64; 3],
    /// Peak node memory utilization across nodes and windows.
    pub max_node_util: f64,
    /// Total noisy-neighbor throttle seconds across services.
    pub throttle_secs: f64,
}

/// Extracts [`MemStats`] from a scraped [`SimMetrics`] store.
pub fn mem_stats(metrics: &SimMetrics) -> MemStats {
    let store = metrics.store();
    let last = |name: &str, labels: Labels| -> f64 {
        store
            .values(&SeriesKey::new(name, labels))
            .and_then(|v| v.iter().rev().find(|x| x.is_finite()).copied())
            .unwrap_or(0.0)
    };
    let mut s = MemStats {
        oom_kills: last("mem_oom_kills_total", Labels::empty()) as u64,
        ..MemStats::default()
    };
    for (i, tier) in ["besteffort", "burstable", "guaranteed"].iter().enumerate() {
        s.evictions[i] = last("mem_evictions_total", Labels::new(&[("tier", tier)])) as u64;
    }
    for (_, col) in store.series_named("node_mem_util") {
        for v in col {
            if v.is_finite() {
                s.max_node_util = s.max_node_util.max(*v);
            }
        }
    }
    // Throttle is a per-window gauge, so the run total is the column sum.
    for (_, col) in store.series_named("service_mem_throttle_secs") {
        s.throttle_secs += col.iter().filter(|v| v.is_finite()).sum::<f64>();
    }
    s
}

/// Overall SLA violation fraction across a report's windows.
fn viol_frac(report: &DeploymentReport) -> f64 {
    let mut pairs = 0usize;
    let mut bad = 0usize;
    for r in &report.records {
        for v in r.class_violation.iter().flatten() {
            pairs += 1;
            bad += *v as usize;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        bad as f64 / pairs as f64
    }
}

/// Mean allocated cores across a report's windows.
fn mean_cores(report: &DeploymentReport) -> f64 {
    if report.records.is_empty() {
        return 0.0;
    }
    report.records.iter().map(|r| r.total_cores).sum::<f64>() / report.records.len() as f64
}

/// Runs one grid cell, returning the rendered table row.
pub fn run_cell(
    app: &App,
    managers: &PreparedManagers,
    plans: &[(PressureLevel, MemPlan, String)],
    li: usize,
    si: usize,
    scale: Scale,
) -> Vec<String> {
    let (level, plan, mip) = &plans[li];
    let system = System::ALL[si];
    let seed = QOS_SEED ^ ((li as u64) << 8) ^ si as u64;
    let mut mgrs = managers.clone();
    // Every cell scrapes metrics — the memory columns are read back from
    // the store. `--postmortem-dir` additionally arms the flight-recorder
    // bundle pipeline on the Ursa cells; observation is non-perturbing,
    // so rows stay byte-identical either way.
    let mut metrics = SimMetrics::for_topology(system.label(), &app.topology, &app.slas);
    let postmortem_dir = (system == System::Ursa)
        .then(logging::postmortem_dir)
        .flatten();
    let report = if let Some(dir) = postmortem_dir {
        let mut obs = PostmortemObserver::new(
            &dir,
            &format!("qos-{}-{}", level.name, system.label()),
            logging::snapshot_at(),
        );
        mgrs.deploy_observed_full(
            app,
            system,
            &LoadSpec::Constant,
            scale,
            seed,
            None,
            Some(plan),
            Some(&mut metrics),
            Some(&mut obs),
        )
    } else {
        mgrs.deploy_observed_full(
            app,
            system,
            &LoadSpec::Constant,
            scale,
            seed,
            None,
            Some(plan),
            Some(&mut metrics),
            None,
        )
    };
    if system == System::Ursa {
        manifest::note_decisions(
            &format!("qos-{}-{}", level.name, system.label()),
            mgrs.ursa.decisions(),
        );
    }
    let m = mem_stats(&metrics);
    vec![
        level.name.into(),
        system.label().into(),
        pct(viol_frac(&report)),
        f3(mean_cores(&report)),
        m.oom_kills.to_string(),
        m.evictions[0].to_string(),
        m.evictions[1].to_string(),
        m.evictions[2].to_string(),
        f3(m.max_node_util),
        f3(m.throttle_secs),
        mip.clone(),
    ]
}

/// Runs the memory-pressure grid.
pub fn run(scale: Scale) -> QosResult {
    println!("== qos: memory pressure sweep, every system x every pressure level ==");
    let mut app = social_network(false);
    // Templates are level-invariant, so one annotation covers the sweep
    // and the managers are prepared once against the annotated topology.
    app.topology = qos_plane(&levels()[0])
        .annotate(app.topology)
        .expect("annotate");
    let managers = PreparedManagers::prepare(&app, scale, QOS_SEED);
    manifest::note_topology_digest(app.topology.digest());
    let plans: Vec<(PressureLevel, MemPlan, String)> = levels()
        .into_iter()
        .map(|level| {
            let plan = qos_plane(&level).mem_plan(&app.topology).expect("mem_plan");
            manifest::note_mem_digest(level.name, plan.digest());
            let verdict = mip_verdict(&level);
            (level, plan, verdict)
        })
        .collect();
    let inputs: Vec<(usize, usize)> = (0..plans.len())
        .flat_map(|li| (0..System::ALL.len()).map(move |si| (li, si)))
        .collect();
    let rows = run_cells(inputs, |_, (li, si)| {
        run_cell(&app, &managers, &plans, li, si, scale)
    });
    let mut table = TsvTable::new(
        "qos_grid",
        &[
            "level",
            "system",
            "viol",
            "mean_cores",
            "oom_kills",
            "evict_be",
            "evict_bu",
            "evict_g",
            "max_node_util",
            "throttle_s",
            "mip",
        ],
    );
    let mut oom_kills = 0u64;
    for row in rows {
        oom_kills += row[4].parse::<u64>().unwrap_or(0);
        table.row(row);
    }
    print!("{}", table.render());
    let _ = table.write_tsv(&results_dir().join("qos"));
    println!(
        "total OOM-kills across the grid: {oom_kills} \
         (the overcommit row's leaking sentiment model)"
    );
    QosResult {
        tsv: table.to_tsv(),
        oom_kills,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_baselines::Autoscaler;
    use ursa_sim::control::{run_deployment_observed, DeployConfig};
    use ursa_sim::time::SimDur;
    use ursa_sim::workload::RateFn;

    /// Deploys one autoscaled run against a pressure level and returns
    /// the scraped memory stats (cheap: no manager training).
    fn deploy_level(level: &PressureLevel) -> MemStats {
        let mut app = social_network(false);
        let plane = qos_plane(level);
        app.topology = plane.annotate(app.topology).unwrap();
        let plan = plane.mem_plan(&app.topology).unwrap();
        let mut sim = app.build_sim(QOS_SEED);
        sim.install_memory_plane(&plan);
        app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
        let mut auto = Autoscaler::auto_a(app.topology.services().len());
        let mut metrics = SimMetrics::for_topology("auto-a", &app.topology, &app.slas);
        let cfg = DeployConfig {
            duration: Scale::Quick.deploy_duration(),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(2),
            collect_samples: false,
        };
        run_deployment_observed(
            &mut sim,
            &app.slas,
            &mut auto,
            &cfg,
            Some(&mut metrics),
            None,
        );
        mem_stats(&metrics)
    }

    /// The acceptance-criterion path: the overcommit level's leaking
    /// sentiment model is OOM-killed repeatedly, and the kubelet eviction
    /// order holds — Guaranteed pods are never evicted before BestEffort
    /// ones.
    #[test]
    fn overcommit_oom_kills_and_respects_qos_order() {
        let lv = levels();
        let stats = deploy_level(&lv[2]);
        assert!(
            stats.oom_kills > 0,
            "the leak must cross the sentiment limit: {stats:?}"
        );
        assert!(
            stats.evictions[2] == 0 || stats.evictions[0] > 0,
            "Guaranteed evicted before BestEffort: {stats:?}"
        );
        assert!(stats.max_node_util > 0.0, "node gauges must move");
    }

    /// The control row stays incident-free: with 32 GiB nodes and no
    /// leak, nothing is killed, evicted, or throttled.
    #[test]
    fn ample_level_is_incident_free() {
        let lv = levels();
        let stats = deploy_level(&lv[0]);
        assert_eq!(stats.oom_kills, 0, "{stats:?}");
        assert_eq!(stats.evictions, [0, 0, 0], "{stats:?}");
        assert_eq!(stats.throttle_secs, 0.0, "{stats:?}");
        assert!(stats.max_node_util > 0.0 && stats.max_node_util < 0.5);
    }

    /// The 2-D MIP solves on every level; the allocation packs on ample
    /// and tight nodes but not on overcommit ones (the 2.5 GiB post-store
    /// limit exceeds a 2 GiB node).
    #[test]
    fn mip_packs_except_under_overcommit() {
        let lv = levels();
        assert_eq!(mip_verdict(&lv[0]), "packed");
        assert_eq!(mip_verdict(&lv[1]), "packed");
        assert_eq!(mip_verdict(&lv[2]), "unpackable");
        // The forced choice really is the rich option everywhere.
        let sol = solve_2d(&mip_model(&qos_plane(&lv[0]))).unwrap();
        assert!(sol.base.lpr_choice.iter().all(|&a| a == 1));
    }

    /// The topology annotation is level-invariant, which is what lets
    /// the grid prepare managers once for the whole sweep.
    #[test]
    fn annotation_is_level_invariant() {
        let digests: Vec<u64> = levels()
            .iter()
            .map(|level| {
                let app = social_network(false);
                qos_plane(level).annotate(app.topology).unwrap().digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }
}
