//! **`--exp chaos`** — the resilience experiment: every system of §VII-B
//! versus every fault kind of the `ursa-chaos` plane, on the full social
//! network.
//!
//! Each cell deploys one system under constant load with one fault
//! scenario installed (a mid-run window for the one-shot kinds, a Poisson
//! MTBF/MTTR process for the `flaky-crash` row) and reports SLA violation
//! rates before/during/after the fault, the time from recovery-edge to the
//! first sustained violation-free window, the steady-state allocation
//! overshoot versus the pre-fault baseline, and — for Ursa — how many
//! latency-anomaly re-explorations the fault provoked (visible in the
//! `DecisionLog` as `anomaly-reexplore` records).
//!
//! The whole grid runs on the shared cell runner: rows are byte-identical
//! for any `--jobs` value at a fixed `--seed` (enforced by
//! `tests/chaos_determinism.rs`).

use crate::postmortem::PostmortemObserver;
use crate::runner::run_cells;
use crate::{
    f3, logging, manifest, pct, results_dir, LoadSpec, PreparedManagers, Scale, System, TsvTable,
};
use ursa_apps::{social_network, App};
use ursa_chaos::Scenario;
use ursa_core::decision_log::DecisionKind;
use ursa_sim::chaos::{FaultKind, FaultPlan};
use ursa_sim::control::DeploymentReport;
use ursa_sim::metrics::SimMetrics;
use ursa_sim::time::{SimDur, SimTime};

/// Seed base for the chaos grid (mixed with the global `--seed`).
const CHAOS_SEED: u64 = 0xC4A0_5C11;

/// Experiment outcome.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// The rendered resilience table (TSV content, also written to
    /// `results/chaos/chaos_resilience.tsv`).
    pub tsv: String,
    /// Total `anomaly-reexplore` decisions across Ursa's rows.
    pub ursa_reexplorations: usize,
}

/// The fault scenarios of the grid, compiled into concrete plans for one
/// scale. Kinds cover all five fault primitives plus one stochastic
/// (Poisson MTBF/MTTR) row exercising the renewal-process path.
pub fn fault_plans(app: &App, scale: Scale) -> Vec<(String, FaultPlan)> {
    let svc = |name: &str| app.service(name).unwrap_or_else(|| panic!("{name}")).0;
    let post_store = svc("post-store");
    let social_graph = svc("social-graph");
    let sentiment = svc("sentiment");
    let object_detect = svc("object-detect");
    // A mid-run window, long enough to outlast the anomaly detector's
    // patience (3 one-minute control windows), with room to recover.
    let (start, dur) = match scale {
        Scale::Quick => (SimDur::from_mins(5), SimDur::from_mins(4)),
        Scale::Full => (SimDur::from_mins(12), SimDur::from_mins(12)),
    };
    let horizon = scale.deploy_duration();
    let scenarios = vec![
        // Noisy neighbor on a service every interactive class traverses.
        Scenario::new("slowdown").one_shot(
            start,
            dur,
            FaultKind::Slowdown {
                service: post_store,
                factor: 6.0,
            },
        ),
        // The heavy ML tier loses all but one replica.
        Scenario::new("replica-crash").one_shot(
            start,
            dur,
            FaultKind::ReplicaCrash {
                service: object_detect,
                count: 99,
            },
        ),
        // A whole machine dies, taking co-located replicas across services.
        Scenario::new("node-failure").one_shot(start, dur, FaultKind::NodeFailure { node: 0 }),
        // Degraded RPC edge toward a fan-out dependency: latency spike,
        // 30 % drops, 100 ms timeout, up to 3 retries with backoff.
        Scenario::new("rpc-fault").one_shot(
            start,
            dur,
            FaultKind::RpcFault {
                service: social_graph,
                extra_delay: SimDur::from_millis(30),
                drop_prob: 0.3,
                timeout: SimDur::from_millis(100),
                max_retries: 3,
            },
        ),
        // Broker stall on the MQ feeding the sentiment model.
        Scenario::new("mq-stall").one_shot(start, dur, FaultKind::MqStall { service: sentiment }),
        // Crash-looping replica: Poisson failures, exponential repair.
        Scenario::new("flaky-crash").stochastic(
            SimDur::from_mins(3),
            SimDur::from_secs(30),
            FaultKind::ReplicaCrash {
                service: post_store,
                count: 1,
            },
        ),
    ];
    scenarios
        .into_iter()
        .map(|s| {
            let plan = s.compile(crate::mix_seed(CHAOS_SEED), horizon);
            (s.name().to_string(), plan)
        })
        .collect()
}

/// Per-cell resilience metrics derived from a deployment report and the
/// fault span it ran under.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceMetrics {
    /// SLA violation fraction over pre-fault windows.
    pub viol_pre: f64,
    /// Violation fraction over windows overlapping the fault span.
    pub viol_fault: f64,
    /// Violation fraction over post-fault windows.
    pub viol_after: f64,
    /// Seconds from the recovery edge to the first of two consecutive
    /// violation-free windows; `None` when the run never settles.
    pub recovery_s: Option<f64>,
    /// Post-recovery mean allocated cores relative to the pre-fault mean,
    /// minus one (steady-state overshoot).
    pub overshoot: f64,
}

/// Computes [`ResilienceMetrics`] for one report against a fault span.
pub fn resilience_metrics(
    report: &DeploymentReport,
    span: (SimTime, SimTime),
    interval: SimDur,
) -> ResilienceMetrics {
    let (start, end) = span;
    let viol_frac = |recs: &[&ursa_sim::control::WindowRecord]| -> f64 {
        let mut pairs = 0usize;
        let mut bad = 0usize;
        for r in recs {
            for v in r.class_violation.iter().flatten() {
                pairs += 1;
                bad += *v as usize;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            bad as f64 / pairs as f64
        }
    };
    let clear = |r: &ursa_sim::control::WindowRecord| -> bool {
        r.class_violation.iter().flatten().all(|v| !v)
    };
    // A window harvested at `at` covers `(at - interval, at]`; it overlaps
    // the fault span when it ends after the injection and starts before
    // the recovery edge.
    let pre: Vec<_> = report.records.iter().filter(|r| r.at <= start).collect();
    let during: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.at > start && r.at < end + interval)
        .collect();
    let after: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.at >= end + interval)
        .collect();
    let mut recovery_s = None;
    let mut recovered_from = after.len();
    for i in 0..after.len() {
        let settled = clear(after[i]) && (i + 1 >= after.len() || clear(after[i + 1]));
        if settled {
            recovery_s = Some((after[i].at.as_secs_f64() - end.as_secs_f64()).max(0.0));
            recovered_from = i;
            break;
        }
    }
    let mean_cores = |recs: &[&ursa_sim::control::WindowRecord]| -> f64 {
        if recs.is_empty() {
            return 0.0;
        }
        recs.iter().map(|r| r.total_cores).sum::<f64>() / recs.len() as f64
    };
    let pre_cores = mean_cores(&pre);
    let post_cores = mean_cores(&after[recovered_from.min(after.len())..]);
    let overshoot = if pre_cores > 0.0 && post_cores > 0.0 {
        post_cores / pre_cores - 1.0
    } else {
        0.0
    };
    ResilienceMetrics {
        viol_pre: viol_frac(&pre),
        viol_fault: viol_frac(&during),
        viol_after: viol_frac(&after),
        recovery_s,
        overshoot,
    }
}

/// Runs one grid cell, returning the rendered table row.
pub fn run_cell(
    app: &App,
    managers: &PreparedManagers,
    plans: &[(String, FaultPlan)],
    fi: usize,
    si: usize,
    scale: Scale,
) -> Vec<String> {
    let (label, plan) = &plans[fi];
    let system = System::ALL[si];
    let seed = CHAOS_SEED ^ ((fi as u64) << 8) ^ si as u64;
    let mut mgrs = managers.clone();
    // `--postmortem-dir` arms the flight-recorder / bundle pipeline on the
    // Ursa cells (the cells with a decision log to correlate). Observation
    // is non-perturbing, so the TSV rows stay byte-identical either way.
    let postmortem_dir = (system == System::Ursa)
        .then(logging::postmortem_dir)
        .flatten();
    let report = if let Some(dir) = postmortem_dir {
        let mut metrics = SimMetrics::for_topology(system.label(), &app.topology, &app.slas);
        let mut obs = PostmortemObserver::new(
            &dir,
            &format!("chaos-{label}-{}", system.label()),
            logging::snapshot_at(),
        );
        mgrs.deploy_observed_with_faults(
            app,
            system,
            &LoadSpec::Constant,
            scale,
            seed,
            Some(plan),
            Some(&mut metrics),
            Some(&mut obs),
        )
    } else {
        mgrs.deploy_metered_with_faults(
            app,
            system,
            &LoadSpec::Constant,
            scale,
            seed,
            Some(plan),
            None,
        )
    };
    let span = (
        plan.first_at().expect("non-empty plan"),
        plan.last_until().expect("non-empty plan"),
    );
    let m = resilience_metrics(&report, span, SimDur::from_mins(1));
    let reexplores = if system == System::Ursa {
        // Digest + tail of the cell's decision log into the run manifest
        // (keyed by cell name in a BTreeMap, so recording order under
        // `--jobs N` cannot leak into the manifest). `diff` uses this to
        // localise where two runs' control decisions first diverged.
        manifest::note_decisions(
            &format!("chaos-{label}-{}", system.label()),
            mgrs.ursa.decisions(),
        );
        mgrs.ursa
            .decisions()
            .records()
            .filter(|r| matches!(r.kind, DecisionKind::AnomalyReExplore { .. }))
            .count()
            .to_string()
    } else {
        "-".into()
    };
    vec![
        label.clone(),
        system.label().into(),
        pct(m.viol_pre),
        pct(m.viol_fault),
        pct(m.viol_after),
        m.recovery_s.map(f3).unwrap_or_else(|| "never".into()),
        pct(m.overshoot),
        reexplores,
    ]
}

/// Runs the resilience grid.
pub fn run(scale: Scale) -> ChaosResult {
    println!("== chaos: fault-injection resilience, every system x every fault kind ==");
    let app = social_network(false);
    let managers = PreparedManagers::prepare(&app, scale, CHAOS_SEED);
    let plans = fault_plans(&app, scale);
    manifest::note_topology_digest(app.topology.digest());
    for (name, plan) in &plans {
        manifest::note_chaos_digest(name, plan.digest());
    }
    let inputs: Vec<(usize, usize)> = (0..plans.len())
        .flat_map(|fi| (0..System::ALL.len()).map(move |si| (fi, si)))
        .collect();
    let rows = run_cells(inputs, |_, (fi, si)| {
        run_cell(&app, &managers, &plans, fi, si, scale)
    });
    let mut table = TsvTable::new(
        "chaos_resilience",
        &[
            "fault",
            "system",
            "viol_pre",
            "viol_fault",
            "viol_after",
            "recovery_s",
            "overshoot",
            "reexplores",
        ],
    );
    let mut ursa_reexplorations = 0usize;
    for row in rows {
        if row[1] == "ursa" {
            ursa_reexplorations += row[7].parse::<usize>().unwrap_or(0);
        }
        table.row(row);
    }
    print!("{}", table.render());
    let _ = table.write_tsv(&results_dir().join("chaos"));
    println!(
        "ursa latency-anomaly re-explorations across faults: {ursa_reexplorations} \
         (see anomaly-reexplore records in the decision log)"
    );
    ChaosResult {
        tsv: table.to_tsv(),
        ursa_reexplorations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{default_rates, prepare_ursa};
    use ursa_sim::control::{run_deployment, DeployConfig};
    use ursa_sim::workload::RateFn;

    /// The acceptance-criterion path: a slowdown fault drives p99 past the
    /// SLA long enough that the latency-anomaly detector fires and the
    /// re-exploration request lands in the decision log.
    #[test]
    fn slowdown_triggers_anomaly_reexploration() {
        let app = social_network(false);
        let mut ursa = prepare_ursa(&app, Scale::Quick, CHAOS_SEED);
        let plans = fault_plans(&app, Scale::Quick);
        let (label, plan) = &plans[0];
        assert_eq!(label, "slowdown");
        let mut sim = app.build_sim(CHAOS_SEED);
        sim.install_faults(plan, CHAOS_SEED);
        app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
        ursa.apply_initial_allocation(&default_rates(&app), &mut sim);
        let cfg = DeployConfig {
            duration: Scale::Quick.deploy_duration(),
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(2),
            collect_samples: false,
        };
        run_deployment(&mut sim, &app.slas, &mut ursa, &cfg);
        let reexplores = ursa
            .decisions()
            .records()
            .filter(|r| matches!(r.kind, DecisionKind::AnomalyReExplore { .. }))
            .count();
        assert!(reexplores > 0, "slowdown must provoke a re-exploration");
        let witnessed = ursa
            .decisions()
            .records()
            .filter(|r| matches!(r.kind, DecisionKind::FaultWitnessed { .. }))
            .count();
        assert_eq!(witnessed, 2, "injection + recovery land in the log");
    }

    /// The stochastic row actually generates windows within the horizon.
    #[test]
    fn fault_plans_cover_all_kinds() {
        let app = social_network(false);
        let plans = fault_plans(&app, Scale::Quick);
        assert_eq!(plans.len(), 6);
        let kinds: std::collections::BTreeSet<&str> = plans
            .iter()
            .flat_map(|(_, p)| p.faults.iter().map(|f| f.kind.label()))
            .collect();
        assert!(kinds.len() >= 4, "kinds {kinds:?}");
        for (name, plan) in &plans {
            assert!(!plan.is_empty(), "{name} compiled empty");
            assert!(
                plan.last_until().unwrap() <= SimTime::ZERO + Scale::Quick.deploy_duration(),
                "{name} exceeds the horizon"
            );
        }
    }

    #[test]
    fn resilience_metrics_partition_windows() {
        use ursa_sim::control::WindowRecord;
        let mk = |at_s: f64, viol: bool, cores: f64| WindowRecord {
            at: SimTime::from_secs_f64(at_s),
            class_latency: vec![Some(0.1)],
            class_violation: vec![Some(viol)],
            class_rps: vec![10.0],
            service_replicas: vec![1],
            service_rps: vec![10.0],
            service_cpu_util: vec![0.5],
            total_cores: cores,
        };
        let report = DeploymentReport {
            slas: vec![],
            records: vec![
                mk(60.0, false, 10.0),
                mk(120.0, false, 10.0),
                mk(180.0, true, 14.0), // fault active
                mk(240.0, true, 16.0),
                mk(300.0, true, 16.0), // still overlaps the recovery edge
                mk(360.0, true, 14.0), // lingering post-fault impact
                mk(420.0, false, 12.0),
            ],
            class_samples: vec![],
            decision_wall_ms: 0.0,
        };
        let span = (SimTime::from_secs_f64(130.0), SimTime::from_secs_f64(250.0));
        let m = resilience_metrics(&report, span, SimDur::from_secs(60));
        assert_eq!(m.viol_pre, 0.0);
        assert_eq!(m.viol_fault, 1.0);
        assert!((m.viol_after - 0.5).abs() < 1e-12);
        // First sustained-clear window is at t=420: 170 s after the edge.
        assert_eq!(m.recovery_s, Some(170.0));
        // Post-recovery cores 12 vs pre 10.
        assert!((m.overshoot - 0.2).abs() < 1e-12);
    }
}
