//! **Scale** — sharded-engine scaling grid over a replicated topology.
//!
//! Runs the full social network replicated `--scale`× (default 3, 27
//! services) on a grid of worker-shard counts (default 1/2/4) through
//! [`ShardedSimulation`], and tabulates per-class injection/completion
//! counts and e2e latency per shard count. The grid demonstrates the
//! sharded engine's determinism contract in committed form:
//!
//! * injections and completions are *shard-count-invariant* — the
//!   per-class source streams are split off the master RNG identically on
//!   every shard, so the same requests exist at every `N`;
//! * latency percentiles are *per-N deterministic* but differ across `N`
//!   (work-sampling RNGs are decorrelated per shard and cross-shard
//!   responses pay one extra network hop).
//!
//! Not part of `--exp all`: the golden `results/scale/scale_grid.tsv` /
//! `scale_totals.tsv` are committed and CI regenerates and byte-diffs
//! them, exactly like the chaos and qos goldens. Only simulation-event
//! counters go into the tables — synchronization *round* counts are
//! wall-clock dependent and stay out of everything digested.

use crate::{mix_seed, results_dir, Scale, TsvTable};
use ursa_apps::{scale_app, social_network};
use ursa_sim::prelude::*;

/// Simulated seconds per grid cell.
const GRID_SECS: u64 = 20;
/// Default worker-shard counts of the grid.
const GRID_SHARDS: [usize; 3] = [1, 2, 4];
/// Default topology replication factor (27 services at 3×).
const GRID_SCALE: usize = 3;

/// Builds the grid tables: one row per (shard count, class) with exact
/// counts and latency percentiles, plus one totals row per shard count.
/// Deterministic for a fixed (shard list, k, seed) triple — the
/// rerun-determinism test renders it twice and CI byte-diffs the
/// committed golden.
pub fn grid_tables(shard_counts: &[usize], k: usize, seed: u64) -> (TsvTable, TsvTable) {
    let app = scale_app(&social_network(false), k);
    let mut grid = TsvTable::new(
        "scale_grid",
        &[
            "shards",
            "class",
            "injections",
            "completions",
            "p50_ms",
            "p99_ms",
        ],
    );
    let mut totals = TsvTable::new(
        "scale_totals",
        &[
            "shards",
            "services",
            "classes",
            "events",
            "msgs_sent",
            "windows",
        ],
    );
    for &n in shard_counts {
        let mut sim = ShardedSimulation::new(app.topology.clone(), SimConfig::default(), seed, n);
        let total: f64 = app.mix.iter().sum();
        for (i, w) in app.mix.iter().enumerate() {
            sim.set_rate(ClassId(i), RateFn::Constant(app.default_rps * w / total));
        }
        sim.run_for(SimDur::from_secs(GRID_SECS));
        let report = sim.shard_report();
        let snap = sim.harvest();
        for (c, cfg) in app.topology.classes().iter().enumerate() {
            grid.row(vec![
                n.to_string(),
                cfg.name.clone(),
                snap.injections[c].to_string(),
                snap.completions[c].to_string(),
                format!(
                    "{:.3}",
                    snap.e2e_latency[c].percentile(50.0).unwrap_or(-1.0) * 1e3
                ),
                format!(
                    "{:.3}",
                    snap.e2e_latency[c].percentile(99.0).unwrap_or(-1.0) * 1e3
                ),
            ]);
        }
        totals.row(vec![
            n.to_string(),
            app.topology.num_services().to_string(),
            app.topology.num_classes().to_string(),
            sim.events_processed().to_string(),
            report.msgs_sent.to_string(),
            report.windows.to_string(),
        ]);
    }
    (grid, totals)
}

/// Runs the scaling grid. `--shards N` collapses the shard grid to a
/// single count and `--scale K` overrides the replication factor (the
/// committed goldens use the defaults).
pub fn run(_scale: Scale) {
    println!("== Scale: sharded-engine scaling grid ==");
    let shard_counts: Vec<usize> =
        crate::shards_override().map_or_else(|| GRID_SHARDS.to_vec(), |n| vec![n]);
    let k = crate::scale_override().unwrap_or(GRID_SCALE);
    let (grid, totals) = grid_tables(&shard_counts, k, mix_seed(0x5CA1E));
    print!("{}", totals.render());
    let dir = results_dir().join("scale");
    let _ = grid.write_tsv(&dir);
    if let Ok(p) = totals.write_tsv(&dir) {
        println!("wrote {}", p.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny grid conserves counts across shard counts: the injections
    /// column must be identical between the 1-shard and 2-shard slices.
    #[test]
    fn grid_injections_are_shard_invariant() {
        let (grid, totals) = grid_tables(&[1, 2], 2, 7);
        let nc = grid.rows.len() / 2;
        for c in 0..nc {
            assert_eq!(
                grid.rows[c][2],
                grid.rows[nc + c][2],
                "class {} injections differ across shard counts",
                grid.rows[c][1]
            );
        }
        assert_eq!(totals.rows.len(), 2);
    }
}
