//! **Figure 2** — backpressure heatmaps for nested-RPC, event-driven-RPC,
//! and MQ chains.
//!
//! A 5-tier chain is stressed for 10 minutes; the leaf tier's CPU limit is
//! throttled during minutes 3–6. Each cell of the output is one tier's p99
//! per-tier response time (excluding downstream waits) during one minute.
//! The paper's claims to reproduce: RPC chains backpressure their upstream
//! tiers, strongest at the culprit's parent and fading up the chain; the MQ
//! chain shows none.

use crate::{results_dir, Scale, TsvTable};
use ursa_apps::chains::{study_chain, TIER_CORES, TIER_WORK};
use ursa_sim::engine::{SimConfig, Simulation};
use ursa_sim::metrics::SimMetrics;
use ursa_sim::time::{SimDur, SimTime};
use ursa_sim::topology::{ClassId, EdgeKind, ServiceId};
use ursa_sim::workload::RateFn;

/// Result grid for one chain kind: `p99[minute][tier]` in seconds.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Chain kind label.
    pub kind: String,
    /// `grid[minute][tier]` p99 per-tier latency (seconds).
    pub grid: Vec<Vec<f64>>,
}

/// Offered load in requests/second.
pub const LOAD_RPS: f64 = 300.0;
/// Throttled leaf CPU limit during the anomaly (cores). A mild throttle:
/// capacity 275 rps against 300 rps offered, so the backlog grows at
/// ~25 req/s and stays within the bounded regions near the culprit for the
/// 3-minute anomaly (the Fig. 2 gradient is a transient — see DESIGN.md §3).
pub const THROTTLED_CORES: f64 = 1.1;

/// Runs the 10-minute experiment for one edge kind.
pub fn run_chain(
    edge: EdgeKind,
    minutes: usize,
    anomaly: std::ops::Range<usize>,
    seed: u64,
) -> Heatmap {
    run_chain_traced(edge, minutes, anomaly, seed, 0.0).0
}

/// [`run_chain`] with span tracing at `sample_rate` (0 disables); returns
/// the collected traces alongside the heatmap.
pub fn run_chain_traced(
    edge: EdgeKind,
    minutes: usize,
    anomaly: std::ops::Range<usize>,
    seed: u64,
    sample_rate: f64,
) -> (Heatmap, Vec<ursa_sim::trace::Trace>) {
    run_chain_instrumented(edge, minutes, anomaly, seed, sample_rate, None)
}

/// [`run_chain_traced`] with an optional metrics collector scraped once per
/// minute; the throttle transitions become dashboard annotations.
pub fn run_chain_instrumented(
    edge: EdgeKind,
    minutes: usize,
    anomaly: std::ops::Range<usize>,
    seed: u64,
    sample_rate: f64,
    mut metrics: Option<&mut SimMetrics>,
) -> (Heatmap, Vec<ursa_sim::trace::Trace>) {
    let topo = study_chain(edge);
    let tiers = topo.num_services();
    let mut sim = Simulation::new(topo, SimConfig::default(), seed);
    if sample_rate > 0.0 {
        sim.enable_tracing(100_000, sample_rate);
    }
    sim.set_rate(ClassId(0), RateFn::Constant(LOAD_RPS));
    let leaf = ServiceId(tiers - 1);
    let mut grid = Vec::with_capacity(minutes);
    for minute in 0..minutes {
        let minute_start = SimTime::from_secs_f64(minute as f64 * 60.0);
        if minute == anomaly.start {
            sim.set_cpu_limit(leaf, THROTTLED_CORES);
            if let Some(m) = metrics.as_mut() {
                m.annotate(
                    minute_start,
                    "anomaly",
                    &format!("leaf throttled {TIER_CORES} -> {THROTTLED_CORES} cores"),
                );
            }
        }
        if minute == anomaly.end {
            sim.set_cpu_limit(leaf, TIER_CORES);
            if let Some(m) = metrics.as_mut() {
                m.annotate(
                    minute_start,
                    "anomaly",
                    &format!("leaf restored to {TIER_CORES} cores"),
                );
            }
        }
        sim.run_for(SimDur::from_mins(1));
        let snap = sim.harvest();
        if let Some(m) = metrics.as_mut() {
            m.observe_snapshot(&sim, &snap);
            m.scrape(snap.at);
        }
        let row: Vec<f64> = (0..tiers)
            .map(|t| {
                snap.services[t].tier_latency[0]
                    .percentile(99.0)
                    .unwrap_or(0.0)
            })
            .collect();
        grid.push(row);
    }
    (
        Heatmap {
            kind: format!("{edge:?}"),
            grid,
        },
        sim.take_traces(),
    )
}

/// Writes the trace artifacts for one chain under `dir`: a Chrome
/// trace-event file (`chrome://tracing` / Perfetto), the raw spans as
/// JSONL, and a per-tier blame summary.
fn write_trace_artifacts(
    dir: &std::path::Path,
    kind: &str,
    traces: &[ursa_sim::trace::Trace],
    names: &[String],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("fig2_{}", kind.to_lowercase());
    let mut chrome = ursa_trace::ChromeTrace::new();
    chrome.add_traces(traces, names);
    chrome.write(&mut std::fs::File::create(
        dir.join(format!("{stem}.trace.json")),
    )?)?;
    ursa_trace::jsonl::write_traces(
        &mut std::fs::File::create(dir.join(format!("{stem}.spans.jsonl")))?,
        traces,
        names,
    )?;
    let blame = ursa_trace::service_blame(traces, names.len());
    std::fs::write(dir.join(format!("{stem}.blame.txt")), blame.render(names))?;
    Ok(())
}

/// Runs all three chains and writes/prints the heatmaps.
pub fn run(scale: Scale) -> Vec<Heatmap> {
    let minutes = match scale {
        Scale::Quick => 8,
        Scale::Full => 10,
    };
    let anomaly = match scale {
        Scale::Quick => 2..5,
        Scale::Full => 3..6,
    };
    let mut out = Vec::new();
    println!("== Figure 2: backpressure heatmaps ==");
    println!(
        "5-tier chains, {LOAD_RPS} rps, {TIER_WORK}s/tier, leaf throttled {TIER_CORES}->{THROTTLED_CORES} cores during minutes {}..{}",
        anomaly.start, anomaly.end
    );
    let trace_dir = crate::logging::trace_dir();
    let metrics_dir = crate::logging::metrics_dir();
    // 1% head sampling is plenty for blame over a multi-minute run and
    // keeps the Chrome trace loadable.
    let sample_rate = if trace_dir.is_some() { 0.01 } else { 0.0 };
    // The three chains are independent cells: simulate in parallel, then
    // write artifacts and print in chain order.
    let chains = crate::runner::run_cells(
        vec![EdgeKind::NestedRpc, EdgeKind::EventDrivenRpc, EdgeKind::Mq],
        |i, edge| {
            // The chains run unmanaged (fixed allocation), so the collector
            // is labeled "static" and carries no SLAs.
            let mut metrics = metrics_dir
                .as_ref()
                .map(|_| SimMetrics::for_topology("static", &study_chain(edge), &[]));
            let (hm, traces) = run_chain_instrumented(
                edge,
                minutes,
                anomaly.clone(),
                0xF162 + i as u64,
                sample_rate,
                metrics.as_mut(),
            );
            (edge, hm, traces, metrics)
        },
    );
    for (edge, hm, traces, mut metrics) in chains {
        if let Some(dir) = &trace_dir {
            let names: Vec<String> = study_chain(edge)
                .services()
                .iter()
                .map(|s| s.name.clone())
                .collect();
            match write_trace_artifacts(dir, &hm.kind, &traces, &names) {
                Ok(()) => crate::info!(
                    "[fig2] wrote {} traces for {} under {}",
                    traces.len(),
                    hm.kind,
                    dir.display()
                ),
                Err(e) => crate::warn!("[fig2] trace export failed: {e}"),
            }
        }
        if let Some(m) = metrics.as_ref() {
            // Digest every collected series into the run manifest (main
            // thread, chain order — deterministic), keyed by chain stem.
            crate::manifest::note_store(&format!("fig2_{}", hm.kind.to_lowercase()), m.store());
        }
        if let (Some(dir), Some(m)) = (&metrics_dir, metrics.as_mut()) {
            let stem = format!("fig2_{}", hm.kind.to_lowercase());
            let title = format!("Fig. 2 — {} chain backpressure", hm.kind);
            match m.write_artifacts(dir, &stem, &title) {
                Ok(_) => crate::info!(
                    "[fig2] wrote metrics artifacts {stem}.{{prom,csv,html}} under {}",
                    dir.display()
                ),
                Err(e) => crate::warn!("[fig2] metrics export failed: {e}"),
            }
        }
        let mut table = TsvTable::new(
            &format!("fig2_{}", hm.kind.to_lowercase()),
            &["minute", "tier1", "tier2", "tier3", "tier4", "tier5"],
        );
        for (m, row) in hm.grid.iter().enumerate() {
            table.row(
                std::iter::once((m + 1).to_string())
                    .chain(row.iter().map(|x| format!("{:.4}", x)))
                    .collect(),
            );
        }
        println!("\n-- {} (p99 per-tier response time, seconds) --", hm.kind);
        print!("{}", table.render());
        let _ = table.write_tsv(&results_dir().join("fig2"));
        out.push(hm);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline §III result: throttling the leaf inflates the parent
    /// tier's latency in RPC chains but not in the MQ chain, and the effect
    /// fades up the chain.
    #[test]
    fn backpressure_shape_matches_paper() {
        let anomaly = 2..5;
        let nested = run_chain(EdgeKind::NestedRpc, 6, anomaly.clone(), 1);
        let event = run_chain(EdgeKind::EventDrivenRpc, 6, anomaly.clone(), 2);
        let mq = run_chain(EdgeKind::Mq, 6, anomaly.clone(), 3);

        let calm = |hm: &Heatmap, tier: usize| hm.grid[0][tier];
        // Mean over anomaly minutes.
        let hot = |hm: &Heatmap, tier: usize| {
            anomaly.clone().map(|m| hm.grid[m][tier]).sum::<f64>() / anomaly.len() as f64
        };

        for (hm, label) in [(&nested, "nested"), (&event, "event-driven")] {
            // Parent (tier 4, index 3) inflates strongly.
            assert!(
                hot(hm, 3) > 5.0 * calm(hm, 3),
                "{label}: parent {} -> {}",
                calm(hm, 3),
                hot(hm, 3)
            );
            // The effect diminishes up the chain: tier 1 is hit less than
            // the parent.
            assert!(
                hot(hm, 0) < hot(hm, 3),
                "{label}: tier1 {} vs tier4 {}",
                hot(hm, 0),
                hot(hm, 3)
            );
        }
        // MQ: the parent stays calm even while the leaf is throttled.
        assert!(
            hot(&mq, 3) < 2.0 * calm(&mq, 3),
            "mq parent {} -> {}",
            calm(&mq, 3),
            hot(&mq, 3)
        );
    }
}
