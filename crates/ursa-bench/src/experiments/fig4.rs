//! **Figure 4** — backpressure-free threshold profiling curves.
//!
//! Reproduces the profiling sweep for two social-network services: the post
//! service ("post-store") and the timeline-read service. The paper's curve:
//! proxy p99 latency falls as the tested service's CPU limit rises and then
//! converges; the CPU utilization just before convergence is the
//! backpressure-free threshold (paper: 46.2 % for post, 60.0 % for
//! timeline-read).

use crate::{default_rates, results_dir, Scale, TsvTable};
use ursa_apps::social_network;
use ursa_core::harness::ServiceProfile;
use ursa_core::profiling::{profile_service, BackpressureProfile};

/// Profiles one named service of the social network.
pub fn profile_named(service: &str, scale: Scale, seed: u64) -> BackpressureProfile {
    let app = social_network(false);
    let sid = app.service(service).expect("service exists");
    let rates = default_rates(&app);
    let profile = ServiceProfile::extract(&app.topology, sid, &rates);
    profile_service(&profile, &scale.profiling(), seed)
}

/// Runs the experiment for the two paper services. The two profiling
/// sweeps are independent cells and run in parallel; printing and TSV
/// output stay in paper order.
pub fn run(scale: Scale) -> Vec<BackpressureProfile> {
    println!("== Figure 4: backpressure-free threshold profiling ==");
    let services = ["post-store", "timeline-read"];
    let profiles = crate::runner::run_cells(services.to_vec(), |i, service| {
        profile_named(service, scale, 0xF164 + i as u64)
    });
    let mut out = Vec::new();
    for (service, bp) in services.iter().zip(profiles) {
        let mut table = TsvTable::new(
            &format!("fig4_{service}"),
            &[
                "cpu_limit",
                "proxy_p99_mean",
                "proxy_p99_std",
                "service_p99_mean",
                "utilization",
            ],
        );
        for p in &bp.points {
            table.row(vec![
                format!("{:.3}", p.cpu_limit),
                format!("{:.5}", p.proxy_p99_mean),
                format!("{:.5}", p.proxy_p99_std),
                format!("{:.5}", p.service_p99_mean),
                format!("{:.3}", p.utilization),
            ]);
        }
        println!("\n-- {service} --");
        print!("{}", table.render());
        println!(
            "backpressure-free threshold: {:.1}% CPU utilization (converged at sweep level {})",
            100.0 * bp.threshold,
            bp.converged_at
        );
        let _ = table.write_tsv(&results_dir().join("fig4"));
        out.push(bp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_in_paper_band() {
        // The paper reports 46.2% and 60.0%; our substrate differs, but the
        // thresholds must be moderate (neither ~0 nor ~1) and the curves
        // must show the starved-then-converged shape.
        for service in ["post-store", "timeline-read"] {
            let bp = profile_named(service, Scale::Quick, 9);
            assert!(
                bp.threshold > 0.25 && bp.threshold < 0.95,
                "{service}: threshold {}",
                bp.threshold
            );
            let first = bp.points.first().unwrap().proxy_p99_mean;
            let last = bp.points.last().unwrap().proxy_p99_mean;
            assert!(first > last, "{service}: {first} !> {last}");
        }
    }
}
