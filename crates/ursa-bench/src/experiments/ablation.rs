//! Ablations of Ursa's design choices (not in the paper's evaluation, but
//! each isolates one mechanism the paper's design rests on).
//!
//! 1. **Percentile-split ablation** — Theorem 1 admits many valid splits of
//!    the end-to-end percentile residual. Ursa optimizes the split jointly
//!    with the LPR choice (the γ variables); the naive alternative gives
//!    every service an equal share. Measures the resource cost of "equal"
//!    vs "optimized".
//! 2. **Backpressure-ceiling ablation** — Algorithm 1 stops exploring at
//!    the §III utilization threshold to preserve the independence
//!    assumption. Exploring past it records LPR options whose latency rows
//!    are no longer valid in composition; deploying on them violates SLAs.
//! 3. **Control-interval sensitivity** — how fast the threshold controller
//!    must observe load to ride out a +100 % burst.

use crate::{default_rates, prepare_ursa, results_dir, LoadSpec, Scale, TsvTable};
use ursa_apps::social_network;
use ursa_core::exploration::explore_all;
use ursa_core::manager::{Ursa, UrsaConfig};
use ursa_core::optimizer::{build_model, optimize};
use ursa_mip::{LatencyMatrix, MipModel, ServiceModel};
use ursa_sim::control::{run_deployment, DeployConfig};
use ursa_sim::time::SimDur;

/// Outcome of the percentile-split ablation.
#[derive(Debug, Clone)]
pub struct SplitAblation {
    /// Cores with the jointly optimized split.
    pub optimized_cores: f64,
    /// Cores with the equal split (or `None` if the equal split is
    /// infeasible on the grid).
    pub equal_cores: Option<f64>,
}

/// Restricts a model so every class must use one fixed percentile column —
/// the smallest grid point whose residual, taken by every service on the
/// class's path, still fits the class budget (the "equal split").
fn equal_split_model(model: &MipModel) -> Option<MipModel> {
    let mut restricted = model.clone();
    for c in &model.constraints {
        let n = model.services_of_class(c.class).len().max(1);
        let share = (100.0 - c.percentile) / n as f64;
        let needed = 100.0 - share;
        // Smallest grid percentile >= needed.
        let col = model.percentiles.iter().position(|&p| p >= needed - 1e-9)?;
        for svc in &mut restricted.services {
            if let Some(m) = &svc.latency[c.class] {
                // Keep only the forced column for this class.
                let data: Vec<f64> = (0..m.rows()).map(|r| m.at(r, col)).collect();
                svc.latency[c.class] = Some(LatencyMatrix::new(m.rows(), 1, data));
            }
        }
    }
    // The restricted model has one-column matrices; the grid must shrink
    // accordingly. Distinct classes may force distinct columns, so restrict
    // per-class via a 1-wide grid only when all forced columns agree;
    // otherwise rebuild with per-class single-column handled by using the
    // largest forced percentile for the shared grid.
    let forced: Vec<f64> = model
        .constraints
        .iter()
        .map(|c| {
            let n = model.services_of_class(c.class).len().max(1);
            100.0 - (100.0 - c.percentile) / n as f64
        })
        .collect();
    let max_needed = forced.iter().cloned().fold(0.0, f64::max);
    let col = model
        .percentiles
        .iter()
        .position(|&p| p >= max_needed - 1e-9)?;
    let shared_p = model.percentiles[col];
    let services = model
        .services
        .iter()
        .map(|svc| ServiceModel {
            name: svc.name.clone(),
            resource: svc.resource.clone(),
            latency: svc
                .latency
                .iter()
                .map(|m| {
                    m.as_ref().map(|m| {
                        let data: Vec<f64> = (0..m.rows()).map(|r| m.at(r, col)).collect();
                        LatencyMatrix::new(m.rows(), 1, data)
                    })
                })
                .collect(),
        })
        .collect();
    Some(MipModel {
        percentiles: vec![shared_p],
        services,
        constraints: model.constraints.clone(),
    })
}

/// Runs the percentile-split ablation on the social network.
pub fn split_ablation(scale: Scale, seed: u64) -> SplitAblation {
    let app = social_network(false);
    let rates = default_rates(&app);
    let ursa = prepare_ursa(&app, scale, seed);
    let grid = scale.exploration().percentile_grid;
    let model = build_model(ursa.exploration(), &ursa.outcome().slas, &rates, &grid);
    let optimized = ursa_mip::solve(&model)
        .map(|s| s.objective)
        .unwrap_or(f64::NAN);
    let equal = equal_split_model(&model)
        .and_then(|m| ursa_mip::solve(&m).ok())
        .map(|s| s.objective);
    SplitAblation {
        optimized_cores: optimized,
        equal_cores: equal,
    }
}

/// Outcome of the backpressure-ceiling ablation.
#[derive(Debug, Clone)]
pub struct CeilingAblation {
    /// Violation rate with the profiled ceilings.
    pub with_ceiling: f64,
    /// Violation rate with exploration allowed up to 95 % utilization.
    pub without_ceiling: f64,
    /// Cores with / without.
    pub cores_with: f64,
    /// Cores without the ceiling.
    pub cores_without: f64,
}

/// Runs the backpressure-ceiling ablation on the vanilla social network.
pub fn ceiling_ablation(scale: Scale, seed: u64) -> CeilingAblation {
    let app = social_network(true);
    let rates = default_rates(&app);
    let deploy = |ursa: &mut Ursa, seed: u64| {
        let mut sim = app.build_sim(seed);
        LoadSpec::Constant.apply(&app, &mut sim, scale.deploy_duration());
        ursa.apply_initial_allocation(&rates, &mut sim);
        let report = run_deployment(
            &mut sim,
            &app.slas,
            ursa,
            &DeployConfig {
                duration: scale.deploy_duration(),
                control_interval: SimDur::from_mins(1),
                warmup: SimDur::from_mins(2),
                collect_samples: false,
            },
        );
        (report.overall_violation_rate(), report.avg_cpu_allocation())
    };

    // With ceilings: the normal pipeline.
    let mut with = prepare_ursa(&app, scale, seed);
    let (viol_with, cores_with) = deploy(&mut with, seed ^ 1);

    // Without ceilings: re-run exploration with the ceiling lifted to 0.95
    // and rebuild thresholds from it.
    let cfg = UrsaConfig {
        exploration: scale.exploration(),
        profiling: scale.profiling(),
    };
    let lifted = vec![Some(0.95); app.topology.num_services()];
    let report = explore_all(
        &app.topology,
        &app.slas,
        &rates,
        &lifted,
        &cfg.exploration,
        seed ^ 2,
    );
    let grid = cfg.exploration.percentile_grid.clone();
    let (viol_without, cores_without) = match optimize(&report, &app.slas, &rates, &grid) {
        Ok(outcome) => {
            // Splice the lifted exploration into a manager via recalc-like
            // construction: reuse the normal manager but override its
            // thresholds through a fresh prepare on the lifted data. The
            // simplest faithful route: deploy a manager whose scaler uses
            // the lifted thresholds.
            let mut ursa = prepare_ursa(&app, scale, seed ^ 3);
            ursa.override_for_ablation(report, outcome);
            deploy(&mut ursa, seed ^ 4)
        }
        Err(_) => (1.0, f64::NAN),
    };
    CeilingAblation {
        with_ceiling: viol_with,
        without_ceiling: viol_without,
        cores_with,
        cores_without,
    }
}

/// Control-interval sensitivity under burst load. Each interval is an
/// independent cell (fresh manager, fresh simulation) and runs on the
/// configured workers.
pub fn interval_sensitivity(scale: Scale, seed: u64) -> Vec<(f64, f64)> {
    let app = social_network(true);
    let rates = default_rates(&app);
    crate::runner::run_cells(vec![30u64, 60, 120, 300], |_, interval_s| {
        let mut ursa = prepare_ursa(&app, scale, seed);
        let mut sim = app.build_sim(seed ^ interval_s);
        LoadSpec::Burst.apply(&app, &mut sim, scale.deploy_duration());
        ursa.apply_initial_allocation(&rates, &mut sim);
        let report = run_deployment(
            &mut sim,
            &app.slas,
            &mut ursa,
            &DeployConfig {
                duration: scale.deploy_duration(),
                control_interval: SimDur::from_secs(interval_s),
                warmup: SimDur::from_mins(2),
                collect_samples: false,
            },
        );
        (interval_s as f64, report.overall_violation_rate())
    })
}

/// The three ablation families are mutually independent — fan them out as
/// cells and print in the fixed order.
enum AblationOut {
    Split(SplitAblation),
    Ceiling(CeilingAblation),
    Intervals(Vec<(f64, f64)>),
}

/// Runs all ablations and prints/writes the results.
pub fn run(scale: Scale) {
    println!("== Ablations ==");
    let mut outs = crate::runner::run_cells(vec![0u8, 1, 2], |_, which| match which {
        0 => AblationOut::Split(split_ablation(scale, 0x0AB1)),
        1 => AblationOut::Ceiling(ceiling_ablation(scale, 0x0AB2)),
        _ => AblationOut::Intervals(interval_sensitivity(scale, 0x0AB3)),
    })
    .into_iter();
    let (
        Some(AblationOut::Split(split)),
        Some(AblationOut::Ceiling(ceiling)),
        Some(AblationOut::Intervals(sens)),
    ) = (outs.next(), outs.next(), outs.next())
    else {
        unreachable!("ablation cells return in input order");
    };
    println!(
        "percentile split: optimized {:.0} cores vs equal split {} cores",
        split.optimized_cores,
        split
            .equal_cores
            .map(|c| format!("{c:.0}"))
            .unwrap_or_else(|| "infeasible".into()),
    );
    println!(
        "backpressure ceiling: violations {:.2}% ({:.0} cores) with, {:.2}% ({:.0} cores) without",
        100.0 * ceiling.with_ceiling,
        ceiling.cores_with,
        100.0 * ceiling.without_ceiling,
        ceiling.cores_without,
    );
    let mut table = TsvTable::new("ablation_interval", &["interval_s", "violation_rate"]);
    for (i, v) in &sens {
        table.row(vec![format!("{i:.0}"), format!("{v:.4}")]);
        println!(
            "control interval {i:>4.0}s -> violation rate {:.2}%",
            100.0 * v
        );
    }
    let _ = table.write_tsv(&results_dir().join("ablation"));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The optimized split must never cost more than the equal split (the
    /// equal split is one feasible point of the optimized problem whenever
    /// both are feasible).
    #[test]
    fn optimized_split_never_worse() {
        let r = split_ablation(Scale::Quick, 3);
        assert!(r.optimized_cores.is_finite());
        if let Some(equal) = r.equal_cores {
            assert!(
                r.optimized_cores <= equal + 1e-9,
                "optimized {} > equal {equal}",
                r.optimized_cores
            );
        }
    }

    /// Removing the backpressure ceiling lets exploration record
    /// cheaper-but-invalid options; the ablated system must not *improve*
    /// SLA compliance, and typically worsens it.
    #[test]
    fn ceiling_protects_slas() {
        let r = ceiling_ablation(Scale::Quick, 5);
        assert!(
            r.without_ceiling >= r.with_ceiling - 0.02,
            "ablated {} unexpectedly beats ceiling {}",
            r.without_ceiling,
            r.with_ceiling
        );
    }
}
