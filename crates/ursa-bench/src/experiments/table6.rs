//! **Table VI** — control-plane latency (milliseconds).
//!
//! Two rows, as in the paper:
//!
//! * **Deploy** — the wall-clock cost of one online scaling decision:
//!   Ursa's threshold check, Sinan's model sweep over candidate
//!   allocations, Firm's per-service network inference, and autoscaling's
//!   bare threshold comparison. Measured by timing `on_tick` on a live
//!   snapshot (the criterion benches in `benches/` give tighter numbers).
//! * **Update** — the cost of refreshing the model: Ursa re-solves the MIP,
//!   Sinan retrains from scratch, Firm performs training iterations
//!   (reported per iteration, as in the paper).
//!
//! The paper's ordering to reproduce: autoscaling < Ursa ≪ Firm ≪ Sinan on
//! deploy; Ursa's one-shot update ≪ Firm's full adaptation; Sinan retraining
//! is minutes.
//!
//! ## Artifacts
//!
//! Wall-clock timings vary run to run (machine, load, thermal state), so
//! committing them produced permanent git drift — every `cargo test`
//! rewrote `table6.tsv` with new numbers. The artifacts are therefore
//! split: the committed `table6.tsv` holds *deterministic decision/update
//! work counts* per system (exactly reproducible, diffed by a test), and
//! the measured milliseconds go to `table6_wall.tsv`, which is gitignored.

use crate::{
    default_rates, prepare_firm, prepare_sinan, prepare_ursa, results_dir, Scale, TsvTable,
};
use ursa_apps::{social_network, App};
use ursa_baselines::{Autoscaler, Dataset, Firm, Sinan};
use ursa_core::manager::Ursa;
use ursa_sim::control::ResourceManager;
use ursa_sim::time::SimDur;
use ursa_sim::workload::RateFn;

/// Measured control-plane latencies in milliseconds.
#[derive(Debug, Clone)]
pub struct ControlPlaneLatency {
    /// System label.
    pub system: String,
    /// Per-decision latency (ms).
    pub deploy_ms: f64,
    /// Model-update latency (ms); `None` = N/A (Sinan retrains offline,
    /// reported separately; autoscaling has nothing to update).
    pub update_ms: Option<f64>,
}

/// Sinan retraining epochs used for the update measurement.
const SINAN_RETRAIN_EPOCHS: usize = 4;
/// Firm training iterations averaged for the update measurement.
const FIRM_TRAIN_ITERS: usize = 5;

/// Times `iters` on_tick calls against a fixed snapshot.
fn time_ticks(
    manager: &mut dyn ResourceManager,
    snapshot: &ursa_sim::telemetry::MetricsSnapshot,
    sim: &mut ursa_sim::engine::Simulation,
    iters: usize,
) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        manager.on_tick(snapshot, sim);
    }
    t0.elapsed().as_nanos() as f64 / 1e6 / iters as f64
}

/// The deterministic work counts behind each Table VI row: how many unit
/// operations one scaling decision and one model update cost per system.
/// These depend only on the topology and the training configuration, so
/// the committed `table6.tsv` built from them reproduces byte-identically.
pub fn ops_table(app: &App, sinan: &Sinan, dataset: &Dataset) -> TsvTable {
    let n = app.topology.num_services();
    let mut table = TsvTable::new("table6", &["system", "deploy_ops", "update_ops"]);
    // Ursa: one threshold check per service; update = one MIP solve.
    table.row(vec!["ursa".into(), n.to_string(), "1".into()]);
    // Sinan: a model sweep over candidate allocations; update = full
    // retraining over the dataset.
    table.row(vec![
        "sinan".into(),
        sinan.candidates_per_tick.to_string(),
        (dataset.samples.len() * SINAN_RETRAIN_EPOCHS).to_string(),
    ]);
    // Firm: one per-service inference; update = one training step per
    // service per iteration.
    table.row(vec!["firm".into(), n.to_string(), n.to_string()]);
    // Autoscaling: one threshold comparison per service; nothing to update.
    table.row(vec!["autoscaling".into(), n.to_string(), "n/a".into()]);
    table
}

/// The trained managers (phase 1, parallel).
enum Prepared {
    Ursa(Box<Ursa>),
    Sinan(Box<Sinan>, Dataset),
    Firm(Box<Firm>),
}

/// Runs the measurement on the social network.
pub fn run(scale: Scale) -> Vec<ControlPlaneLatency> {
    println!("== Table VI: control plane latency (ms) ==");
    let app = social_network(false);
    let rates = default_rates(&app);

    // A live snapshot to decide against.
    let mut sim = app.build_sim(0x7AB6);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    sim.run_for(SimDur::from_mins(2));
    let snapshot = sim.harvest();

    let iters = match scale {
        Scale::Quick => 20,
        Scale::Full => 100,
    };

    // Phase 1: train the three learned managers in parallel (independent
    // cells). Phase 2 below stays sequential — interleaving wall-clock
    // timing runs across threads would contaminate the measurements.
    let mut prepared = crate::runner::run_cells(vec![0u8, 1, 2], |_, which| match which {
        0 => Prepared::Ursa(Box::new(prepare_ursa(&app, scale, 0x0007_AB60))),
        1 => {
            let (sinan, dataset) = prepare_sinan(&app, scale, 0x0007_AB61);
            Prepared::Sinan(Box::new(sinan), dataset)
        }
        _ => Prepared::Firm(Box::new(prepare_firm(&app, scale, 0x0007_AB62))),
    })
    .into_iter();
    let (
        Some(Prepared::Ursa(mut ursa)),
        Some(Prepared::Sinan(mut sinan, dataset)),
        Some(Prepared::Firm(mut firm)),
    ) = (prepared.next(), prepared.next(), prepared.next())
    else {
        unreachable!("cells return in input order");
    };

    let mut rows = Vec::new();

    // Ursa.
    let deploy = time_ticks(ursa.as_mut(), &snapshot, &mut sim, iters);
    let t0 = std::time::Instant::now();
    ursa.recalculate(&rates).expect("recalc");
    let update = t0.elapsed().as_nanos() as f64 / 1e6;
    rows.push(ControlPlaneLatency {
        system: "ursa".into(),
        deploy_ms: deploy,
        update_ms: Some(update),
    });

    // Sinan: deploy = model sweep; update = full retraining.
    let deploy = time_ticks(sinan.as_mut(), &snapshot, &mut sim, iters);
    let t0 = std::time::Instant::now();
    let retrained = Sinan::train(&dataset, &app.slas, SINAN_RETRAIN_EPOCHS, 99);
    let update = t0.elapsed().as_nanos() as f64 / 1e6;
    let _ = retrained;
    rows.push(ControlPlaneLatency {
        system: "sinan".into(),
        deploy_ms: deploy,
        update_ms: Some(update),
    });

    // Firm: deploy = greedy inference; update = one training iteration
    // (the paper reports per-iteration cost and notes full adaptation
    // needs thousands of iterations).
    let deploy = time_ticks(firm.as_mut(), &snapshot, &mut sim, iters);
    firm.training = true;
    let t0 = std::time::Instant::now();
    for _ in 0..FIRM_TRAIN_ITERS {
        firm.on_tick(&snapshot, &mut sim);
    }
    let update = t0.elapsed().as_nanos() as f64 / 1e6 / FIRM_TRAIN_ITERS as f64;
    rows.push(ControlPlaneLatency {
        system: "firm".into(),
        deploy_ms: deploy,
        update_ms: Some(update),
    });

    // Autoscaling.
    let mut auto = Autoscaler::auto_a(app.topology.num_services());
    let deploy = time_ticks(&mut auto, &snapshot, &mut sim, iters);
    rows.push(ControlPlaneLatency {
        system: "autoscaling".into(),
        deploy_ms: deploy,
        update_ms: None,
    });

    // Committed artifact: deterministic work counts only.
    let ops = ops_table(&app, &sinan, &dataset);
    let _ = ops.write_tsv(&results_dir().join("table6"));

    // Measured wall-clock: printed, and written to the gitignored
    // `table6_wall.tsv`.
    let mut wall = TsvTable::new("table6_wall", &["system", "deploy_ms", "update_ms"]);
    for r in &rows {
        wall.row(vec![
            r.system.clone(),
            format!("{:.4}", r.deploy_ms),
            r.update_ms
                .map(|u| format!("{u:.2}"))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    print!("{}", wall.render());
    let _ = wall.write_tsv(&results_dir().join("table6"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's ordering: autoscaling fastest, then Ursa, then Firm,
    /// then Sinan (centralized model sweep); Ursa's one-shot update beats
    /// Sinan's retraining.
    #[test]
    fn latency_ordering_matches_paper() {
        let rows = run(Scale::Quick);
        let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap();
        let (ursa, sinan, firm, auto) =
            (get("ursa"), get("sinan"), get("firm"), get("autoscaling"));
        assert!(
            auto.deploy_ms <= ursa.deploy_ms * 2.0,
            "auto {} vs ursa {}",
            auto.deploy_ms,
            ursa.deploy_ms
        );
        assert!(
            ursa.deploy_ms < sinan.deploy_ms,
            "ursa {} vs sinan {}",
            ursa.deploy_ms,
            sinan.deploy_ms
        );
        assert!(
            firm.deploy_ms < sinan.deploy_ms,
            "firm {} vs sinan {}",
            firm.deploy_ms,
            sinan.deploy_ms
        );
        assert!(
            ursa.update_ms.unwrap() < sinan.update_ms.unwrap(),
            "ursa update {} vs sinan retrain {}",
            ursa.update_ms.unwrap(),
            sinan.update_ms.unwrap()
        );
    }

    /// Regenerating the committed `table6.tsv` must be byte-identical —
    /// the drift fix. Rebuilds the deterministic rows from a fresh Quick
    /// preparation (same seed as `run`) and diffs against the artifact.
    #[test]
    fn committed_table6_artifact_is_reproducible() {
        let app = social_network(false);
        let (sinan, dataset) = prepare_sinan(&app, Scale::Quick, 0x0007_AB61);
        let regenerated = ops_table(&app, &sinan, &dataset).to_tsv();
        let path = results_dir().join("table6").join("table6.tsv");
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        assert_eq!(
            regenerated, committed,
            "table6.tsv drifted — regeneration is no longer deterministic"
        );
    }
}
