//! **Table VI** — control-plane latency (milliseconds).
//!
//! Two rows, as in the paper:
//!
//! * **Deploy** — the wall-clock cost of one online scaling decision:
//!   Ursa's threshold check, Sinan's model sweep over candidate
//!   allocations, Firm's per-service network inference, and autoscaling's
//!   bare threshold comparison. Measured by timing `on_tick` on a live
//!   snapshot (the criterion benches in `benches/` give tighter numbers).
//! * **Update** — the cost of refreshing the model: Ursa re-solves the MIP,
//!   Sinan retrains from scratch, Firm performs training iterations
//!   (reported per iteration, as in the paper).
//!
//! The paper's ordering to reproduce: autoscaling < Ursa ≪ Firm ≪ Sinan on
//! deploy; Ursa's one-shot update ≪ Firm's full adaptation; Sinan retraining
//! is minutes.

use crate::{
    default_rates, prepare_firm, prepare_sinan, prepare_ursa, results_dir, Scale, TsvTable,
};
use ursa_apps::social_network;
use ursa_baselines::{Autoscaler, Sinan};
use ursa_sim::control::ResourceManager;
use ursa_sim::time::SimDur;
use ursa_sim::workload::RateFn;

/// Measured control-plane latencies in milliseconds.
#[derive(Debug, Clone)]
pub struct ControlPlaneLatency {
    /// System label.
    pub system: String,
    /// Per-decision latency (ms).
    pub deploy_ms: f64,
    /// Model-update latency (ms); `None` = N/A (Sinan retrains offline,
    /// reported separately; autoscaling has nothing to update).
    pub update_ms: Option<f64>,
}

/// Times `iters` on_tick calls against a fixed snapshot.
fn time_ticks(
    manager: &mut dyn ResourceManager,
    snapshot: &ursa_sim::telemetry::MetricsSnapshot,
    sim: &mut ursa_sim::engine::Simulation,
    iters: usize,
) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        manager.on_tick(snapshot, sim);
    }
    t0.elapsed().as_nanos() as f64 / 1e6 / iters as f64
}

/// Runs the measurement on the social network.
pub fn run(scale: Scale) -> Vec<ControlPlaneLatency> {
    println!("== Table VI: control plane latency (ms) ==");
    let app = social_network(false);
    let rates = default_rates(&app);

    // A live snapshot to decide against.
    let mut sim = app.build_sim(0x7AB6);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    sim.run_for(SimDur::from_mins(2));
    let snapshot = sim.harvest();

    let iters = match scale {
        Scale::Quick => 20,
        Scale::Full => 100,
    };

    let mut rows = Vec::new();

    // Ursa.
    let mut ursa = prepare_ursa(&app, scale, 0x0007_AB60);
    let deploy = time_ticks(&mut ursa, &snapshot, &mut sim, iters);
    let t0 = std::time::Instant::now();
    ursa.recalculate(&rates).expect("recalc");
    let update = t0.elapsed().as_nanos() as f64 / 1e6;
    rows.push(ControlPlaneLatency {
        system: "ursa".into(),
        deploy_ms: deploy,
        update_ms: Some(update),
    });

    // Sinan: deploy = model sweep; update = full retraining.
    let (mut sinan, dataset) = prepare_sinan(&app, scale, 0x0007_AB61);
    let deploy = time_ticks(&mut sinan, &snapshot, &mut sim, iters);
    let t0 = std::time::Instant::now();
    let retrained = Sinan::train(&dataset, &app.slas, 4, 99);
    let update = t0.elapsed().as_nanos() as f64 / 1e6;
    let _ = retrained;
    rows.push(ControlPlaneLatency {
        system: "sinan".into(),
        deploy_ms: deploy,
        update_ms: Some(update),
    });

    // Firm: deploy = greedy inference; update = one training iteration
    // (the paper reports per-iteration cost and notes full adaptation
    // needs thousands of iterations).
    let mut firm = prepare_firm(&app, scale, 0x0007_AB62);
    let deploy = time_ticks(&mut firm, &snapshot, &mut sim, iters);
    firm.training = true;
    let t0 = std::time::Instant::now();
    let train_iters = 5;
    for _ in 0..train_iters {
        firm.on_tick(&snapshot, &mut sim);
    }
    let update = t0.elapsed().as_nanos() as f64 / 1e6 / train_iters as f64;
    rows.push(ControlPlaneLatency {
        system: "firm".into(),
        deploy_ms: deploy,
        update_ms: Some(update),
    });

    // Autoscaling.
    let mut auto = Autoscaler::auto_a(app.topology.num_services());
    let deploy = time_ticks(&mut auto, &snapshot, &mut sim, iters);
    rows.push(ControlPlaneLatency {
        system: "autoscaling".into(),
        deploy_ms: deploy,
        update_ms: None,
    });

    let mut table = TsvTable::new("table6", &["system", "deploy_ms", "update_ms"]);
    for r in &rows {
        table.row(vec![
            r.system.clone(),
            format!("{:.4}", r.deploy_ms),
            r.update_ms
                .map(|u| format!("{u:.2}"))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    print!("{}", table.render());
    let _ = table.write_tsv(&results_dir().join("table6"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's ordering: autoscaling fastest, then Ursa, then Firm,
    /// then Sinan (centralized model sweep); Ursa's one-shot update beats
    /// Sinan's retraining.
    #[test]
    fn latency_ordering_matches_paper() {
        let rows = run(Scale::Quick);
        let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap();
        let (ursa, sinan, firm, auto) =
            (get("ursa"), get("sinan"), get("firm"), get("autoscaling"));
        assert!(
            auto.deploy_ms <= ursa.deploy_ms * 2.0,
            "auto {} vs ursa {}",
            auto.deploy_ms,
            ursa.deploy_ms
        );
        assert!(
            ursa.deploy_ms < sinan.deploy_ms,
            "ursa {} vs sinan {}",
            ursa.deploy_ms,
            sinan.deploy_ms
        );
        assert!(
            firm.deploy_ms < sinan.deploy_ms,
            "firm {} vs sinan {}",
            firm.deploy_ms,
            sinan.deploy_ms
        );
        assert!(
            ursa.update_ms.unwrap() < sinan.update_ms.unwrap(),
            "ursa update {} vs sinan retrain {}",
            ursa.update_ms.unwrap(),
            sinan.update_ms.unwrap()
        );
    }
}
