//! **Figure 13** — Ursa's per-service CPU allocation tracking a diurnal
//! load.
//!
//! Reproduces the paper's time-series: for representative social-network
//! microservices, the per-window arrival rate (RPS, left axis) and the CPU
//! cores Ursa allocates (right axis) as the load ramps up and back down.
//! The claim: Ursa scales each service out and in promptly with its load.

use crate::{default_rates, prepare_ursa, results_dir, LoadSpec, Scale, TsvTable};
use ursa_apps::social_network;
use ursa_sim::control::{run_deployment, DeployConfig};
use ursa_sim::time::SimDur;

/// Time series for one service.
#[derive(Debug, Clone)]
pub struct ServiceSeries {
    /// Service name.
    pub service: String,
    /// (minute, rps, allocated cores) per window.
    pub points: Vec<(f64, f64, f64)>,
}

/// Representative services plotted by the figure.
pub const SERVICES: [&str; 4] = [
    "compose-post",
    "post-store",
    "timeline-update",
    "object-detect",
];

/// Runs the diurnal deployment and extracts the series.
///
/// This experiment is a single deployment cell (one app, one load, one
/// system), so it goes through [`crate::runner`] as one cell — the
/// sequential fast path regardless of `--jobs`.
pub fn run(scale: Scale) -> Vec<ServiceSeries> {
    println!("== Figure 13: per-service RPS vs CPU allocation under diurnal load ==");
    let app = social_network(false);
    let duration = match scale {
        Scale::Quick => SimDur::from_mins(30),
        Scale::Full => SimDur::from_mins(90),
    };
    let report = crate::runner::run_cells(vec![()], |_, ()| {
        let mut ursa = prepare_ursa(&app, scale, 0x000F_1613);
        let mut sim = app.build_sim(0xD1);
        LoadSpec::Diurnal.apply(&app, &mut sim, duration);
        ursa.apply_initial_allocation(&default_rates(&app), &mut sim);
        let cfg = DeployConfig {
            duration,
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::ZERO,
            collect_samples: false,
        };
        run_deployment(&mut sim, &app.slas, &mut ursa, &cfg)
    })
    .pop()
    .expect("single cell");

    let mut out = Vec::new();
    for name in SERVICES {
        let sid = app.service(name).expect("service exists");
        let cores_per_replica = app.topology.services()[sid.0].cores;
        let points: Vec<(f64, f64, f64)> = report
            .records
            .iter()
            .map(|r| {
                (
                    r.at.as_secs_f64() / 60.0,
                    r.service_rps[sid.0],
                    r.service_replicas[sid.0] as f64 * cores_per_replica,
                )
            })
            .collect();
        let mut table = TsvTable::new(&format!("fig13_{name}"), &["minute", "rps", "cores"]);
        for (t, rps, cores) in &points {
            table.row(vec![
                format!("{t:.0}"),
                format!("{rps:.1}"),
                format!("{cores:.0}"),
            ]);
        }
        let _ = table.write_tsv(&results_dir().join("fig13"));
        let peak = points.iter().map(|p| p.2).fold(0.0, f64::max);
        let trough = points.iter().map(|p| p.2).fold(f64::INFINITY, f64::min);
        println!(
            "{name:<18} windows {:>3}  cores {trough:.0}..{peak:.0}",
            points.len()
        );
        out.push(ServiceSeries {
            service: name.to_string(),
            points,
        });
    }
    println!(
        "overall violation rate during the diurnal run: {:.2}%",
        100.0 * report.overall_violation_rate()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Allocation must track the diurnal ramp: more cores near the peak
    /// than at the start, and scale back in afterwards.
    #[test]
    fn allocation_follows_load() {
        let series = run(Scale::Quick);
        // post-store carries most classes: clearest signal.
        let ps = series.iter().find(|s| s.service == "post-store").unwrap();
        let n = ps.points.len();
        assert!(n >= 10);
        let start_cores = ps.points[1].2;
        let mid_cores = ps.points[n / 2].2;
        let end_cores = ps.points[n - 1].2;
        assert!(
            mid_cores > start_cores,
            "peak {mid_cores} should exceed start {start_cores}"
        );
        assert!(
            end_cores < mid_cores,
            "end {end_cores} should drop from peak {mid_cores}"
        );
    }
}
