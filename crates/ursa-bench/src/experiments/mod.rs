//! One module per paper artifact. See `DESIGN.md` §4 for the index.

pub mod ablation;
pub mod chaos;
pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig4;
pub mod fig9_10;
pub mod qos;
pub mod scale;
pub mod table5;
pub mod table6;
