//! **Figures 9 & 10** — estimated vs measured end-to-end latency.
//!
//! Fig. 9: four representative social-network classes (upload-post,
//! update-timeline, object-detect, sentiment-analysis). Fig. 10: the video
//! pipeline's two priorities (p99 for high, p50 for low).
//!
//! Procedure mirrors §VII-D: during a managed run with dynamically changing
//! allocations (diurnal load), record per 5-minute window the measured
//! percentile latency and Ursa's estimate — the Theorem-1 bound multiplied
//! by the tracked overestimation ratio. The paper's result: the average
//! estimated/measured ratio stays within 0.96–1.05.

use crate::{default_rates, prepare_ursa, results_dir, Scale, TsvTable};
use ursa_apps::{social_network, video_pipeline, App};
use ursa_sim::control::ResourceManager;
use ursa_sim::metrics::SimMetrics;
use ursa_sim::time::SimDur;
use ursa_sim::topology::ServiceId;
use ursa_sim::workload::RateFn;

/// Series of (measured, estimated) per window for one class.
#[derive(Debug, Clone)]
pub struct AccuracySeries {
    /// Class name.
    pub class: String,
    /// One (time s, measured s, estimated s) triple per window.
    pub points: Vec<(f64, f64, f64)>,
}

impl AccuracySeries {
    /// Mean estimated/measured ratio.
    pub fn mean_ratio(&self) -> f64 {
        let ratios: Vec<f64> = self
            .points
            .iter()
            .filter(|(_, m, _)| *m > 0.0)
            .map(|(_, m, e)| e / m)
            .collect();
        if ratios.is_empty() {
            return f64::NAN;
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

/// Runs the accuracy experiment for one app; returns a series per SLA class
/// in `class_filter` (or all SLA classes when empty).
pub fn run_app(app: &App, class_filter: &[&str], scale: Scale, seed: u64) -> Vec<AccuracySeries> {
    let mut ursa = prepare_ursa(app, scale, seed);
    let rates = default_rates(app);
    let mut sim = app.build_sim(seed ^ 0xACC);
    let duration = match scale {
        Scale::Quick => SimDur::from_mins(50),
        Scale::Full => SimDur::from_mins(150),
    };
    app.apply_load(
        &mut sim,
        RateFn::Diurnal {
            base: app.default_rps * 0.7,
            peak: app.default_rps * 1.3,
            period: duration,
        },
    );
    ursa.apply_initial_allocation(&rates, &mut sim);

    let window = SimDur::from_mins(5);
    let windows = (duration.as_nanos() / window.as_nanos()) as usize;
    let mut series: Vec<AccuracySeries> = app
        .slas
        .iter()
        .map(|sla| AccuracySeries {
            class: app.topology.classes()[sla.class.0].name.clone(),
            points: Vec::new(),
        })
        .collect();
    let metrics_dir = crate::logging::metrics_dir();
    let mut metrics = metrics_dir
        .as_ref()
        .map(|_| SimMetrics::for_topology("ursa", &app.topology, &app.slas));
    for _ in 0..windows {
        sim.run_for(window);
        let snap = sim.harvest();
        let t = snap.at.as_secs_f64() / 60.0;
        if let Some(m) = metrics.as_mut() {
            m.observe_snapshot(&sim, &snap);
        }
        let before: Option<Vec<usize>> = metrics.as_ref().map(|_| {
            (0..app.topology.num_services())
                .map(|s| sim.replicas(ServiceId(s)))
                .collect()
        });
        let wall = std::time::Instant::now();
        // Tick first so the tracker sees the newest window, then read the
        // estimate the controller would report for it.
        ursa.on_tick(&snap, &mut sim);
        if let Some(m) = metrics.as_mut() {
            let before = before.expect("captured before the tick");
            let changes: Vec<(String, usize, usize)> = (0..app.topology.num_services())
                .filter_map(|s| {
                    let after = sim.replicas(ServiceId(s));
                    (after != before[s])
                        .then(|| (app.topology.services()[s].name.clone(), before[s], after))
                })
                .collect();
            m.observe_decision(
                snap.at,
                wall.elapsed().as_secs_f64() * 1e3,
                &ursa.self_profile(),
                &changes,
            );
            m.scrape(snap.at);
        }
        for (k, sla) in app.slas.iter().enumerate() {
            if let Some(measured) = snap.e2e_latency[sla.class.0].percentile(sla.percentile) {
                let estimated = ursa.estimated_latency(k);
                series[k].points.push((t, measured, estimated));
            }
        }
    }
    if let Some(dir) = crate::logging::trace_dir() {
        let path = dir.join(format!("fig9_10_{}_decisions.jsonl", app.name));
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::File::create(&path))
            .and_then(|mut f| ursa.decisions().write_jsonl(&mut f));
        match write {
            Ok(()) => crate::info!(
                "[fig9/10] wrote {} control-plane decisions to {}",
                ursa.decisions().len(),
                path.display()
            ),
            Err(e) => crate::warn!("[fig9/10] decision log export failed: {e}"),
        }
    }
    if let (Some(dir), Some(m)) = (&metrics_dir, metrics.as_mut()) {
        let stem = format!("fig9_10_{}", app.name);
        let title = format!("Fig. 9/10 — Ursa on {} (diurnal load)", app.name);
        match m.write_artifacts(dir, &stem, &title) {
            Ok(_) => crate::info!(
                "[fig9/10] wrote metrics artifacts {stem}.{{prom,csv,html}} under {}",
                dir.display()
            ),
            Err(e) => crate::warn!("[fig9/10] metrics export failed: {e}"),
        }
    }
    if class_filter.is_empty() {
        series
    } else {
        series
            .into_iter()
            .filter(|s| class_filter.contains(&s.class.as_str()))
            .collect()
    }
}

/// Runs both figures and writes the series. The two apps are independent
/// cells (each writes only its own per-app artifacts), so they run in
/// parallel; output stays in figure order.
pub fn run(scale: Scale) -> Vec<AccuracySeries> {
    println!("== Figures 9 & 10: estimated vs measured latency ==");
    let mut all = Vec::new();
    let fig9_filter = [
        "upload-post",
        "update-timeline",
        "object-detect",
        "sentiment-analysis",
    ];
    let cells: Vec<(App, Vec<&str>, u64)> = vec![
        (social_network(false), fig9_filter.to_vec(), 0xF169),
        (video_pipeline(0.5), Vec::new(), 0x000F_1610),
    ];
    let mut results = crate::runner::run_cells(cells, |_, (app, filter, seed)| {
        run_app(&app, &filter, scale, seed)
    });
    let fig10 = results.pop().expect("video series");
    let fig9 = results.pop().expect("social series");
    for (fig, series) in [("fig9", fig9), ("fig10", fig10)] {
        for s in series {
            let mut table = TsvTable::new(
                &format!("{fig}_{}", s.class),
                &["minute", "measured_s", "estimated_s"],
            );
            for (t, m, e) in &s.points {
                table.row(vec![
                    format!("{t:.0}"),
                    format!("{m:.4}"),
                    format!("{e:.4}"),
                ]);
            }
            let _ = table.write_tsv(&results_dir().join(fig));
            println!(
                "{fig} {:<22} windows {:>3}  mean estimated/measured ratio {:.3}",
                s.class,
                s.points.len(),
                s.mean_ratio()
            );
            all.push(s);
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §VII-D's claim: the corrected estimate tracks measured latency; the
    /// paper reports mean ratios 0.96–1.05, we accept a looser band on the
    /// quick scale.
    #[test]
    fn estimates_track_measurements_on_social() {
        let app = social_network(true);
        let series = run_app(&app, &[], Scale::Quick, 77);
        assert!(!series.is_empty());
        for s in &series {
            assert!(!s.points.is_empty(), "{} has no windows", s.class);
            let r = s.mean_ratio();
            assert!(
                (0.5..=2.0).contains(&r),
                "{}: mean ratio {r} out of band",
                s.class
            );
        }
    }
}
