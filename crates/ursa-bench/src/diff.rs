//! `diff` subcommand — aligns two run manifests and reports what moved.
//!
//! `ursa-bench diff <run_a.json> <run_b.json>` loads two manifests written
//! by [`crate::manifest`], aligns every section by key, and emits:
//!
//! * a machine-readable TSV (`diff.tsv`): one row per aligned entry with
//!   both values, the absolute delta, the relative delta, and a
//!   significance flag;
//! * a script-free, self-contained HTML report (`diff.html`): the same
//!   rows as static tables with significant entries highlighted, plus —
//!   when `--history` points at a `history.jsonl` perf trajectory — an
//!   inline-SVG sparkline of engine throughput over time.
//!
//! The significance rule is the one `perf --check` gates CI with: entry
//! `b` differs significantly from baseline `a` when it falls outside
//! `a × (1 ± tolerance)` (default tolerance [`crate::perf::REGRESSION_TOLERANCE`],
//! overridable via `--tolerance` or `URSA_PERF_TOLERANCE`). Best-of-N
//! minimum walls feed the perf scalars, so the same tolerance is
//! meaningful on both sides of the pipeline.
//!
//! Diffing a manifest against itself yields all-zero deltas and — because
//! manifests and this report are rendered from BTreeMap-backed state with
//! fixed float formatting — byte-identical output for byte-identical
//! inputs (enforced by `tests/diff_determinism.rs`).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::manifest::{parse_json, JsonValue};

/// One aligned row of the diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Section the row belongs to (`series`, `phases`, `scalars`, ...).
    pub section: String,
    /// The aligned key.
    pub key: String,
    /// Value in run A (None = absent).
    pub a: Option<f64>,
    /// Value in run B (None = absent).
    pub b: Option<f64>,
    /// `b - a` when both are present.
    pub delta: Option<f64>,
    /// `(b - a) / |a|` when both are present and `a != 0`.
    pub rel: Option<f64>,
    /// True when the entry moved outside the tolerance band (or exists on
    /// only one side).
    pub significant: bool,
}

/// A fully aligned pair of manifests.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Identity lines (kind/seed/jobs/scale/topology, textual).
    pub identity: Vec<(String, String, String)>,
    /// Aligned numeric rows, in section + key order.
    pub rows: Vec<DiffRow>,
    /// Decision-log divergence notes, one per cell.
    pub divergences: Vec<String>,
    /// The applied tolerance.
    pub tolerance: f64,
}

impl DiffReport {
    /// Rows that moved significantly.
    pub fn significant(&self) -> usize {
        self.rows.iter().filter(|r| r.significant).count()
    }

    /// True when nothing moved at all (self-diff).
    pub fn is_zero(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.delta == Some(0.0) && !r.significant)
            && self.identity.iter().all(|(_, a, b)| a == b)
            && self.divergences.is_empty()
    }
}

fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.6}"),
        None => "-".into(),
    }
}

/// Aligns one string-valued identity field.
fn ident(out: &mut Vec<(String, String, String)>, key: &str, a: &JsonValue, b: &JsonValue) {
    let get = |v: &JsonValue| -> String {
        match v.get(key) {
            Some(JsonValue::Str(s)) => s.clone(),
            Some(JsonValue::Num(n)) => format!("{n}"),
            Some(JsonValue::Null) | None => "-".into(),
            Some(other) => format!("{other:?}"),
        }
    };
    out.push((key.to_string(), get(a), get(b)));
}

/// Collects `key -> value` pairs from a manifest section into sorted rows.
fn keyed_f64s(v: &JsonValue, section: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    match section {
        "series" => {
            for item in v.get("series").and_then(JsonValue::as_arr).unwrap_or(&[]) {
                let Some(key) = item.get("key").and_then(JsonValue::as_str) else {
                    continue;
                };
                for stat in ["mean", "last", "min", "max", "count"] {
                    if let Some(x) = item.get(stat).and_then(JsonValue::as_f64) {
                        out.push((format!("{key}#{stat}"), x));
                    }
                }
            }
        }
        "phases" => {
            if let Some(p) = v.get("phase_profile") {
                for row in p.get("phases").and_then(JsonValue::as_arr).unwrap_or(&[]) {
                    let Some(phase) = row.get("phase").and_then(JsonValue::as_str) else {
                        continue;
                    };
                    for stat in ["pct", "ns_per_event", "count"] {
                        if let Some(x) = row.get(stat).and_then(JsonValue::as_f64) {
                            out.push((format!("{phase}#{stat}"), x));
                        }
                    }
                }
            }
        }
        "tables" => {
            for (name, t) in v.get("tables").and_then(JsonValue::as_obj).unwrap_or(&[]) {
                if let Some(rows) = t.get("rows").and_then(JsonValue::as_f64) {
                    out.push((format!("{name}#rows"), rows));
                }
            }
        }
        "scalars" => {
            for (key, val) in v.get("scalars").and_then(JsonValue::as_obj).unwrap_or(&[]) {
                if let Some(x) = val.as_f64() {
                    out.push((key.clone(), x));
                }
            }
        }
        _ => {}
    }
    out.sort_by(|x, y| x.0.cmp(&y.0));
    out
}

/// Merges two sorted key/value lists into aligned diff rows.
fn align(section: &str, a: &[(String, f64)], b: &[(String, f64)], tolerance: f64) -> Vec<DiffRow> {
    let mut keys: Vec<&String> = a.iter().chain(b).map(|(k, _)| k).collect();
    keys.sort();
    keys.dedup();
    let find = |xs: &[(String, f64)], k: &String| -> Option<f64> {
        xs.binary_search_by(|(key, _)| key.cmp(k))
            .ok()
            .map(|i| xs[i].1)
    };
    keys.into_iter()
        .map(|k| {
            let va = find(a, k);
            let vb = find(b, k);
            let delta = match (va, vb) {
                (Some(x), Some(y)) => Some(y - x),
                _ => None,
            };
            let rel = match (va, delta) {
                (Some(x), Some(d)) if x != 0.0 => Some(d / x.abs()),
                _ => None,
            };
            // Count-like keys only flag on presence changes, not magnitude:
            // tolerance applies to measured values.
            let significant = match (va, vb) {
                (Some(x), Some(y)) => {
                    let band = tolerance * x.abs();
                    (y - x).abs() > band && (y - x).abs() > 1e-12
                }
                _ => true,
            };
            DiffRow {
                section: section.to_string(),
                key: k.clone(),
                a: va,
                b: vb,
                delta,
                rel,
                significant,
            }
        })
        .collect()
}

/// Compares digest-valued maps (`chaos_plan_digests`, table digests) as
/// identity rows with a changed/unchanged verdict.
fn digest_rows(a: &JsonValue, b: &JsonValue) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let topo = |v: &JsonValue| {
        v.get("topology_digest")
            .and_then(JsonValue::as_str)
            .unwrap_or("-")
            .to_string()
    };
    out.push(("topology_digest".into(), topo(a), topo(b)));
    for (field, prefix) in [("chaos_plan_digests", "chaos"), ("mem_plan_digests", "mem")] {
        let mut names: Vec<String> = Vec::new();
        for v in [a, b] {
            for (name, _) in v.get(field).and_then(JsonValue::as_obj).unwrap_or(&[]) {
                names.push(name.clone());
            }
        }
        names.sort();
        names.dedup();
        let get = |v: &JsonValue, name: &str| -> String {
            v.get(field)
                .and_then(|o| o.get(name))
                .and_then(JsonValue::as_str)
                .unwrap_or("-")
                .to_string()
        };
        for name in names {
            out.push((format!("{prefix}/{name}"), get(a, &name), get(b, &name)));
        }
    }
    let mut table_names: Vec<String> = Vec::new();
    for v in [a, b] {
        for (name, _) in v.get("tables").and_then(JsonValue::as_obj).unwrap_or(&[]) {
            table_names.push(name.clone());
        }
    }
    table_names.sort();
    table_names.dedup();
    let tget = |v: &JsonValue, name: &str| -> String {
        v.get("tables")
            .and_then(|o| o.get(name))
            .and_then(|t| t.get("digest"))
            .and_then(JsonValue::as_str)
            .unwrap_or("-")
            .to_string()
    };
    for name in table_names {
        out.push((format!("table/{name}"), tget(a, &name), tget(b, &name)));
    }
    out
}

/// Locates decision-log divergence per cell: identical digests mean the
/// two runs took the exact same decision sequence; otherwise the first
/// differing tail line (aligned from the end) localises where they split.
fn decision_divergence(a: &JsonValue, b: &JsonValue) -> Vec<String> {
    let mut cells: Vec<String> = Vec::new();
    for v in [a, b] {
        for (cell, _) in v
            .get("decisions")
            .and_then(JsonValue::as_obj)
            .unwrap_or(&[])
        {
            cells.push(cell.clone());
        }
    }
    cells.sort();
    cells.dedup();
    let mut out = Vec::new();
    for cell in cells {
        let da = a.get("decisions").and_then(|o| o.get(&cell));
        let db = b.get("decisions").and_then(|o| o.get(&cell));
        match (da, db) {
            (Some(da), Some(db)) => {
                let dig = |d: &JsonValue| {
                    d.get("digest")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string()
                };
                if dig(da) == dig(db) {
                    continue;
                }
                let tails = |d: &JsonValue| -> Vec<String> {
                    d.get("tail")
                        .and_then(JsonValue::as_arr)
                        .map(|xs| {
                            xs.iter()
                                .filter_map(|x| x.as_str().map(str::to_string))
                                .collect()
                        })
                        .unwrap_or_default()
                };
                let (ta, tb) = (tails(da), tails(db));
                let total = |d: &JsonValue| {
                    d.get("total").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize
                };
                let first_diff = ta
                    .iter()
                    .zip(tb.iter())
                    .position(|(x, y)| x != y)
                    .unwrap_or(ta.len().min(tb.len()));
                out.push(format!(
                    "{cell}: decision logs diverge ({} vs {} records); first differing tail \
                     line {first_diff} of {}",
                    total(da),
                    total(db),
                    ta.len().max(tb.len())
                ));
            }
            (Some(_), None) => out.push(format!("{cell}: decisions only in run A")),
            (None, Some(_)) => out.push(format!("{cell}: decisions only in run B")),
            (None, None) => {}
        }
    }
    out
}

/// Diffs two parsed manifests.
pub fn diff_manifests(a: &JsonValue, b: &JsonValue, tolerance: f64) -> DiffReport {
    let mut identity = Vec::new();
    for key in ["schema", "kind", "seed", "jobs", "scale"] {
        ident(&mut identity, key, a, b);
    }
    identity.extend(digest_rows(a, b));
    let mut rows = Vec::new();
    for section in ["scalars", "series", "phases", "tables"] {
        let ka = keyed_f64s(a, section);
        let kb = keyed_f64s(b, section);
        rows.extend(align(section, &ka, &kb, tolerance));
    }
    DiffReport {
        identity,
        rows,
        divergences: decision_divergence(a, b),
        tolerance,
    }
}

/// Renders the TSV artifact.
pub fn render_tsv(report: &DiffReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "section\tkey\ta\tb\tdelta\trel\tsignificant");
    for (key, a, b) in &report.identity {
        let sig = if a == b { "no" } else { "yes" };
        let _ = writeln!(out, "identity\t{key}\t{a}\t{b}\t-\t-\t{sig}");
    }
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.section,
            r.key,
            fmt_opt(r.a),
            fmt_opt(r.b),
            fmt_opt(r.delta),
            fmt_opt(r.rel),
            if r.significant { "yes" } else { "no" }
        );
    }
    for d in &report.divergences {
        let _ = writeln!(out, "divergence\t{d}\t-\t-\t-\t-\tyes");
    }
    out
}

fn html_esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders an inline-SVG sparkline of `values` (no scripts, no deps).
fn sparkline_svg(values: &[f64], label: &str) -> String {
    if values.len() < 2 {
        return String::new();
    }
    let (w, h, pad) = (600.0f64, 120.0f64, 8.0f64);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-9);
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = pad + (w - 2.0 * pad) * i as f64 / (values.len() - 1) as f64;
            let y = h - pad - (h - 2.0 * pad) * (v - min) / span;
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<h2>{}</h2>\n<svg width=\"{w:.0}\" height=\"{h:.0}\" \
         viewBox=\"0 0 {w:.0} {h:.0}\" role=\"img\">\n\
         <rect width=\"{w:.0}\" height=\"{h:.0}\" fill=\"#f6f8fa\"/>\n\
         <polyline fill=\"none\" stroke=\"#0969da\" stroke-width=\"2\" points=\"{}\"/>\n\
         </svg>\n<p>{} points, min {min:.0}, max {max:.0}</p>\n",
        html_esc(label),
        pts.join(" "),
        values.len(),
    )
}

/// Renders the self-contained HTML artifact.
pub fn render_html(report: &DiffReport, history: &[f64]) -> String {
    let mut out = String::new();
    out.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>ursa-bench diff</title>\n<style>\n\
         body { font-family: sans-serif; margin: 2em; color: #1f2328; }\n\
         table { border-collapse: collapse; margin-bottom: 2em; }\n\
         th, td { border: 1px solid #d0d7de; padding: 4px 10px; \
         font-variant-numeric: tabular-nums; text-align: right; }\n\
         th, td:first-child, td:nth-child(2) { text-align: left; }\n\
         tr.sig td { background: #fff1f0; font-weight: bold; }\n\
         </style>\n</head>\n<body>\n<h1>ursa-bench diff</h1>\n",
    );
    let _ = writeln!(
        out,
        "<p>{} aligned entries, {} significant at tolerance {:.2} \
         (the <code>perf --check</code> band).</p>",
        report.rows.len(),
        report.significant(),
        report.tolerance
    );
    out.push_str("<h2>Identity</h2>\n<table>\n<tr><th>key</th><th>run A</th><th>run B</th></tr>\n");
    for (key, a, b) in &report.identity {
        let cls = if a == b { "" } else { " class=\"sig\"" };
        let _ = writeln!(
            out,
            "<tr{cls}><td>{}</td><td>{}</td><td>{}</td></tr>",
            html_esc(key),
            html_esc(a),
            html_esc(b)
        );
    }
    out.push_str("</table>\n");
    if !report.divergences.is_empty() {
        out.push_str("<h2>Decision-log divergence</h2>\n<ul>\n");
        for d in &report.divergences {
            let _ = writeln!(out, "<li>{}</li>", html_esc(d));
        }
        out.push_str("</ul>\n");
    }
    for section in ["scalars", "series", "phases", "tables"] {
        let rows: Vec<&DiffRow> = report
            .rows
            .iter()
            .filter(|r| r.section == section)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "<h2>{section}</h2>\n<table>\n<tr><th>key</th><th>a</th><th>b</th>\
             <th>delta</th><th>rel</th></tr>"
        );
        for r in rows {
            let cls = if r.significant { " class=\"sig\"" } else { "" };
            let _ = writeln!(
                out,
                "<tr{cls}><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                html_esc(&r.key),
                fmt_opt(r.a),
                fmt_opt(r.b),
                fmt_opt(r.delta),
                fmt_opt(r.rel)
            );
        }
        out.push_str("</table>\n");
    }
    out.push_str(&sparkline_svg(
        history,
        "events_per_sec trajectory (history.jsonl)",
    ));
    out.push_str("</body>\n</html>\n");
    out
}

/// Loads `events_per_sec` points from a `history.jsonl` trajectory (lines
/// that fail to parse are skipped — the file is append-only across
/// schema revisions).
pub fn load_history(path: &Path) -> Vec<f64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            parse_json(line.trim())
                .ok()?
                .get("events_per_sec")?
                .as_f64()
        })
        .collect()
}

/// Options for [`run`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Output directory for `diff.tsv` / `diff.html`.
    pub out_dir: PathBuf,
    /// Significance tolerance (the perf band).
    pub tolerance: f64,
    /// Optional `history.jsonl` to plot.
    pub history: Option<PathBuf>,
}

/// Runs the diff end-to-end: load, align, write artifacts, print the
/// summary. Returns the process exit code: 0 = no significant deltas,
/// 1 = significant deltas or a decision-log divergence (the report was
/// still written), 2 = bad input/IO.
pub fn run(a_path: &Path, b_path: &Path, opts: &DiffOptions) -> i32 {
    let load = |p: &Path| -> Result<JsonValue, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read: {e}"))?;
        let v = parse_json(&text)?;
        match v.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s.starts_with("ursa-run-manifest/") => Ok(v),
            other => Err(format!("not a run manifest (schema {other:?})")),
        }
    };
    let a = match load(a_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {}: {e}", a_path.display());
            return 2;
        }
    };
    let b = match load(b_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {}: {e}", b_path.display());
            return 2;
        }
    };
    let report = diff_manifests(&a, &b, opts.tolerance);
    let history = opts
        .history
        .as_deref()
        .map(load_history)
        .unwrap_or_default();
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("error: cannot create {}: {e}", opts.out_dir.display());
        return 2;
    }
    let tsv_path = opts.out_dir.join("diff.tsv");
    let html_path = opts.out_dir.join("diff.html");
    if let Err(e) = std::fs::write(&tsv_path, render_tsv(&report)) {
        eprintln!("error: cannot write {}: {e}", tsv_path.display());
        return 2;
    }
    if let Err(e) = std::fs::write(&html_path, render_html(&report, &history)) {
        eprintln!("error: cannot write {}: {e}", html_path.display());
        return 2;
    }
    println!(
        "diff: {} aligned entries, {} significant (tolerance {:.2}), {} decision divergence(s)",
        report.rows.len(),
        report.significant(),
        report.tolerance,
        report.divergences.len()
    );
    for d in &report.divergences {
        println!("  divergence: {d}");
    }
    if report.is_zero() {
        println!("runs are identical under the manifest view");
    }
    println!("wrote {} and {}", tsv_path.display(), html_path.display());
    if report.significant() > 0 || !report.divergences.is_empty() {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunManifest;

    fn manifest(rps: f64) -> String {
        let mut m = RunManifest::new("unit", 1, 2, "quick");
        m.set_topology_digest(0xAB);
        m.note_scalar("events_per_sec", rps);
        m.note_scalar("speedup", 3.0);
        m.note_table("t", 4, b"x\n");
        m.to_json()
    }

    #[test]
    fn self_diff_is_all_zero() {
        let v = parse_json(&manifest(1000.0)).unwrap();
        let report = diff_manifests(&v, &v, 0.35);
        assert!(report.is_zero(), "{:?}", report.rows);
        assert_eq!(report.significant(), 0);
        let tsv = render_tsv(&report);
        assert!(tsv.contains("events_per_sec\t1000.000000\t1000.000000\t0.000000"));
        // Deterministic rendering.
        assert_eq!(tsv, render_tsv(&diff_manifests(&v, &v, 0.35)));
        assert_eq!(
            render_html(&report, &[]),
            render_html(&diff_manifests(&v, &v, 0.35), &[])
        );
    }

    #[test]
    fn significance_follows_the_perf_band() {
        let a = parse_json(&manifest(1000.0)).unwrap();
        // -30% stays inside the default 35% band; -50% trips it.
        let ok = parse_json(&manifest(700.0)).unwrap();
        let bad = parse_json(&manifest(500.0)).unwrap();
        let r_ok = diff_manifests(&a, &ok, 0.35);
        let row = r_ok
            .rows
            .iter()
            .find(|r| r.key == "events_per_sec")
            .unwrap();
        assert!(!row.significant);
        assert_eq!(row.delta, Some(-300.0));
        assert!((row.rel.unwrap() + 0.3).abs() < 1e-12);
        let r_bad = diff_manifests(&a, &bad, 0.35);
        assert!(
            r_bad
                .rows
                .iter()
                .find(|r| r.key == "events_per_sec")
                .unwrap()
                .significant
        );
        // Improvements outside the band are flagged too (it is a change
        // detector, not only a regression gate).
        let better = parse_json(&manifest(2000.0)).unwrap();
        let r_up = diff_manifests(&a, &better, 0.35);
        assert!(
            r_up.rows
                .iter()
                .find(|r| r.key == "events_per_sec")
                .unwrap()
                .significant
        );
    }

    #[test]
    fn one_sided_keys_are_flagged() {
        let a = parse_json(&manifest(1000.0)).unwrap();
        let mut m = RunManifest::new("unit", 1, 2, "quick");
        m.note_scalar("events_per_sec", 1000.0);
        let b = parse_json(&m.to_json()).unwrap();
        let r = diff_manifests(&a, &b, 0.35);
        let speedup = r.rows.iter().find(|x| x.key == "speedup").unwrap();
        assert!(speedup.significant);
        assert_eq!(speedup.b, None);
        assert!(!r.is_zero());
    }

    #[test]
    fn html_is_script_free_and_sparkline_renders() {
        let v = parse_json(&manifest(1000.0)).unwrap();
        let report = diff_manifests(&v, &v, 0.35);
        let html = render_html(&report, &[100.0, 120.0, 110.0]);
        assert!(!html.contains("<script"));
        assert!(html.contains("<svg"));
        assert!(html.contains("polyline"));
        assert!(html.contains("events_per_sec"));
    }

    #[test]
    fn history_loader_skips_bad_lines() {
        let dir = std::env::temp_dir().join("ursa-diff-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        std::fs::write(
            &path,
            "{\"events_per_sec\": 100.5}\nnot json\n{\"other\": 1}\n{\"events_per_sec\": 200.0}\n",
        )
        .unwrap();
        assert_eq!(load_history(&path), vec![100.5, 200.0]);
        assert!(load_history(Path::new("/nonexistent")).is_empty());
    }
}
