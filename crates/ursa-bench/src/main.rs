//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ursa-bench -- --exp all [--full]
//! cargo run --release -p ursa-bench -- --exp fig2|fig4|table5|fig9|fig11|fig13|table6|fig14
//! cargo run --release -p ursa-bench -- --exp fig2 --trace-dir traces/
//! cargo run --release -p ursa-bench -- --exp fig9 --metrics-dir metrics/
//! ```

use ursa_bench::logging::{self, Level};
use ursa_bench::{experiments, info, warn, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut exp = "all".to_string();
    let mut scale = Scale::Quick;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--quiet" | "-q" => logging::set_level(Level::Quiet),
            "--verbose" | "-v" => logging::set_level(Level::Debug),
            "--trace-dir" => {
                i += 1;
                let dir = args.get(i).cloned().unwrap_or_else(|| usage());
                logging::set_trace_dir(Some(dir.into()));
            }
            "--metrics-dir" => {
                i += 1;
                let dir = args.get(i).cloned().unwrap_or_else(|| usage());
                logging::set_metrics_dir(Some(dir.into()));
            }
            "--help" | "-h" => {
                usage();
            }
            other => {
                warn!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    let t0 = std::time::Instant::now();
    let run_one = |name: &str| match name {
        "fig2" => {
            experiments::fig2::run(scale);
        }
        "fig4" => {
            experiments::fig4::run(scale);
        }
        "table5" => {
            experiments::table5::run(scale);
        }
        "fig9" | "fig10" | "fig9_10" => {
            experiments::fig9_10::run(scale);
        }
        "fig11" | "fig12" | "fig11_12" => {
            experiments::fig11_12::run(scale);
        }
        "fig13" => {
            experiments::fig13::run(scale);
        }
        "table6" => {
            experiments::table6::run(scale);
        }
        "fig14" => {
            experiments::fig14::run(scale);
        }
        "ablation" => {
            experiments::ablation::run(scale);
        }
        other => {
            warn!("unknown experiment: {other}");
            usage();
        }
    };
    if exp == "all" {
        for name in [
            "fig2", "fig4", "table5", "fig9", "fig11", "fig13", "table6", "fig14", "ablation",
        ] {
            println!();
            run_one(name);
        }
    } else {
        run_one(&exp);
    }
    info!(
        "\n[done in {:.1}s, results under results/]",
        t0.elapsed().as_secs_f64()
    );
}

fn usage() -> ! {
    eprintln!(
        "usage: ursa-bench [--exp all|fig2|fig4|table5|fig9|fig11|fig13|table6|fig14|ablation] \
         [--quick|--full] [--quiet|--verbose] [--trace-dir DIR] [--metrics-dir DIR]"
    );
    std::process::exit(2)
}
