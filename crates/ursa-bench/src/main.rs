//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ursa-bench -- --exp all [--full] [--jobs N] [--seed N]
//! cargo run --release -p ursa-bench -- --exp fig2|fig4|table5|fig9|fig11|fig13|table6|fig14
//! cargo run --release -p ursa-bench -- --exp chaos [--seed N]
//! cargo run --release -p ursa-bench -- --exp qos [--seed N]
//! cargo run --release -p ursa-bench -- --exp scale [--shards N|max] [--scale K]
//! cargo run --release -p ursa-bench -- --exp fig2 --trace-dir traces/
//! cargo run --release -p ursa-bench -- --exp fig9 --metrics-dir metrics/
//! cargo run --release -p ursa-bench -- --exp chaos --postmortem-dir results/postmortem
//! cargo run --release -p ursa-bench -- perf [--out BENCH_sim.json] [--check baseline.json] \
//!     [--tolerance 0.35] [--shards 8|max]
//! cargo run --release -p ursa-bench -- diff results/bench/run_baseline.json \
//!     results/bench/run.json [--out results/diff] [--history results/bench/history.jsonl]
//! ```
//!
//! Every experiment writes a `run.json` manifest under its results
//! directory (and `perf` under the `--out` directory); `diff` aligns two
//! such manifests into `diff.tsv` + a script-free `diff.html`.

use std::path::PathBuf;

use ursa_bench::logging::{self, Level};
use ursa_bench::{diff, experiments, info, manifest, perf, results_dir, runner, warn, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("perf") {
        std::process::exit(perf_main(&args[2..]));
    }
    if args.get(1).map(String::as_str) == Some("diff") {
        std::process::exit(diff_main(&args[2..]));
    }
    let mut exp = "all".to_string();
    let mut scale = Scale::Quick;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--quiet" | "-q" => logging::set_level(Level::Quiet),
            "--verbose" | "-v" => logging::set_level(Level::Debug),
            "--jobs" | "-j" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                runner::set_jobs(n.max(1));
            }
            "--seed" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                ursa_bench::set_seed(n);
            }
            "--shards" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|s| parse_shards(s))
                    .unwrap_or_else(|| usage());
                ursa_bench::set_shards(n);
            }
            "--scale" => {
                i += 1;
                let k: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| usage());
                ursa_bench::set_scale_factor(k);
            }
            "--trace-dir" => {
                i += 1;
                let dir = args.get(i).cloned().unwrap_or_else(|| usage());
                logging::set_trace_dir(Some(dir.into()));
            }
            "--metrics-dir" => {
                i += 1;
                let dir = args.get(i).cloned().unwrap_or_else(|| usage());
                logging::set_metrics_dir(Some(dir.into()));
            }
            "--postmortem-dir" => {
                i += 1;
                let dir = args.get(i).cloned().unwrap_or_else(|| usage());
                logging::set_postmortem_dir(Some(dir.into()));
            }
            "--snapshot-at" => {
                i += 1;
                let t: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                logging::set_snapshot_at(Some(t));
            }
            "--help" | "-h" => {
                usage();
            }
            other => {
                warn!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    let t0 = std::time::Instant::now();
    info!("[runner] {} worker(s)", runner::jobs());
    let scale_label = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    let run_one = |name: &str| match name {
        "fig2" => {
            experiments::fig2::run(scale);
        }
        "fig4" => {
            experiments::fig4::run(scale);
        }
        "table5" => {
            experiments::table5::run(scale);
        }
        "fig9" | "fig10" | "fig9_10" => {
            experiments::fig9_10::run(scale);
        }
        "fig11" | "fig12" | "fig11_12" => {
            experiments::fig11_12::run(scale);
        }
        "fig13" => {
            experiments::fig13::run(scale);
        }
        "table6" => {
            experiments::table6::run(scale);
        }
        "fig14" => {
            experiments::fig14::run(scale);
        }
        "ablation" => {
            experiments::ablation::run(scale);
        }
        "chaos" => {
            experiments::chaos::run(scale);
        }
        "qos" => {
            experiments::qos::run(scale);
        }
        "scale" => {
            experiments::scale::run(scale);
        }
        other => {
            warn!("unknown experiment: {other}");
            usage();
        }
    };
    // Every experiment run is wrapped in a manifest: `begin` arms the
    // global collector the experiment's note_* hooks feed, `finish`
    // writes `results/<exp>/run.json` for `ursa-bench diff`.
    let run_manifested = |name: &str| {
        manifest::begin(name, ursa_bench::global_seed(), runner::jobs(), scale_label);
        run_one(name);
        if let Some(p) = manifest::finish(&results_dir().join(name).join("run.json")) {
            info!("[manifest] wrote {}", p.display());
        }
    };
    if exp == "all" {
        for name in [
            "fig2", "fig4", "table5", "fig9", "fig11", "fig13", "table6", "fig14", "ablation",
        ] {
            println!();
            run_manifested(name);
        }
    } else {
        run_manifested(&exp);
    }
    info!(
        "\n[done in {:.1}s, results under results/]",
        t0.elapsed().as_secs_f64()
    );
}

/// Resolves the perf/diff tolerance: `--tolerance` flag, then the
/// `URSA_PERF_TOLERANCE` environment variable, then the built-in default.
fn resolve_tolerance(flag: Option<f64>) -> f64 {
    flag.or_else(|| {
        std::env::var("URSA_PERF_TOLERANCE")
            .ok()
            .and_then(|s| s.parse().ok())
    })
    .unwrap_or(perf::REGRESSION_TOLERANCE)
}

/// Parses a `--shards` operand: a positive count, or `max` for every
/// core the host exposes.
fn parse_shards(s: &str) -> Option<usize> {
    if s == "max" {
        return Some(std::thread::available_parallelism().map_or(1, |n| n.get()));
    }
    s.parse().ok().filter(|&n| n >= 1)
}

/// `ursa-bench perf [--out PATH] [--check BASELINE] [--tolerance T] [--jobs N] [--shards N|max]`
fn perf_main(args: &[String]) -> i32 {
    let mut out = PathBuf::from("BENCH_sim.json");
    let mut check: Option<PathBuf> = None;
    let mut tolerance: Option<f64> = None;
    let mut shards = perf::DEFAULT_BIG_SHARDS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).map(PathBuf::from).unwrap_or_else(|| usage());
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            "--tolerance" => {
                i += 1;
                let t: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if !(0.0..1.0).contains(&t) {
                    warn!("--tolerance must be in [0, 1)");
                    usage();
                }
                tolerance = Some(t);
            }
            "--jobs" | "-j" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                runner::set_jobs(n.max(1));
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| parse_shards(s))
                    .unwrap_or_else(|| usage());
            }
            other => {
                warn!("unknown perf argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    perf::run(&out, check.as_deref(), resolve_tolerance(tolerance), shards)
}

/// `ursa-bench diff RUN_A RUN_B [--out DIR] [--tolerance T] [--history PATH]`
fn diff_main(args: &[String]) -> i32 {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut out_dir = results_dir().join("diff");
    let mut tolerance: Option<f64> = None;
    let mut history: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = args.get(i).map(PathBuf::from).unwrap_or_else(|| usage());
            }
            "--tolerance" => {
                i += 1;
                let t: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                tolerance = Some(t);
            }
            "--history" => {
                i += 1;
                history = Some(args.get(i).map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            flag if flag.starts_with("--") => {
                warn!("unknown diff argument: {flag}");
                usage();
            }
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if paths.len() != 2 {
        warn!("diff needs exactly two manifest paths, got {}", paths.len());
        usage();
    }
    let opts = diff::DiffOptions {
        out_dir,
        tolerance: resolve_tolerance(tolerance),
        history,
    };
    diff::run(&paths[0], &paths[1], &opts)
}

fn usage() -> ! {
    eprintln!(
        "usage: ursa-bench [--exp all|fig2|fig4|table5|fig9|fig11|fig13|table6|fig14|ablation|chaos|qos|scale] \
         [--quick|--full] [--jobs N] [--seed N] [--shards N|max] [--scale K] [--quiet|--verbose] \
         [--trace-dir DIR] [--metrics-dir DIR] [--postmortem-dir DIR] [--snapshot-at SECS]\n\
         \x20      ursa-bench perf [--out BENCH_sim.json] [--check baseline.json] \
         [--tolerance T] [--jobs N] [--shards N|max]\n\
         \x20      ursa-bench diff RUN_A.json RUN_B.json [--out DIR] [--tolerance T] \
         [--history history.jsonl]"
    );
    std::process::exit(2)
}
