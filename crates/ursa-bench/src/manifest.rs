//! Self-describing run manifests (`run.json`) and the hand-rolled JSON
//! layer `ursa-bench diff` reads them back with.
//!
//! Every experiment and perf run writes a manifest describing *what ran*
//! (kind, seed, jobs, scale, topology digest, chaos-plan digests) and
//! *what came out* (per-series metric digests, per-phase profile rows,
//! TSV-table digests, decision-log tails, free-form scalars). Two
//! manifests from different commits or machines can then be aligned by
//! `ursa-bench diff` without re-running anything.
//!
//! Determinism contract: every collection in a manifest is BTreeMap-backed
//! and series digests come from [`ursa_metrics::store_digests`] (sorted by
//! name + labels), so the rendered JSON is byte-identical for a fixed
//! seed regardless of `--jobs`, insertion order, or platform — enforced by
//! `tests/diff_determinism.rs`. Wall-clock-derived values (perf scalars,
//! phase `pct`/`ns_per_event`) are *allowed* in manifests; runs that need
//! byte-identity simply don't record them (phase `count` and the structural
//! digests are the deterministic core).
//!
//! The global collector mirrors the [`crate::logging`] pattern: the binary
//! calls [`begin`] before an experiment and [`finish`] after; library code
//! sprinkles `note_*` calls that are no-ops when no manifest is armed, so
//! unit tests and embedders pay nothing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ursa_core::decision_log::DecisionLog;
use ursa_metrics::{store_digests, SeriesSummary, TimeSeriesStore};
use ursa_sim::profiler::ProfilerReport;

/// Manifest schema identifier.
pub const SCHEMA: &str = "ursa-run-manifest/v1";
/// Decision-log tail lines retained per cell (divergence localisation).
const DECISION_TAIL: usize = 8;

/// FNV-1a 64-bit over raw bytes: platform-stable artifact digests (the
/// std `DefaultHasher` is explicitly unspecified across releases).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One per-phase profile row embedded in a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfileRow {
    /// Stable phase label (see `ursa_sim::profiler::SimPhase::label`).
    pub phase: String,
    /// Sampled event count in the phase (deterministic).
    pub count: u64,
    /// Share of estimated engine time, percent (wall-derived).
    pub pct: f64,
    /// Estimated nanoseconds per popped event (wall-derived).
    pub ns_per_event: f64,
}

/// Phase-profile summary embedded in a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Sampling stride the profiler ran with.
    pub sample_every: u64,
    /// Events the engine processed while armed.
    pub events_seen: u64,
    /// Events that actually got timed.
    pub events_sampled: u64,
    /// One row per phase, in `SimPhase::ALL` order.
    pub rows: Vec<PhaseProfileRow>,
}

impl PhaseProfile {
    /// Flattens a profiler report into manifest rows.
    pub fn from_report(report: &ProfilerReport) -> Self {
        PhaseProfile {
            sample_every: u64::from(report.sample_every),
            events_seen: report.events_seen,
            events_sampled: report.events_sampled,
            rows: report
                .phases
                .iter()
                .map(|s| PhaseProfileRow {
                    phase: s.phase.label().to_string(),
                    count: s.count,
                    pct: s.share * 100.0,
                    ns_per_event: report.ns_per_event(s.phase),
                })
                .collect(),
        }
    }
}

/// Digest of one written TSV table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableDigest {
    /// Data rows (header excluded).
    pub rows: usize,
    /// FNV-1a digest of the exact TSV bytes.
    pub digest: u64,
}

/// Digest + tail of one cell's decision log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionDigest {
    /// Retained records.
    pub total: usize,
    /// FNV-1a digest of the full JSONL rendering.
    pub digest: u64,
    /// Last [`DECISION_TAIL`] JSONL lines, for divergence localisation.
    pub tail: Vec<String>,
}

/// A run manifest under construction. Build one directly in tests; binary
/// runs go through the global [`begin`]/[`finish`] collector instead.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    kind: String,
    seed: u64,
    jobs: usize,
    scale: String,
    topology_digest: Option<u64>,
    chaos_digests: BTreeMap<String, u64>,
    mem_digests: BTreeMap<String, u64>,
    phase_profile: Option<PhaseProfile>,
    series: BTreeMap<String, SeriesSummary>,
    tables: BTreeMap<String, TableDigest>,
    decisions: BTreeMap<String, DecisionDigest>,
    scalars: BTreeMap<String, f64>,
}

impl RunManifest {
    /// Starts an empty manifest for one run.
    pub fn new(kind: &str, seed: u64, jobs: usize, scale: &str) -> Self {
        RunManifest {
            kind: kind.to_string(),
            seed,
            jobs,
            scale: scale.to_string(),
            topology_digest: None,
            chaos_digests: BTreeMap::new(),
            mem_digests: BTreeMap::new(),
            phase_profile: None,
            series: BTreeMap::new(),
            tables: BTreeMap::new(),
            decisions: BTreeMap::new(),
            scalars: BTreeMap::new(),
        }
    }

    /// Records the structural digest of the topology under test.
    pub fn set_topology_digest(&mut self, digest: u64) {
        self.topology_digest = Some(digest);
    }

    /// Records the digest of one compiled fault plan.
    pub fn note_chaos_digest(&mut self, name: &str, digest: u64) {
        self.chaos_digests.insert(name.to_string(), digest);
    }

    /// Records the digest of one memory-plane plan (`MemPlan::digest`).
    pub fn note_mem_digest(&mut self, name: &str, digest: u64) {
        self.mem_digests.insert(name.to_string(), digest);
    }

    /// Records the run's phase-profile summary.
    pub fn set_phase_profile(&mut self, profile: PhaseProfile) {
        self.phase_profile = Some(profile);
    }

    /// Digests every series of a store under `prefix` (sorted by
    /// name + labels, the satellite-6 ordering guarantee).
    pub fn note_store(&mut self, prefix: &str, store: &TimeSeriesStore) {
        for (key, summary) in store_digests(store) {
            self.series
                .insert(format!("{prefix}/{}", key.render()), summary);
        }
    }

    /// Records one written TSV table.
    pub fn note_table(&mut self, name: &str, rows: usize, tsv: &[u8]) {
        self.tables.insert(
            name.to_string(),
            TableDigest {
                rows,
                digest: fnv64(tsv),
            },
        );
    }

    /// Records one cell's decision log (digest + tail).
    pub fn note_decisions(&mut self, cell: &str, log: &DecisionLog) {
        let mut buf: Vec<u8> = Vec::new();
        log.write_jsonl(&mut buf)
            .expect("Vec<u8> writes are infallible");
        let text = String::from_utf8(buf).expect("decision JSONL is UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        let tail = lines
            .iter()
            .rev()
            .take(DECISION_TAIL)
            .rev()
            .map(|s| s.to_string())
            .collect();
        self.decisions.insert(
            cell.to_string(),
            DecisionDigest {
                total: log.len(),
                digest: fnv64(text.as_bytes()),
                tail,
            },
        );
    }

    /// Records one free-form scalar (perf numbers and the like).
    pub fn note_scalar(&mut self, key: &str, value: f64) {
        self.scalars.insert(key.to_string(), value);
    }

    /// Renders the manifest as JSON (stable key order, no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"kind\": \"{}\",", esc(&self.kind));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"scale\": \"{}\",", esc(&self.scale));
        match self.topology_digest {
            Some(d) => {
                let _ = writeln!(out, "  \"topology_digest\": \"{d:016x}\",");
            }
            None => {
                let _ = writeln!(out, "  \"topology_digest\": null,");
            }
        }
        let _ = writeln!(out, "  \"chaos_plan_digests\": {{");
        for (i, (name, d)) in self.chaos_digests.iter().enumerate() {
            let comma = trail(i, self.chaos_digests.len());
            let _ = writeln!(out, "    \"{}\": \"{d:016x}\"{comma}", esc(name));
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"mem_plan_digests\": {{");
        for (i, (name, d)) in self.mem_digests.iter().enumerate() {
            let comma = trail(i, self.mem_digests.len());
            let _ = writeln!(out, "    \"{}\": \"{d:016x}\"{comma}", esc(name));
        }
        let _ = writeln!(out, "  }},");
        match &self.phase_profile {
            Some(p) => {
                let _ = writeln!(out, "  \"phase_profile\": {{");
                let _ = writeln!(out, "    \"sample_every\": {},", p.sample_every);
                let _ = writeln!(out, "    \"events_seen\": {},", p.events_seen);
                let _ = writeln!(out, "    \"events_sampled\": {},", p.events_sampled);
                let _ = writeln!(out, "    \"phases\": [");
                for (i, r) in p.rows.iter().enumerate() {
                    let comma = trail(i, p.rows.len());
                    let _ = writeln!(
                        out,
                        "      {{\"phase\": \"{}\", \"count\": {}, \"pct\": {:.2}, \
                         \"ns_per_event\": {:.1}}}{comma}",
                        esc(&r.phase),
                        r.count,
                        r.pct,
                        r.ns_per_event
                    );
                }
                let _ = writeln!(out, "    ]");
                let _ = writeln!(out, "  }},");
            }
            None => {
                let _ = writeln!(out, "  \"phase_profile\": null,");
            }
        }
        let _ = writeln!(out, "  \"series\": [");
        for (i, (key, s)) in self.series.iter().enumerate() {
            let comma = trail(i, self.series.len());
            let _ = writeln!(
                out,
                "    {{\"key\": \"{}\", \"count\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"last\": {}}}{comma}",
                esc(key),
                s.count,
                num(s.min),
                num(s.max),
                num(s.mean),
                num(s.last)
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"tables\": {{");
        for (i, (name, t)) in self.tables.iter().enumerate() {
            let comma = trail(i, self.tables.len());
            let _ = writeln!(
                out,
                "    \"{}\": {{\"rows\": {}, \"digest\": \"{:016x}\"}}{comma}",
                esc(name),
                t.rows,
                t.digest
            );
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"decisions\": {{");
        for (i, (cell, d)) in self.decisions.iter().enumerate() {
            let comma = trail(i, self.decisions.len());
            let tail: Vec<String> = d.tail.iter().map(|l| format!("\"{}\"", esc(l))).collect();
            let _ = writeln!(
                out,
                "    \"{}\": {{\"total\": {}, \"digest\": \"{:016x}\", \"tail\": [{}]}}{comma}",
                esc(cell),
                d.total,
                d.digest,
                tail.join(", ")
            );
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"scalars\": {{");
        for (i, (key, v)) in self.scalars.iter().enumerate() {
            let comma = trail(i, self.scalars.len());
            let _ = writeln!(out, "    \"{}\": {}{comma}", esc(key), num(*v));
        }
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes the manifest under `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())?;
        Ok(path.to_path_buf())
    }
}

fn trail(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a scalar as JSON (non-finite values become `null`).
fn num(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{x}")
    }
}

// ---------------------------------------------------------------------------
// Global collector (binary plumbing; every call is a no-op when disarmed).
// ---------------------------------------------------------------------------

static ACTIVE: Mutex<Option<RunManifest>> = Mutex::new(None);

/// Arms the global manifest for one run. Any previously armed manifest is
/// dropped.
pub fn begin(kind: &str, seed: u64, jobs: usize, scale: &str) {
    *ACTIVE.lock().expect("manifest lock") = Some(RunManifest::new(kind, seed, jobs, scale));
}

/// Mutates the armed manifest, if any (no-op otherwise).
pub fn with_active(f: impl FnOnce(&mut RunManifest)) {
    if let Some(m) = ACTIVE.lock().expect("manifest lock").as_mut() {
        f(m);
    }
}

/// Records the topology digest on the armed manifest.
pub fn note_topology_digest(digest: u64) {
    with_active(|m| m.set_topology_digest(digest));
}

/// Records a fault-plan digest on the armed manifest.
pub fn note_chaos_digest(name: &str, digest: u64) {
    with_active(|m| m.note_chaos_digest(name, digest));
}

/// Records a memory-plan digest on the armed manifest.
pub fn note_mem_digest(name: &str, digest: u64) {
    with_active(|m| m.note_mem_digest(name, digest));
}

/// Records a phase profile on the armed manifest.
pub fn note_phase_profile(report: &ProfilerReport) {
    with_active(|m| m.set_phase_profile(PhaseProfile::from_report(report)));
}

/// Digests a metrics store into the armed manifest.
pub fn note_store(prefix: &str, store: &TimeSeriesStore) {
    with_active(|m| m.note_store(prefix, store));
}

/// Records a written TSV table on the armed manifest.
pub fn note_table(name: &str, rows: usize, tsv: &[u8]) {
    with_active(|m| m.note_table(name, rows, tsv));
}

/// Records a cell's decision log on the armed manifest.
pub fn note_decisions(cell: &str, log: &DecisionLog) {
    with_active(|m| m.note_decisions(cell, log));
}

/// Records a scalar on the armed manifest.
pub fn note_scalar(key: &str, value: f64) {
    with_active(|m| m.note_scalar(key, value));
}

/// Disarms the global manifest and writes it under `path`. Returns the
/// written path, or `None` when nothing was armed or the write failed
/// (failure is logged, never fatal — manifests must not break runs).
pub fn finish(path: &Path) -> Option<PathBuf> {
    let m = ACTIVE.lock().expect("manifest lock").take()?;
    match m.write(path) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("warning: failed to write manifest {}: {e}", path.display());
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (diff reads manifests back without serde).
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Object view (field list in document order).
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed input.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number {s:?} at byte {start}"))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_metrics::{Labels, SeriesKey};

    fn sample_manifest() -> RunManifest {
        let mut m = RunManifest::new("chaos", 7, 4, "quick");
        m.set_topology_digest(0xDEAD_BEEF);
        m.note_chaos_digest("slowdown", 0x1234);
        m.note_mem_digest("qos", 0x5678);
        m.note_table("chaos_resilience", 30, b"a\tb\n1\t2\n");
        m.note_scalar("events_per_sec", 123456.5);
        let mut store = TimeSeriesStore::new();
        store.append_row(
            1.0,
            vec![
                (SeriesKey::new("zz_latency", Labels::empty()), 0.25),
                (SeriesKey::new("aa_rps", Labels::new(&[("svc", "x")])), 10.0),
            ],
        );
        m.note_store("cell0", &store);
        m
    }

    #[test]
    fn manifest_json_roundtrips_through_parser() {
        let m = sample_manifest();
        let json = m.to_json();
        let v = parse_json(&json).expect("manifest parses");
        assert_eq!(v.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
        assert_eq!(v.get("seed").and_then(JsonValue::as_f64), Some(7.0));
        assert_eq!(
            v.get("topology_digest").and_then(JsonValue::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(
            v.get("mem_plan_digests")
                .and_then(|o| o.get("qos"))
                .and_then(JsonValue::as_str),
            Some("0000000000005678")
        );
        let series = v.get("series").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(series.len(), 2);
        // Sorted by key: aa_rps before zz_latency.
        assert!(series[0]
            .get("key")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("aa_rps"));
        let scalars = v.get("scalars").and_then(JsonValue::as_obj).unwrap();
        assert_eq!(scalars[0].0, "events_per_sec");
        assert_eq!(scalars[0].1.as_f64(), Some(123456.5));
    }

    #[test]
    fn manifest_rendering_is_deterministic() {
        assert_eq!(sample_manifest().to_json(), sample_manifest().to_json());
    }

    #[test]
    fn parser_handles_escapes_nesting_and_errors() {
        let v = parse_json(r#"{"a": [1, -2.5e3, "x\ty\"z"], "b": {"c": null, "d": true}}"#)
            .expect("valid json");
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\ty\"z"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn global_collector_is_noop_when_disarmed() {
        // No begin(): all notes drop silently and finish returns None.
        note_scalar("x", 1.0);
        note_topology_digest(5);
        assert!(finish(Path::new("/nonexistent/run.json")).is_none());
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vector: FNV-1a 64 of "a".
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
