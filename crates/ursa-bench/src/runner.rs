//! Parallel cell runner.
//!
//! Every experiment in the harness is a sweep over independent *cells*
//! (app × system × load × seed). Each cell owns its seeded RNG and its
//! own metrics/trace sinks, so cells can run on any thread in any order —
//! as long as results are collected back in cell order, every TSV, trace,
//! and metrics artifact is byte-identical to a sequential run.
//!
//! [`run_cells`] is that contract: it maps a closure over a list of cell
//! inputs on a scoped thread pool and returns the outputs in input order.
//! The pool size comes from the global jobs setting (`--jobs N` on the
//! CLI; defaults to the number of available cores). With one job the
//! items are mapped inline with no thread machinery at all, so `--jobs 1`
//! is exactly the historical sequential harness.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker count. 0 = unset (use available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the global worker count (`--jobs N`). 0 resets to the default.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// Effective worker count: the `--jobs` setting, or the number of
/// available cores when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Runs `f` over `items` on the globally configured number of workers and
/// returns the results in input order.
pub fn run_cells<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    run_cells_with(jobs(), items, f)
}

/// Runs `f` over `items` on `jobs` workers and returns the results in
/// input order. `jobs <= 1` maps sequentially on the calling thread.
///
/// # Panics
///
/// Propagates a panic from any worker (the cell closure panicking fails
/// the whole sweep, exactly as it would sequentially).
pub fn run_cells_with<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("item claimed once");
                let out = f(i, item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("cell completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let seq = run_cells_with(1, items.clone(), |i, x| (i, x * x));
        let par = run_cells_with(8, items, |i, x| (i, x * x));
        assert_eq!(seq, par);
        assert_eq!(par[10], (10, 100));
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_cells_with(4, empty, |_, x| x).is_empty());
        assert_eq!(run_cells_with(4, vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items() {
        let out = run_cells_with(64, vec![1u64, 2, 3], |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn jobs_default_is_positive() {
        assert!(jobs() >= 1);
    }
}
