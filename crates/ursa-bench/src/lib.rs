//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VII).
//!
//! Each experiment lives in [`experiments`] and maps one-to-one onto a
//! paper artifact (see `DESIGN.md` §4 for the index). The binary
//! (`cargo run -p ursa-bench -- --exp fig11`) runs one or all of them,
//! prints the same rows/series the paper reports, and writes TSV files
//! under `results/` for plotting. `EXPERIMENTS.md` records paper-reported
//! versus measured values.
//!
//! Experiments run at two scales: [`Scale::Quick`] (minutes of wall clock,
//! reduced durations/sample counts — shapes hold, error bars are wider) and
//! [`Scale::Full`] (paper-protocol durations).

pub mod diff;
pub mod experiments;
pub mod logging;
pub mod manifest;
pub mod perf;
pub mod postmortem;
pub mod runner;

// The progress macros live in `ursa-metrics` (shared with the library
// crates); re-export them under the historical `ursa_bench::{info,warn,
// debug}` names every call site uses.
pub use ursa_metrics::{log_debug as debug, log_info as info, log_warn as warn};

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ursa_apps::App;
use ursa_baselines::{
    collect_and_train, train_firm, Autoscaler, CollectConfig, Firm, FirmConfig, Sinan,
};
use ursa_core::exploration::ExplorationConfig;
use ursa_core::manager::{Ursa, UrsaConfig};
use ursa_core::profiling::ProfilingConfig;
use ursa_sim::control::{run_deployment_observed, DeployConfig, DeployObserver, DeploymentReport};
use ursa_sim::engine::Simulation;
use ursa_sim::metrics::SimMetrics;
use ursa_sim::recorder::FlightRecorder;
use ursa_sim::time::{SimDur, SimTime};
use ursa_sim::topology::ServiceId;
use ursa_sim::workload::RateFn;

/// The global experiment seed set by `--seed` (0 by default).
static GLOBAL_SEED: AtomicU64 = AtomicU64::new(0);

/// Sets the global experiment seed (the `--seed` flag). It is XOR-mixed
/// into every workload and chaos RNG seed via [`mix_seed`], so the default
/// of 0 reproduces the committed artifacts exactly and any other value
/// yields an independent, equally deterministic replicate of the suite.
pub fn set_seed(seed: u64) {
    GLOBAL_SEED.store(seed, Ordering::Relaxed);
}

/// The current global experiment seed.
pub fn global_seed() -> u64 {
    GLOBAL_SEED.load(Ordering::Relaxed)
}

/// Mixes an experiment-local seed with the global `--seed` value.
pub fn mix_seed(seed: u64) -> u64 {
    seed ^ global_seed()
}

/// The `--shards` override (0 = use each experiment's default grid).
static GLOBAL_SHARDS: AtomicU64 = AtomicU64::new(0);

/// The `--scale` topology-replication override (0 = experiment default).
static GLOBAL_SCALE: AtomicU64 = AtomicU64::new(0);

/// Sets the global worker-shard count (the `--shards` flag).
pub fn set_shards(shards: usize) {
    GLOBAL_SHARDS.store(shards as u64, Ordering::Relaxed);
}

/// The `--shards` override, if one was given. Experiments that shard
/// (currently `--exp scale`) collapse their shard-count grid to this
/// value; the committed goldens use the default grid.
pub fn shards_override() -> Option<usize> {
    match GLOBAL_SHARDS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n as usize),
    }
}

/// Sets the global topology scale factor (the `--scale` flag).
pub fn set_scale_factor(k: usize) {
    GLOBAL_SCALE.store(k as u64, Ordering::Relaxed);
}

/// The `--scale` override, if one was given: experiments that support it
/// replicate their application's service groups K× via
/// [`ursa_apps::scale_app`] before building simulations.
pub fn scale_override() -> Option<usize> {
    match GLOBAL_SCALE.load(Ordering::Relaxed) {
        0 => None,
        k => Some(k as usize),
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced durations/samples: minutes of wall-clock for the full suite.
    Quick,
    /// Paper-protocol durations (hours of simulated time per cell).
    Full,
}

impl Scale {
    /// Deployment length per scenario.
    pub fn deploy_duration(self) -> SimDur {
        match self {
            Scale::Quick => SimDur::from_mins(14),
            Scale::Full => SimDur::from_mins(45),
        }
    }

    /// Exploration configuration (Algorithm 1).
    pub fn exploration(self) -> ExplorationConfig {
        match self {
            Scale::Quick => ExplorationConfig {
                samples_per_option: 4,
                window: SimDur::from_secs(20),
                max_options: 6,
                ..Default::default()
            },
            Scale::Full => ExplorationConfig::default(),
        }
    }

    /// Backpressure profiling configuration.
    pub fn profiling(self) -> ProfilingConfig {
        match self {
            Scale::Quick => ProfilingConfig {
                windows_per_level: 4,
                window: SimDur::from_secs(10),
                levels: 8,
                ..Default::default()
            },
            Scale::Full => ProfilingConfig::default(),
        }
    }

    /// Sinan data-collection configuration actually *run* (the paper
    /// protocol is 10 000 one-minute samples; Quick runs a reduced episode
    /// and Table 5 reports the protocol numbers alongside).
    pub fn sinan_collect(self) -> CollectConfig {
        match self {
            Scale::Quick => CollectConfig {
                samples: 400,
                window: SimDur::from_secs(15),
                max_replicas: 24,
            },
            Scale::Full => CollectConfig {
                samples: 4000,
                window: SimDur::from_secs(30),
                max_replicas: 24,
            },
        }
    }

    /// Firm training windows actually run.
    pub fn firm_windows(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Full => 4000,
        }
    }
}

/// A load scenario of §VII-E.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadSpec {
    /// Poisson arrivals at the app's default total RPS.
    Constant,
    /// Diurnal ramp between 60 % and 140 % of the default RPS.
    Diurnal,
    /// Flat load with a +100 % burst in the middle of the run.
    Burst,
    /// Default pattern but with update-class frequency scaled by the factor
    /// (2.0 and 0.5 in the paper).
    Skewed(f64),
}

impl LoadSpec {
    /// Short identifier for tables.
    pub fn label(&self) -> String {
        match self {
            LoadSpec::Constant => "constant".into(),
            LoadSpec::Diurnal => "diurnal".into(),
            LoadSpec::Burst => "burst".into(),
            LoadSpec::Skewed(f) => format!("skewed-{f}"),
        }
    }

    /// Applies this load to a simulation of `app` over `duration`.
    pub fn apply(&self, app: &App, sim: &mut Simulation, duration: SimDur) {
        let total = app.default_rps;
        match self {
            LoadSpec::Constant => app.apply_load(sim, RateFn::Constant(total)),
            LoadSpec::Diurnal => app.apply_load(
                sim,
                RateFn::Diurnal {
                    base: total * 0.6,
                    peak: total * 1.4,
                    period: duration,
                },
            ),
            LoadSpec::Burst => {
                let start = SimTime::ZERO + SimDur::from_nanos(duration.as_nanos() * 2 / 5);
                let end = SimTime::ZERO + SimDur::from_nanos(duration.as_nanos() * 3 / 5);
                app.apply_load(
                    sim,
                    RateFn::Burst {
                        base: total * 0.8,
                        burst: total * 1.6,
                        start,
                        end,
                    },
                )
            }
            LoadSpec::Skewed(factor) => {
                let mix = app.skewed_mix(*factor);
                app.apply_load_with_mix(sim, RateFn::Constant(total), &mix);
            }
        }
    }
}

/// Per-class application rates at the default total RPS (exploration mix).
pub fn default_rates(app: &App) -> Vec<f64> {
    let sum: f64 = app.mix.iter().sum();
    app.mix.iter().map(|w| app.default_rps * w / sum).collect()
}

/// Runs Ursa's full offline phase for an app.
pub fn prepare_ursa(app: &App, scale: Scale, seed: u64) -> Ursa {
    let seed = mix_seed(seed);
    let rates = default_rates(app);
    let cfg = UrsaConfig {
        exploration: scale.exploration(),
        profiling: scale.profiling(),
    };
    Ursa::explore_and_prepare(&app.topology, &app.slas, &rates, cfg, seed)
        .expect("ursa offline phase must find a feasible allocation")
}

/// Runs Sinan's data collection + training for an app.
pub fn prepare_sinan(app: &App, scale: Scale, seed: u64) -> (Sinan, ursa_baselines::Dataset) {
    let seed = mix_seed(seed);
    let mut sim = app.build_sim(seed ^ 0x51A4);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    let cfg = scale.sinan_collect();
    let epochs = match scale {
        Scale::Quick => 8,
        Scale::Full => 20,
    };
    collect_and_train(&mut sim, &app.topology, &app.slas, &cfg, epochs, seed)
}

/// Trains Firm's per-service agents for an app.
pub fn prepare_firm(app: &App, scale: Scale, seed: u64) -> Firm {
    let seed = mix_seed(seed);
    let service_classes: Vec<Vec<usize>> = (0..app.topology.num_services())
        .map(|s| {
            app.topology
                .classes_on_service(ServiceId(s))
                .into_iter()
                .map(|c| c.0)
                .collect()
        })
        .collect();
    let mut firm = Firm::new(
        app.topology.num_services(),
        &app.slas,
        service_classes,
        FirmConfig::default(),
        seed,
    );
    let mut sim = app.build_sim(seed ^ 0xF1B3);
    app.apply_load(&mut sim, RateFn::Constant(app.default_rps));
    train_firm(
        &mut sim,
        &mut firm,
        &app.slas,
        scale.firm_windows(),
        SimDur::from_secs(15),
        seed ^ 7,
    );
    firm.training = false;
    firm
}

/// The five competing systems of §VII-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Ursa (this paper).
    Ursa,
    /// Sinan-style model-based ML.
    Sinan,
    /// Firm-style per-service RL.
    Firm,
    /// AWS step-scaling defaults.
    AutoA,
    /// Manually tuned conservative autoscaling.
    AutoB,
}

impl System {
    /// All systems in paper order.
    pub const ALL: [System; 5] = [
        System::Ursa,
        System::Sinan,
        System::Firm,
        System::AutoA,
        System::AutoB,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            System::Ursa => "ursa",
            System::Sinan => "sinan",
            System::Firm => "firm",
            System::AutoA => "auto-a",
            System::AutoB => "auto-b",
        }
    }
}

/// Pre-trained managers for one application, reused across load scenarios.
///
/// Cloning is cheap relative to a deployment and gives each grid cell its
/// own pristine copy of the trained state — the mechanism that makes cells
/// independent of execution order under `--jobs N`.
#[derive(Debug, Clone)]
pub struct PreparedManagers {
    /// Ursa after the offline phase.
    pub ursa: Ursa,
    /// Trained Sinan.
    pub sinan: Sinan,
    /// Trained Firm (deployment mode).
    pub firm: Firm,
    num_services: usize,
}

impl PreparedManagers {
    /// Prepares every system for an app (the expensive, once-per-app step).
    pub fn prepare(app: &App, scale: Scale, seed: u64) -> Self {
        let ursa = prepare_ursa(app, scale, seed);
        let (sinan, _) = prepare_sinan(app, scale, seed ^ 0xAA);
        let firm = prepare_firm(app, scale, seed ^ 0xBB);
        PreparedManagers {
            ursa,
            sinan,
            firm,
            num_services: app.topology.num_services(),
        }
    }

    /// Deploys `system` on `app` under `load`, returning the report.
    pub fn deploy(
        &mut self,
        app: &App,
        system: System,
        load: &LoadSpec,
        scale: Scale,
        seed: u64,
    ) -> DeploymentReport {
        self.deploy_metered(app, system, load, scale, seed, None)
    }

    /// Deploys on a pristine clone of the trained managers, leaving `self`
    /// untouched. Every cell sees identical manager state regardless of
    /// which thread runs it or in what order — the deployment then depends
    /// only on `(app, system, load, scale, seed)`, which is what makes
    /// `--jobs N` byte-identical to `--jobs 1`.
    pub fn deploy_cell(
        &self,
        app: &App,
        system: System,
        load: &LoadSpec,
        scale: Scale,
        seed: u64,
        metrics: Option<&mut SimMetrics>,
    ) -> DeploymentReport {
        self.clone()
            .deploy_metered(app, system, load, scale, seed, metrics)
    }

    /// [`deploy_cell`](Self::deploy_cell) with a fault plan installed on
    /// the deployment simulation (the `--exp chaos` cell path).
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_cell_with_faults(
        &self,
        app: &App,
        system: System,
        load: &LoadSpec,
        scale: Scale,
        seed: u64,
        faults: Option<&ursa_sim::chaos::FaultPlan>,
        metrics: Option<&mut SimMetrics>,
    ) -> DeploymentReport {
        self.clone()
            .deploy_metered_with_faults(app, system, load, scale, seed, faults, metrics)
    }

    /// [`deploy_cell`](Self::deploy_cell) with both planes: an optional
    /// fault plan and an optional memory plan (the `--exp qos` cell path).
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_cell_with_planes(
        &self,
        app: &App,
        system: System,
        load: &LoadSpec,
        scale: Scale,
        seed: u64,
        faults: Option<&ursa_sim::chaos::FaultPlan>,
        mem: Option<&ursa_sim::memory::MemPlan>,
        metrics: Option<&mut SimMetrics>,
    ) -> DeploymentReport {
        self.clone()
            .deploy_observed_full(app, system, load, scale, seed, faults, mem, metrics, None)
    }

    /// [`deploy`](Self::deploy) with an optional metrics collector scraped
    /// once per control window (pass one built with
    /// [`SimMetrics::for_topology`] on `app.topology`).
    pub fn deploy_metered(
        &mut self,
        app: &App,
        system: System,
        load: &LoadSpec,
        scale: Scale,
        seed: u64,
        metrics: Option<&mut SimMetrics>,
    ) -> DeploymentReport {
        self.deploy_metered_with_faults(app, system, load, scale, seed, None, metrics)
    }

    /// [`deploy_metered`](Self::deploy_metered) with an optional fault
    /// plan: the plan is installed on the fresh simulation before the
    /// deployment starts, seeded from the cell seed (mixed with the global
    /// `--seed`) so resilience runs are exactly as deterministic as
    /// fault-free ones. Passing `None` is bit-identical to
    /// [`deploy_metered`](Self::deploy_metered).
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_metered_with_faults(
        &mut self,
        app: &App,
        system: System,
        load: &LoadSpec,
        scale: Scale,
        seed: u64,
        faults: Option<&ursa_sim::chaos::FaultPlan>,
        metrics: Option<&mut SimMetrics>,
    ) -> DeploymentReport {
        self.deploy_observed_with_faults(app, system, load, scale, seed, faults, metrics, None)
    }

    /// [`deploy_metered_with_faults`](Self::deploy_metered_with_faults)
    /// with an optional [`DeployObserver`] — the post-mortem attachment
    /// point. When an observer is given the deployment also arms the
    /// simulator's flight recorder and span tracer so the observer has an
    /// event window and live span trees to bundle; both planes are
    /// non-perturbing (they draw no simulation randomness), so the
    /// [`DeploymentReport`] stays bit-identical to the unobserved call
    /// (enforced by `ursa-sim/tests/observability_bitident.rs`).
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_observed_with_faults(
        &mut self,
        app: &App,
        system: System,
        load: &LoadSpec,
        scale: Scale,
        seed: u64,
        faults: Option<&ursa_sim::chaos::FaultPlan>,
        metrics: Option<&mut SimMetrics>,
        observer: Option<&mut dyn DeployObserver>,
    ) -> DeploymentReport {
        self.deploy_observed_full(
            app, system, load, scale, seed, faults, None, metrics, observer,
        )
    }

    /// The most general deployment entry point: optional fault plan,
    /// optional memory plan, optional metrics collector, optional
    /// post-mortem observer. Every other `deploy_*` method delegates here.
    /// Passing `mem: None` is bit-identical to the plane-free call
    /// (enforced by `ursa-sim/tests/memory_bitident.rs`).
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_observed_full(
        &mut self,
        app: &App,
        system: System,
        load: &LoadSpec,
        scale: Scale,
        seed: u64,
        faults: Option<&ursa_sim::chaos::FaultPlan>,
        mem: Option<&ursa_sim::memory::MemPlan>,
        metrics: Option<&mut SimMetrics>,
        observer: Option<&mut dyn DeployObserver>,
    ) -> DeploymentReport {
        let seed = mix_seed(seed);
        let duration = scale.deploy_duration();
        let mut sim = app.build_sim(seed);
        if let Some(plan) = faults {
            sim.install_faults(plan, seed);
        }
        if let Some(plan) = mem {
            sim.install_memory_plane(plan);
        }
        if observer.is_some() {
            sim.arm_flight_recorder(FlightRecorder::DEFAULT_CAPACITY);
            sim.enable_tracing(POSTMORTEM_TRACE_CAPACITY, POSTMORTEM_TRACE_SAMPLE_RATE);
            // Observed deployments also run the phase profiler so bundles
            // carry the engine's phase-profile summary. Like the recorder
            // and tracer, sampling is non-perturbing (no simulation RNG
            // draws), so the report stays bit-identical either way.
            sim.enable_profiler(ursa_sim::profiler::PhaseProfiler::DEFAULT_SAMPLE_EVERY);
        }
        load.apply(app, &mut sim, duration);
        let cfg = DeployConfig {
            duration,
            control_interval: SimDur::from_mins(1),
            warmup: SimDur::from_mins(2),
            collect_samples: false,
        };
        match system {
            System::Ursa => {
                let rates = default_rates(app);
                self.ursa.apply_initial_allocation(&rates, &mut sim);
                run_deployment_observed(
                    &mut sim,
                    &app.slas,
                    &mut self.ursa,
                    &cfg,
                    metrics,
                    observer,
                )
            }
            System::Sinan => run_deployment_observed(
                &mut sim,
                &app.slas,
                &mut self.sinan,
                &cfg,
                metrics,
                observer,
            ),
            System::Firm => run_deployment_observed(
                &mut sim,
                &app.slas,
                &mut self.firm,
                &cfg,
                metrics,
                observer,
            ),
            System::AutoA => {
                let mut auto = Autoscaler::auto_a(self.num_services);
                run_deployment_observed(&mut sim, &app.slas, &mut auto, &cfg, metrics, observer)
            }
            System::AutoB => {
                let mut auto = Autoscaler::auto_b(self.num_services);
                run_deployment_observed(&mut sim, &app.slas, &mut auto, &cfg, metrics, observer)
            }
        }
    }
}

/// Span-tracer ring capacity armed for post-mortem deployments.
const POSTMORTEM_TRACE_CAPACITY: usize = 512;
/// Head-sampling rate of the post-mortem span tracer — low enough that the
/// ring survives a full control window without megabytes of spans.
const POSTMORTEM_TRACE_SAMPLE_RATE: f64 = 0.02;

/// A simple TSV table writer that also renders to the terminal.
#[derive(Debug, Clone)]
pub struct TsvTable {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TsvTable {
    /// Creates a table with the given file stem and column names.
    pub fn new(name: &str, header: &[&str]) -> Self {
        TsvTable {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the TSV file content (exactly what [`write_tsv`](Self::write_tsv)
    /// writes) — handy for diffing against a committed artifact.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Writes the table as TSV under `dir`, returning the path. The
    /// written bytes are also digested into the armed run manifest, if
    /// any (tables are written from the main thread after cell
    /// collection, so manifest ordering is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_tsv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.tsv", self.name));
        let mut f = std::fs::File::create(&path)?;
        let tsv = self.to_tsv();
        f.write_all(tsv.as_bytes())?;
        manifest::note_table(&self.name, self.rows.len(), tsv.as_bytes());
        Ok(path)
    }
}

/// The default results directory (`results/` under the workspace root).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage for table cells.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_table_renders_and_writes() {
        let mut t = TsvTable::new("unit-test-table", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains('a') && s.contains('1'));
        let dir = std::env::temp_dir().join("ursa-bench-test");
        let path = t.write_tsv(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a\tb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn tsv_table_checks_width() {
        let mut t = TsvTable::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn load_specs_label_and_apply() {
        let app = ursa_apps::social_network(true);
        for load in [
            LoadSpec::Constant,
            LoadSpec::Diurnal,
            LoadSpec::Burst,
            LoadSpec::Skewed(2.0),
        ] {
            assert!(!load.label().is_empty());
            let mut sim = app.build_sim(1);
            load.apply(&app, &mut sim, SimDur::from_mins(10));
            sim.run_for(SimDur::from_secs(30));
            let snap = sim.harvest();
            assert!(
                snap.injections.iter().sum::<u64>() > 0,
                "{:?}",
                load.label()
            );
        }
    }

    #[test]
    fn default_rates_sum_to_default_rps() {
        let app = ursa_apps::social_network(false);
        let rates = default_rates(&app);
        let total: f64 = rates.iter().sum();
        assert!((total - app.default_rps).abs() < 1e-9);
    }
}
