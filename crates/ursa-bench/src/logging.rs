//! Leveled progress logging and trace-output plumbing for the runner.
//!
//! Experiment *results* (tables, series) go to stdout via `println!` so
//! they can be piped; *progress* goes to stderr through the [`info!`] and
//! [`debug!`] macros, which honor `--quiet` / `--verbose`. `--trace-dir`
//! registers a directory into which experiments dump span traces
//! (Chrome trace-event JSON + JSONL) and decision logs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Verbosity of progress output on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Only results (stdout) and hard errors.
    Quiet = 0,
    /// Progress messages (the default).
    Info = 1,
    /// Extra detail.
    Debug = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static TRACE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Sets the global verbosity.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// True when messages at `level` should be printed.
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Registers the directory trace artifacts are written into (`None`
/// disables trace output).
pub fn set_trace_dir(dir: Option<PathBuf>) {
    *TRACE_DIR.lock().expect("trace dir lock") = dir;
}

/// The registered trace output directory, if any.
pub fn trace_dir() -> Option<PathBuf> {
    TRACE_DIR.lock().expect("trace dir lock").clone()
}

/// Prints a progress message to stderr unless `--quiet`.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Prints a detail message to stderr only with `--verbose`.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_gating() {
        set_level(Level::Quiet);
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Info);
    }

    #[test]
    fn trace_dir_roundtrip() {
        set_trace_dir(Some(PathBuf::from("/tmp/x")));
        assert_eq!(trace_dir(), Some(PathBuf::from("/tmp/x")));
        set_trace_dir(None);
        assert_eq!(trace_dir(), None);
    }
}
