//! Leveled progress logging and artifact-output plumbing for the runner.
//!
//! Experiment *results* (tables, series) go to stdout via `println!` so
//! they can be piped; *progress* goes to stderr through the [`info!`],
//! [`warn!`], and [`debug!`] macros, which honor `--quiet` / `--verbose`.
//! The level machinery itself lives in [`ursa_metrics::logging`] (shared
//! with the library crates, so `--verbose` also surfaces e.g. `ursa-core`
//! calibration diagnostics) and is re-exported here.
//!
//! `--trace-dir` registers a directory into which experiments dump span
//! traces (Chrome trace-event JSON + JSONL) and decision logs;
//! `--metrics-dir` does the same for metrics artifacts (Prometheus text,
//! CSV, HTML dashboards).

use std::path::PathBuf;
use std::sync::Mutex;

pub use ursa_metrics::logging::{enabled, set_level, Level};

static TRACE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static METRICS_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Registers the directory trace artifacts are written into (`None`
/// disables trace output).
pub fn set_trace_dir(dir: Option<PathBuf>) {
    *TRACE_DIR.lock().expect("trace dir lock") = dir;
}

/// The registered trace output directory, if any.
pub fn trace_dir() -> Option<PathBuf> {
    TRACE_DIR.lock().expect("trace dir lock").clone()
}

/// Registers the directory metrics artifacts are written into (`None`
/// disables metrics output).
pub fn set_metrics_dir(dir: Option<PathBuf>) {
    *METRICS_DIR.lock().expect("metrics dir lock") = dir;
}

/// The registered metrics output directory, if any.
pub fn metrics_dir() -> Option<PathBuf> {
    METRICS_DIR.lock().expect("metrics dir lock").clone()
}

/// Prints a progress message to stderr unless `--quiet`.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Prints a warning (prefixed `warning:`) to stderr unless `--quiet`.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Info) {
            eprintln!("warning: {}", format_args!($($arg)*));
        }
    };
}

/// Prints a detail message to stderr only with `--verbose`.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_gating() {
        set_level(Level::Quiet);
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Info);
    }

    #[test]
    fn trace_dir_roundtrip() {
        set_trace_dir(Some(PathBuf::from("/tmp/x")));
        assert_eq!(trace_dir(), Some(PathBuf::from("/tmp/x")));
        set_trace_dir(None);
        assert_eq!(trace_dir(), None);
    }

    #[test]
    fn metrics_dir_roundtrip() {
        set_metrics_dir(Some(PathBuf::from("/tmp/m")));
        assert_eq!(metrics_dir(), Some(PathBuf::from("/tmp/m")));
        set_metrics_dir(None);
        assert_eq!(metrics_dir(), None);
    }

    #[test]
    fn macros_compile_at_all_levels() {
        crate::info!("info {}", 1);
        crate::warn!("warn {}", 2);
        crate::debug!("debug {}", 3);
    }
}
